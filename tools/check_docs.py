#!/usr/bin/env python
"""Docs CI: link/anchor checker + executable doc examples.

Two checks, stdlib only:

1. **Links** — every relative link and intra-document anchor in the
   documentation set (``docs/``, ``README.md``, ``DESIGN.md``,
   ``EXPERIMENTS.md``) must resolve: the target file exists and, when
   a ``#fragment`` is given, the target file has a heading whose
   GitHub anchor slug matches.  External (``http(s)://``, ``mailto:``)
   links are not fetched.
2. **Doc examples** — every fenced ```` ```python ```` block in
   ``docs/CONTROLLERS.md`` is executed (fences share one namespace per
   file, in order; fences containing ``>>>`` run through
   :mod:`doctest`).  The examples are the "writing your own
   controller" walkthrough, so this is the guarantee that the
   documented API is the real one.

Usage::

    python tools/check_docs.py            # both checks
    python tools/check_docs.py --links    # links only (no repro import)
    python tools/check_docs.py --examples # doc examples only

Exit status 0 iff everything passes; failures are listed one per line
as ``file:line: message``.  Also imported by ``tests/docs/test_docs.py``
so the tier-1 suite runs the same checks.
"""

from __future__ import annotations

import argparse
import doctest
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: the documentation set the link checker walks
DOC_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
)
DOC_DIRS = ("docs",)

#: files whose ```python fences must execute
EXAMPLE_FILES = ("docs/CONTROLLERS.md", "docs/SWEEPS.md")

_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE_RE = re.compile(r"^(```+|~~~+)\s*(\S*)\s*$")
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
_CODE_SPAN_RE = re.compile(r"`[^`]*`")


def slugify(heading: str) -> str:
    """GitHub's heading-to-anchor algorithm (close enough for ASCII +
    the typographic punctuation these docs use).

    Lowercase; markdown code spans keep their text; everything that is
    not a letter, digit, space or hyphen is dropped; spaces become
    hyphens.
    """
    text = heading.strip().lower().replace("`", "")
    # inline links in headings keep only their text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = "".join(c for c in text
                   if c.isalnum() or c in " -" or c == "_")
    return text.replace(" ", "-")


def iter_markdown(root: Path = ROOT):
    for name in DOC_FILES:
        path = root / name
        if path.exists():
            yield path
    for dirname in DOC_DIRS:
        yield from sorted((root / dirname).glob("**/*.md"))


def anchors_of(path: Path) -> set[str]:
    """The set of valid fragment anchors of a markdown file."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if not match:
            continue
        slug = slugify(match.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def links_of(path: Path):
    """Yield ``(lineno, target)`` for every inline markdown link,
    skipping fenced code blocks and inline code spans."""
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        scrubbed = _CODE_SPAN_RE.sub("", line)
        for match in _LINK_RE.finditer(scrubbed):
            yield lineno, match.group(1)


def check_links(root: Path = ROOT) -> list[str]:
    """Validate every relative link/anchor; returns error strings."""
    errors: list[str] = []
    anchor_cache: dict[Path, set[str]] = {}

    def anchors(path: Path) -> set[str]:
        if path not in anchor_cache:
            anchor_cache[path] = anchors_of(path)
        return anchor_cache[path]

    for doc in iter_markdown(root):
        rel = doc.relative_to(root)
        for lineno, target in links_of(doc):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                dest = (doc.parent / path_part).resolve()
                if not dest.exists():
                    errors.append(f"{rel}:{lineno}: broken link "
                                  f"{target!r} (no such file)")
                    continue
            else:
                dest = doc
            if fragment and dest.suffix == ".md":
                if fragment not in anchors(dest):
                    errors.append(f"{rel}:{lineno}: broken anchor "
                                  f"{target!r} (no heading "
                                  f"#{fragment} in {dest.name})")
    return errors


def python_fences(path: Path):
    """Yield ``(start_lineno, code)`` for each ```python fence."""
    lines = path.read_text(encoding="utf-8").splitlines()
    i = 0
    while i < len(lines):
        match = _FENCE_RE.match(lines[i])
        if match and match.group(2) in ("python", "py"):
            marker = match.group(1)
            start = i + 1
            body = []
            i += 1
            while i < len(lines) and not lines[i].startswith(marker):
                body.append(lines[i])
                i += 1
            yield start, "\n".join(body) + "\n"
        elif match:
            marker = match.group(1)
            i += 1
            while i < len(lines) and not lines[i].startswith(marker):
                i += 1
        i += 1


def run_doc_examples(root: Path = ROOT,
                     files=EXAMPLE_FILES) -> list[str]:
    """Execute every python fence; returns error strings.

    Fences share one namespace per file (so later examples may build
    on earlier imports); a fence containing ``>>>`` runs under
    :mod:`doctest` instead.  The controller and experiment registries
    are snapshotted and restored around the run, because the
    walkthroughs register demo backends/experiments and both
    registries are process-global.
    """
    src = str(root / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.core import controller as controller_mod
    from repro.experiments import registry as experiment_mod

    errors: list[str] = []
    saved_registry = dict(controller_mod._REGISTRY)
    # force the lazy built-in registration first: it happens once per
    # process, so restoring a pre-registration (empty) snapshot would
    # wipe the built-ins for good
    experiment_mod._ensure_builtins()
    saved_experiments = dict(experiment_mod._REGISTRY)
    try:
        for name in files:
            path = root / name
            rel = path.relative_to(root)
            namespace: dict = {"__name__": f"docs_example_{path.stem}"}
            for lineno, code in python_fences(path):
                try:
                    if ">>>" in code:
                        runner = doctest.DocTestRunner(
                            optionflags=doctest.ELLIPSIS)
                        parser = doctest.DocTestParser()
                        test = parser.get_doctest(
                            code, namespace, str(rel), str(rel), lineno)
                        result = runner.run(test)
                        if result.failed:
                            errors.append(
                                f"{rel}:{lineno}: {result.failed} doctest "
                                f"failure(s) in fence")
                    else:
                        exec(compile(code, f"{rel}:{lineno}", "exec"),
                             namespace)
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    errors.append(f"{rel}:{lineno}: example raised "
                                  f"{type(exc).__name__}: {exc}")
    finally:
        controller_mod._REGISTRY.clear()
        controller_mod._REGISTRY.update(saved_registry)
        experiment_mod._REGISTRY.clear()
        experiment_mod._REGISTRY.update(saved_experiments)
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--links", action="store_true",
                        help="only check links/anchors")
    parser.add_argument("--examples", action="store_true",
                        help="only run the doc examples")
    args = parser.parse_args(argv)
    both = not (args.links or args.examples)

    errors: list[str] = []
    n_docs = n_fences = 0
    if args.links or both:
        docs = list(iter_markdown())
        n_docs = len(docs)
        errors += check_links()
    if args.examples or both:
        n_fences = sum(len(list(python_fences(ROOT / f)))
                       for f in EXAMPLE_FILES)
        errors += run_doc_examples()

    for err in errors:
        print(err, file=sys.stderr)
    status = "FAIL" if errors else "ok"
    print(f"docs check: {status} ({n_docs} files linked-checked, "
          f"{n_fences} python fences executed, {len(errors)} error(s))")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
