#!/usr/bin/env python3
"""Watching the acker follow the slowest receiver (the Fig. 5 story).

Reproduces the paper's staged scenario: a receiver on a 500 kbit/s
path runs alone, a receiver on a 400 kbit/s path joins, a TCP flow
then squeezes the first path, and finally leaves.  The acker election
log shows the representative moving to whichever receiver currently
has the worst TCP-fair throughput, and the session rate following it.

Run:  python examples/acker_dynamics.py
"""

from repro.analysis import bandwidth_series
from repro.core.sender_cc import CcConfig
from repro.pgm import add_receiver, create_session
from repro.simulator import LinkSpec, two_bottleneck
from repro.tcp import create_tcp_flow

L1 = LinkSpec(rate_bps=400_000, delay=0.050, queue_bytes=20_000)
L2 = LinkSpec(rate_bps=500_000, delay=0.050, queue_slots=30)

PR1_JOIN = 40.0
TCP_START = 80.0
TCP_STOP = 140.0
DURATION = 180.0


def main() -> None:
    net = two_bottleneck(L1, L2, seed=5)
    session = create_session(net, "src", ["pr2"], cc=CcConfig(c=0.75))
    add_receiver(net, session, "pr1", at=PR1_JOIN)
    tcp = create_tcp_flow(net, "ts", "tr", start_at=TCP_START, stop_at=TCP_STOP)

    print(f"t=  0.0s  pr2 joins (L2: 500 kbit/s)")
    print(f"t={PR1_JOIN:5.1f}s  pr1 joins (L1: 400 kbit/s)")
    print(f"t={TCP_START:5.1f}s  TCP starts on L2")
    print(f"t={TCP_STOP:5.1f}s  TCP stops")
    print()
    net.run(until=DURATION)

    print("acker election log:")
    for switch in session.sender.controller.election.switches:
        old = switch.old or "(none)"
        print(f"  t={switch.time:6.1f}s  {old:7s} -> {switch.new}")

    print("\nsession bandwidth (20 s bins):")
    for b in bandwidth_series(session.trace, 0, DURATION, 20.0):
        bar = "#" * int(b.rate_bps / 12_500)
        print(f"  {b.t_start:5.0f}s {b.rate_bps / 1000:7.1f} kbit/s  {bar}")

    tcp_rate = tcp.throughput_bps(TCP_START + 10, TCP_STOP)
    print(f"\nTCP rate while active: {tcp_rate / 1000:.0f} kbit/s")
    print(f"final acker: {session.sender.current_acker}")


if __name__ == "__main__":
    main()
