#!/usr/bin/env python3
"""Quickstart: one pgmcc session competing with one TCP flow.

Builds the paper's standard non-lossy dumbbell (500 kbit/s, 50 ms,
30-slot FIFO), runs a pgmcc session with two receivers, starts a TCP
flow halfway through, and prints the bandwidth timeline — the
miniature version of Fig. 4.

Run:  python examples/quickstart.py
"""

from repro.analysis import bandwidth_series
from repro.pgm import create_session
from repro.simulator import NON_LOSSY, dumbbell
from repro.tcp import create_tcp_flow

DURATION = 90.0
TCP_START = 30.0
TCP_STOP = 70.0


def main() -> None:
    # Topology: h0, h1 == R0 ==(bottleneck)== R1 == r0, r1, r2
    net = dumbbell(n_left=2, n_right=3, bottleneck=NON_LOSSY, seed=1)

    # A pgmcc session from h0 to two receivers.
    session = create_session(net, "h0", ["r0", "r1"], trace_name="pgmcc")

    # A competing TCP bulk flow in the middle of the run.
    tcp = create_tcp_flow(net, "h1", "r2", start_at=TCP_START,
                          stop_at=TCP_STOP, trace_name="tcp")

    net.run(until=DURATION)

    print("time     pgmcc        tcp       (kbit/s in 10 s bins)")
    pgm_bins = bandwidth_series(session.trace, 0, DURATION, 10.0)
    tcp_bins = bandwidth_series(tcp.trace, 0, DURATION, 10.0)
    for pgm_bin, tcp_bin in zip(pgm_bins, tcp_bins):
        print(
            f"{pgm_bin.t_start:5.0f}s {pgm_bin.rate_bps / 1000:9.1f} "
            f"{tcp_bin.rate_bps / 1000:9.1f}"
        )

    print()
    print(f"acker: {session.sender.current_acker} "
          f"(switches: {session.acker_switches})")
    print(f"pgmcc packets: {session.sender.odata_sent} data, "
          f"{session.sender.rdata_sent} repairs")
    print(f"receiver loss rates: "
          + ", ".join(f"{rx.rx_id}={rx.loss_rate:.3%}" for rx in session.receivers))
    shared = session.throughput_bps(TCP_START + 10, TCP_STOP)
    tcp_shared = tcp.throughput_bps(TCP_START + 10, TCP_STOP)
    print(f"while competing: pgmcc {shared / 1000:.0f} kbit/s, "
          f"tcp {tcp_shared / 1000:.0f} kbit/s")


if __name__ == "__main__":
    main()
