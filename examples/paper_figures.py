#!/usr/bin/env python3
"""Render text versions of the paper's figures from live simulations.

Regenerates a miniature of each §4 figure and draws it in the paper's
own style: time/sequence scatter with NAK diamonds (`o`) and acker
switch bars (`|`), plus bandwidth panels.

Run:  python examples/paper_figures.py
"""

from repro.analysis import (
    bandwidth_series,
    render_bandwidth,
    render_flow_comparison,
    render_time_seq,
)
from repro.core.sender_cc import CcConfig
from repro.experiments.fig5_acker_selection import L1, L2
from repro.pgm import add_receiver, create_session
from repro.simulator import NON_LOSSY, dumbbell, two_bottleneck
from repro.tcp import create_tcp_flow


def figure4() -> None:
    print("=" * 72)
    print("Fig. 4 (miniature): 1 TCP vs 1 PGM session, non-lossy bottleneck")
    print("=" * 72)
    net = dumbbell(2, 2, NON_LOSSY, seed=3)
    session = create_session(net, "h0", ["r0"], cc=CcConfig(c=1.0), trace_name="pgm")
    tcp = create_tcp_flow(net, "h1", "r1", start_at=25.0, stop_at=65.0,
                          trace_name="tcp")
    net.run(until=90.0)
    print(render_time_seq(session.trace, 0, 90, width=72, height=16))
    print()
    print(render_flow_comparison({"pgm": session.trace, "tcp": tcp.trace},
                                 0, 90, 10.0))
    print()


def figure5() -> None:
    print("=" * 72)
    print("Fig. 5 (miniature): acker selection across two bottlenecks")
    print("=" * 72)
    net = two_bottleneck(L1, L2, seed=5)
    session = create_session(net, "src", ["pr2"], cc=CcConfig(c=0.75),
                             trace_name="pgm")
    add_receiver(net, session, "pr1", at=30.0)
    tcp = create_tcp_flow(net, "ts", "tr", start_at=60.0, stop_at=110.0)
    net.run(until=150.0)
    print(render_time_seq(session.trace, 0, 150, width=72, height=16))
    print()
    print("session bandwidth:")
    print(render_bandwidth(bandwidth_series(session.trace, 0, 150, 10.0),
                           width=40, max_rate_bps=500_000))
    switches = session.sender.controller.election.switches
    print("\nacker timeline: "
          + "  ".join(f"{s.time:.0f}s->{s.new}" for s in switches))
    print()


def window_sawtooth() -> None:
    print("=" * 72)
    print("Bonus: the §3.4 controller's AIMD sawtooth (W over time)")
    print("=" * 72)
    net = dumbbell(1, 1, NON_LOSSY, seed=8)
    session = create_session(net, "h0", ["r0"])
    net.run(until=60.0)
    samples = [(r.time, r.seq / 100) for r in session.trace.of_kind("window")]
    peak = max(w for _, w in samples)
    for t, w in samples[:40]:
        bar = "#" * int(round(40 * w / peak))
        print(f"  {t:6.1f}s  W={w:5.1f} |{bar}")
    print()


def main() -> None:
    figure4()
    figure5()
    window_sawtooth()


if __name__ == "__main__":
    main()
