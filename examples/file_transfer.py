#!/usr/bin/env python3
"""Reliable multicast file transfer over a lossy tree.

The scenario the paper's introduction motivates: one source pushes a
file to a group of receivers behind independent lossy links; PGM's
NAK/RDATA machinery repairs the holes while pgmcc keeps the rate at
the TCP-fair share of the slowest receiver.  Every receiver verifies a
checksum of the reassembled file at the end.

Run:  python examples/file_transfer.py
"""

import hashlib
import random

from repro.pgm import FiniteSource, create_session, enable_network_elements
from repro.simulator import LinkSpec, Network

CHUNK = 1400
N_CHUNKS = 400  # a 560 kB "file"
RECEIVER_LINKS = {
    # name -> (rate, delay, loss): heterogeneous receiver population
    "fast": LinkSpec(2_000_000, 0.020, queue_slots=30, loss_rate=0.001),
    "lossy": LinkSpec(2_000_000, 0.100, queue_slots=30, loss_rate=0.03),
    "slow": LinkSpec(400_000, 0.050, queue_slots=30),
}


def build_network(seed: int = 7) -> Network:
    net = Network(seed=seed)
    net.add_host("src")
    net.add_router("R0")
    net.duplex_link("src", "R0", LinkSpec(100_000_000, 0.0005, queue_slots=1000))
    for name, spec in RECEIVER_LINKS.items():
        net.add_host(name)
        net.duplex_link("R0", name, spec)
    net.build_routes()
    return net


def main() -> None:
    rng = random.Random(1234)
    file_bytes = bytes(rng.getrandbits(8) for _ in range(CHUNK * N_CHUNKS))
    chunks = [file_bytes[i : i + CHUNK] for i in range(0, len(file_bytes), CHUNK)]
    digest = hashlib.sha256(file_bytes).hexdigest()
    print(f"file: {len(file_bytes)} bytes, sha256 {digest[:16]}…")

    net = build_network()
    enable_network_elements(net)  # routers aggregate NAKs

    received: dict[str, list[bytes]] = {name: [] for name in RECEIVER_LINKS}
    session = create_session(
        net, "src", list(RECEIVER_LINKS), source=FiniteSource(chunks)
    )
    for rx in session.receivers:
        sink = received[rx.rx_id]
        rx.deliver = lambda seq, n, payload, sink=sink: sink.append(payload)

    net.run(until=300.0)

    print(f"\nsent: {session.sender.odata_sent} data + "
          f"{session.sender.rdata_sent} repair packets; "
          f"final acker: {session.sender.current_acker}")
    rate = session.throughput_bps(2.0, max(session.trace.times("data")))
    print(f"session rate: {rate / 1000:.0f} kbit/s "
          f"(slowest receiver link: 400 kbit/s)")

    ok = True
    for name, parts in received.items():
        blob = b"".join(parts)
        match = hashlib.sha256(blob).hexdigest() == digest
        ok &= match
        rx = session.receiver(name)
        print(f"  {name:5s}: {len(parts):4d}/{N_CHUNKS} chunks, "
              f"loss seen {rx.loss_rate:.2%}, "
              f"checksum {'OK' if match else 'MISMATCH'}")
    if not ok:
        raise SystemExit("transfer failed verification")
    print("all receivers verified the file")


if __name__ == "__main__":
    main()
