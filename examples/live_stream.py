#!/usr/bin/env python3
"""Unreliable live streaming with pgmcc rate feedback (§3.9).

A live video source multicasts without retransmissions: stale frames
are worthless, so NAKs are report-only.  The application listens to
pgmcc's token-generation feedback to pick its encoding quality, and to
the receiver loss reports to size FEC redundancy — both feedback kinds
the paper describes for unreliable protocols.

Halfway through, the bottleneck is squeezed from 600 to 150 kbit/s;
watch the stream step its quality down and recover nothing by
retransmission (rdata stays 0).

Run:  python examples/live_stream.py
"""

from repro.core.feedback import AdaptiveSource, QualityLevel
from repro.pgm import create_session
from repro.simulator import LinkSpec, Network

LEVELS = [
    QualityLevel("audio-only 16k", 16_000),
    QualityLevel("video-low 64k", 64_000),
    QualityLevel("video-med 160k", 160_000),
    QualityLevel("video-high 400k", 400_000),
]
DURATION = 120.0
SQUEEZE_AT = 60.0


def main() -> None:
    net = Network(seed=11)
    net.add_host("studio")
    net.add_router("R0")
    net.duplex_link("studio", "R0", LinkSpec(100_000_000, 0.0005, queue_slots=1000))
    viewers = ["viewer-a", "viewer-b"]
    links = []
    for name in viewers:
        net.add_host(name)
        fwd, _ = net.duplex_link(
            "R0", name,
            LinkSpec(600_000, 0.080, queue_slots=30, loss_rate=0.005),
        )
        links.append(fwd)
    net.build_routes()

    app = AdaptiveSource(LEVELS, payload_bytes=1400)
    app.on_level_change = lambda lv: print(
        f"  t={net.sim.now:6.1f}s  quality -> {lv.name}"
    )
    session = create_session(
        net, "studio", viewers, reliable=False, on_token=app.on_token,
        trace_name="stream",
    )
    # feed the app the freshest loss report for FEC sizing
    original = session.sender._handle_nak

    def nak_tap(nak):
        app.on_report(nak.report)
        original(nak)

    session.sender._handle_nak = nak_tap

    def squeeze():
        print(f"  t={net.sim.now:6.1f}s  [link squeezed to 150 kbit/s]")
        for link in links:
            link.rate_bps = 150_000

    net.sim.schedule_at(SQUEEZE_AT, squeeze)

    print("streaming…")
    net.run(until=DURATION)

    wide = session.throughput_bps(10, SQUEEZE_AT)
    narrow = session.throughput_bps(SQUEEZE_AT + 20, DURATION)
    print(f"\nrate before squeeze: {wide / 1000:.0f} kbit/s; after: "
          f"{narrow / 1000:.0f} kbit/s")
    print(f"retransmissions sent: {session.sender.rdata_sent} (unreliable mode)")
    print(f"suggested FEC redundancy from loss reports: "
          f"{app.redundancy_share:.1%}")
    for rx in session.receivers:
        holes = rx.cc.loss_filter.losses
        print(f"  {rx.rx_id}: {rx.odata_received} frames, "
              f"{holes} lost (played with concealment)")


if __name__ == "__main__":
    main()
