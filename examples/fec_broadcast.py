#!/usr/bin/env python3
"""Software-update broadcast with FEC repair at scale.

The Fig. 7 caveat in action: pushing the same data to a large group of
receivers behind independent lossy links, retransmission repair
traffic grows with the group — FEC parity does not.  This example
broadcasts an "update" to 40 receivers on 1 %-loss links, comparing
plain retransmission repair with an 11 % FEC parity budget, and then
shows §3.9-style adaptive redundancy reacting to a receiver on a much
worse (5 %) link joining the group.

Run:  python examples/fec_broadcast.py
"""

from repro.pgm import (
    FecAssembler,
    FecSource,
    add_receiver,
    attach_fec_receiver,
    create_session,
)
from repro.simulator import LinkSpec, Network

N_RECEIVERS = 40
LEAF = LinkSpec(2_000_000, 0.230, queue_bytes=30_000, loss_rate=0.01)
BAD_LEAF = LinkSpec(2_000_000, 0.230, queue_bytes=30_000, loss_rate=0.05)
DURATION = 120.0


def build() -> Network:
    net = Network(seed=99)
    net.add_host("src")
    net.add_router("R0")
    net.duplex_link("src", "R0", LinkSpec(100_000_000, 0.0005, queue_slots=2000))
    for i in range(N_RECEIVERS):
        net.add_host(f"r{i}")
        net.duplex_link("R0", f"r{i}", LEAF)
    net.add_host("straggler")
    net.duplex_link("R0", "straggler", BAD_LEAF)
    net.build_routes()
    return net


def retransmission_run() -> None:
    net = build()
    session = create_session(net, "src", [f"r{i}" for i in range(N_RECEIVERS)])
    net.run(until=DURATION)
    summary = session.summary()
    share = summary["rdata_sent"] / max(summary["odata_sent"], 1)
    print(f"RDATA repair : {summary['odata_sent']} data + "
          f"{summary['rdata_sent']} repairs "
          f"({share:.0%} repair overhead at the source)")
    session.close()


def fec_run() -> None:
    net = build()
    source = FecSource(k=16, redundancy=2)
    session = create_session(
        net, "src", [f"r{i}" for i in range(N_RECEIVERS)],
        reliable=False, source=source,
    )
    assemblers = {}
    for rx in session.receivers:
        assemblers[rx.rx_id] = FecAssembler()
        attach_fec_receiver(rx, assemblers[rx.rx_id])

    # Halfway in, a receiver on a much lossier link joins; the source
    # raises the parity budget from its reports (§3.9 adaptation).
    def straggler_joins() -> None:
        add_receiver(net, session, "straggler", reliable=False)
        rx = session.receiver("straggler")
        assemblers["straggler"] = FecAssembler()
        attach_fec_receiver(rx, assemblers["straggler"])
        print(f"  t={net.sim.now:5.1f}s straggler joined (5% loss link); "
              f"raising redundancy to r=4")
        source.set_redundancy(4)

    net.sim.schedule_at(DURATION / 2, straggler_joins)
    net.run(until=DURATION)

    print(f"FEC repair   : {session.sender.odata_sent} packets "
          f"({source.overhead:.0%} parity now), 0 retransmissions")
    residuals = {name: a.residual_block_loss() for name, a in assemblers.items()}
    worst = max(residuals, key=residuals.get)
    print(f"  residual block loss: mean "
          f"{sum(residuals.values()) / len(residuals):.2%}, "
          f"worst {residuals[worst]:.2%} ({worst})")
    session.close()


def main() -> None:
    print(f"broadcast to {N_RECEIVERS} receivers, independent 1% loss links\n")
    retransmission_run()
    fec_run()


if __name__ == "__main__":
    main()
