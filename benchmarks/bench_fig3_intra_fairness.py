"""EXP-F3 — Fig. 3: intra-protocol fairness (two pgmcc sessions)."""

from conftest import BENCH_SCALE

from repro.experiments import fig3_intra_fairness


def test_bench_fig3(cached_experiment):
    result = cached_experiment(fig3_intra_fairness.run, scale=max(BENCH_SCALE, 0.3))
    # non-lossy: session 1 halves when session 2 starts, even split after
    assert result.metrics["non-lossy:jain"] > 0.9
    alone = result.metrics["non-lossy:rate1_alone"]
    shared = result.metrics["non-lossy:rate1_shared"]
    assert 0.3 * alone < shared < 0.75 * alone
    # lossy: loss-determined rates, second session does not perturb first
    assert result.metrics["lossy:rate1_shared"] > 0.6 * result.metrics["lossy:rate1_alone"]
