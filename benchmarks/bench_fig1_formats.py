"""EXP-F1 — Fig. 1: packet formats.

Benchmarks codec throughput for each packet type and asserts the wire
layouts round-trip (the grey pgmcc options of Fig. 1 included).
"""

from repro.core.reports import ReceiverReport
from repro.pgm.packets import Ack, Nak, OData, decode


def _odata():
    return OData(7, 1234, 1000, 1400, timestamp=3.25, acker_id="receiver-3",
                 payload=b"p" * 64)


def _nak():
    return Nak(7, 1233, ReceiverReport("receiver-9", 1234, 777))


def _ack():
    return Ack(7, 1234, 0xFFFF0F0F, ReceiverReport("receiver-3", 1234, 123))


def test_bench_odata_codec(benchmark):
    msg = _odata()

    def round_trip():
        return decode(msg.pack())

    result = benchmark(round_trip)
    assert result.seq == 1234
    assert result.acker_id == "receiver-3"


def test_bench_nak_codec(benchmark):
    msg = _nak()
    result = benchmark(lambda: decode(msg.pack()))
    assert result.report.rx_id == "receiver-9"
    assert result.report.rx_loss == 777


def test_bench_ack_codec(benchmark):
    msg = _ack()
    result = benchmark(lambda: decode(msg.pack()))
    assert result.bitmask == 0xFFFF0F0F
    assert result.report.rxw_lead == 1234


def test_bench_wire_size_formula(benchmark):
    """The fast-path size formula must agree with real encodings and
    keep pgmcc data packets about the size of TCP's (1500 B)."""
    msg = _odata()
    size = benchmark(msg.wire_size)
    # declared payload_len is 1400, so the wire size sits near TCP's
    # 1500-byte segments regardless of the sample payload bytes
    assert abs(size - 1500) < 40
