"""EXP-SWEEP — §4.3's configuration grid, plus the delayed-ACK note."""

from conftest import BENCH_SCALE

from repro.experiments import ablations, fairness_sweep

#: a reduced grid for the bench (the full 18-cell grid runs via
#: run_all or PGMCC_BENCH_SCALE)
QUICK_GRID = tuple(
    (rate, queue, loss)
    for rate in (250_000, 500_000)
    for queue in (10, 30)
    for loss in (0.0, 0.02)
)


def test_bench_fairness_sweep(cached_experiment):
    scale = max(BENCH_SCALE, 0.3)
    grid = fairness_sweep.DEFAULT_GRID if scale >= 1.0 else QUICK_GRID
    result = cached_experiment(fairness_sweep.run, scale=scale, grid=grid)
    # §4.3: good sharing in all configurations, no starvation anywhere
    assert result.metrics["worst_ratio"] < 4.0
    for row in result.rows:
        assert row["pgm_kbps"] > 0.05 * row["rate_kbps"]
        assert row["tcp_kbps"] > 0.05 * row["rate_kbps"]


def test_bench_delayed_acks(cached_experiment):
    result = cached_experiment(ablations.run_delayed_acks, scale=max(BENCH_SCALE, 0.3))
    # no-starvation holds with either TCP receiver behaviour
    for label in ("delack", "no-delack"):
        assert result.metrics[f"{label}:ratio"] < 4.0
        assert result.metrics[f"{label}:pgm"] > 50_000
        assert result.metrics[f"{label}:tcp"] > 50_000
