"""EXP-SWEEP — §4.3's configuration grid, plus the delayed-ACK note."""

from conftest import BENCH_SCALE, report

from repro.experiments import ablations, fairness_sweep

#: a reduced grid for the bench (the full 18-cell grid runs via
#: run_all or PGMCC_BENCH_SCALE)
QUICK_GRID = tuple(
    (rate, queue, loss)
    for rate in (250_000, 500_000)
    for queue in (10, 30)
    for loss in (0.0, 0.02)
)


def test_bench_fairness_sweep(benchmark):
    scale = max(BENCH_SCALE, 0.3)
    grid = fairness_sweep.DEFAULT_GRID if scale >= 1.0 else QUICK_GRID
    result = benchmark.pedantic(
        fairness_sweep.run, kwargs={"scale": scale, "grid": grid},
        rounds=1, iterations=1,
    )
    report(result)
    # §4.3: good sharing in all configurations, no starvation anywhere
    assert result.metrics["worst_ratio"] < 4.0
    for row in result.rows:
        assert row["pgm_kbps"] > 0.05 * row["rate_kbps"]
        assert row["tcp_kbps"] > 0.05 * row["rate_kbps"]


def test_bench_delayed_acks(benchmark):
    result = benchmark.pedantic(
        ablations.run_delayed_acks, kwargs={"scale": max(BENCH_SCALE, 0.3)},
        rounds=1, iterations=1,
    )
    report(result)
    # no-starvation holds with either TCP receiver behaviour
    for label in ("delack", "no-delack"):
        assert result.metrics[f"{label}:ratio"] < 4.0
        assert result.metrics[f"{label}:pgm"] > 50_000
        assert result.metrics[f"{label}:tcp"] > 50_000
