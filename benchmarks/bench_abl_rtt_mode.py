"""ABL-RTT — §3.2.1: sequence-based vs time-based RTT."""

import pytest
from conftest import BENCH_SCALE

from repro.experiments import ablations


def test_bench_rtt_mode(cached_experiment):
    result = cached_experiment(ablations.run_rtt_mode, scale=max(BENCH_SCALE, 0.3))
    # the paper: time-based RTT "does not yield any better behaviour" —
    # both modes find the same plateau ladder
    for phase in (1, 2, 3, 4):
        assert result.metrics[f"time:plateau{phase}"] == pytest.approx(
            result.metrics[f"seq:plateau{phase}"], rel=0.35
        )
