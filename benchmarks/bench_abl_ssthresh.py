"""ABL-SS — §3.4: the fixed slow-start threshold (paper: 6 packets)."""

from conftest import BENCH_SCALE

from repro.experiments import ablations


def test_bench_ssthresh(cached_experiment):
    result = cached_experiment(ablations.run_ssthresh, scale=max(BENCH_SCALE, 0.25))
    # the paper's fixed 6 competes fairly and avoids startup stalls
    assert result.metrics["ssthresh=6:ratio"] < 4.5
    assert result.metrics["ssthresh=6:stalls"] <= 2
