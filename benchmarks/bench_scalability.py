"""EXP-SCALE — §4's large-scale (up to 200 receivers) scalability test."""

from conftest import BENCH_SCALE

from repro.experiments import scalability


def test_bench_scalability(cached_experiment):
    scale = max(BENCH_SCALE, 0.3)
    sizes = (25, 50, 100, 200) if scale >= 1.0 else (25, 50, 100)
    result = cached_experiment(scalability.run, scale=scale, group_sizes=sizes)
    small, large = sizes[0], sizes[-1]
    # a single acker: ~1 ACK per data packet at every group size
    for n in sizes:
        for mode in ("plain", "ne"):
            assert 0.5 < result.metrics[f"n{n}:{mode}:acks_per_data"] < 1.5
    # NE suppression keeps the source NAK count flat as the group grows
    assert (
        result.metrics[f"n{large}:ne:naks"]
        < 3 * max(result.metrics[f"n{small}:ne:naks"], 5)
    )
    # ...whereas without NEs it grows with the co-located group
    assert (
        result.metrics[f"n{large}:plain:naks"]
        > 1.5 * result.metrics[f"n{small}:plain:naks"]
    )
    # throughput is group-size independent (with router support)
    assert result.metrics[f"n{large}:ne:rate"] > 0.85 * result.metrics[f"n{small}:ne:rate"]
