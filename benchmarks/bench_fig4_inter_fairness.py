"""EXP-F4 — Fig. 4: inter-protocol fairness (pgmcc vs TCP)."""

from conftest import BENCH_SCALE

from repro.experiments import fig4_inter_fairness


def test_bench_fig4(cached_experiment):
    result = cached_experiment(fig4_inter_fairness.run, scale=max(BENCH_SCALE, 0.3))
    for label in ("non-lossy", "lossy"):
        # good sharing, no starvation either way
        assert result.metrics[f"{label}:ratio"] < 3.5
    # non-lossy: pgmcc yields to TCP and regains the link afterwards
    alone = result.metrics["non-lossy:pgm_alone"]
    assert result.metrics["non-lossy:pgm_shared"] < 0.8 * alone
    assert result.metrics["non-lossy:pgm_after"] > 0.75 * alone
    # co-located receivers cause switches but no throughput damage
    assert result.metrics["non-lossy:acker_switches"] >= 1
