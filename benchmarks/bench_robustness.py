"""EXP-MPATH / EXP-CHURN / ABL-BURST — robustness scenarios the paper
describes in prose (§4 multipath tests; churn; bursty loss)."""

from conftest import BENCH_SCALE

from repro.experiments import robustness


def test_bench_multipath(cached_experiment):
    result = cached_experiment(robustness.run_multipath, scale=max(BENCH_SCALE, 0.3))
    # reordering must not stall or starve the session
    assert result.metrics["stalls"] == 0
    assert result.metrics["sprayed_rate"] > 0.4 * result.metrics["single_rate"]
    # ...though spurious dupack reactions are expected, like TCP
    assert result.metrics["spurious_reactions"] >= 0


def test_bench_churn(cached_experiment):
    result = cached_experiment(robustness.run_churn, scale=max(BENCH_SCALE, 0.3))
    assert result.metrics["churn_events"] >= 6
    assert result.metrics["rate"] > 100_000  # alive and healthy
    assert result.metrics["longest_gap"] < 10.0  # never wedged


def test_bench_bursty_loss(cached_experiment):
    result = cached_experiment(robustness.run_bursty_loss, scale=max(BENCH_SCALE, 0.3))
    for pattern in ("bernoulli", "bursty"):
        assert result.metrics[f"{pattern}:rate"] > 50_000
    # clustered losses = fewer congestion events = at least as fast
    assert (
        result.metrics["bursty:rate"] > 0.7 * result.metrics["bernoulli:rate"]
    )
