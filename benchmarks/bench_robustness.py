"""EXP-MPATH / EXP-CHURN / ABL-BURST — robustness scenarios the paper
describes in prose (§4 multipath tests; churn; bursty loss)."""

from conftest import BENCH_SCALE, report

from repro.experiments import robustness


def test_bench_multipath(benchmark):
    result = benchmark.pedantic(
        robustness.run_multipath, kwargs={"scale": max(BENCH_SCALE, 0.3)},
        rounds=1, iterations=1,
    )
    report(result)
    # reordering must not stall or starve the session
    assert result.metrics["stalls"] == 0
    assert result.metrics["sprayed_rate"] > 0.4 * result.metrics["single_rate"]
    # ...though spurious dupack reactions are expected, like TCP
    assert result.metrics["spurious_reactions"] >= 0


def test_bench_churn(benchmark):
    result = benchmark.pedantic(
        robustness.run_churn, kwargs={"scale": max(BENCH_SCALE, 0.3)},
        rounds=1, iterations=1,
    )
    report(result)
    assert result.metrics["churn_events"] >= 6
    assert result.metrics["rate"] > 100_000  # alive and healthy
    assert result.metrics["longest_gap"] < 10.0  # never wedged


def test_bench_bursty_loss(benchmark):
    result = benchmark.pedantic(
        robustness.run_bursty_loss, kwargs={"scale": max(BENCH_SCALE, 0.3)},
        rounds=1, iterations=1,
    )
    report(result)
    for pattern in ("bernoulli", "bursty"):
        assert result.metrics[f"{pattern}:rate"] > 50_000
    # clustered losses = fewer congestion events = at least as fast
    assert (
        result.metrics["bursty:rate"] > 0.7 * result.metrics["bernoulli:rate"]
    )
