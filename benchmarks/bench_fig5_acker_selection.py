"""EXP-F5 — Fig. 5: acker selection across two bottlenecks."""

import pytest
from conftest import BENCH_SCALE

from repro.experiments import fig5_acker_selection


def test_bench_fig5(cached_experiment):
    result = cached_experiment(fig5_acker_selection.run, scale=max(BENCH_SCALE, 0.3))
    # the paper's plateau ladder: ≈500 → ≈400 → well below → recovery
    assert result.metrics["plateau1"] == pytest.approx(500_000, rel=0.15)
    assert result.metrics["plateau2"] == pytest.approx(400_000, rel=0.15)
    assert result.metrics["plateau3"] < 0.8 * result.metrics["plateau2"]
    assert result.metrics["plateau4"] > 0.8 * result.metrics["plateau2"]
    # the acker tracks the slowest path at every stage
    ackers = result.metrics["ackers"]
    assert (ackers["phase1"], ackers["phase2"]) == ("pr2", "pr1")
    assert (ackers["phase3"], ackers["phase4"]) == ("pr2", "pr1")
