"""EXP-FEC — Fig. 7 at scale with FEC repair instead of RDATA."""

from conftest import BENCH_SCALE

from repro.experiments import fec_scaling


def test_bench_fec_scaling(cached_experiment):
    scale = max(BENCH_SCALE, 0.3)
    result = cached_experiment(fec_scaling.run, scale=scale, n_receivers=30)
    # retransmission repair is a substantial share of source traffic
    assert result.metrics["rdata:repair_share"] > 0.05
    # FEC sends zero repairs in every configuration
    for r in (0, 1, 2):
        assert result.metrics[f"fec{r}:rdata"] == 0
    # redundancy ladder: more parity, less residual loss; r=2 ~ clean
    assert (
        result.metrics["fec0:mean_residual"]
        > result.metrics["fec1:mean_residual"]
        > result.metrics["fec2:mean_residual"]
    )
    assert result.metrics["fec2:mean_residual"] < 0.01
