"""EXP-RESILIENCE — partition/blackhole/acker-crash recovery matrix
with time-to-recover SLO oracles and the liveness-watchdog-vs-stall
baseline comparison."""

from conftest import BENCH_SCALE

from repro.experiments import resilience


def test_bench_resilience(cached_experiment):
    result = cached_experiment(resilience.run, scale=max(BENCH_SCALE, 0.5))
    # every (controller, scenario) cell recovered, within its SLO tier
    assert result.metrics["all_recovered"] is True
    assert result.metrics["all_slo_ok"] is True
    # the strict invariant checker stayed silent through every fault
    assert result.metrics["total_invariant_violations"] == 0
    # the headline claim: the watchdog beats the generic stall timer
    assert result.metrics["watchdog_faster"] is True
    assert result.metrics["ttr_improvement_s"] > 0
