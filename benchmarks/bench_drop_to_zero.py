"""EXP-DTZ — demonstrating the drop-to-zero problem pgmcc avoids."""

from conftest import BENCH_SCALE

from repro.experiments import drop_to_zero


def test_bench_drop_to_zero(cached_experiment):
    result = cached_experiment(drop_to_zero.run, scale=max(BENCH_SCALE, 0.3), group_sizes=(1, 10, 40))
    # naive aggregation collapses as the group grows (the [23] problem)
    assert result.metrics["eq-naive:collapse"] > 3.0
    # proper worst-report aggregation and pgmcc are group-size independent
    assert result.metrics["eq-max:collapse"] < 2.0
    assert result.metrics["pgmcc:collapse"] < 1.5
    # and pgmcc holds a healthy rate at the largest group
    assert result.metrics["pgmcc:rate@40"] > 100_000
