"""ABL-NE — §3.7: NE suppression off / on / rx_loss-aware."""

from conftest import BENCH_SCALE

from repro.experiments import ablations


def test_bench_ne_suppression(cached_experiment):
    result = cached_experiment(ablations.run_ne_suppression, scale=max(BENCH_SCALE, 0.25))
    # suppression does not break the election or fairness
    for label in ("no-NE", "NE-suppression", "NE-rx-loss-aware"):
        assert result.metrics[f"{label}:ratio"] < 8.0
        assert result.metrics[f"{label}:pgm_rate"] > 20_000
    # and the NEs do absorb part of the NAK stream (within-run counters;
    # cross-run totals are not comparable — the acker trajectory differs)
    assert result.metrics["NE-suppression:ne_naks_suppressed"] > 0
