"""ABL-NE — §3.7: NE suppression off / on / rx_loss-aware."""

from conftest import BENCH_SCALE, report

from repro.experiments import ablations


def test_bench_ne_suppression(benchmark):
    result = benchmark.pedantic(
        ablations.run_ne_suppression, kwargs={"scale": max(BENCH_SCALE, 0.25)},
        rounds=1, iterations=1,
    )
    report(result)
    # suppression does not break the election or fairness
    for label in ("no-NE", "NE-suppression", "NE-rx-loss-aware"):
        assert result.metrics[f"{label}:ratio"] < 8.0
        assert result.metrics[f"{label}:pgm_rate"] > 20_000
    # and the NEs do absorb part of the NAK stream (within-run counters;
    # cross-run totals are not comparable — the acker trajectory differs)
    assert result.metrics["NE-suppression:ne_naks_suppressed"] > 0
