"""EXP-CHAOS — scripted fault injection (acker crash, bottleneck flap,
burst loss, duplication, corruption, receiver pause) with the runtime
invariant checker attached as the oracle."""

from conftest import BENCH_SCALE

from repro.experiments import robustness


def test_bench_chaos(cached_experiment):
    result = cached_experiment(robustness.run_chaos, scale=max(BENCH_SCALE, 0.3))
    # every scheduled episode actually fired
    assert result.metrics["faults_fired"] >= 8
    assert result.metrics["crashes"] == 1
    assert result.metrics["link_downs"] >= 3
    # the acker crash forced a re-election and the session kept going
    assert result.metrics["switches"] >= 1
    assert result.metrics["rate"] > 50_000
    assert result.metrics["longest_gap"] < 10.0  # never wedged
    # link flaps restart via the stall machinery rather than deadlock
    assert result.metrics["stalls"] >= 1
    # the whole run is invariant-clean
    assert result.metrics["violations"] == 0
