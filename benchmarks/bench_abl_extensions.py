"""Benches for the §5 future-work extensions: the Padhye election
model, adaptive slow-start threshold, and TFRC loss measurement."""

from conftest import BENCH_SCALE

from repro.experiments import ablations


def test_bench_throughput_model(cached_experiment):
    result = cached_experiment(ablations.run_throughput_model, scale=max(BENCH_SCALE, 0.3))
    # the Padhye model must identify the heavily lossy receiver as the
    # bottleneck and adapt the session rate far below the clean-link rate
    assert result.metrics["padhye:dominant"] == "lossy"
    for model in ("simple", "padhye"):
        assert result.metrics[f"{model}:rate"] < 500_000


def test_bench_adaptive_ssthresh(cached_experiment):
    result = cached_experiment(ablations.run_adaptive_ssthresh, scale=max(BENCH_SCALE, 0.3))
    # neither variant starves TCP or itself completely
    for label in ("fixed-6", "adaptive"):
        assert result.metrics[f"{label}:pgm"] > 50_000
        assert result.metrics[f"{label}:tcp"] > 50_000


def test_bench_loss_estimator(cached_experiment):
    result = cached_experiment(ablations.run_loss_estimator, scale=max(BENCH_SCALE, 0.3))
    # both estimators track the loss the run actually experienced
    # (under independent losses TFRC's event rate equals the packet
    # loss rate; the burst-clustering difference is unit-tested)
    for estimator in ("filter", "tfrc"):
        raw = result.metrics[f"{estimator}:raw_loss"]
        assert abs(result.metrics[f"{estimator}:loss"] - raw) < 0.015
        assert result.metrics[f"{estimator}:loss"] > 0.0
        # and both keep the session loss-limited, far under 2 Mbit/s
        assert result.metrics[f"{estimator}:rate"] < 1_000_000
