"""EXP-F2 — Fig. 2: loss-rate computation at receivers."""

from conftest import BENCH_SCALE

from repro.experiments import fig2_loss_filter


def test_bench_fig2(cached_experiment):
    result = cached_experiment(fig2_loss_filter.run, scale=max(BENCH_SCALE, 0.25))
    # 5% lossy link: the paper's W keeps the output around
    # 0.05 * 2^16 ≈ 3277, within the figure's 2000–6000 band.
    mean = result.metrics["lossy-5pct:w65000:mean"]
    assert 2000 < mean < 6000
    # smaller W = higher corner frequency = noisier output
    for scenario in ("congested-60k", "lossy-5pct"):
        stds = [result.metrics[f"{scenario}:w{w}:std"] for w in (64000, 65000, 65280)]
        assert stds[0] > stds[1] > stds[2]


def test_bench_filter_update_cost(benchmark):
    """The per-packet filter update is a handful of integer ops."""
    from repro.core.loss_filter import LossRateFilter

    filt = LossRateFilter()
    benchmark(filt.update, False)
    assert filt.samples > 0
