"""EXP-UNREL — §3.9: pgmcc without reliability, driving an adaptive app."""

from conftest import BENCH_SCALE

from repro.experiments import unreliable_mode


def test_bench_unreliable(cached_experiment):
    result = cached_experiment(unreliable_mode.run, scale=max(BENCH_SCALE, 0.3))
    # no repairs ever; reports still reach the source
    assert result.metrics["rdata_sent"] == 0
    assert result.metrics["naks_received"] > 0
    # the controller tracks the squeezed link and the app steps down
    assert result.metrics["rate_after"] < 0.6 * result.metrics["rate_before"]
    levels = {lv.name: lv.rate_bps for lv in unreliable_mode.LEVELS}
    assert levels[result.metrics["level_after"]] < levels[result.metrics["level_before"]]
