"""EXP-F6 — Fig. 6: shared bottleneck, spread receiver RTTs."""

from conftest import BENCH_SCALE

from repro.experiments import fig6_heterogeneous_rtt


def test_bench_fig6(cached_experiment):
    result = cached_experiment(fig6_heterogeneous_rtt.run, scale=max(BENCH_SCALE, 0.25))
    receivers = {"pr0", "pr1", "pr2", "pr3"}
    for label in ("no-NE", "NE-suppression", "NE-rx-loss-aware"):
        # the acker is always one of the group's receivers
        assert result.metrics[f"{label}:dominant_acker"] in receivers
        # TCP-compatible on the shared path: within the unfairness
        # multiple TCPs with these RTTs would show, never starvation
        assert result.metrics[f"{label}:ratio"] < 8.0
        assert result.metrics[f"{label}:pgm_rate"] > 20_000
    # suppression absorbs a substantial share of the NAK stream before
    # it reaches the source (within-run NE counters)
    suppressed = result.metrics["NE-suppression:ne_naks_suppressed"]
    forwarded = result.metrics["NE-suppression:ne_naks_forwarded"]
    assert suppressed > 0
    assert suppressed / (suppressed + forwarded) > 0.1
