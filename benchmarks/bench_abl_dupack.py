"""ABL-DUP — §5: dupack threshold sweep."""

from conftest import BENCH_SCALE

from repro.experiments import ablations


def test_bench_dupack(cached_experiment):
    result = cached_experiment(ablations.run_dupack, scale=max(BENCH_SCALE, 0.25))
    # the paper's preliminary finding: no significant fairness impact
    for threshold in (2, 3, 4, 5):
        assert result.metrics[f"dupack={threshold}:ratio"] < 4.5
