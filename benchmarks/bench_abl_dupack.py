"""ABL-DUP — §5: dupack threshold sweep."""

from conftest import BENCH_SCALE, report

from repro.experiments import ablations


def test_bench_dupack(benchmark):
    result = benchmark.pedantic(
        ablations.run_dupack, kwargs={"scale": max(BENCH_SCALE, 0.25)},
        rounds=1, iterations=1,
    )
    report(result)
    # the paper's preliminary finding: no significant fairness impact
    for threshold in (2, 3, 4, 5):
        assert result.metrics[f"dupack={threshold}:ratio"] < 4.5
