"""ABL-C — §3.5: the switch bias constant c."""

from conftest import BENCH_SCALE

from repro.experiments import ablations


def test_bench_switch_bias(cached_experiment):
    result = cached_experiment(ablations.run_switch_bias, scale=max(BENCH_SCALE, 0.25))
    # biasing toward the incumbent removes unnecessary switches among
    # equivalent receivers without hurting throughput
    assert result.metrics["c=0.75:switches"] <= result.metrics["c=1.0:switches"]
    assert result.metrics["c=0.6:switches"] <= result.metrics["c=1.0:switches"]
    for c in (1.0, 0.9, 0.75, 0.6):
        assert result.metrics[f"c={c}:ratio"] < 4.5  # fairness intact
