"""EXP-F7 — Fig. 7: 100 receivers with uncorrelated 1 % loss."""

from conftest import BENCH_SCALE

from repro.experiments import fig7_uncorrelated_loss


def test_bench_fig7(cached_experiment):
    scale = max(BENCH_SCALE, 0.15)
    # full receiver population only at larger scales (runtime)
    total = 100 if scale >= 0.5 else 60
    result = cached_experiment(fig7_uncorrelated_loss.run, scale=scale, total_receivers=total)
    # no drop-to-zero: the mass join leaves throughput within a small
    # factor (the paper even allows a modest increase)
    assert 0.5 < result.metrics["change_ratio"] < 2.0
    # TCP on its own identical link is unaffected
    assert result.metrics["tcp_after"] > 0.5 * result.metrics["tcp_before"]
    # retransmission traffic stays below the data traffic
    assert result.metrics["rdata_sent"] < result.metrics["odata_sent"]
