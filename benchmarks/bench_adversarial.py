"""EXP-ADVERSARIAL — misbehaving receivers (greedy acker, throttler,
NAK storm, ACK replay) against the sender-side feedback guard, with a
competing TCP flow on the bottleneck and the runtime invariant checker
(including quarantined-never-acker) as the oracle."""

from conftest import BENCH_SCALE

from repro.experiments import adversarial


def test_bench_adversarial(cached_experiment):
    result = cached_experiment(adversarial.run, scale=max(BENCH_SCALE, 0.5))
    m = result.metrics
    baseline = m["baseline:on:compliant_bps"]

    # an all-honest group never trips the guard (no false positives)
    assert m["baseline:on:quarantines"] == 0

    # greedy acker: guard-off measurably degrades the compliant group
    # and starves the TCP flow; guard-on recovers to within 10% of the
    # attack-free baseline and the attacker loses the seat
    assert m["greedy-acker:off:compliant_bps"] < 0.6 * baseline
    assert m["greedy-acker:off:tcp_bps"] < 0.5 * m["baseline:on:tcp_bps"]
    assert m["greedy-acker:on:compliant_bps"] > 0.9 * baseline
    assert m["greedy-acker:on:quarantines"] >= 1
    assert not m["greedy-acker:on:attacker_is_acker"]

    # throttler: over-reported loss halves the group guard-off; the
    # loss-range/shadow cross-checks evict it guard-on
    assert m["throttler:off:compliant_bps"] < 0.5 * baseline
    assert (m["throttler:on:compliant_bps"]
            > 1.5 * m["throttler:off:compliant_bps"])

    # NAK storm: the physics-bound repair budget keeps goodput alive
    assert m["nak-storm:on:quarantines"] >= 1
    assert (m["nak-storm:on:compliant_bps"]
            > 2.0 * m["nak-storm:off:compliant_bps"])

    # ACK replay: stale duplicate feedback measurably distorts the
    # sender's clock (which way depends on whether spurious dupack
    # halvings or stall-timer refreshes dominate); TTL-bounded dedup
    # lands the session back on the no-replay "impaired" anchor
    anchor = m["impaired:on:compliant_bps"]
    assert abs(m["ack-replay:off:compliant_bps"] - anchor) > 0.10 * anchor
    assert abs(m["ack-replay:on:compliant_bps"] - anchor) < 0.15 * anchor
    assert m["ack-replay:on:quarantines"] == 0  # dedup is suspicion-free
    assert m["impaired:on:quarantines"] == 0    # honest loss is not a crime

    # every scenario is invariant-clean; with the guard on, reliability
    # is never sacrificed for any compliant receiver (guard-off rows
    # are the attack showcase and may legitimately exhaust NAK retries)
    for kind, g in (("baseline", "on"), ("greedy-acker", "off"),
                    ("greedy-acker", "on"), ("throttler", "off"),
                    ("throttler", "on"), ("nak-storm", "off"),
                    ("nak-storm", "on"), ("impaired", "on"),
                    ("ack-replay", "off"), ("ack-replay", "on")):
        assert m[f"{kind}:{g}:invariant_violations"] == 0
        if g == "on":
            assert m[f"{kind}:{g}:unrecoverable"] == 0
