"""Simulator performance benchmarks (regression guards, not paper
metrics): event-loop throughput and end-to-end session cost."""

from repro.pgm import create_session
from repro.simulator import NON_LOSSY, Simulator, dumbbell


def test_bench_event_loop(benchmark):
    """Raw engine throughput: schedule+dispatch of chained events."""

    def run_chain():
        sim = Simulator()

        def tick(n):
            if n:
                sim.schedule(0.001, tick, n - 1)

        sim.schedule(0.0, tick, 10_000)
        sim.run()
        return sim.events_processed

    events = benchmark(run_chain)
    assert events == 10_001


def test_bench_session_second(benchmark):
    """Cost of simulating one second of a full pgmcc session."""

    def run_session():
        net = dumbbell(1, 1, NON_LOSSY, seed=99)
        session = create_session(net, "h0", ["r0"])
        net.run(until=10.0)
        return session.sender.odata_sent

    sent = benchmark.pedantic(run_session, rounds=3, iterations=1)
    assert sent > 100
