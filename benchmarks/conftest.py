"""Benchmark harness configuration.

Each bench regenerates one figure of the paper's §4 (or an ablation),
prints the figure's table next to the paper's expectation, and asserts
the *shape* holds.  ``pytest-benchmark`` times the run; wall time here
is simulation cost, not a paper metric, but keeping the runs timed
catches performance regressions in the simulator itself.

Scale: benches default to BENCH_SCALE (quick).  Set the environment
variable ``PGMCC_BENCH_SCALE=1.0`` for paper-faithful durations.

Caching: experiment benches run through the ``cached_experiment``
fixture, which routes them via ``repro.runner``'s content-addressed
result cache (key: experiment callable, kwargs, source fingerprint —
shared with ``python -m repro.runner`` sweeps).  A re-run after edits
that cannot change results (docs, tests, benches) is a near-instant
cache hit, recorded in the benchmark's ``extra_info`` — so hit timings
measure cache-load cost, not simulation cost.  Set
``PGMCC_BENCH_CACHE=0`` to force cold, comparable timings, and
``PGMCC_CACHE_DIR`` to relocate the store (default ``results/cache``).
"""

import os

import pytest

#: default fraction of the paper's experiment durations
BENCH_SCALE = float(os.environ.get("PGMCC_BENCH_SCALE", "0.25"))

#: route experiment benches through the runner's result cache
BENCH_CACHE = os.environ.get("PGMCC_BENCH_CACHE", "1").lower() not in (
    "0", "false", "no")

CACHE_DIR = os.environ.get("PGMCC_CACHE_DIR", os.path.join("results", "cache"))


def report(result) -> None:
    """Print one experiment's table + expectation under -s."""
    print()
    print(result.report())


@pytest.fixture
def cached_experiment(benchmark):
    """Run ``fn(**kwargs)`` through the runner's result cache, timed.

    Usage::

        result = cached_experiment(fig2_loss_filter.run, scale=0.25)

    Returns the :class:`ExperimentResult` (reconstructed from the cache
    on a hit) and tags the benchmark with ``extra_info["cache"]``.
    """
    from repro.runner import ResultCache

    cache = ResultCache(CACHE_DIR) if BENCH_CACHE else None

    def _run(fn, **kwargs):
        if cache is None:
            outcome = benchmark.pedantic(
                lambda: (fn(**kwargs), False), rounds=1, iterations=1)
        else:
            outcome = benchmark.pedantic(
                cache.fetch_or_run, args=(fn, kwargs), rounds=1, iterations=1)
        result, hit = outcome
        benchmark.extra_info["cache"] = "hit" if hit else "miss"
        report(result)
        return result

    return _run
