"""Benchmark harness configuration.

Each bench regenerates one figure of the paper's §4 (or an ablation),
prints the figure's table next to the paper's expectation, and asserts
the *shape* holds.  ``pytest-benchmark`` times the run; wall time here
is simulation cost, not a paper metric, but keeping the runs timed
catches performance regressions in the simulator itself.

Scale: benches default to BENCH_SCALE (quick).  Set the environment
variable ``PGMCC_BENCH_SCALE=1.0`` for paper-faithful durations.
"""

import os

#: default fraction of the paper's experiment durations
BENCH_SCALE = float(os.environ.get("PGMCC_BENCH_SCALE", "0.25"))


def report(result) -> None:
    """Print one experiment's table + expectation under -s."""
    print()
    print(result.report())
