"""Orchestrator semantics: determinism across -j, isolation, retries,
timeouts, and cache integration."""

from pathlib import Path

import pytest

from repro.experiments.common import ExperimentSpec
from repro.runner import Orchestrator, ResultCache, RunnerEvent

TOY = "tests.runner._toy"
#: repo root, so spawn-started workers can import the toy module too
REPO_ROOT = str(Path(__file__).resolve().parents[2])


def toy_spec(exp_id: str, func: str = "run_ok", **kwargs) -> ExperimentSpec:
    return ExperimentSpec(exp_id, TOY, func, kwargs=tuple(kwargs.items()))


def orchestrate(specs, **kw):
    kw.setdefault("extra_sys_path", [REPO_ROOT])
    kw.setdefault("backoff", 0.05)
    return Orchestrator(specs, **kw)


GRID = [toy_spec(f"TOY-{seed}", seed=seed) for seed in range(4)]


class TestDeterminism:
    def test_j1_and_j4_manifests_digest_equal(self):
        m1 = orchestrate(GRID, jobs=1).run(run_id="a")
        m4 = orchestrate(GRID, jobs=4).run(run_id="b")
        assert m1["results_digest"] == m4["results_digest"]
        assert [t["id"] for t in m1["tasks"]] == [t["id"] for t in m4["tasks"]]
        assert m1["totals"]["ok"] == m4["totals"]["ok"] == 4

    def test_inline_matches_subprocess(self):
        inline = orchestrate(GRID, jobs=1, inline=True).run()
        pooled = orchestrate(GRID, jobs=2).run()
        assert inline["results_digest"] == pooled["results_digest"]

    def test_scale_changes_digest(self):
        a = orchestrate(GRID, jobs=1, scale=1.0).run()
        b = orchestrate(GRID, jobs=1, scale=0.5).run()
        assert a["results_digest"] != b["results_digest"]


class TestSessionMetricsFlow:
    """Session-metrics documents stay digest-stable through workers,
    the cache and manifests — telemetry must never break -j equality."""

    SPECS = [toy_spec(f"TOY-S{seed}", func="run_session", seed=seed)
             for seed in (5, 6)]

    def test_j1_and_jn_digest_equal_with_metrics_attached(self):
        m1 = orchestrate(self.SPECS, jobs=1, scale=0.5).run(run_id="s1")
        m2 = orchestrate(self.SPECS, jobs=2, scale=0.5).run(run_id="s2")
        assert m1["results_digest"] == m2["results_digest"]
        for task in m1["tasks"]:
            telemetry = task["result"]["telemetry"]
            assert telemetry["schema"] == "pgmcc.session-metrics/v1"
            assert telemetry["counters"]["sender.odata_sent"] > 0

    def test_metrics_survive_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = orchestrate(self.SPECS, jobs=1, scale=0.5, cache=cache).run()
        warm_orch = orchestrate(self.SPECS, jobs=1, scale=0.5, cache=cache)
        warm = warm_orch.run()
        assert warm["totals"]["cache_hits"] == 2
        assert warm["results_digest"] == cold["results_digest"]
        for outcome in warm_orch.outcomes:
            assert outcome.result.telemetry is not None

    def test_session_metrics_extracted_from_manifest(self):
        from repro.runner import session_metrics_from_manifest

        manifest = orchestrate(self.SPECS, jobs=1, scale=0.5).run()
        docs = session_metrics_from_manifest(manifest)
        assert [d["id"] for d in docs] == ["TOY-S5", "TOY-S6"]
        assert all(d["schema"] == "pgmcc.session-metrics/v1" for d in docs)

    def test_bench_results_carry_protocol_health(self):
        from repro.runner import bench_results_from_manifest

        manifest = orchestrate(self.SPECS, jobs=1, scale=0.5).run()
        bench = bench_results_from_manifest(manifest, events_per_sec=1.0)
        ids = [entry["id"] for entry in bench["session_metrics"]]
        assert ids == ["TOY-S5", "TOY-S6"]
        entry = bench["session_metrics"][0]
        assert "counters" in entry and "spans" in entry
        assert "series" not in entry  # compact view: reservoirs stay out


class TestFailureIsolation:
    def test_raising_task_reported_siblings_complete(self):
        specs = [toy_spec("TOY-OK1", seed=1),
                 toy_spec("TOY-BAD", func="run_fail", message="kaput"),
                 toy_spec("TOY-OK2", seed=2)]
        orch = orchestrate(specs, jobs=2, retries=1)
        manifest = orch.run()
        by_id = {o.id: o for o in orch.outcomes}
        assert by_id["TOY-OK1"].status == by_id["TOY-OK2"].status == "ok"
        bad = by_id["TOY-BAD"]
        assert bad.status == "failed"
        assert bad.attempts == 2  # retried once, then reported
        assert bad.error["type"] == "ValueError"
        assert "kaput" in bad.error["message"]
        assert "run_fail" in bad.error["traceback"]
        assert manifest["totals"] == dict(manifest["totals"],
                                          ok=2, failed=1)

    def test_hard_crash_reported(self):
        orch = orchestrate([toy_spec("TOY-CRASH", func="run_hard_crash")],
                           jobs=1, retries=0)
        orch.run()
        outcome = orch.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.error["type"] == "WorkerCrash"

    def test_timeout_kills_and_reports_while_sibling_completes(self):
        specs = [toy_spec("TOY-HANG", func="run_sleep", seconds=30.0),
                 toy_spec("TOY-OK", seed=5)]
        orch = orchestrate(specs, jobs=2, timeout=0.5, retries=1)
        manifest = orch.run()
        by_id = {o.id: o for o in orch.outcomes}
        assert by_id["TOY-OK"].status == "ok"
        hang = by_id["TOY-HANG"]
        assert hang.status == "failed"
        assert hang.attempts == 2
        assert hang.error["type"] == "TaskTimeout"
        assert manifest["totals"]["failed"] == 1
        # the sweep never waits for the full sleep
        assert manifest["totals"]["wall_s"] < 10.0

    def test_retry_recovers_transient_failure(self, tmp_path):
        marker = tmp_path / "marker"
        orch = orchestrate(
            [toy_spec("TOY-FLAKY", func="run_flaky", marker=str(marker))],
            jobs=1, retries=1)
        orch.run()
        outcome = orch.outcomes[0]
        assert outcome.status == "ok"
        assert outcome.attempts == 2

    def test_inline_failure_isolation(self):
        specs = [toy_spec("TOY-BAD", func="run_fail"), toy_spec("TOY-OK")]
        orch = orchestrate(specs, jobs=1, inline=True, retries=0)
        manifest = orch.run()
        assert manifest["totals"]["failed"] == 1
        assert manifest["totals"]["ok"] == 1


class TestCacheIntegration:
    def test_cold_then_warm(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = orchestrate(GRID, jobs=2, cache=cache).run()
        assert cold["totals"]["cache_hits"] == 0
        warm_orch = orchestrate(GRID, jobs=2, cache=cache)
        warm = warm_orch.run()
        assert warm["totals"]["cache_hits"] == 4
        assert warm["results_digest"] == cold["results_digest"]
        assert all(o.cache_hit for o in warm_orch.outcomes)

    def test_no_cache_writes_nothing(self, tmp_path):
        orchestrate(GRID, jobs=1, cache=None).run()
        assert not (tmp_path / "cache").exists()

    def test_failed_task_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = toy_spec("TOY-BAD", func="run_fail")
        orchestrate([spec], jobs=1, cache=cache, retries=0).run()
        rerun = orchestrate([spec], jobs=1, cache=cache, retries=0)
        manifest = rerun.run()
        assert manifest["totals"]["cache_hits"] == 0
        assert rerun.outcomes[0].status == "failed"

    def test_bench_and_sweep_share_entries(self, tmp_path):
        """fetch_or_run (the bench fixture) and the orchestrator derive
        the same key for the same callable + kwargs."""
        from tests.runner import _toy

        cache = ResultCache(tmp_path / "cache")
        cache.fetch_or_run(_toy.run_ok, {"scale": 1.0, "seed": 9})
        orch = orchestrate([toy_spec("TOY-9", seed=9)], jobs=1, cache=cache)
        manifest = orch.run()
        assert manifest["totals"]["cache_hits"] == 1


class TestTelemetry:
    def test_event_stream_covers_lifecycle(self):
        events: list[RunnerEvent] = []
        orch = orchestrate([toy_spec("TOY-E", seed=1)], jobs=1,
                           on_event=events.append)
        orch.run()
        kinds = [e.kind for e in events]
        assert kinds == ["queued", "start", "done"]
        done = events[-1]
        assert done.task_id == "TOY-E"
        assert done.wall_s is not None and done.wall_s >= 0

    def test_on_outcome_called_per_task(self):
        seen = []
        orch = orchestrate(GRID, jobs=2, on_outcome=lambda o: seen.append(o.id))
        orch.run()
        assert sorted(seen) == sorted(s.id for s in GRID)

    def test_manifest_schema_fields(self):
        manifest = orchestrate(GRID, jobs=1).run(run_id="rid")
        assert manifest["schema"] == "pgmcc.run-manifest/v2"
        assert manifest["run_id"] == "rid"
        for task in manifest["tasks"]:
            assert {"id", "status", "attempts", "wall_s", "worker",
                    "cache_hit", "result_digest", "error",
                    "result"} <= set(task)
        totals = manifest["totals"]
        assert totals["tasks"] == 4
        assert totals["serial_wall_s"] >= 0


class TestRegistryParity:
    """The real registry, through the orchestrator, matches a direct
    sequential call — digest-equal results at any -j."""

    @pytest.fixture(scope="class")
    def f2_spec(self):
        from repro.experiments.run_all import specs_by_id

        return specs_by_id(["EXP-F2"])

    def test_pool_matches_direct_call(self, f2_spec):
        from repro.experiments import fig2_loss_filter

        orch = Orchestrator(f2_spec, scale=0.05, jobs=2)
        orch.run()
        via_pool = orch.outcomes[0]
        assert via_pool.status == "ok"
        direct = fig2_loss_filter.run(scale=0.05)
        assert via_pool.result.to_dict() == direct.to_dict()
        assert via_pool.result_digest == direct.digest()

    def test_unknown_id_is_helpful(self):
        from repro.experiments.run_all import specs_by_id

        with pytest.raises(KeyError, match="EXP-F3"):
            specs_by_id(["EXP-TYPO"])
