"""The ``python -m repro.runner`` CLI and the artifacts it writes."""

import json

import pytest

from repro.experiments.common import ExperimentSpec
from repro.runner.cli import main


class TestListing:
    def test_list_prints_registry(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("EXP-F2", "EXP-CHAOS", "EXP-ADV", "EXP-SCALE"):
            assert exp_id in out
        assert "Fig. 2" in out  # descriptions present

    def test_unknown_id_helpful_error(self, capsys):
        assert main(["EXP-TYPO"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment id" in err
        assert "EXP-TYPO" in err
        assert "EXP-F2" in err  # suggests the known ids


class TestSweep:
    @pytest.fixture
    def paths(self, tmp_path):
        return {
            "cache": str(tmp_path / "cache"),
            "manifest": str(tmp_path / "manifest.json"),
            "bench": str(tmp_path / "BENCH_RESULTS.json"),
        }

    def test_smoke_sweep_writes_manifest_and_bench_json(self, paths, capsys):
        rc = main(["EXP-F2", "-j", "2", "--scale", "0.05",
                   "--cache-dir", paths["cache"],
                   "--manifest", paths["manifest"],
                   "--bench-json", paths["bench"],
                   "--quiet", "--no-report"])
        assert rc == 0
        manifest = json.loads(open(paths["manifest"]).read())
        assert manifest["schema"] == "pgmcc.run-manifest/v2"
        assert "sweep" not in manifest  # only sweep runs carry the block
        assert manifest["totals"]["ok"] == 1
        assert manifest["tasks"][0]["id"] == "EXP-F2"
        assert manifest["tasks"][0]["result"]["name"] == "fig2-loss-filter"

        bench = json.loads(open(paths["bench"]).read())
        assert bench["schema"] == "pgmcc.bench-results/v1"
        assert bench["run_id"] == manifest["run_id"]
        assert bench["sim_events_per_sec"] > 0
        assert bench["benches"][0]["id"] == "EXP-F2"
        assert bench["benches"][0]["wall_s"] >= 0
        assert bench["host"]["cpus"] >= 1

        out = capsys.readouterr().out
        assert "1/1 ok" in out
        assert manifest["results_digest"] in out

    def test_warm_rerun_hits_cache_and_no_cache_disables(self, paths, capsys):
        base = ["EXP-F2", "--scale", "0.05",
                "--cache-dir", paths["cache"],
                "--manifest", paths["manifest"],
                "--quiet", "--no-report"]
        assert main(base) == 0
        assert main(base) == 0
        warm = json.loads(open(paths["manifest"]).read())
        assert warm["totals"]["cache_hits"] == 1
        assert warm["cache_enabled"] is True
        assert main(base + ["--no-cache"]) == 0
        cold = json.loads(open(paths["manifest"]).read())
        assert cold["totals"]["cache_hits"] == 0
        assert cold["cache_enabled"] is False
        # identical metrics either way
        assert cold["results_digest"] == warm["results_digest"]
        capsys.readouterr()


class TestRunAllIsolation:
    """The sequential ``pgmcc-experiments`` CLI keeps its output format
    but no longer aborts on the first raising experiment."""

    def test_failure_reported_at_end_siblings_complete(self, monkeypatch,
                                                       capsys):
        from repro.experiments import run_all

        toy = "tests.runner._toy"
        monkeypatch.setattr(run_all, "REGISTRY", (
            ExperimentSpec("TOY-OK1", toy, "run_ok", kwargs=(("seed", 1),)),
            ExperimentSpec("TOY-BAD", toy, "run_fail",
                           kwargs=(("message", "kaput"),)),
            ExperimentSpec("TOY-OK2", toy, "run_ok", kwargs=(("seed", 2),)),
        ))
        failures = run_all.main(scale=1.0)
        out = capsys.readouterr().out
        assert failures == 1
        # the legacy per-experiment header format survives
        assert "##### TOY-OK1 (wall " in out
        assert "##### TOY-OK2 (wall " in out
        assert "== toy-toy ==" in out  # reports still printed
        # the failure is summarised at the end, with its traceback
        assert "1 experiment(s) FAILED" in out
        assert "--- TOY-BAD ---" in out
        assert "ValueError: kaput" in out
        assert out.index("TOY-OK2 (wall") < out.index("experiment(s) FAILED")
