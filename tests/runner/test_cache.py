"""Content-addressed cache: key derivation, round trip, invalidation."""

from pathlib import Path

from repro.experiments.common import ExperimentResult
from repro.runner import ResultCache, source_fingerprint, task_digest

from . import _toy


def make_cache(tmp_path: Path, src: Path | None = None) -> ResultCache:
    roots = [src] if src is not None else None
    return ResultCache(tmp_path / "cache", source_roots=roots)


class TestDigests:
    def test_digest_stable(self, tmp_path):
        cache = make_cache(tmp_path)
        a = cache.digest_for("mod:run", {"scale": 0.5, "seed": 1})
        b = cache.digest_for("mod:run", {"seed": 1, "scale": 0.5})
        assert a == b  # kwarg order is canonicalised away

    def test_digest_changes_with_params(self, tmp_path):
        cache = make_cache(tmp_path)
        base = cache.digest_for("mod:run", {"scale": 0.5})
        assert cache.digest_for("mod:run", {"scale": 0.25}) != base
        assert cache.digest_for("mod:other", {"scale": 0.5}) != base

    def test_digest_changes_with_source(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "engine.py").write_text("X = 1\n")
        before = source_fingerprint([src])
        (src / "engine.py").write_text("X = 2\n")
        after = source_fingerprint([src])
        assert before != after
        kwargs = {"scale": 1.0}
        assert (task_digest("mod:run", kwargs, before)
                != task_digest("mod:run", kwargs, after))

    def test_fingerprint_ignores_runner_subpackage(self, tmp_path):
        src = tmp_path / "src"
        (src / "runner").mkdir(parents=True)
        (src / "core.py").write_text("A = 1\n")
        before = source_fingerprint([src])
        (src / "runner" / "pool.py").write_text("B = 2\n")
        assert source_fingerprint([src]) == before

    def test_tuple_and_list_kwargs_equivalent(self, tmp_path):
        """JSON canonicalisation: a tuple-valued param hits the same
        entry whether it arrives as tuple or list (cache round trip)."""
        cache = make_cache(tmp_path)
        assert (cache.digest_for("m:f", {"sizes": (1, 10)})
                == cache.digest_for("m:f", {"sizes": [1, 10]}))


class TestStore:
    def test_put_get_round_trip(self, tmp_path):
        cache = make_cache(tmp_path)
        result = _toy.run_ok(scale=0.5, seed=3)
        digest = cache.digest_for("toy:run_ok", {"scale": 0.5, "seed": 3})
        cache.put(digest, result)
        loaded = cache.get(digest)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()
        assert loaded.digest() == result.digest()

    def test_get_miss_returns_none(self, tmp_path):
        cache = make_cache(tmp_path)
        assert cache.get("0" * 64) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        digest = cache.digest_for("toy:run_ok", {})
        path = cache.put(digest, _toy.run_ok())
        path.write_text("{not json")
        assert cache.get(digest) is None

    def test_fetch_or_run_miss_then_hit(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text("Y = 1\n")
        cache = make_cache(tmp_path, src)
        result, hit = cache.fetch_or_run(_toy.run_ok, {"scale": 0.5, "seed": 7})
        assert not hit and result.metrics["value"] == 700.5
        again, hit = cache.fetch_or_run(_toy.run_ok, {"scale": 0.5, "seed": 7})
        assert hit and again.to_dict() == result.to_dict()
        # a source edit invalidates: the old entry becomes unreachable
        (src / "mod.py").write_text("Y = 2\n")
        _, hit = cache.fetch_or_run(_toy.run_ok, {"scale": 0.5, "seed": 7})
        assert not hit


class TestResultSerialization:
    def test_to_dict_normalises_tuples(self):
        result = ExperimentResult(name="t", params={"ws": (1, 2, 3)})
        data = result.to_dict()
        assert data["params"]["ws"] == [1, 2, 3]
        clone = ExperimentResult.from_dict(data)
        assert clone.digest() == result.digest()

    def test_digest_ignores_nothing_semantic(self):
        a = ExperimentResult(name="t", metrics={"x": 1.0, "y": 2})
        b = ExperimentResult(name="t", metrics={"y": 2, "x": 1.0})
        assert a.digest() == b.digest()
        c = ExperimentResult(name="t", metrics={"x": 1.0, "y": 3})
        assert c.digest() != a.digest()
