"""Synthetic experiments for orchestrator tests.

Module-level functions so worker processes can import them by name
(the orchestrator receives ``module``/``func`` strings, never
callables).  All are pure functions of their kwargs, so results are
identical no matter which worker runs them, in which order.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.experiments.common import ExperimentResult


def run_ok(scale: float = 1.0, seed: int = 0, label: str = "toy") -> ExperimentResult:
    result = ExperimentResult(
        name=f"toy-{label}",
        params={"scale": scale, "seed": seed},
        expectation="deterministic toy output",
    )
    for i in range(3):
        result.add_row(step=i, value=seed * 100 + i * scale)
    result.metrics["value"] = seed * 100 + scale
    return result


def run_fail(scale: float = 1.0, message: str = "boom") -> ExperimentResult:
    raise ValueError(message)


def run_flaky(scale: float = 1.0, marker: str = "") -> ExperimentResult:
    """Fails on the first attempt (no marker file), succeeds after."""
    path = Path(marker)
    if not path.exists():
        path.write_text("attempted")
        raise RuntimeError("transient failure")
    return run_ok(scale=scale, label="flaky")


def run_sleep(scale: float = 1.0, seconds: float = 30.0) -> ExperimentResult:
    time.sleep(seconds)
    return run_ok(scale=scale, label="slept")


def run_hard_crash(scale: float = 1.0) -> ExperimentResult:
    os._exit(13)
