"""Synthetic experiments for orchestrator tests.

Module-level functions so worker processes can import them by name
(the orchestrator receives ``module``/``func`` strings, never
callables).  All are pure functions of their kwargs, so results are
identical no matter which worker runs them, in which order.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.experiments.common import ExperimentResult


def run_ok(scale: float = 1.0, seed: int = 0, label: str = "toy") -> ExperimentResult:
    result = ExperimentResult(
        name=f"toy-{label}",
        params={"scale": scale, "seed": seed},
        expectation="deterministic toy output",
    )
    for i in range(3):
        result.add_row(step=i, value=seed * 100 + i * scale)
    result.metrics["value"] = seed * 100 + scale
    return result


def run_fail(scale: float = 1.0, message: str = "boom") -> ExperimentResult:
    raise ValueError(message)


def run_flaky(scale: float = 1.0, marker: str = "") -> ExperimentResult:
    """Fails on the first attempt (no marker file), succeeds after."""
    path = Path(marker)
    if not path.exists():
        path.write_text("attempted")
        raise RuntimeError("transient failure")
    return run_ok(scale=scale, label="flaky")


def run_sleep(scale: float = 1.0, seconds: float = 30.0) -> ExperimentResult:
    time.sleep(seconds)
    return run_ok(scale=scale, label="slept")


def run_hard_crash(scale: float = 1.0) -> ExperimentResult:
    os._exit(13)


def run_session(scale: float = 1.0, seed: int = 5) -> ExperimentResult:
    """A real (tiny) pgmcc session with telemetry enabled: exercises
    the session-metrics export through the orchestrator's worker,
    cache and manifest paths."""
    from repro.pgm import create_session
    from repro.simulator import LinkSpec, dumbbell

    lossy = LinkSpec(rate_bps=500_000, delay=0.05, queue_slots=30,
                     loss_rate=0.02)
    net = dumbbell(1, 2, lossy, seed=seed)
    session = create_session(net, "h0", ["r0", "r1"], telemetry_interval=0.5)
    net.run(until=20.0 * scale)
    result = ExperimentResult(
        name="toy-session",
        params={"scale": scale, "seed": seed},
        expectation="deterministic session-metrics export",
    )
    result.add_row(odata=session.sender.odata_sent,
                   acks=session.sender.acks_received)
    result.metrics["odata_sent"] = session.sender.odata_sent
    result.attach_telemetry(session, seed=seed)
    session.close()
    return result
