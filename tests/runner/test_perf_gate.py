"""Perf-regression gate: threshold logic and CLI wiring.

``evaluate`` is pure, so the thresholds are pinned without running the
actual benchmark; the CLI tests monkeypatch the measurement probe.
"""

import json

import pytest

from repro.runner import perf_gate
from repro.runner.perf_gate import (
    REFERENCE_PR5_EVENTS_PER_SEC,
    TARGET_SPEEDUP,
    evaluate,
    evaluate_series,
    load_baseline,
    load_scale_baseline,
    main,
)

BASELINE = 2_800_000.0
TARGET = REFERENCE_PR5_EVENTS_PER_SEC * TARGET_SPEEDUP


class TestEvaluate:
    def test_ok_above_baseline_and_target(self):
        v = evaluate(BASELINE * 1.1, BASELINE)
        assert v["status"] == "ok"
        assert v["reasons"] == []

    def test_small_dip_within_tolerance_is_ok(self):
        # reference=0 silences the soft target: this pins the hard floor.
        assert evaluate(BASELINE * 0.85, BASELINE,
                        reference=0.0)["status"] == "ok"

    def test_regression_beyond_20pct_fails(self):
        v = evaluate(BASELINE * 0.79, BASELINE)
        assert v["status"] == "fail"
        assert "regressed" in v["reasons"][0]

    def test_exactly_at_floor_is_ok(self):
        assert evaluate(BASELINE * 0.80, BASELINE,
                        reference=0.0)["status"] == "ok"

    def test_below_3x_reference_warns_but_passes(self):
        # Within 20% of baseline but under the overhaul's 3x target.
        v = evaluate(TARGET * 0.9, TARGET * 0.95)
        assert v["status"] == "warn"
        assert "target" in v["reasons"][0]

    def test_missing_baseline_uses_soft_target_only(self):
        assert evaluate(TARGET * 0.5, None)["status"] == "warn"
        assert evaluate(TARGET * 1.5, None)["status"] == "ok"

    def test_custom_regression_threshold(self):
        assert evaluate(BASELINE * 0.55, BASELINE, regression_threshold=0.5,
                        reference=0.0)["status"] == "ok"
        assert evaluate(BASELINE * 0.45, BASELINE, regression_threshold=0.5,
                        reference=0.0)["status"] == "fail"

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_invalid_threshold_rejected(self, bad):
        with pytest.raises(ValueError):
            evaluate(1.0, 1.0, regression_threshold=bad)


class TestLoadBaseline:
    def test_reads_field(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"sim_events_per_sec": 1234.5}))
        assert load_baseline(str(path)) == 1234.5

    def test_null_or_absent_field_is_none(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"sim_events_per_sec": None}))
        assert load_baseline(str(path)) is None
        path.write_text(json.dumps({"benches": []}))
        assert load_baseline(str(path)) is None


class TestEvaluateSeries:
    MEASURED = {"1000": {"receivers_per_sec": 50_000.0},
                "100000": {"receivers_per_sec": 40_000.0}}

    def test_missing_baseline_cell_seeds_not_fails(self):
        v = evaluate_series(self.MEASURED, {})
        assert v["status"] == "ok"
        assert v["seeded"] == 2
        assert all(c["status"] == "seed" for c in v["cells"].values())

    def test_first_run_of_new_probe_seeds_alongside_existing(self):
        # One cell has history, the other is a brand-new probe: only
        # the known cell is compared, the new one seeds.
        baseline = {"1000": {"receivers_per_sec": 48_000.0}}
        v = evaluate_series(self.MEASURED, baseline)
        assert v["status"] == "ok"
        assert v["cells"]["1000"]["status"] == "ok"
        assert v["cells"]["100000"]["status"] == "seed"
        assert v["seeded"] == 1

    def test_regression_beyond_threshold_fails(self):
        baseline = {"1000": {"receivers_per_sec": 200_000.0}}
        v = evaluate_series({"1000": {"receivers_per_sec": 90_000.0}},
                            baseline)
        assert v["status"] == "fail"
        assert "scale cell 1000" in v["reasons"][0]

    def test_within_loose_threshold_is_ok(self):
        baseline = {"1000": {"receivers_per_sec": 100_000.0}}
        v = evaluate_series({"1000": {"receivers_per_sec": 51_000.0}},
                            baseline)
        assert v["status"] == "ok"

    def test_baseline_cell_without_the_key_seeds(self):
        # e.g. an artifact written before receivers_per_sec existed
        baseline = {"1000": {"wall_s": 3.0}}
        v = evaluate_series({"1000": {"receivers_per_sec": 1.0}}, baseline)
        assert v["cells"]["1000"]["status"] == "seed"

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_invalid_threshold_rejected(self, bad):
        with pytest.raises(ValueError):
            evaluate_series({}, {}, regression_threshold=bad)


class TestLoadScaleBaseline:
    def test_reads_series(self, tmp_path):
        path = tmp_path / "bench.json"
        series = {"1000": {"receivers_per_sec": 1.0}}
        path.write_text(json.dumps({"scale_metrics": series}))
        assert load_scale_baseline(str(path)) == series

    def test_artifact_predating_field_yields_empty(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"sim_events_per_sec": 1.0}))
        assert load_scale_baseline(str(path)) == {}
        path.write_text(json.dumps({"scale_metrics": None}))
        assert load_scale_baseline(str(path)) == {}


class TestCli:
    def _baseline_file(self, tmp_path, value):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"sim_events_per_sec": value}))
        return str(path)

    def test_pass_exit_zero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(perf_gate, "measure_sim_events_per_sec",
                            lambda chain, repeats: TARGET * 1.2)
        rc = main(["--baseline", self._baseline_file(tmp_path, TARGET * 1.1)])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exit_nonzero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(perf_gate, "measure_sim_events_per_sec",
                            lambda chain, repeats: BASELINE * 0.5)
        rc = main(["--baseline", self._baseline_file(tmp_path, BASELINE)])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_warn_exit_zero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(perf_gate, "measure_sim_events_per_sec",
                            lambda chain, repeats: TARGET * 0.9)
        rc = main(["--baseline", self._baseline_file(tmp_path, TARGET * 0.95)])
        assert rc == 0
        assert "WARN" in capsys.readouterr().out

    def test_missing_baseline_file_soft_gates(self, tmp_path, monkeypatch,
                                              capsys):
        monkeypatch.setattr(perf_gate, "measure_sim_events_per_sec",
                            lambda chain, repeats: TARGET * 1.2)
        rc = main(["--baseline", str(tmp_path / "absent.json")])
        assert rc == 0
        assert "no baseline" in capsys.readouterr().out

    def _measured_file(self, tmp_path, series):
        path = tmp_path / "measured.json"
        path.write_text(json.dumps({"scale_metrics": series}))
        return str(path)

    def test_measured_against_seedless_baseline_prints_seed(
            self, tmp_path, monkeypatch, capsys):
        # First run of the scale probe: the committed baseline has no
        # scale_metrics — every cell seeds, exit stays 0.
        monkeypatch.setattr(perf_gate, "measure_sim_events_per_sec",
                            lambda chain, repeats: TARGET * 1.2)
        measured = self._measured_file(
            tmp_path, {"100000": {"receivers_per_sec": 40_000.0}})
        rc = main(["--baseline", self._baseline_file(tmp_path, TARGET * 1.1),
                   "--measured", measured])
        assert rc == 0
        assert "SEED-BASELINE" in capsys.readouterr().out

    def test_measured_scale_regression_fails(self, tmp_path, monkeypatch,
                                             capsys):
        monkeypatch.setattr(perf_gate, "measure_sim_events_per_sec",
                            lambda chain, repeats: TARGET * 1.2)
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({
            "sim_events_per_sec": TARGET * 1.1,
            "scale_metrics": {"100000": {"receivers_per_sec": 200_000.0}},
        }))
        measured = self._measured_file(
            tmp_path, {"100000": {"receivers_per_sec": 10_000.0}})
        rc = main(["--baseline", str(path), "--measured", measured])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_measured_file_skips_series_gate(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(perf_gate, "measure_sim_events_per_sec",
                            lambda chain, repeats: TARGET * 1.2)
        rc = main(["--baseline", self._baseline_file(tmp_path, TARGET * 1.1),
                   "--measured", str(tmp_path / "absent.json")])
        assert rc == 0
        assert "skipping scale-series gate" in capsys.readouterr().out
