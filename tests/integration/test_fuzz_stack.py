"""Whole-stack fuzzing: random network parameters through a full
session must never crash and must preserve conservation invariants.

The fault-plan fuzzer additionally draws a random chaos schedule and
runs the whole session under a *strict* runtime
:class:`~repro.pgm.invariants.InvariantChecker` — any invariant break
under any drawn fault combination fails the test (the checker is the
oracle)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.sender_cc import CcConfig
from repro.pgm import create_session
from repro.simulator import (
    ACKER,
    BurstLoss,
    Corruption,
    Duplication,
    FaultPlan,
    LinkDown,
    LinkSpec,
    NodeCrash,
    NodePause,
    dumbbell,
)


@st.composite
def bottlenecks(draw):
    rate = draw(st.sampled_from([100_000, 300_000, 500_000, 1_500_000]))
    delay = draw(st.sampled_from([0.005, 0.05, 0.25]))
    queue = draw(st.sampled_from([4, 15, 40]))
    loss = draw(st.sampled_from([0.0, 0.01, 0.08]))
    return LinkSpec(rate_bps=rate, delay=delay, queue_slots=queue,
                    loss_rate=loss)


@st.composite
def configs(draw):
    return CcConfig(
        c=draw(st.sampled_from([0.6, 0.75, 1.0])),
        ssthresh=draw(st.sampled_from([2, 6, 16])),
        dupack_threshold=draw(st.sampled_from([2, 3, 5])),
        model=draw(st.sampled_from(["simple", "padhye"])),
        adaptive_ssthresh=draw(st.booleans()),
    )


class TestStackFuzz:
    @given(
        spec=bottlenecks(),
        cc=configs(),
        n_receivers=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_session_never_crashes(self, spec, cc, n_receivers, seed):
        net = dumbbell(1, n_receivers, spec, seed=seed)
        session = create_session(
            net, "h0", [f"r{i}" for i in range(n_receivers)], cc=cc
        )
        net.run(until=15.0)

        # liveness: something was sent, and unless the link is nearly
        # unusable some data reached the receivers
        assert session.sender.odata_sent >= 1
        total_received = sum(rx.odata_received for rx in session.receivers)
        if spec.loss_rate < 0.5:
            assert total_received >= 1

        # controller invariants
        ctl = session.sender.controller
        assert ctl.window.w >= 1.0
        assert ctl.window.ignore_acks >= 0
        assert ctl.tracker.outstanding_count >= 0

        # conservation on every link after a drain period
        session.close()
        net.run(until=25.0)
        for node in net.nodes.values():
            for link in node.links.values():
                assert link.sent == (
                    link.delivered + link.random_drops
                    + link.queue.drops + len(link.queue)
                ), link.name

        # receiver monotonicity
        for rx in session.receivers:
            assert rx.rxw_lead <= session.sender.next_seq - 1


@st.composite
def fault_plans(draw, n_receivers: int):
    """Random chaos schedules over the dumbbell's fixed names.

    The sender host is never crashed (a dead source trivially ends the
    session); receivers — including whoever is the acker — are fair
    game.
    """
    targets = [f"r{i}" for i in range(n_receivers)] + [ACKER]
    times = st.sampled_from([1.0, 3.0, 5.0, 8.0])
    durations = st.sampled_from([0.3, 1.0, 2.5])
    episodes = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        kind = draw(st.sampled_from(
            ["down", "burst", "dup", "corrupt", "pause", "crash"]
        ))
        at = draw(times)
        if kind == "crash":
            episodes.append(NodeCrash(draw(st.sampled_from(targets)), at=at))
        elif kind == "pause":
            episodes.append(NodePause(draw(st.sampled_from(targets)), at=at,
                                      duration=draw(durations)))
        elif kind == "down":
            episodes.append(LinkDown("R0", "R1", at=at,
                                     duration=draw(durations)))
        elif kind == "burst":
            episodes.append(BurstLoss("R0", "R1", at=at,
                                      duration=draw(durations),
                                      loss_rate=draw(st.sampled_from([0.5, 1.0]))))
        elif kind == "dup":
            episodes.append(Duplication("R0", "R1", at=at,
                                        duration=draw(durations), rate=0.3))
        else:
            episodes.append(Corruption("R0", "R1", at=at,
                                       duration=draw(durations), rate=0.2))
    return FaultPlan(tuple(episodes))


@pytest.mark.slow
class TestChaosFuzz:
    @given(data=st.data(),
           spec=bottlenecks(),
           n_receivers=st.integers(min_value=1, max_value=3),
           seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_faults_never_break_invariants(self, data, spec,
                                                  n_receivers, seed):
        plan = data.draw(fault_plans(n_receivers))
        net = dumbbell(1, n_receivers, spec, seed=seed)
        session = create_session(
            net, "h0", [f"r{i}" for i in range(n_receivers)],
            faults=plan, check_invariants=True, strict_invariants=True,
        )
        # strict mode: the checker raises on the first violation, so
        # merely completing the run is the oracle's verdict
        net.run(until=15.0)
        session.invariants.verify_now()
        assert session.invariants.ok
        session.close()
        net.run(until=25.0)  # drain

        # fault-aware conservation on every link, post-drain
        for node in net.nodes.values():
            for link in node.links.values():
                assert link.conserves_packets(), link.name

        # liveness: the sender made progress before the chaos window
        assert session.sender.odata_sent >= 1
