"""Whole-stack fuzzing: random network parameters through a full
session must never crash and must preserve conservation invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.sender_cc import CcConfig
from repro.pgm import create_session
from repro.simulator import LinkSpec, dumbbell


@st.composite
def bottlenecks(draw):
    rate = draw(st.sampled_from([100_000, 300_000, 500_000, 1_500_000]))
    delay = draw(st.sampled_from([0.005, 0.05, 0.25]))
    queue = draw(st.sampled_from([4, 15, 40]))
    loss = draw(st.sampled_from([0.0, 0.01, 0.08]))
    return LinkSpec(rate_bps=rate, delay=delay, queue_slots=queue,
                    loss_rate=loss)


@st.composite
def configs(draw):
    return CcConfig(
        c=draw(st.sampled_from([0.6, 0.75, 1.0])),
        ssthresh=draw(st.sampled_from([2, 6, 16])),
        dupack_threshold=draw(st.sampled_from([2, 3, 5])),
        model=draw(st.sampled_from(["simple", "padhye"])),
        adaptive_ssthresh=draw(st.booleans()),
    )


class TestStackFuzz:
    @given(
        spec=bottlenecks(),
        cc=configs(),
        n_receivers=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_session_never_crashes(self, spec, cc, n_receivers, seed):
        net = dumbbell(1, n_receivers, spec, seed=seed)
        session = create_session(
            net, "h0", [f"r{i}" for i in range(n_receivers)], cc=cc
        )
        net.run(until=15.0)

        # liveness: something was sent, and unless the link is nearly
        # unusable some data reached the receivers
        assert session.sender.odata_sent >= 1
        total_received = sum(rx.odata_received for rx in session.receivers)
        if spec.loss_rate < 0.5:
            assert total_received >= 1

        # controller invariants
        ctl = session.sender.controller
        assert ctl.window.w >= 1.0
        assert ctl.window.ignore_acks >= 0
        assert ctl.tracker.outstanding_count >= 0

        # conservation on every link after a drain period
        session.close()
        net.run(until=25.0)
        for node in net.nodes.values():
            for link in node.links.values():
                assert link.sent == (
                    link.delivered + link.random_drops
                    + link.queue.drops + len(link.queue)
                ), link.name

        # receiver monotonicity
        for rx in session.receivers:
            assert rx.rxw_lead <= session.sender.next_seq - 1
