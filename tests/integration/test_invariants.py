"""System-level invariants: conservation, determinism, state bounds.

These are the properties a downstream user relies on implicitly; they
are checked over full protocol runs, not synthetic inputs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.window import WindowController
from repro.pgm import create_session
from repro.simulator import LOSSY, NON_LOSSY, LinkSpec, dumbbell
from repro.tcp import create_tcp_flow


class TestPacketConservation:
    def run_loaded_network(self, seed=41):
        net = dumbbell(2, 2, LinkSpec(500_000, 0.05, queue_slots=10,
                                      loss_rate=0.01), seed=seed)
        session = create_session(net, "h0", ["r0"])
        tcp = create_tcp_flow(net, "h1", "r1", start_at=5.0)
        net.run(until=40.0)
        return net, session, tcp

    def test_every_link_conserves_packets(self):
        """sent == delivered + random drops + queue drops + still queued
        + in flight (zero at quiescence per link when we stop feeding)."""
        net, session, tcp = self.run_loaded_network()
        session.close()
        tcp.close()
        net.run(until=60.0)  # drain
        for node in net.nodes.values():
            for link in node.links.values():
                accounted = (
                    link.delivered
                    + link.random_drops
                    + link.queue.drops
                    + len(link.queue)
                )
                assert link.sent == accounted, link.name

    def test_receiver_sees_no_more_than_sent(self):
        net, session, tcp = self.run_loaded_network()
        rx = session.receivers[0]
        assert rx.odata_received <= session.sender.odata_sent
        assert rx.rdata_received <= session.sender.rdata_sent


class TestDeterminism:
    def run_once(self, seed):
        net = dumbbell(2, 2, LOSSY, seed=seed)
        session = create_session(net, "h0", ["r0"])
        tcp = create_tcp_flow(net, "h1", "r1", start_at=3.0)
        net.run(until=30.0)
        fingerprint = (
            session.sender.odata_sent,
            session.sender.rdata_sent,
            session.sender.acks_received,
            session.acker_switches,
            tcp.sender.segments_sent,
            tcp.sender.retransmissions,
            tuple(session.trace.records[:50]),
        )
        session.close()
        tcp.close()
        return fingerprint

    def test_same_seed_identical_run(self):
        assert self.run_once(123) == self.run_once(123)

    def test_different_seed_different_run(self):
        assert self.run_once(123) != self.run_once(124)


class TestStateBounds:
    def test_sender_state_stays_bounded(self):
        """§3: constant state — outstanding table, send-time map and
        NE-free structures must not grow with session length."""
        net = dumbbell(1, 2, NON_LOSSY, seed=44)
        session = create_session(net, "h0", ["r0", "r1"])
        net.run(until=60.0)
        ctl = session.sender.controller
        assert ctl.tracker.outstanding_count < 200
        assert len(ctl._send_times) < 400
        for rx in session.receivers:
            assert len(rx._nak_states) < 100
            assert len(rx.cc._received) < 5000

    def test_trace_is_the_only_unbounded_structure(self):
        net = dumbbell(1, 1, NON_LOSSY, seed=45)
        session = create_session(net, "h0", ["r0"])
        net.run(until=30.0)
        assert len(session.trace) > 1000  # traces do grow, by design


class TestWindowControllerFuzz:
    @given(st.lists(st.sampled_from(["ack", "loss", "restart"]),
                    min_size=1, max_size=400))
    @settings(max_examples=200)
    def test_invariants_under_any_event_order(self, events):
        """W >= 1, tokens finite, ignore counter non-negative, and the
        controller never raises for any feedback ordering."""
        ctl = WindowController()
        seq = 0
        for event in events:
            if event == "ack":
                ctl.on_ack()
            elif event == "loss":
                seq += 5
                ctl.on_loss(seq, seq + 3, in_flight=max(1, int(ctl.w)))
            else:
                ctl.on_restart()
            assert ctl.w >= 1.0
            assert ctl.ignore_acks >= 0
            assert ctl.tokens < 1e6

    @given(st.lists(st.booleans(), min_size=10, max_size=300))
    @settings(max_examples=100)
    def test_tokens_track_ack_credit(self, acks_vs_losses):
        """Cumulative tokens never exceed 1 (initial) + Σ(1 + 1/W) over
        accepted ACKs — the controller cannot mint credit."""
        ctl = WindowController()
        credit = 1.0
        seq = 0
        for is_ack in acks_vs_losses:
            if is_ack:
                before_w = ctl.w
                accepted = ctl.ignore_acks == 0
                ctl.on_ack()
                if accepted:
                    credit += 1.0 + 1.0 / max(before_w, 1.0)
            else:
                seq += 1
                ctl.on_loss(seq, seq + 1)
            assert ctl.tokens <= credit + 1e-9
