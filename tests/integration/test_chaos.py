"""Chaos regression tests: the protocol behaviours the fault layer
exists to exercise.

* Crashing the current acker must trigger a re-election that keeps the
  session flowing (§3.5–§3.6: the acker moving — or dying — is not a
  congestion signal).
* Flapping the bottleneck must drain the ACK clock into the stall
  machinery, which restarts from ``W = T = 1`` (§3.2) rather than
  deadlocking.
* The combined scenario (ISSUE acceptance): acker crash + bottleneck
  flap under a strict invariant checker completes with zero violations.
"""

import pytest

from repro.pgm import create_session
from repro.simulator import (
    ACKER,
    FaultPlan,
    LinkSpec,
    NodeCrash,
    dumbbell,
    flap_link,
)

pytestmark = pytest.mark.slow

BOTTLENECK = LinkSpec(rate_bps=500_000, delay=0.05, queue_slots=30)


def _last_data_time(trace) -> float:
    times = trace.times("data")
    return times[-1] if times else 0.0


class TestAckerCrash:
    def test_election_recovers_without_stalling_session(self):
        net = dumbbell(1, 3, BOTTLENECK, seed=11)
        plan = FaultPlan((NodeCrash(ACKER, at=8.0),))
        session = create_session(net, "h0", ["r0", "r1", "r2"], faults=plan)

        sent_at_crash = []
        net.sim.schedule_at(8.0, lambda: sent_at_crash.append(
            session.sender.odata_sent))
        net.run(until=30.0)

        crashed = session.fault_injector.actions("crash")
        assert len(crashed) == 1
        dead = crashed[0].target
        assert not net.nodes[dead].alive
        # a different receiver took over and data kept flowing
        assert session.sender.current_acker not in (None, dead)
        assert session.acker_switches >= 1
        assert session.sender.odata_sent > sent_at_crash[0]
        assert _last_data_time(session.trace) > 25.0
        # survivors keep receiving
        for rx in session.receivers:
            if rx.rx_id != dead:
                assert rx.odata_received > 0


class TestBottleneckFlap:
    def test_flap_restarts_from_w_equals_t_equals_one(self):
        net = dumbbell(1, 2, BOTTLENECK, seed=13)
        # long outages: each one starves the ACK clock into a stall
        plan = FaultPlan(flap_link("R0", "R1", first_at=8.0, down_for=3.0,
                                   up_for=5.0, cycles=2))
        session = create_session(net, "h0", ["r0", "r1"], faults=plan)
        ctl = session.sender.controller

        # snapshot (W, T) immediately after every restart
        restart_states = []
        original = ctl.window.on_restart

        def on_restart():
            original()
            restart_states.append((ctl.window.w, ctl.window.tokens))

        ctl.window.on_restart = on_restart
        net.run(until=40.0)

        assert ctl.stalls >= 1
        # §3.2: every stall restart begins again from W = T = 1
        assert restart_states
        assert all(state == (1.0, 1.0) for state in restart_states)
        # ... and the session came back instead of deadlocking:
        # data flows after the last flap ends (t = 19)
        assert _last_data_time(session.trace) > 35.0
        assert session.sender.odata_sent > 0
        for rx in session.receivers:
            assert rx.odata_received > 0


class TestAcceptanceScenario:
    def test_acker_crash_plus_flap_with_strict_invariants(self):
        """The ISSUE acceptance criterion: a session whose FaultPlan
        crashes the acker and flaps the bottleneck completes without
        stalling permanently and with zero invariant violations."""
        net = dumbbell(1, 3, BOTTLENECK, seed=17)
        plan = FaultPlan((NodeCrash(ACKER, at=6.0),)) + FaultPlan(
            flap_link("R0", "R1", first_at=12.0, down_for=2.0, up_for=4.0,
                      cycles=2)
        )
        session = create_session(
            net, "h0", ["r0", "r1", "r2"], faults=plan,
            check_invariants=True, strict_invariants=True,
        )
        net.run(until=40.0)
        session.invariants.verify_now()

        assert session.invariants.ok
        assert session.invariants.checks_run > 10
        assert len(session.fault_injector.actions("crash")) == 1
        assert session.acker_switches >= 1
        assert session.sender.controller.stalls >= 1
        assert _last_data_time(session.trace) > 35.0  # never wedged
