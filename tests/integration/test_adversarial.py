"""Integration tests: misbehaving receivers against the full stack.

The attacks run inside real sessions with the runtime invariant
checker in *strict* mode (violations raise), so every deflection is
also a protocol-soundness proof.  The hypothesis property at the end
is the guard's no-false-positive contract: arbitrary PR-1-style
network fault plans — losses, outages, corruption, duplication,
crashes — may delay or silence compliant receivers, but must never
get one quarantined.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pgm import create_session
from repro.simulator import (
    BurstLoss,
    Corruption,
    Duplication,
    FaultPlan,
    GreedyAcker,
    LinkDown,
    LinkImpairment,
    LinkSpec,
    NakStorm,
    NodeCrash,
    NodePause,
    SilentJoiner,
    dumbbell,
)

BOTTLENECK = LinkSpec(rate_bps=300_000, delay=0.02, queue_slots=15)


def session_under(plan, n_rx=3, seed=7, guard=True, strict=True, **kw):
    net = dumbbell(1, n_rx, BOTTLENECK, seed=seed)
    names = [f"r{i}" for i in range(n_rx)]
    session = create_session(
        net, "h0", names, faults=plan, guard=guard,
        check_invariants=True, strict_invariants=strict, **kw)
    return net, session


class TestGreedyAckerDeflection:
    def test_attacker_quarantined_and_unseated_under_strict_invariants(self):
        net, session = session_under(
            FaultPlan((GreedyAcker("r0", at=3.0),)))
        net.run(until=25.0)
        session.invariants.verify_now()  # strict: raises on violation
        guard = session.guard
        assert guard.quarantines >= 1
        assert "r0" in guard.quarantined_ids()
        assert session.sender.controller.current_acker != "r0"
        # the physical impossibility fired: ACKs overtook the
        # attacker's own reported window lead
        assert guard.violation_counts["ack-beyond-lead"] >= 1
        # compliant receivers kept receiving in spite of the attack
        for rx in session.receivers[1:]:
            assert rx.delivered > 0
            assert rx.unrecoverable_data_loss == 0
        session.close()

    def test_episode_end_restores_compliance(self):
        net, session = session_under(
            FaultPlan((GreedyAcker("r0", at=2.0, duration=3.0),)))
        net.run(until=6.0)
        assert session.receiver("r0").behaviors == {}
        session.close()


class TestNakStormContainment:
    def test_repair_budget_gates_rdata(self):
        net, session = session_under(
            FaultPlan((NakStorm("r0", at=2.0, duration=10.0, rate=200.0),)))
        net.run(until=14.0)
        session.invariants.verify_now()
        sender = session.sender
        guard = session.guard
        # the storm outran the budget: NAKs were rejected for repair
        assert guard.violation_counts["nak-flood"] > 0
        assert sender.guard_naks_blocked > 0
        # and RDATA stayed far below the ~2000 storm NAKs sent
        assert sender.rdata_sent < 600
        assert guard.quarantines >= 1
        session.close()


class TestSilentJoinerIsHarmless:
    def test_mute_member_neither_stalls_nor_trips_guard(self):
        net, session = session_under(
            FaultPlan((SilentJoiner("r1", at=1.0),)))
        net.run(until=12.0)
        session.invariants.verify_now()
        assert session.guard.quarantines == 0
        # the group keeps flowing, clocked by the vocal receivers
        assert session.receiver("r0").delivered > 0
        session.close()


class TestIngressAudit:
    def test_mangled_frames_counted_and_survived(self):
        """Satellite (packet-ingress audit): corrupted bytes on the
        wire are rejected by the frame checksum, counted, and never
        crash the session."""
        net, session = session_under(
            FaultPlan((Corruption("R0", "R1", at=1.0, duration=6.0,
                                  rate=0.3, mode="mangle", both=True),)))
        net.run(until=10.0)
        session.invariants.verify_now()
        assert session.malformed_dropped() > 0
        summary = session.summary()
        per_rx = summary["receivers"]
        assert sum(d["malformed_dropped"] for d in per_rx.values()) > 0
        assert all(d["delivered"] > 0 for d in per_rx.values())
        session.close()


class TestUnrecoverableLoss:
    def test_retry_exhaustion_is_reported(self):
        """Satellite (NAK give-up): when every repair attempt dies on a
        blacked-out link, the receiver stops retrying after
        nak_max_retries and surfaces the gap instead of wedging."""
        net, session = session_under(
            FaultPlan((BurstLoss("R1", "r0", at=2.0, duration=5.0,
                                 loss_rate=0.95),)),
            strict=False)  # heavy loss legitimately delays; only collect
        rx = session.receiver("r0")
        rx.nak_rpt_ivl = 0.2
        rx.nak_rdata_ivl = 0.2
        rx.nak_max_retries = 2
        net.run(until=10.0)
        assert rx.unrecoverable_data_loss >= 1
        assert rx.repairs_abandoned >= 1
        s = session.summary()
        assert s["receivers"]["r0"]["unrecoverable_data_loss"] >= 1
        # in-order delivery advanced past the permanent holes
        assert rx.delivered > 0
        session.close()


class TestTimerLifecycle:
    def test_close_cancels_every_timer(self):
        """Satellite (teardown): close() must cancel sender pump/SPM
        timers, receiver NAK timers, and misbehaviour timers so a
        closed session leaves the event heap drainable to empty."""
        net, session = session_under(
            FaultPlan((GreedyAcker("r0", at=1.0),
                       NakStorm("r1", at=1.0, duration=3.0, rate=50.0))),
            strict=False)
        net.run(until=5.0)
        session.close()
        # drain whatever was in flight at close time; nothing may
        # reschedule itself afterwards
        net.sim.run(until=net.sim.now + 30.0)
        assert net.sim.pending() == 0


# -- the no-false-positive property ------------------------------------

TIMES = st.sampled_from([0.5, 1.0, 2.0, 3.5])
DURATIONS = st.sampled_from([0.3, 0.8, 1.5])
LINKS = [("R0", "R1"), ("h0", "R0"), ("R1", "r0"), ("R1", "r1")]


@st.composite
def network_episodes(draw):
    """PR-1-style *network* faults only: everything here may hurt a
    compliant receiver, none of it is the receiver's fault."""
    kind = draw(st.sampled_from(
        ["down", "impair", "burst", "dup", "corrupt", "pause", "crash"]))
    at = draw(TIMES)
    if kind == "pause":
        return NodePause(draw(st.sampled_from(["r0", "r1"])), at=at,
                         duration=draw(DURATIONS))
    if kind == "crash":
        return NodeCrash(draw(st.sampled_from(["r0", "r1"])), at=at)
    a, b = draw(st.sampled_from(LINKS))
    duration = draw(DURATIONS)
    both = draw(st.booleans())
    if kind == "down":
        return LinkDown(a, b, at=at, duration=duration, both=both)
    if kind == "impair":
        return LinkImpairment(a, b, at=at, duration=duration, both=both,
                              loss_rate=draw(st.sampled_from([0.05, 0.3])),
                              delay=draw(st.sampled_from([0.05, None])))
    if kind == "burst":
        return BurstLoss(a, b, at=at, duration=duration, both=both,
                         loss_rate=draw(st.sampled_from([0.5, 1.0])))
    if kind == "dup":
        return Duplication(a, b, at=at, duration=duration, both=both,
                           rate=draw(st.sampled_from([0.3, 1.0])))
    return Corruption(a, b, at=at, duration=duration, both=both,
                      rate=draw(st.sampled_from([0.2, 0.5])),
                      mode=draw(st.sampled_from(["drop", "mangle"])))


@st.composite
def network_plans(draw, max_episodes=4):
    n = draw(st.integers(min_value=0, max_value=max_episodes))
    return FaultPlan(tuple(draw(network_episodes()) for _ in range(n)))


class TestNoFalsePositives:
    @given(plan=network_plans(), seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_compliant_receivers_never_quarantined(self, plan, seed):
        net = dumbbell(1, 2, BOTTLENECK, seed=seed)
        session = create_session(
            net, "h0", ["r0", "r1"], faults=plan, guard=True,
            check_invariants=True, strict_invariants=False)
        net.run(until=8.0)
        guard = session.guard
        assert guard.quarantines == 0, (
            f"honest receiver quarantined under {plan}: "
            f"{guard.summary()['violations']}")
        session.close()
