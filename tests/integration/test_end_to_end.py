"""Integration tests: whole-protocol behaviour over the simulator.

These are scaled-down versions of the paper's claims, kept fast enough
for CI while still exercising every component together.
"""

import pytest

from repro.analysis import jain_index, throughput_bps, throughput_ratio
from repro.core.sender_cc import CcConfig
from repro.pgm import add_receiver, create_session, enable_network_elements
from repro.simulator import LOSSY, NON_LOSSY, LinkSpec, Network, dumbbell, star
from repro.tcp import create_tcp_flow


class TestSingleSession:
    def test_fills_clean_bottleneck(self):
        net = dumbbell(1, 1, NON_LOSSY, seed=1)
        session = create_session(net, "h0", ["r0"])
        net.run(until=30.0)
        rate = session.throughput_bps(10, 30)
        assert rate > 0.85 * 500_000 * (1400 / 1500)  # goodput share
        assert session.sender.controller.stalls == 0

    def test_loss_determined_rate_on_lossy_link(self):
        net = dumbbell(1, 1, LOSSY, seed=2)
        session = create_session(net, "h0", ["r0"])
        net.run(until=60.0)
        rate = session.throughput_bps(20, 60)
        # must be alive but far below the 2 Mbit/s capacity
        assert 50_000 < rate < 1_000_000
        # and essentially no congestion drops at the bottleneck
        assert net.link("R0", "R1").queue_drops < 5

    def test_rate_limiter_caps_session(self):
        net = dumbbell(1, 1, NON_LOSSY, seed=3)
        session = create_session(net, "h0", ["r0"], max_rate_bps=200_000)
        net.run(until=30.0)
        assert session.throughput_bps(10, 30) < 210_000

    def test_receiver_loss_filter_tracks_link_loss(self):
        spec = LinkSpec(rate_bps=2_000_000, delay=0.1, queue_bytes=30_000,
                        loss_rate=0.05)
        net = star(1, spec, seed=4)
        session = create_session(net, "src", ["r0"])
        net.run(until=60.0)
        assert session.receivers[0].loss_rate == pytest.approx(0.05, abs=0.03)


class TestTcpFriendliness:
    @pytest.mark.parametrize("spec,label", [(NON_LOSSY, "nonlossy"), (LOSSY, "lossy")])
    def test_no_starvation_either_way(self, spec, label):
        net = dumbbell(2, 2, spec, seed=5)
        session = create_session(net, "h0", ["r0"])
        tcp = create_tcp_flow(net, "h1", "r1", start_at=10.0)
        net.run(until=90.0)
        pgm = session.throughput_bps(30, 90)
        t = tcp.throughput_bps(30, 90)
        assert throughput_ratio(pgm, t) < 3.5

    def test_pgm_yields_and_recovers(self):
        net = dumbbell(2, 2, NON_LOSSY, seed=6)
        session = create_session(net, "h0", ["r0"])
        tcp = create_tcp_flow(net, "h1", "r1", start_at=30.0, stop_at=70.0)
        net.run(until=100.0)
        alone_before = session.throughput_bps(10, 30)
        shared = session.throughput_bps(40, 70)
        after = session.throughput_bps(80, 100)
        assert shared < 0.75 * alone_before
        assert after > 0.8 * alone_before


class TestAckerDynamics:
    def test_acker_moves_to_slower_path(self):
        """Receiver behind a slower bottleneck takes over as acker."""
        net = Network(seed=7)
        net.add_host("src")
        net.add_router("R0")
        for name, rate in (("fast", 2_000_000), ("slow", 300_000)):
            net.add_host(name)
            net.duplex_link("R0", name, LinkSpec(rate, 0.05, queue_slots=30))
        net.duplex_link("src", "R0", LinkSpec(100_000_000, 0.0005, queue_slots=1000))
        net.build_routes()
        session = create_session(net, "src", ["fast"])
        add_receiver(net, session, "slow", at=10.0)
        net.run(until=40.0)
        assert session.sender.current_acker == "slow"
        rate = session.throughput_bps(25, 40)
        assert rate < 400_000  # adapted to the slow receiver

    def test_equivalent_receivers_with_bias_do_not_flap(self):
        """c = 0.75 removes switches among co-located receivers."""
        net = dumbbell(1, 3, NON_LOSSY, seed=8)
        session = create_session(
            net, "h0", ["r0", "r1", "r2"], cc=CcConfig(c=0.75)
        )
        net.run(until=60.0)
        assert session.acker_switches <= 3  # initial election + noise

    def test_switch_is_not_congestion_signal(self):
        """Acker switches alone must not reduce throughput (§4.2)."""
        net = dumbbell(1, 3, NON_LOSSY, seed=9)
        one = create_session(net, "h0", ["r0"])
        net.run(until=30.0)
        solo_rate = one.throughput_bps(10, 30)
        one.close()

        net2 = dumbbell(1, 3, NON_LOSSY, seed=9)
        many = create_session(net2, "h0", ["r0", "r1", "r2"], cc=CcConfig(c=1.0))
        net2.run(until=30.0)
        multi_rate = many.throughput_bps(10, 30)
        assert multi_rate > 0.85 * solo_rate


class TestRobustness:
    def test_survives_reverse_path_ack_loss(self):
        """The ACK bitmap recovers lost ACKs (§3.3): heavy reverse
        loss must degrade, not kill, the session."""
        net = Network(seed=10)
        net.add_host("src")
        net.add_router("R0")
        net.add_host("rx")
        net.duplex_link("src", "R0", LinkSpec(100_000_000, 0.0005, queue_slots=1000))
        forward = LinkSpec(500_000, 0.05, queue_slots=30)
        reverse = LinkSpec(500_000, 0.05, queue_slots=30, loss_rate=0.10)
        net.duplex_link("R0", "rx", forward, reverse_spec=reverse)
        net.build_routes()
        session = create_session(net, "src", ["rx"])
        net.run(until=60.0)
        assert session.throughput_bps(20, 60) > 100_000

    def test_acker_death_recovers_via_stall(self):
        """If the acker vanishes, the stall machinery re-elects."""
        net = dumbbell(1, 2, NON_LOSSY, seed=11)
        session = create_session(net, "h0", ["r0", "r1"])
        net.run(until=15.0)
        first_acker = session.sender.current_acker
        # silence the current acker entirely
        dead = session.receiver(first_acker)
        dead.host.unregister_agent("pgm")
        dead.close()
        net.run(until=60.0)
        assert session.sender.current_acker is not None
        assert session.sender.current_acker != first_acker
        # data still flows at the end
        assert session.throughput_bps(50, 60) > 100_000

    def test_reliable_delivery_under_loss(self):
        """Every original packet is eventually delivered in order."""
        spec = LinkSpec(rate_bps=1_000_000, delay=0.02, queue_slots=30,
                        loss_rate=0.05)
        net = star(1, spec, seed=12)
        got = []
        session = create_session(net, "src", ["r0"])
        session.receivers[0].deliver = lambda s, n, p: got.append(s)
        net.run(until=30.0)
        assert len(got) > 500
        assert got == sorted(got)
        assert got[: len(got)] == list(range(got[0], got[0] + len(got)))


class TestIncrementalDeployment:
    def test_works_identically_with_and_without_nes(self):
        """§3: pgmcc operates end to end; router support is an
        optimisation, not a dependency."""
        rates = {}
        for with_ne in (False, True):
            net = dumbbell(1, 3, NON_LOSSY, seed=13)
            if with_ne:
                enable_network_elements(net)
            session = create_session(net, "h0", ["r0", "r1", "r2"])
            net.run(until=40.0)
            rates[with_ne] = session.throughput_bps(10, 40)
            session.close()
        assert rates[True] == pytest.approx(rates[False], rel=0.15)

    def test_intra_fairness_scaled(self):
        net = dumbbell(2, 3, NON_LOSSY, seed=14)
        s1 = create_session(net, "h0", ["r0", "r1"])
        s2 = create_session(net, "h1", ["r2"], start_at=20.0)
        net.run(until=80.0)
        r1 = s1.throughput_bps(40, 80)
        r2 = s2.throughput_bps(40, 80)
        assert jain_index([r1, r2]) > 0.9
