"""End-to-end runs under non-default configurations.

Each variant exercises a config path the unit tests cover only in
isolation: the Padhye election model, token caps, TFRC estimation,
RED queueing, and time-based RTT — all driving a full session.
"""

import pytest

from repro.core.sender_cc import CcConfig
from repro.pgm import create_session
from repro.simulator import LinkSpec, Network, NON_LOSSY, dumbbell, star


class TestPadhyeModelSession:
    def test_session_runs_and_fills_link(self):
        net = dumbbell(1, 2, NON_LOSSY, seed=91)
        session = create_session(
            net, "h0", ["r0", "r1"], cc=CcConfig(model="padhye")
        )
        net.run(until=30.0)
        assert session.throughput_bps(10, 30) > 300_000
        assert session.sender.controller.election.model.name == "padhye"
        assert session.sender.current_acker in ("r0", "r1")

    def test_padhye_vs_simple_same_clean_link_behaviour(self):
        """With one receiver and congestion-only loss, both models
        must behave identically (single candidate, no election work)."""
        rates = {}
        for model in ("simple", "padhye"):
            net = dumbbell(1, 1, NON_LOSSY, seed=92)
            session = create_session(net, "h0", ["r0"], cc=CcConfig(model=model))
            net.run(until=30.0)
            rates[model] = session.throughput_bps(10, 30)
            session.close()
        assert rates["padhye"] == pytest.approx(rates["simple"], rel=0.1)


class TestTokenCap:
    def test_capped_tokens_limit_bursts(self):
        net = dumbbell(1, 1, NON_LOSSY, seed=93)
        session = create_session(net, "h0", ["r0"], cc=CcConfig(max_tokens=2.0))
        net.run(until=30.0)
        # the session still works; tokens never exceed the cap
        assert session.throughput_bps(10, 30) > 200_000
        assert session.sender.controller.window.tokens <= 2.0


class TestTimeRttSession:
    def test_echo_timestamps_end_to_end(self):
        net = dumbbell(1, 2, NON_LOSSY, seed=94)
        session = create_session(
            net, "h0", ["r0", "r1"], cc=CcConfig(rtt_mode="time"),
            echo_timestamps=True,
        )
        net.run(until=30.0)
        assert session.throughput_bps(10, 30) > 300_000
        # the incumbent's RTT is now measured in seconds, not packets
        incumbent = session.sender.controller.election._incumbent
        assert incumbent is not None
        assert incumbent.rtt.value is not None
        assert incumbent.rtt.value < 5.0  # seconds, not tens of packets


class TestRedQueueBottleneck:
    def test_session_through_red_queue(self):
        """RED marks early: the session sees drops before the queue is
        full, keeping occupancy near the thresholds."""
        from repro.simulator.queues import RedQueue

        net = Network(seed=95)
        net.add_host("src")
        net.add_router("R0")
        net.add_host("rx")
        net.duplex_link("src", "R0", LinkSpec(100_000_000, 0.0005, queue_slots=1000))
        fwd, _ = net.duplex_link("R0", "rx", LinkSpec(500_000, 0.050, queue_slots=60))
        fwd.queue = RedQueue(net.rng.stream("red"), max_slots=60,
                             min_th=5, max_th=20, max_p=0.2)
        net.build_routes()
        session = create_session(net, "src", ["rx"])
        net.run(until=40.0)
        assert session.throughput_bps(10, 40) > 300_000
        assert fwd.queue.drops > 0
        assert fwd.queue.peak_slots < 40  # RED kept occupancy down
        session.close()


class TestTfrcSession:
    def test_tfrc_session_competes_fairly(self):
        from repro.tcp import create_tcp_flow

        net = dumbbell(2, 2, NON_LOSSY, seed=96)
        session = create_session(net, "h0", ["r0"], estimator="tfrc")
        tcp = create_tcp_flow(net, "h1", "r1", start_at=10.0)
        net.run(until=60.0)
        pgm = session.throughput_bps(25, 60)
        t = tcp.throughput_bps(25, 60)
        assert max(pgm, t) / min(pgm, t) < 3.5
