"""Aggregation math: deltas, ranking, hooks, regression agreement."""

import json

import pytest

import tests.sweep._toy  # noqa: F401 - registers TOY-SWEEP
from repro.experiments.common import ExperimentResult
from repro.sweep import SweepSpec, expand
from repro.sweep.aggregate import (
    SweepCell,
    axis_deltas,
    collect_cells,
    ranked_rows,
    regression_section,
    run_custom_aggregate,
    shared_numeric_metrics,
)

TOY = "TOY-SWEEP"


def make_cells(spec, metric_fn):
    """Expand ``spec`` and fabricate ok cells with computed metrics."""
    cells = []
    for task in expand(spec):
        kwargs = dict(task.spec.kwargs)
        result = ExperimentResult(name=task.id, metrics=metric_fn(kwargs))
        cells.append(SweepCell(task=task, status="ok", result=result,
                               result_digest=result.digest(),
                               cache_hit=False, wall_s=0.0))
    return cells


def toy_metrics(kwargs):
    base = 10.0 if kwargs.get("mode", "a") == "a" else 30.0
    return {"score": base * kwargs.get("gain", 1.0) + kwargs.get("seed", 0),
            "label": kwargs.get("mode", "a")}


class TestSharedMetrics:
    def test_intersection_of_numeric_metrics(self):
        spec = SweepSpec(name="m", experiment=TOY, axes={"mode": ["a", "b"]})
        cells = make_cells(spec, toy_metrics)
        assert shared_numeric_metrics(cells) == ["score"]  # label is str

    def test_wanted_restricts_and_orders(self):
        spec = SweepSpec(name="m", experiment=TOY, axes={"mode": ["a", "b"]})
        cells = make_cells(
            spec, lambda kw: {"b": 1.0, "a": 2.0, "c": 3.0})
        assert shared_numeric_metrics(cells) == ["a", "b", "c"]
        assert shared_numeric_metrics(cells, ("c", "a")) == ["c", "a"]
        assert shared_numeric_metrics(cells, ("c", "missing")) == ["c"]

    def test_failed_cells_excluded(self):
        spec = SweepSpec(name="m", experiment=TOY, axes={"mode": ["a"]})
        [cell] = make_cells(spec, toy_metrics)
        failed = SweepCell(task=cell.task, status="failed", result=None,
                           result_digest=None, cache_hit=False, wall_s=0.0)
        assert shared_numeric_metrics([cell, failed]) == ["score"]
        assert shared_numeric_metrics([failed]) == []


class TestAxisDeltas:
    def test_means_and_deltas_against_first_value(self):
        spec = SweepSpec(name="d", experiment=TOY,
                         axes={"mode": ["a", "b"], "gain": [1.0, 2.0]})
        deltas = axis_deltas(spec, make_cells(spec, toy_metrics))
        by_axis = {d["axis"]: d for d in deltas}
        # mode=a: scores 10, 20 (gain 1, 2); mode=b: 30, 60
        mode = by_axis["mode"]
        assert mode["baseline"] == "a"
        assert mode["groups"][0]["means"]["score"] == 15.0
        assert mode["groups"][1]["means"]["score"] == 45.0
        assert mode["groups"][1]["deltas"]["score"] == 30.0
        assert "deltas" not in mode["groups"][0]  # the baseline group
        gain = by_axis["gain"]
        assert gain["groups"][1]["deltas"]["score"] == 20.0

    def test_single_value_axes_skipped(self):
        spec = SweepSpec(name="d", experiment=TOY,
                         axes={"mode": ["a"], "gain": [1.0, 2.0]})
        deltas = axis_deltas(spec, make_cells(spec, toy_metrics))
        assert [d["axis"] for d in deltas] == ["gain"]

    def test_seeds_axis_included(self):
        spec = SweepSpec(name="d", experiment=TOY,
                         axes={"mode": ["a"]}, seeds=(1, 3))
        deltas = axis_deltas(spec, make_cells(spec, toy_metrics))
        assert [d["axis"] for d in deltas] == ["seed"]
        assert deltas[0]["groups"][1]["deltas"]["score"] == 2.0


class TestRankedRows:
    def test_ascending_default_and_tie_break_on_id(self):
        spec = SweepSpec(name="r", experiment=TOY,
                         axes={"mode": ["b", "a"]}, rank_by="score")
        rows = ranked_rows(spec, make_cells(spec, toy_metrics))
        assert [r["mode"] for r in rows] == ["a", "b"]  # 10 < 30
        assert [r["rank"] for r in rows] == [1, 2]
        assert rows[0]["score"] == 10.0

    def test_descending(self):
        spec = SweepSpec(name="r", experiment=TOY,
                         axes={"mode": ["a", "b"]}, rank_by="score",
                         rank_descending=True)
        rows = ranked_rows(spec, make_cells(spec, toy_metrics))
        assert [r["mode"] for r in rows] == ["b", "a"]

    def test_no_rank_by_yields_empty(self):
        spec = SweepSpec(name="r", experiment=TOY, axes={"mode": ["a"]})
        assert ranked_rows(spec, make_cells(spec, toy_metrics)) == []


class TestCustomAggregate:
    def test_hook_receives_ok_cells_and_returns_dict(self):
        spec = SweepSpec(
            name="c", experiment=TOY, axes={"mode": ["a", "b"]},
            aggregate="tests.sweep.test_aggregate:sample_hook")
        out = run_custom_aggregate(spec, make_cells(spec, toy_metrics))
        assert out == {"metrics": {"total_score": 40.0}}

    def test_no_hook_is_none(self):
        spec = SweepSpec(name="c", experiment=TOY, axes={"mode": ["a"]})
        assert run_custom_aggregate(
            spec, make_cells(spec, toy_metrics)) is None

    def test_bad_hook_shapes_rejected(self):
        cells = []
        bad_name = SweepSpec(name="c", experiment=TOY,
                             axes={"mode": ["a"]}, aggregate="no-colon")
        with pytest.raises(ValueError, match="module:function"):
            run_custom_aggregate(bad_name, cells)
        bad_return = SweepSpec(
            name="c", experiment=TOY, axes={"mode": ["a"]},
            aggregate="tests.sweep.test_aggregate:bad_hook_list")
        with pytest.raises(TypeError, match="expected dict"):
            run_custom_aggregate(bad_return, cells)
        bad_keys = SweepSpec(
            name="c", experiment=TOY, axes={"mode": ["a"]},
            aggregate="tests.sweep.test_aggregate:bad_hook_keys")
        with pytest.raises(ValueError, match="unknown key"):
            run_custom_aggregate(bad_keys, cells)


def sample_hook(cells):
    return {"metrics": {
        "total_score": sum(result.metrics["score"] for _, result in cells)}}


def bad_hook_list(cells):
    return ["not", "a", "dict"]


def bad_hook_keys(cells):
    return {"tables": []}


class TestRegressionSection:
    """The sweep report's verdict must agree with the perf gate's —
    both call the same evaluate()/evaluate_series() machinery."""

    def _baseline(self, tmp_path, doc):
        path = tmp_path / "BENCH_RESULTS.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_missing_baseline_skips(self, tmp_path):
        section = regression_section(str(tmp_path / "absent.json"))
        assert section["status"] == "skipped"

    def test_engine_verdict_matches_perf_gate(self, tmp_path):
        from repro.runner.perf_gate import evaluate

        path = self._baseline(tmp_path, {"sim_events_per_sec": 1_000_000.0})
        for measured in (990_000.0, 500_000.0):
            section = regression_section(path, events_per_sec=measured)
            gate = evaluate(measured, 1_000_000.0)
            assert section["engine"]["status"] == gate["status"]
            assert section["status"] == gate["status"]
            assert section["reasons"] == gate["reasons"]

    def test_synthetic_history_fails_section(self, tmp_path):
        # A committed history far above the measurement: the sweep
        # report flags the regression exactly like the gate would.
        path = self._baseline(tmp_path, {"sim_events_per_sec": 10_000_000.0})
        section = regression_section(path, events_per_sec=1_000_000.0)
        assert section["status"] == "fail"
        assert "regressed" in section["reasons"][0]

    def test_scale_series_matches_perf_gate(self, tmp_path):
        from repro.runner.perf_gate import evaluate_series

        baseline_series = {"1000": {"receivers_per_sec": 100_000.0}}
        path = self._baseline(tmp_path, {"scale_metrics": baseline_series})
        measured = {"1000": {"receivers_per_sec": 40_000.0},
                    "100000": {"receivers_per_sec": 1.0}}
        section = regression_section(path, scale_series=measured)
        gate = evaluate_series(measured, baseline_series)
        assert section["scale"] == gate
        assert section["status"] == "fail"  # 40k < 50% of 100k

    def test_missing_history_seeds_not_fails(self, tmp_path):
        path = self._baseline(tmp_path, {"benches": []})
        section = regression_section(
            path, scale_series={"10": {"receivers_per_sec": 5.0}})
        assert section["status"] == "ok"
        assert section["scale"]["seeded"] == 1


class TestCollectCells:
    def test_joins_by_task_id_in_task_order(self):
        from repro.runner.tasks import TaskOutcome

        spec = SweepSpec(name="j", experiment=TOY, axes={"mode": ["a", "b"]})
        tasks = expand(spec)
        outcomes = [
            TaskOutcome(id=tasks[1].id, status="failed", attempts=2,
                        wall_s=0.5, error={"type": "X", "message": "",
                                           "traceback": ""}),
            TaskOutcome(id=tasks[0].id, status="ok",
                        result=ExperimentResult(name="x"), attempts=1,
                        wall_s=0.1, cache_hit=True, result_digest="d"),
        ]
        cells = collect_cells(tasks, outcomes)
        assert [c.task.id for c in cells] == [t.id for t in tasks]
        assert cells[0].ok and cells[0].cache_hit
        assert not cells[1].ok
