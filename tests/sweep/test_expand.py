"""Expansion modes, task identity, and schema-backed validation."""

import pytest

import tests.sweep._toy  # noqa: F401 - registers TOY-SWEEP
from repro.sweep import SweepSpec, SweepValidationError, expand
from repro.sweep.validate import spec_errors

TOY = "TOY-SWEEP"


def kwargs_of(task):
    return dict(task.spec.kwargs)


class TestGrid:
    def test_cartesian_product_declaration_order(self):
        spec = SweepSpec(name="g", experiment=TOY,
                         axes={"mode": ["a", "b"], "gain": [1.0, 2.0]})
        tasks = expand(spec)
        assert [t.id for t in tasks] == [
            "g/mode=a,gain=1.0", "g/mode=a,gain=2.0",
            "g/mode=b,gain=1.0", "g/mode=b,gain=2.0",
        ]
        assert kwargs_of(tasks[0]) == {"mode": "a", "gain": 1.0}
        assert tasks[0].axes_dict == {"mode": "a", "gain": 1.0}

    def test_base_merges_into_every_task(self):
        spec = SweepSpec(name="g", experiment=TOY,
                         axes={"mode": ["a", "b"]}, base={"gain": 3.0})
        for task in expand(spec):
            assert kwargs_of(task)["gain"] == 3.0

    def test_seeds_become_an_extra_axis(self):
        spec = SweepSpec(name="g", experiment=TOY,
                         axes={"mode": ["a"]}, seeds=(1, 2, 3))
        tasks = expand(spec)
        assert len(tasks) == 3
        assert [kwargs_of(t)["seed"] for t in tasks] == [1, 2, 3]
        assert tasks[0].id == "g/mode=a,seed=1"

    def test_expansion_is_deterministic(self):
        spec = SweepSpec(name="g", experiment=TOY,
                         axes={"mode": ["a", "b"], "gain": [1.0, 2.0]},
                         seeds=(1, 2))
        first = [(t.id, t.spec.kwargs) for t in expand(spec)]
        second = [(t.id, t.spec.kwargs) for t in expand(spec)]
        assert first == second


class TestZip:
    def test_lockstep_pairs(self):
        spec = SweepSpec(name="z", experiment=TOY, mode="zip",
                         axes={"mode": ["a", "b"], "gain": [1.0, 2.0]})
        tasks = expand(spec)
        assert [kwargs_of(t) for t in tasks] == [
            {"mode": "a", "gain": 1.0}, {"mode": "b", "gain": 2.0}]

    def test_length_mismatch_rejected(self):
        spec = SweepSpec(name="z", experiment=TOY, mode="zip",
                         axes={"mode": ["a", "b"], "gain": [1.0]})
        with pytest.raises(SweepValidationError, match="equal-length"):
            expand(spec)


class TestAblate:
    def test_baseline_plus_one_change_per_value(self):
        spec = SweepSpec(name="ab", experiment=TOY, mode="ablate",
                         base={"gain": 2.0},
                         axes={"mode": ["b"], "gain": [5.0, 7.0]})
        tasks = expand(spec)
        assert [t.id for t in tasks] == [
            "ab/base", "ab/mode=b", "ab/gain=5.0", "ab/gain=7.0"]
        # the baseline is base-only; each ablation changes one axis
        assert kwargs_of(tasks[0]) == {"gain": 2.0}
        assert kwargs_of(tasks[1]) == {"gain": 2.0, "mode": "b"}
        assert kwargs_of(tasks[2]) == {"gain": 5.0}

    def test_ablate_without_axes_rejected(self):
        spec = SweepSpec(name="ab", experiment=TOY, mode="ablate",
                         base={"gain": 2.0})
        with pytest.raises(SweepValidationError, match="nothing to ablate"):
            expand(spec)


class TestValidation:
    def test_unknown_experiment_lists_known_ids(self):
        spec = SweepSpec(name="v", experiment="EXP-NOPE",
                         axes={"x": [1]})
        errors = spec_errors(spec)
        assert len(errors) == 1
        assert "unknown experiment" in errors[0]
        assert "EXP-F2" in errors[0]

    def test_axis_not_in_schema_rejected(self):
        spec = SweepSpec(name="v", experiment=TOY, axes={"typo": [1]})
        with pytest.raises(SweepValidationError, match="not in .*schema"):
            expand(spec)

    def test_out_of_choices_value_rejected(self):
        spec = SweepSpec(name="v", experiment=TOY, axes={"mode": ["z"]})
        with pytest.raises(SweepValidationError, match="one of"):
            expand(spec)

    def test_out_of_range_value_rejected(self):
        spec = SweepSpec(name="v", experiment=TOY, axes={"gain": [-1.0]})
        with pytest.raises(SweepValidationError, match="below the minimum"):
            expand(spec)

    def test_type_mismatch_rejected(self):
        spec = SweepSpec(name="v", experiment=TOY, axes={"seed": [1.5]})
        with pytest.raises(SweepValidationError, match="expected int"):
            expand(spec)

    def test_bool_is_not_an_int(self):
        spec = SweepSpec(name="v", experiment=TOY, axes={"seed": [True]})
        with pytest.raises(SweepValidationError, match="expected int"):
            expand(spec)

    def test_scale_axis_forbidden(self):
        spec = SweepSpec(name="v", experiment=TOY, axes={"scale": [0.5]})
        with pytest.raises(SweepValidationError, match="'scale' cannot"):
            expand(spec)

    def test_base_shadowing_axis_rejected(self):
        spec = SweepSpec(name="v", experiment=TOY,
                         axes={"mode": ["a"]}, base={"mode": "b"})
        with pytest.raises(SweepValidationError, match="shadows an axis"):
            expand(spec)

    def test_seeds_conflict_with_explicit_seed_axis(self):
        spec = SweepSpec(name="v", experiment=TOY,
                         axes={"seed": [1, 2]}, seeds=(3,))
        with pytest.raises(SweepValidationError, match="conflicts"):
            expand(spec)

    def test_every_problem_reported_at_once(self):
        spec = SweepSpec(name="v", experiment=TOY, mode="zip",
                         axes={"mode": ["z", "a"], "gain": [-1.0]})
        errors = spec_errors(spec)
        assert len(errors) >= 3  # bad choice, bad range, zip mismatch

    def test_undeclared_schema_is_permissive(self):
        # EXP-F2 declares no params: any axis name passes validation
        spec = SweepSpec(name="v", experiment="EXP-F2",
                         axes={"anything": [1, 2]})
        assert spec_errors(spec) == []

    def test_experiment_id_spelling_normalized(self):
        spec = SweepSpec(name="v", experiment="toy_sweep",
                         axes={"mode": ["a"]})
        tasks = expand(spec)
        assert tasks[0].spec.module == "tests.sweep._toy"
