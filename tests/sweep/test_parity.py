"""The committed specs and their parity with the hand-written matrices.

The headline acceptance check: EXP-ARENA's matrix expressed as the
committed sweep spec produces exactly the ranked controller table the
monolithic ``arena.run()`` builds, cell for cell.
"""

import pytest

from repro.experiments import arena
from repro.sweep import load_spec, sweep

ARENA_SPEC = "examples/sweeps/arena_matrix.toml"
RESILIENCE_SPEC = "examples/sweeps/resilience_matrix.toml"
CI_SPEC = "examples/sweeps/ci_smoke.toml"

SCALE = 0.02  # tiny but non-degenerate: every bout still measures


def load(path):
    pytest.importorskip("tomllib")
    return load_spec(path)


class TestCommittedSpecs:
    def test_all_specs_validate_and_expand(self):
        from repro.sweep import expand

        assert len(expand(load(ARENA_SPEC))) == 12
        assert len(expand(load(CI_SPEC))) == 8

    def test_resilience_matrix_expands_to_24_tasks(self):
        from repro.sweep import expand

        tasks = expand(load(RESILIENCE_SPEC))
        assert len(tasks) >= 24
        ids = {t.id for t in tasks}
        assert ("resilience-matrix/controller=pgmcc,"
                "scenario=acker-crash,liveness=False") in ids
        # the watchdog is a real axis: half the matrix runs without it
        assert sum(1 for t in tasks
                   if dict(t.spec.kwargs)["liveness"] is False) == 12


class TestArenaParity:
    @pytest.fixture(scope="class")
    def sweep_run(self, tmp_path_factory):
        return sweep(load(ARENA_SPEC), jobs=2, scale=SCALE,
                     cache_dir=tmp_path_factory.mktemp("cache"),
                     baseline=None)

    def test_every_cell_ok(self, sweep_run):
        assert sweep_run.report["totals"] == {
            "tasks": 12, "ok": 12, "failed": 0}

    def test_ranked_table_matches_monolithic_run(self, sweep_run):
        mono = arena.run(scale=SCALE)
        agg = sweep_run.report["aggregate"]
        assert agg["rows"] == mono.rows
        for key in ("pgmcc_in_envelope", "discriminates"):
            assert agg["metrics"][key] == mono.metrics[key]

    def test_cell_metrics_match_monolithic_bouts(self, sweep_run):
        mono = arena.run(scale=SCALE)
        for task in sweep_run.report["tasks"]:
            controller = task["axes"]["controller"]
            scenario = task["axes"]["scenario"]
            assert (task["metrics"]["goodput_bps"]
                    == mono.metrics[f"{controller}:{scenario}:goodput_bps"])
