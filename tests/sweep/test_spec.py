"""SweepSpec/AblationSpec construction, dict and file loading."""

import json

import pytest

from repro.sweep import AblationSpec, SweepSpec, load_spec, spec_from_dict


class TestConstruction:
    def test_axes_and_base_freeze_to_tuples(self):
        spec = SweepSpec(name="s", experiment="E",
                         axes={"x": [1, 2], "y": [[3, 4], [5]]},
                         base={"z": 7})
        assert spec.axes == (("x", (1, 2)), ("y", ((3, 4), (5,))))
        assert spec.base == (("z", 7),)
        assert spec.axes_dict == {"x": (1, 2), "y": ((3, 4), (5,))}
        assert spec.base_dict == {"z": 7}
        hash(spec)  # frozen + fully tupled

    def test_ablation_spec_defaults_to_ablate_mode(self):
        assert AblationSpec(name="a", experiment="E",
                            axes={"x": [1]}).mode == "ablate"
        assert SweepSpec(name="s", experiment="E").mode == "grid"

    def test_to_dict_round_trips_through_from_dict(self):
        spec = SweepSpec(name="s", experiment="E", mode="zip",
                         axes={"x": [1, 2]}, base={"z": 7},
                         seeds=(1, 2), scale=0.5, rank_by="score",
                         rank_descending=True, metrics=("score",))
        again = spec_from_dict(spec.to_dict())
        assert again == spec
        assert again.digest_payload() == spec.digest_payload()


class TestFromDict:
    def test_report_table_flattens(self):
        spec = spec_from_dict({
            "name": "s", "experiment": "E", "axes": {"x": [1]},
            "report": {"rank_by": "score", "descending": True,
                       "metrics": ["score"]},
        })
        assert spec.rank_by == "score"
        assert spec.rank_descending is True
        assert spec.metrics == ("score",)

    def test_unknown_key_raises(self):
        with pytest.raises(TypeError, match="unknown sweep-spec key"):
            spec_from_dict({"name": "s", "experiment": "E", "axis": {}})
        with pytest.raises(TypeError, match="unknown report option"):
            spec_from_dict({"name": "s", "experiment": "E",
                            "report": {"sort_by": "x"}})

    def test_missing_required_keys_raise(self):
        with pytest.raises(TypeError, match="'experiment'"):
            spec_from_dict({"name": "s"})
        with pytest.raises(TypeError, match="'name'"):
            spec_from_dict({"experiment": "E"})

    def test_mode_ablate_yields_ablation_spec(self):
        spec = spec_from_dict({"name": "s", "experiment": "E",
                               "mode": "ablate", "axes": {"x": [1]}})
        assert isinstance(spec, AblationSpec)

    def test_non_dict_rejected(self):
        with pytest.raises(TypeError):
            spec_from_dict(["name", "experiment"])


class TestLoadSpec:
    DOC = {"name": "s", "experiment": "E", "axes": {"x": [1, 2]},
           "base": {"z": 3}, "scale": 0.25}

    def test_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(self.DOC))
        spec = load_spec(path)
        assert spec.name == "s"
        assert spec.axes == (("x", (1, 2)),)
        assert spec.scale == 0.25

    def test_toml(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "spec.toml"
        path.write_text(
            'name = "s"\nexperiment = "E"\nscale = 0.25\n'
            '[axes]\nx = [1, 2]\n[base]\nz = 3\n')
        assert load_spec(path) == load_spec_json(tmp_path, self.DOC)

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("name: s")
        with pytest.raises(ValueError, match="unsupported spec format"):
            load_spec(path)


def load_spec_json(tmp_path, doc):
    path = tmp_path / "equivalent.json"
    path.write_text(json.dumps(doc))
    return load_spec(path)
