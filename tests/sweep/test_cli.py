"""The ``python -m repro.sweep`` CLI: subcommands, artifacts, exits."""

import json

import pytest

from repro.sweep.cli import main

SPEC_DOC = {
    "name": "cli-toy",
    "experiment": "EXP-RESILIENCE-CELL",
    "scale": 0.05,
    "axes": {"liveness": [True, False]},
    "base": {"scenario": "partition", "seed": 31},
    "report": {"rank_by": "ttr_s", "metrics": ["ttr_s",
                                               "goodput_retained"]},
}


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC_DOC))
    return str(path)


class TestValidate:
    def test_valid_spec_exit_zero(self, spec_path, capsys):
        assert main(["validate", spec_path]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "2 task(s)" in out

    def test_invalid_spec_exit_two_lists_problems(self, tmp_path, capsys):
        doc = dict(SPEC_DOC, axes={"liveness": [True], "typo": [1]},
                   mode="zip")
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        assert main(["validate", str(path)]) == 2
        err = capsys.readouterr().err
        assert "problem(s)" in err
        assert "typo" in err

    def test_unreadable_spec_exit_two(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path / "absent.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_spec_key_exit_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(dict(SPEC_DOC, axis={})))
        assert main(["validate", str(path)]) == 2
        assert "unknown sweep-spec key" in capsys.readouterr().err


class TestExpand:
    def test_prints_matrix_without_running(self, spec_path, capsys):
        assert main(["expand", spec_path]) == 0
        out = capsys.readouterr().out
        assert "cli-toy/liveness=True" in out
        assert "cli-toy/liveness=False" in out
        assert "scenario='partition'" in out
        assert "2 task(s)" in out


class TestRun:
    def test_run_writes_all_artifacts(self, spec_path, tmp_path, capsys):
        manifest_path = tmp_path / "manifest.json"
        json_path = tmp_path / "report.json"
        md_path = tmp_path / "report.md"
        rc = main(["run", spec_path, "-j", "2", "--quiet",
                   "--cache-dir", str(tmp_path / "cache"),
                   "--manifest", str(manifest_path),
                   "--json", str(json_path),
                   "--report", str(md_path),
                   "--baseline", str(tmp_path / "absent.json")])
        assert rc == 0

        manifest = json.loads(manifest_path.read_text())
        assert manifest["schema"] == "pgmcc.run-manifest/v2"
        assert manifest["sweep"]["spec"]["name"] == "cli-toy"
        assert manifest["totals"]["ok"] == 2

        report = json.loads(json_path.read_text())
        assert report["schema"] == "pgmcc.sweep-report/v1"
        assert report["totals"]["ok"] == 2
        assert "regression" not in report  # baseline file absent

        text = md_path.read_text()
        assert "# Sweep report: cli-toy" in text
        assert "## Ranked by `ttr_s`" in text

        out = capsys.readouterr().out
        assert "2/2 ok" in out
        assert report["report_digest"] in out

    def test_digest_stable_j1_j2_cached(self, spec_path, tmp_path, capsys):
        digests = []
        cache = str(tmp_path / "cache")
        for jobs in ("1", "2", "1"):
            path = tmp_path / f"r{len(digests)}.json"
            rc = main(["run", spec_path, "-j", jobs, "--quiet",
                       "--cache-dir", cache, "--json", str(path),
                       "--baseline", str(tmp_path / "absent.json")])
            assert rc == 0
            digests.append(
                json.loads(path.read_text())["report_digest"])
        capsys.readouterr()
        assert len(set(digests)) == 1
        # third run was fully cached
        last = json.loads((tmp_path / "r2.json").read_text())
        assert last["run"]["cache_hits"] == 2

    def test_regression_gate_verdicts(self, spec_path, tmp_path, capsys):
        # seed-vs-fail behavior flows straight from perf_gate: a
        # baseline without matching history seeds (exit 0); a baseline
        # whose scale series dwarfs the measurement fails (exit 1) --
        # this toy sweep produces no scale series, so only the engine
        # verdict could fail, and without --probe there is none.
        baseline = tmp_path / "BENCH_RESULTS.json"
        baseline.write_text(json.dumps({"sim_events_per_sec": None,
                                        "scale_metrics": {}}))
        rc = main(["run", spec_path, "--quiet",
                   "--cache-dir", str(tmp_path / "cache"),
                   "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "regression vs" in out
        assert "OK" in out

    def test_invalid_spec_run_exit_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(dict(SPEC_DOC,
                                        axes={"liveness": ["typo"]})))
        assert main(["run", str(path)]) == 2
        assert "problem(s)" in capsys.readouterr().err
