"""A fast, pure toy experiment for sweep tests.

Registered through the decorator API (which doubles as coverage of
third-party registration), with a full parameter schema so validation
paths are exercised.  Metrics are exact arithmetic on the kwargs, so
any sweep over it has fully predictable deltas and rankings.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, ParamSpec
from repro.experiments.registry import register_experiment

TOY_ID = "TOY-SWEEP"


@register_experiment(
    TOY_ID, hidden=True,
    description="pure toy experiment for sweep tests",
    params=(
        ParamSpec("gain", "float", default=1.0, low=0.0, high=100.0),
        ParamSpec("mode", "str", default="a", choices=("a", "b")),
        ParamSpec("seed", "int", default=0, low=0),
        ParamSpec("flag", "bool", default=False),
    ),
)
def run(scale: float = 1.0, gain: float = 1.0, mode: str = "a",
        seed: int = 0, flag: bool = False) -> ExperimentResult:
    if gain == 13.0:  # deterministic failure cell for isolation tests
        raise RuntimeError("unlucky gain")
    base = 10.0 if mode == "a" else 30.0
    result = ExperimentResult(
        name=f"toy-sweep-{mode}",
        params={"scale": scale, "gain": gain, "mode": mode,
                "seed": seed, "flag": flag},
        expectation="pure function of the kwargs",
    )
    result.add_row(mode=mode, gain=gain, seed=seed)
    result.metrics["score"] = base * gain + seed
    result.metrics["cost"] = round(100.0 * scale + (5.0 if flag else 0.0), 6)
    result.metrics["label"] = mode  # non-numeric: excluded from deltas
    return result
