"""End-to-end ``sweep()`` runs: reports, digests, manifests, caching."""

import pytest

import tests.sweep._toy  # noqa: F401 - registers TOY-SWEEP
from repro.sweep import SweepSpec, report_digest, sweep
from tests.runner.test_orchestrator import REPO_ROOT

TOY = "TOY-SWEEP"


def toy_spec(**overrides):
    fields = dict(
        name="toy-run",
        experiment=TOY,
        axes={"mode": ["a", "b"], "gain": [1.0, 2.0]},
        scale=0.5,
        rank_by="score",
        metrics=("score", "cost"),
    )
    fields.update(overrides)
    return SweepSpec(**fields)


def run_toy(spec, **kw):
    kw.setdefault("baseline", None)
    kw.setdefault("cache_dir", None)
    kw.setdefault("extra_sys_path", (REPO_ROOT,))
    return sweep(spec, **kw)


class TestSweepRun:
    def test_report_shape(self):
        run = run_toy(toy_spec())
        report = run.report
        assert report["schema"] == "pgmcc.sweep-report/v1"
        assert run.ok
        assert report["totals"] == {"tasks": 4, "ok": 4, "failed": 0}
        assert report["metrics"] == ["score", "cost"]
        assert len(report["tasks"]) == 4
        # mode=a gain=1: score 10; mode=b gain=2: score 60
        scores = {t["id"]: t["metrics"]["score"] for t in report["tasks"]}
        assert scores["toy-run/mode=a,gain=1.0"] == 10.0
        assert scores["toy-run/mode=b,gain=2.0"] == 60.0
        assert report["ranked"][0]["score"] == 10.0
        assert {d["axis"] for d in report["axis_deltas"]} == {"mode", "gain"}
        assert report["results_digest"] == run.manifest["results_digest"]
        assert report["report_digest"] == report_digest(report)
        assert run.results["toy-run/mode=a,gain=1.0"].metrics["score"] == 10.0

    def test_scale_override_reaches_cells(self):
        run = run_toy(toy_spec(axes={"mode": ["a"]}), scale=0.25)
        # cost = 100 * scale (+0 for flag=False)
        [task] = run.report["tasks"]
        assert task["metrics"]["cost"] == 25.0
        assert run.report["scale"] == 0.25

    def test_manifest_carries_the_sweep_block(self):
        run = run_toy(toy_spec())
        block = run.manifest["sweep"]
        assert block["spec"]["name"] == "toy-run"
        assert set(block["tasks"]) == {t.id for t in run.tasks}
        assert block["tasks"]["toy-run/mode=a,gain=1.0"] == {
            "mode": "a", "gain": 1.0}

    def test_digest_stable_across_jobs_and_cache(self, tmp_path):
        cache = tmp_path / "cache"
        spec = toy_spec()
        serial = run_toy(spec, cache_dir=cache)
        parallel = run_toy(spec, jobs=4)
        cached = run_toy(spec, cache_dir=cache)
        digests = {r.report["report_digest"]
                   for r in (serial, parallel, cached)}
        assert len(digests) == 1
        assert cached.report["run"]["cache_hits"] == 4
        assert serial.report["run"]["cache_hits"] == 0

    def test_failed_cell_reported_siblings_complete(self):
        # gain=13 is the toy's deterministic failure cell: its sibling
        # still completes and the report carries both outcomes.
        spec = SweepSpec(name="toy-fail", experiment=TOY,
                         axes={"gain": [1.0, 13.0]}, scale=0.5,
                         metrics=("score",))
        run = run_toy(spec, retries=0)
        assert not run.ok
        assert run.report["totals"] == {"tasks": 2, "ok": 1, "failed": 1}
        by_id = {t["id"]: t for t in run.report["tasks"]}
        assert by_id["toy-fail/gain=13.0"]["status"] == "failed"
        assert by_id["toy-fail/gain=1.0"]["metrics"]["score"] == 10.0

    def test_regression_fail_flips_ok(self):
        run = run_toy(toy_spec(axes={"mode": ["a"]}))
        assert run.ok
        run.report["regression"] = {"status": "fail", "reasons": ["x"],
                                    "baseline": "b"}
        assert not run.ok

    def test_report_digest_ignores_volatile_sections(self):
        run1 = run_toy(toy_spec())
        report = dict(run1.report)
        mutated = dict(report)
        mutated["run"] = {"run_id": "other", "jobs": 99,
                         "cache_hits": 7, "wall_s": 1e9}
        mutated["regression"] = {"status": "fail", "reasons": [],
                                 "baseline": "x"}
        assert report_digest(mutated) == report_digest(report)

    def test_validation_failure_raises_before_any_run(self):
        from repro.sweep import SweepValidationError

        with pytest.raises(SweepValidationError):
            run_toy(toy_spec(axes={"typo": [1]}))

    def test_dict_and_file_specs_accepted(self, tmp_path):
        import json

        doc = {"name": "toy-doc", "experiment": TOY,
               "axes": {"mode": ["a"]}, "scale": 0.5}
        from_dict = run_toy(doc)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc))
        from_file = run_toy(path)
        assert (from_dict.report["report_digest"]
                == from_file.report["report_digest"])


class TestMarkdown:
    def test_render_covers_all_sections(self):
        from repro.sweep import render_markdown

        spec = toy_spec(seeds=(1, 2), description="toy sweep test")
        run = run_toy(spec)
        run.report["regression"] = {"status": "ok", "reasons": [],
                                    "baseline": "BENCH_RESULTS.json"}
        text = render_markdown(run.report)
        assert "# Sweep report: toy-run" in text
        assert "toy sweep test" in text
        assert "## Cells" in text
        assert "## Per-axis deltas" in text
        assert "### axis `seed`" in text
        assert "## Ranked by `score`" in text
        assert "## Regression vs `BENCH_RESULTS.json`: **OK**" in text
        assert "`toy-run/mode=a,gain=1.0,seed=1`" in text
