"""EXP-ARENA smoke and oracle tests (fast scales)."""

from __future__ import annotations

import json

import pytest

from repro.experiments import arena
from repro.experiments.run_all import specs_by_id


@pytest.fixture(scope="module")
def result():
    return arena.run(scale=0.15)


def test_registered_and_resolvable():
    (spec,) = specs_by_id(["EXP-ARENA"])
    assert spec.module == "repro.experiments.arena"
    # shell-friendly spellings resolve to the same spec
    assert specs_by_id(["exp_arena"]) == [spec]
    assert specs_by_id(["exp-arena"]) == [spec]


def test_ranked_table_covers_every_backend(result):
    controllers = [row["controller"] for row in result.rows]
    assert set(controllers) >= {"pgmcc", "jain", "aimd", "tfrc"}
    assert len(controllers) >= 3
    ranks = [row["rank"] for row in result.rows]
    assert ranks == list(range(1, len(result.rows) + 1))
    scores = [row["fairness_score"] for row in result.rows]
    assert scores == sorted(scores)


def test_every_bout_recorded(result):
    for name in ("pgmcc", "jain", "aimd", "tfrc"):
        for scenario in arena.SCENARIOS:
            assert f"{name}:{scenario}:goodput_bps" in result.metrics
            assert result.metrics[f"{name}:{scenario}:goodput_bps"] > 0


def test_invariants_hold_everywhere(result):
    violations = [row["inv_violations"] for row in result.rows]
    assert violations == [0] * len(result.rows)


def test_markdown_report(result):
    md = result.metrics["markdown_report"]
    assert md.startswith("# EXP-ARENA")
    assert "| rank |" in md or "| 1 |" in md
    for row in result.rows:
        assert row["controller"] in md


def test_digest_stable_and_json_safe(result):
    doc = result.to_dict()
    json.dumps(doc)  # fully serializable
    assert result.digest() == arena.run(scale=0.15).digest()


def test_fairness_helpers():
    assert arena.fairness_score(1.0) == 0.0
    assert arena.fairness_score(2.0) == arena.fairness_score(0.5)
    assert arena.in_envelope(1.0)
    assert not arena.in_envelope(100.0)


@pytest.mark.slow
def test_envelope_oracles_at_report_scale():
    """The acceptance configuration: runner scale 1.0 x factor 0.5."""
    full = arena.run(scale=0.5)
    assert full.metrics["pgmcc_in_envelope"] is True
    assert full.metrics["discriminates"] is True
