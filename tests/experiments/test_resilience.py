"""EXP-RESILIENCE smoke, oracle and TTR-math tests (fast scales)."""

from __future__ import annotations

import json

import pytest

from repro.experiments import resilience
from repro.experiments.resilience import DeliverySampler
from repro.experiments.run_all import specs_by_id


class _FixedSampler(DeliverySampler):
    """A sampler with a hand-written sample series (no sim needed)."""

    def __init__(self, samples):
        self.samples = samples
        self.dt = 1.0


class TestTtrMath:
    def _samples(self, rates):
        """Turn per-second rates into cumulative (t, delivered) samples."""
        total, samples = 0, [(0.0, 0)]
        for i, rate in enumerate(rates):
            total += rate
            samples.append((float(i + 1), total))
        return samples

    def test_clean_dip_and_recovery(self):
        # 10 pkt/s steady, dead during [4, 6), back at t=6
        sampler = _FixedSampler(self._samples([10, 10, 10, 10, 0, 0, 10, 10]))
        ttr = sampler.time_to_recover(fault_at=4.0, heal_at=6.0,
                                      pre_window=4.0)
        # the first recovered bin is [6, 7): TTR = 7 - 6
        assert ttr == pytest.approx(1.0)

    def test_never_impacted_is_zero(self):
        sampler = _FixedSampler(self._samples([10] * 8))
        assert sampler.time_to_recover(4.0, 6.0, 4.0) == 0.0

    def test_never_recovered_is_none(self):
        sampler = _FixedSampler(self._samples([10, 10, 10, 10, 0, 0, 0, 0]))
        assert sampler.time_to_recover(4.0, 6.0, 4.0) is None

    def test_no_prefault_traffic_is_none(self):
        sampler = _FixedSampler(self._samples([0, 0, 0, 0, 10, 10, 10, 10]))
        assert sampler.time_to_recover(4.0, 6.0, 4.0) is None

    def test_permanent_fault_measures_full_disruption(self):
        # crash at t=4 heals at t=4 (heal_at == fault_at): the outage
        # window itself counts against the TTR
        sampler = _FixedSampler(self._samples([10, 10, 10, 10, 0, 0, 10, 10]))
        ttr = sampler.time_to_recover(fault_at=4.0, heal_at=4.0,
                                      pre_window=4.0)
        assert ttr == pytest.approx(3.0)

    def test_recovery_faster_than_heal_clamps_to_zero(self):
        # delivery back above threshold before the nominal heal time
        sampler = _FixedSampler(self._samples([10, 10, 10, 10, 0, 10, 10]))
        ttr = sampler.time_to_recover(fault_at=4.0, heal_at=6.5,
                                      pre_window=4.0)
        assert ttr == 0.0

    def test_late_dip_only_counts_after_fault(self):
        # a sub-threshold bin *before* the fault must not arm the
        # impact detector
        sampler = _FixedSampler(self._samples([10, 0, 10, 10, 10, 0, 10]))
        ttr = sampler.time_to_recover(fault_at=4.0, heal_at=6.0,
                                      pre_window=3.0)
        assert ttr == pytest.approx(1.0)


def test_registered_and_resolvable():
    (spec,) = specs_by_id(["EXP-RESILIENCE"])
    assert spec.module == "repro.experiments.resilience"
    assert specs_by_id(["exp_resilience"]) == [spec]
    assert specs_by_id(["exp-resilience"]) == [spec]


@pytest.fixture(scope="module")
def result():
    return resilience.run(scale=0.35)


def test_matrix_covers_every_backend_and_scenario(result):
    pairs = {(row["controller"], row["scenario"])
             for row in result.rows if row["liveness"]}
    for name in ("pgmcc", "jain", "aimd", "tfrc"):
        for scenario in resilience.SCENARIOS:
            assert (name, scenario) in pairs
            assert f"{name}:{scenario}:ttr_s" in result.metrics


def test_every_cell_recovers_within_slo(result):
    assert result.metrics["all_recovered"] is True
    assert result.metrics["all_slo_ok"] is True


def test_zero_invariant_violations(result):
    assert result.metrics["total_invariant_violations"] == 0


def test_watchdog_beats_stall_timer(result):
    assert result.metrics["watchdog_faster"] is True
    assert result.metrics["ttr_improvement_s"] > 0
    assert result.metrics["ttr_watchdog_s"] < result.metrics["ttr_stall_only_s"]


def test_baseline_row_is_liveness_off(result):
    baselines = [row for row in result.rows if not row["liveness"]]
    assert len(baselines) == 1
    assert baselines[0]["controller"] == "pgmcc"
    assert baselines[0]["scenario"] == "acker-crash"


def test_rate_backends_get_the_wider_slo(result):
    for row in result.rows:
        expected = (resilience.TTR_SLO_S if row["kind"] == "window"
                    else resilience.RATE_TTR_SLO_S)
        assert row["slo_s"] == expected


def test_markdown_report(result):
    md = result.metrics["markdown_report"]
    assert md.startswith("# EXP-RESILIENCE")
    assert "Watchdog vs stall timer" in md
    for scenario in resilience.SCENARIOS:
        assert scenario in md


def test_digest_stable_and_json_safe(result):
    doc = result.to_dict()
    json.dumps(doc)  # fully serializable
    assert result.digest() == resilience.run(scale=0.35).digest()
