"""Shape assertions for every figure's experiment, at reduced scale.

Each test asserts the *shape* the paper reports — who wins, rough
factors, where plateaus sit — not absolute numbers (our substrate is a
simulator, not the authors' testbed).
"""

import pytest

from repro.experiments import (
    ablations,
    fig2_loss_filter,
    fig3_intra_fairness,
    fig4_inter_fairness,
    fig5_acker_selection,
    fig6_heterogeneous_rtt,
    fig7_uncorrelated_loss,
    unreliable_mode,
)


@pytest.fixture(scope="module")
def fig2():
    return fig2_loss_filter.run(scale=0.4)


@pytest.fixture(scope="module")
def fig3():
    return fig3_intra_fairness.run(scale=0.4)


@pytest.fixture(scope="module")
def fig4():
    return fig4_inter_fairness.run(scale=0.4)


@pytest.fixture(scope="module")
def fig5():
    return fig5_acker_selection.run(scale=0.4)


class TestFig2:
    def test_lossy_output_in_band(self, fig2):
        """5% random loss: mean filter output near 0.05·2^16 ≈ 3277,
        inside the figure's 2000–6000 band."""
        mean = fig2.metrics["lossy-5pct:w65000:mean"]
        raw = fig2.metrics["lossy-5pct:raw_loss"]
        assert 2000 < mean < 6000
        assert mean / 65536 == pytest.approx(raw, rel=0.35)

    def test_smaller_w_noisier(self, fig2):
        """Fig. 2: the three W values differ in smoothing."""
        for scenario in ("congested-60k", "lossy-5pct"):
            stds = [fig2.metrics[f"{scenario}:w{w}:std"] for w in (64000, 65000, 65280)]
            assert stds[0] > stds[1] > stds[2]

    def test_congested_loss_sparse_and_low(self, fig2):
        assert fig2.metrics["congested-60k:raw_loss"] < 0.10

    def test_rows_cover_all_scenarios(self, fig2):
        assert len(fig2.rows) == 6  # 2 scenarios x 3 W values


class TestFig3:
    def test_nonlossy_even_split(self, fig3):
        assert fig3.metrics["non-lossy:jain"] > 0.9

    def test_nonlossy_first_session_yields(self, fig3):
        alone = fig3.metrics["non-lossy:rate1_alone"]
        shared = fig3.metrics["non-lossy:rate1_shared"]
        assert shared < 0.75 * alone
        assert shared > 0.3 * alone

    def test_lossy_unperturbed(self, fig3):
        """Lossy link: no congestion coupling, session 1's rate holds."""
        alone = fig3.metrics["lossy:rate1_alone"]
        shared = fig3.metrics["lossy:rate1_shared"]
        assert shared == pytest.approx(alone, rel=0.35)

    def test_switches_happen_without_harm(self, fig3):
        """c=1 here: the 2-receiver session sees acker switches."""
        assert fig3.metrics["non-lossy:switches1"] >= 1


class TestFig4:
    def test_no_starvation(self, fig4):
        for label in ("non-lossy", "lossy"):
            assert fig4.metrics[f"{label}:ratio"] < 3.5

    def test_pgm_regains_link_after_tcp(self, fig4):
        alone = fig4.metrics["non-lossy:pgm_alone"]
        after = fig4.metrics["non-lossy:pgm_after"]
        assert after > 0.75 * alone

    def test_pgm_yields_to_tcp(self, fig4):
        alone = fig4.metrics["non-lossy:pgm_alone"]
        shared = fig4.metrics["non-lossy:pgm_shared"]
        assert shared < 0.8 * alone

    def test_colocated_receivers_cause_switches(self, fig4):
        assert fig4.metrics["non-lossy:acker_switches"] >= 1


class TestFig5:
    def test_plateau_sequence(self, fig5):
        p1 = fig5.metrics["plateau1"]
        p2 = fig5.metrics["plateau2"]
        p3 = fig5.metrics["plateau3"]
        p4 = fig5.metrics["plateau4"]
        # ≈500 alone on L2
        assert p1 == pytest.approx(500_000, rel=0.15)
        # ≈400 with PR1 on L1
        assert p2 == pytest.approx(400_000, rel=0.15)
        # TCP on L2 drags the session well below L1's rate
        assert p3 < 0.8 * p2
        # recovery after TCP ends
        assert p4 > 0.8 * p2

    def test_acker_follows_slowest_path(self, fig5):
        ackers = fig5.metrics["ackers"]
        assert ackers["phase1"] == "pr2"
        assert ackers["phase2"] == "pr1"
        assert ackers["phase3"] == "pr2"
        assert ackers["phase4"] == "pr1"

    def test_switches_at_transitions(self, fig5):
        assert fig5.metrics["switch_count"] >= 3

    def test_multiple_receivers_per_site_same_structure(self):
        """The paper: identical results (plateaus, acker sites) in NS
        with up to 10 receivers at each of PR1 and PR2."""
        multi = fig5_acker_selection.run(scale=0.4, receivers_per_site=3)
        assert multi.metrics["plateau1"] == pytest.approx(500_000, rel=0.15)
        assert multi.metrics["plateau2"] == pytest.approx(400_000, rel=0.15)
        assert multi.metrics["plateau3"] < 0.8 * multi.metrics["plateau2"]
        ackers = multi.metrics["ackers"]
        # acker sits on the L2 site first, the L1 site after the join
        assert ackers["phase1"].startswith("pr2")
        assert ackers["phase2"].startswith("pr1")
        assert ackers["phase3"].startswith("pr2")


class TestFig6:
    @pytest.fixture(scope="class")
    def fig6(self):
        return fig6_heterogeneous_rtt.run(scale=0.25)

    def test_acker_is_a_group_member(self, fig6):
        for label in ("no-NE", "NE-suppression"):
            acker = fig6.metrics[f"{label}:dominant_acker"]
            assert acker in {"pr0", "pr1", "pr2", "pr3"}

    def test_tcp_not_starved(self, fig6):
        """RTT spread 3–4x; the ratio must stay within TCP-vs-TCP
        unfairness bounds, not starvation."""
        for label in ("no-NE", "NE-suppression", "NE-rx-loss-aware"):
            assert fig6.metrics[f"{label}:ratio"] < 8.0
            assert fig6.metrics[f"{label}:pgm_rate"] > 20_000
            assert fig6.metrics[f"{label}:tcp_rate"] > 20_000

    def test_suppression_absorbs_nak_share(self, fig6):
        """Within the NE run, a substantial share of NAKs seen by the
        routers never reaches the source.  (Cross-run totals are not
        comparable: a different acker changes the loss trajectory.)"""
        suppressed = fig6.metrics["NE-suppression:ne_naks_suppressed"]
        forwarded = fig6.metrics["NE-suppression:ne_naks_forwarded"]
        assert suppressed > 0
        assert suppressed / (suppressed + forwarded) > 0.1

    def test_suppression_counters_active(self, fig6):
        """Both NE modes actually suppress NAKs (the §3.7 rule's
        forward-worse-reports behaviour has a deterministic unit test;
        cross-mode totals are too run-dependent to order here)."""
        for label in ("NE-suppression", "NE-rx-loss-aware"):
            assert fig6.metrics[f"{label}:ne_naks_suppressed"] > 0


class TestFig7:
    @pytest.fixture(scope="class")
    def fig7(self):
        return fig7_uncorrelated_loss.run(scale=0.12, total_receivers=60)

    def test_no_drop_to_zero(self, fig7):
        """The 50-receiver join must not collapse the session; the
        paper even allows a modest increase."""
        assert 0.5 < fig7.metrics["change_ratio"] < 2.0

    def test_tcp_on_own_link_unaffected(self, fig7):
        before = fig7.metrics["tcp_before"]
        after = fig7.metrics["tcp_after"]
        assert after > 0.5 * before

    def test_no_repair_storm(self, fig7):
        assert fig7.metrics["rdata_sent"] < fig7.metrics["odata_sent"]

    def test_no_stall_collapse(self, fig7):
        assert fig7.metrics["stalls"] <= 2


class TestUnreliableMode:
    @pytest.fixture(scope="class")
    def unrel(self):
        return unreliable_mode.run(scale=0.4)

    def test_no_repairs_ever(self, unrel):
        assert unrel.metrics["rdata_sent"] == 0

    def test_rate_follows_link(self, unrel):
        assert unrel.metrics["rate_after"] < 0.6 * unrel.metrics["rate_before"]

    def test_app_steps_down(self, unrel):
        levels = [lv.rate_bps for lv in unreliable_mode.LEVELS]
        by_name = {lv.name: lv.rate_bps for lv in unreliable_mode.LEVELS}
        assert (
            by_name[unrel.metrics["level_after"]]
            < by_name[unrel.metrics["level_before"]]
        )


class TestAblations:
    def test_switch_bias_reduces_switches(self):
        result = ablations.run_switch_bias(scale=0.25, cs=(1.0, 0.75))
        assert (
            result.metrics["c=0.75:switches"] <= result.metrics["c=1.0:switches"]
        )
        # throughput unaffected by the bias
        assert result.metrics["c=0.75:pgm_shared"] == pytest.approx(
            result.metrics["c=1.0:pgm_shared"], rel=0.6
        )

    def test_rtt_modes_equivalent(self):
        result = ablations.run_rtt_mode(scale=0.25)
        for phase in (1, 2):
            assert result.metrics[f"time:plateau{phase}"] == pytest.approx(
                result.metrics[f"seq:plateau{phase}"], rel=0.3
            )

    def test_dupack_thresholds_all_fair(self):
        result = ablations.run_dupack(scale=0.25, thresholds=(2, 3, 5))
        for threshold in (2, 3, 5):
            assert result.metrics[f"dupack={threshold}:ratio"] < 4.5

    def test_ssthresh_six_avoids_stalls(self):
        result = ablations.run_ssthresh(scale=0.25, thresholds=(6,))
        assert result.metrics["ssthresh=6:stalls"] <= 2

    def test_padhye_model_flags_lossy_receiver(self):
        result = ablations.run_throughput_model(scale=0.3)
        assert result.metrics["padhye:dominant"] == "lossy"
        assert result.metrics["padhye:rate"] < 500_000

    def test_adaptive_ssthresh_no_starvation(self):
        result = ablations.run_adaptive_ssthresh(scale=0.3)
        for label in ("fixed-6", "adaptive"):
            assert result.metrics[f"{label}:pgm"] > 50_000
            assert result.metrics[f"{label}:tcp"] > 50_000

    def test_loss_estimators_track_link(self):
        result = ablations.run_loss_estimator(scale=0.3)
        for estimator in ("filter", "tfrc"):
            # the estimator's time average tracks the loss actually
            # experienced in that run (the nominal 3% has sampling
            # variance at short durations)
            raw = result.metrics[f"{estimator}:raw_loss"]
            assert abs(result.metrics[f"{estimator}:loss"] - raw) < 0.015
            assert 0.005 < result.metrics[f"{estimator}:loss"] < 0.08


class TestScalability:
    @pytest.fixture(scope="class")
    def scale_result(self):
        from repro.experiments import scalability

        return scalability.run(scale=0.3, group_sizes=(20, 60))

    def test_single_acker_constant_ack_load(self, scale_result):
        for n in (20, 60):
            for mode in ("plain", "ne"):
                assert 0.5 < scale_result.metrics[f"n{n}:{mode}:acks_per_data"] < 1.5

    def test_ne_suppression_flattens_nak_growth(self, scale_result):
        ne_growth = scale_result.metrics["n60:ne:naks"] / max(
            scale_result.metrics["n20:ne:naks"], 1
        )
        plain_growth = scale_result.metrics["n60:plain:naks"] / max(
            scale_result.metrics["n20:plain:naks"], 1
        )
        assert plain_growth > ne_growth

    def test_throughput_group_size_independent(self, scale_result):
        assert (
            scale_result.metrics["n60:ne:rate"]
            > 0.8 * scale_result.metrics["n20:ne:rate"]
        )


class TestFairnessSweep:
    def test_reduced_grid_no_starvation(self):
        from repro.experiments import fairness_sweep

        grid = ((250_000, 10, 0.0), (500_000, 30, 0.02), (1_000_000, 60, 0.0))
        result = fairness_sweep.run(scale=0.3, grid=grid)
        assert result.metrics["worst_ratio"] < 4.5
        for row in result.rows:
            assert row["pgm_kbps"] > 0
            assert row["tcp_kbps"] > 0

    def test_delayed_acks_fair_both_ways(self):
        result = ablations.run_delayed_acks(scale=0.3)
        for label in ("delack", "no-delack"):
            assert result.metrics[f"{label}:ratio"] < 4.5


class TestRobustness:
    def test_multipath_survives_reordering(self):
        from repro.experiments import robustness

        result = robustness.run_multipath(scale=0.3)
        assert result.metrics["stalls"] == 0
        assert result.metrics["sprayed_rate"] > 0.4 * result.metrics["single_rate"]

    def test_churn_never_wedges(self):
        from repro.experiments import robustness

        result = robustness.run_churn(scale=0.4)
        assert result.metrics["churn_events"] >= 4
        assert result.metrics["rate"] > 100_000
        assert result.metrics["longest_gap"] < 10.0

    def test_bursty_loss_survives(self):
        from repro.experiments import robustness

        result = robustness.run_bursty_loss(scale=0.3)
        for pattern in ("bernoulli", "bursty"):
            assert result.metrics[f"{pattern}:rate"] > 50_000

    def test_chaos_survives_clean(self):
        from repro.experiments import robustness

        result = robustness.run_chaos(scale=0.3)
        assert result.metrics["crashes"] == 1
        assert result.metrics["switches"] >= 1  # acker re-elected
        assert result.metrics["rate"] > 50_000
        assert result.metrics["longest_gap"] < 10.0
        assert result.metrics["violations"] == 0


class TestDropToZero:
    @pytest.fixture(scope="class")
    def dtz(self):
        from repro.experiments import drop_to_zero

        return drop_to_zero.run(scale=0.3, group_sizes=(1, 20))

    def test_naive_aggregation_collapses(self, dtz):
        assert dtz.metrics["eq-naive:collapse"] > 2.0

    def test_pgmcc_group_size_independent(self, dtz):
        assert dtz.metrics["pgmcc:collapse"] < 1.5
        assert dtz.metrics["pgmcc:rate@20"] > 100_000

    def test_max_report_group_size_independent(self, dtz):
        assert dtz.metrics["eq-max:collapse"] < 2.0


class TestFecScaling:
    @pytest.fixture(scope="class")
    def fec(self):
        from repro.experiments import fec_scaling

        return fec_scaling.run(scale=0.3, n_receivers=24)

    def test_rdata_repair_share_substantial(self, fec):
        assert fec.metrics["rdata:repair_share"] > 0.05

    def test_fec_sends_no_repairs(self, fec):
        for r in (0, 1, 2):
            assert fec.metrics[f"fec{r}:rdata"] == 0

    def test_redundancy_ladder(self, fec):
        assert (
            fec.metrics["fec0:mean_residual"]
            > fec.metrics["fec1:mean_residual"]
            >= fec.metrics["fec2:mean_residual"]
        )
        assert fec.metrics["fec2:mean_residual"] < 0.02
