"""The experiment registration API and typed parameter schemas."""

import pytest

from repro.experiments import run_all
from repro.experiments.common import ExperimentSpec, ParamSpec
from repro.experiments.registry import (
    _REGISTRY,
    RegistryView,
    get_experiment,
    register_experiment,
    registered_specs,
    resolve_experiment_id,
    schema_for_target,
)


@pytest.fixture
def scratch_registry(monkeypatch):
    """Run a test against a private copy of the process-global registry."""
    monkeypatch.setattr("repro.experiments.registry._REGISTRY",
                        dict(_REGISTRY))


class TestRegisterExperiment:
    def test_plain_spec_call(self, scratch_registry):
        spec = register_experiment(ExperimentSpec(
            "EXP-TEST-PLAIN", "tests.runner._toy", "run_ok",
            description="registered via plain call"))
        assert get_experiment("EXP-TEST-PLAIN") is spec
        assert spec in list(run_all.REGISTRY)  # live view sees it

    def test_keyword_construction(self, scratch_registry):
        spec = register_experiment(
            "EXP-TEST-KW", module="tests.runner._toy", func="run_ok",
            description="registered via keywords")
        assert get_experiment("EXP-TEST-KW") is spec

    def test_decorator_fills_module_and_func(self, scratch_registry):
        @register_experiment("EXP-TEST-DECO", description="decorated")
        def my_runner(scale=1.0):  # pragma: no cover - never run
            raise AssertionError

        spec = get_experiment("EXP-TEST-DECO")
        assert spec.module == my_runner.__module__
        assert spec.func == my_runner.__qualname__

    def test_duplicate_id_raises(self, scratch_registry):
        with pytest.raises(ValueError, match="already registered"):
            register_experiment(ExperimentSpec(
                "EXP-F2", "elsewhere", description="imposter"))

    def test_identical_reregistration_is_noop(self, scratch_registry):
        # run_all's module body executes twice in one process when
        # invoked as `python -m repro.experiments.run_all` (once as
        # __main__, once under its canonical import name); the exact
        # same spec must register idempotently
        spec = get_experiment("EXP-F2")
        assert register_experiment(spec) is spec
        assert get_experiment("EXP-F2") is spec

    def test_spec_or_id_required(self):
        with pytest.raises(TypeError):
            register_experiment()


class TestLookups:
    def test_spelling_normalization(self):
        assert resolve_experiment_id("exp_arena") == "EXP-ARENA"
        assert resolve_experiment_id("exp-arena-cell") == "EXP-ARENA-CELL"
        assert resolve_experiment_id("EXP-NOPE") is None

    def test_get_unknown_raises_with_known_ids(self):
        with pytest.raises(KeyError, match="EXP-F2"):
            get_experiment("EXP-NOPE")

    def test_hidden_specs_excluded_from_view_but_resolvable(self):
        ids = [s.id for s in run_all.REGISTRY]
        assert "EXP-ARENA" in ids
        assert "EXP-ARENA-CELL" not in ids
        assert "EXP-ARENA-CELL" in [
            s.id for s in registered_specs(include_hidden=True)]
        assert get_experiment("EXP-ARENA-CELL").hidden

    def test_specs_by_id_resolves_hidden_by_explicit_id(self):
        [spec] = run_all.specs_by_id(["exp_resilience_cell"])
        assert spec.id == "EXP-RESILIENCE-CELL"
        assert all(not s.hidden for s in run_all.specs_by_id(None))

    def test_registry_view_is_sequence_like(self):
        view = RegistryView()
        assert len(view) == len(registered_specs())
        assert view[0].id == "EXP-F2"
        assert view[0] in view

    def test_schema_for_target(self):
        schema = schema_for_target("repro.experiments.arena:run_cell")
        names = [row["name"] for row in schema]
        assert names[0] == "scale"  # implicit, always first
        assert "controller" in names and "scenario" in names
        # experiments with no declared params resolve to None
        assert schema_for_target(
            "repro.experiments.fig2_loss_filter:run") is None
        assert schema_for_target("no.such:target") is None


class TestParamSpec:
    def test_type_check(self):
        p = ParamSpec("n", "int", low=0, high=10)
        p.check(5)
        with pytest.raises(TypeError, match="expected int"):
            p.check(5.0)
        with pytest.raises(TypeError, match="expected int"):
            p.check(True)  # bool is not an int here
        with pytest.raises(ValueError, match="below the minimum"):
            p.check(-1)
        with pytest.raises(ValueError, match="above the maximum"):
            p.check(11)

    def test_float_accepts_int(self):
        ParamSpec("x", "float", low=0.0).check(3)

    def test_choices(self):
        p = ParamSpec("mode", "str", choices=("a", "b"))
        p.check("a")
        with pytest.raises(ValueError, match="one of"):
            p.check("z")

    def test_seq_type(self):
        p = ParamSpec("sizes", "seq")
        p.check((1, 2))
        p.check([1, 2])
        with pytest.raises(TypeError):
            p.check(3)

    def test_unknown_type_name_rejected(self):
        with pytest.raises(ValueError, match="unknown type"):
            ParamSpec("x", "complex")


class TestValidateKwargs:
    SPEC = ExperimentSpec(
        "EXP-VK", "m", params=(
            ParamSpec("seed", "int", default=0, low=0),
            ParamSpec("mode", "str", choices=("a", "b")),
        ))

    def test_ok(self):
        self.SPEC.validate_kwargs({"scale": 0.5, "seed": 3, "mode": "a"})

    def test_unknown_name_lists_declared(self):
        with pytest.raises(TypeError, match="mode, scale, seed"):
            self.SPEC.validate_kwargs({"sede": 3})

    def test_bad_value_raises(self):
        with pytest.raises(ValueError, match="EXP-VK"):
            self.SPEC.validate_kwargs({"seed": -1})

    def test_scale_always_checked(self):
        undeclared = ExperimentSpec("EXP-UD", "m")
        undeclared.validate_kwargs({"anything": object()})  # permissive
        with pytest.raises(TypeError):
            undeclared.validate_kwargs({"scale": "fast"})

    def test_orchestrator_validates_before_running(self):
        from repro.runner.orchestrator import Orchestrator

        bad = ExperimentSpec(
            "EXP-BAD-KW", "tests.runner._toy", "run_ok",
            kwargs=(("seed", -3),),
            params=(ParamSpec("seed", "int", low=0),))
        with pytest.raises(ValueError, match="EXP-BAD-KW"):
            Orchestrator([bad], jobs=1, inline=True).run()

    def test_schema_in_cache_fingerprint(self):
        from repro.runner.cache import task_digest

        base = task_digest("m:f", {"scale": 1.0}, source="s",
                           param_schema=None)
        schema = self.SPEC.schema_doc()
        with_schema = task_digest("m:f", {"scale": 1.0}, source="s",
                                  param_schema=schema)
        assert base != with_schema
        # a schema edit invalidates the key
        other = ExperimentSpec(
            "EXP-VK2", "m", params=(
                ParamSpec("seed", "int", default=1, low=0),
                ParamSpec("mode", "str", choices=("a", "b")),
            ))
        assert task_digest("m:f", {"scale": 1.0}, source="s",
                           param_schema=other.schema_doc()) != with_schema


class TestRunAllCliDelegation:
    def test_positional_scale_maps_with_deprecation(self, monkeypatch,
                                                    capsys):
        captured = {}

        def fake_runner_main(argv):
            captured["argv"] = argv
            return 0

        monkeypatch.setattr("repro.runner.cli.main", fake_runner_main)
        with pytest.warns(DeprecationWarning, match="--scale"):
            with pytest.raises(SystemExit) as exit_info:
                run_all.main_cli(["0.25", "EXP-F2"])
        assert exit_info.value.code == 0
        assert captured["argv"] == ["--scale", "0.25", "EXP-F2"]
        assert "deprecated" in capsys.readouterr().err

    def test_runner_flags_pass_through(self, monkeypatch):
        captured = {}
        monkeypatch.setattr(
            "repro.runner.cli.main",
            lambda argv: captured.setdefault("argv", argv) and 0 or 0)
        with pytest.raises(SystemExit):
            run_all.main_cli(["--list"])
        assert captured["argv"] == ["--list"]

    def test_module_invocation_survives_double_import(self):
        # the real `python -m` path: run_all executes as __main__ AND
        # is imported canonically by the runner CLI it delegates to —
        # built-in registration must not trip the duplicate-id error
        import os
        import subprocess
        import sys

        from tests.runner.test_orchestrator import REPO_ROOT

        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.run_all", "--list"],
            capture_output=True, text=True, timeout=120, cwd=REPO_ROOT,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(REPO_ROOT, "src")})
        assert proc.returncode == 0, proc.stderr
        assert "EXP-F2" in proc.stdout

    def test_list_prints_schemas_and_cell_tags(self, capsys):
        from repro.runner.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "EXP-ARENA-CELL" in out
        assert "[sweep-cell]" in out
        assert "scale: float = 1.0" in out
        assert "one of clean-tcp, fault, adversary" in out
