"""Tests for the RNG registry and trace recording."""

from repro.simulator.rng import RngRegistry
from repro.simulator.trace import FlowTrace, TraceSet


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_deterministic_across_registries(self):
        a = RngRegistry(5).stream("loss:L1")
        b = RngRegistry(5).stream("loss:L1")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_order_independent(self):
        r1 = RngRegistry(5)
        r1.stream("x")
        v1 = r1.stream("y").random()
        r2 = RngRegistry(5)
        v2 = r2.stream("y").random()
        assert v1 == v2

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random()
        b = RngRegistry(2).stream("x").random()
        assert a != b

    def test_different_names_differ(self):
        reg = RngRegistry(1)
        assert reg.stream("x").random() != reg.stream("y").random()


class TestFlowTrace:
    def make(self):
        t = FlowTrace("f")
        t.log(1.0, "data", 0, 1400)
        t.log(2.0, "data", 1, 1400)
        t.log(2.5, "ack", 0)
        t.log(3.0, "rdata", 0, 1400)
        t.log(4.0, "data", 2, 1400)
        return t

    def test_count_and_times(self):
        t = self.make()
        assert t.count("data") == 3
        assert t.times("ack") == [2.5]

    def test_between_is_half_open(self):
        t = self.make()
        sub = t.between(2.0, 4.0)
        assert len(sub) == 3  # 2.0, 2.5, 3.0 — not 4.0

    def test_time_seq_series(self):
        t = self.make()
        assert t.time_seq("data") == [(1.0, 0), (2.0, 1), (4.0, 2)]

    def test_bytes_sent_by_kind(self):
        t = self.make()
        assert t.bytes_sent("data") == 3 * 1400
        assert t.bytes_sent("rdata") == 1400

    def test_of_kind_multi(self):
        t = self.make()
        assert len(t.of_kind("data", "rdata")) == 4

    def test_iteration_and_len(self):
        t = self.make()
        assert len(list(t)) == len(t) == 5


class TestTraceSet:
    def test_flow_creates_on_demand(self):
        ts = TraceSet()
        ts.flow("a").log(1.0, "data", 0)
        assert "a" in ts
        assert ts["a"].count("data") == 1

    def test_names_sorted(self):
        ts = TraceSet()
        ts.flow("b")
        ts.flow("a")
        assert ts.names() == ["a", "b"]
