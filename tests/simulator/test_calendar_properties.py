"""Property-based equivalence: calendar queue vs the reference heap.

Hypothesis drives both engines through identical randomized workloads —
schedules from callbacks, zero delays, same-tick ties, far-future
events (forcing year-lap scans and the min-scan fallback), lazy
cancellation and chunked runs — and requires the exact same dispatch
sequence, clock and processed count.  The dispatch sequence is the
total (time, seq) order, so any tie-break or bucket-boundary bug in
the calendar shows up as a counterexample.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.simulator.engine import CalendarSimulator, Simulator  # noqa: E402

#: One scripted action per scheduled event: which follow-up delays to
#: schedule (empty: leaf event) and which earlier handle to cancel
#: (None: no cancellation).  Delays include 0.0 (same-tick ties) and
#: huge values (far outside the calendar's initial year).
ACTIONS = st.lists(
    st.tuples(
        st.lists(
            st.one_of(
                st.just(0.0),
                st.floats(min_value=0.0, max_value=0.02),
                st.floats(min_value=0.0, max_value=20.0),
                st.floats(min_value=1e5, max_value=1e6),
            ),
            max_size=3,
        ),
        st.one_of(st.none(), st.integers(min_value=0, max_value=200)),
    ),
    min_size=1,
    max_size=60,
)

RUN_PLANS = st.lists(
    st.tuples(
        st.one_of(st.none(), st.floats(min_value=0.0, max_value=2e6)),
        st.one_of(st.none(), st.integers(min_value=1, max_value=300)),
    ),
    min_size=1,
    max_size=4,
)


def execute(sim, actions, run_plan):
    """Replay the scripted workload on ``sim``; return the full trace."""
    log = []
    handles = []
    cursor = [0]

    def fire(tag):
        log.append((sim.now, tag))
        delays, cancel_idx = actions[cursor[0] % len(actions)]
        cursor[0] += 1
        for d in delays:
            handles.append(sim.schedule(d, fire, len(handles)))
        if cancel_idx is not None and handles:
            sim.cancel(handles[cancel_idx % len(handles)])

    for i, _ in enumerate(actions):
        handles.append(sim.schedule(i * 0.37 % 5.0, fire, 1000 + i))
    for until, max_events in run_plan:
        # Budgeted/bounded chunks exercise resume (the calendar pushes
        # undispatched same-tick tails back into its buckets).  Every
        # chunk gets an event budget: a feedback workload can schedule
        # forever inside any time horizon.
        budget = 400 if max_events is None else min(max_events, 400)
        sim.run(until=until, max_events=budget)
    return log, sim.now, sim.events_processed, sim.pending()


@settings(max_examples=200, deadline=None)
@given(actions=ACTIONS, run_plan=RUN_PLANS)
def test_calendar_matches_heap_total_order(actions, run_plan):
    ref = execute(Simulator(), actions, run_plan)
    cal = execute(CalendarSimulator(), actions, run_plan)
    assert cal[0] == ref[0], "dispatch (time, order) sequence diverged"
    assert cal[1] == ref[1], "final clock diverged"
    assert cal[2] == ref[2], "events_processed diverged"
    assert cal[3] == ref[3], "pending count diverged"


@settings(max_examples=100, deadline=None)
@given(
    times=st.lists(st.floats(min_value=0.0, max_value=100.0),
                   min_size=1, max_size=80),
    cancel=st.sets(st.integers(min_value=0, max_value=79)),
)
def test_static_schedule_identical_order(times, cancel):
    """Pure insert/cancel/drain — no feedback from callbacks."""
    def run(sim):
        log = []
        handles = [sim.schedule(t, log.append, (t, i))
                   for i, t in enumerate(times)]
        for idx in cancel:
            if idx < len(handles):
                sim.cancel(handles[idx])
        sim.run()
        return log, sim.now, sim.events_processed

    assert run(CalendarSimulator()) == run(Simulator())


@settings(max_examples=50, deadline=None)
@given(times=st.lists(st.sampled_from([0.0, 0.25, 0.5, 0.75]),
                      min_size=2, max_size=40))
def test_same_tick_ties_preserve_insertion_order(times):
    """Heavily tied timestamps must drain in insertion order per tick."""
    def run(sim):
        log = []
        for i, t in enumerate(times):
            sim.schedule(t, log.append, (t, i))
        sim.run()
        return log

    order = run(CalendarSimulator())
    assert order == run(Simulator())
    # Within each tick, the insertion index must be increasing.
    for tick in set(times):
        idxs = [i for t, i in order if t == tick]
        assert idxs == sorted(idxs)


def test_resize_keeps_pending_events():
    """Growing past the resize threshold loses nothing and keeps order."""
    sim = CalendarSimulator(nbuckets=4, width=0.001)
    log = []
    n = 300  # >> 2 * nbuckets: forces several adaptive doublings
    for i in range(n):
        sim.schedule((i * 7919 % n) * 0.01, log.append, i)
    assert sim.pending() == n
    sim.run()
    assert len(log) == n
    assert sorted(log) == list(range(n))


def test_cancellation_is_lazy_and_excluded():
    """Cancelled events neither fire nor advance the clock, on both."""
    for make in (Simulator, CalendarSimulator):
        sim = make()
        log = []
        keep = sim.schedule(1.0, log.append, "keep")
        drop = sim.schedule(2.0, log.append, "drop")
        sim.cancel(drop)
        assert sim.pending() == 1
        sim.run()
        assert log == ["keep"]
        assert sim.now == 1.0, f"{make.__name__} advanced on a ghost"
        assert keep[2] is not None
