"""Partition and ControlBlackhole fault primitives: cut computation,
heal semantics, the link-level control filter, stacked-episode
composition and packet conservation through it all."""

import pytest

from repro.simulator import (
    NON_LOSSY,
    ControlBlackhole,
    FaultInjector,
    FaultPlan,
    LinkDown,
    Partition,
    dumbbell,
)
from repro.simulator.packet import Packet


def _links(net, pairs):
    return [net.nodes[a].links[b] for a, b in pairs]


class TestPartition:
    def test_validation_rejects_bad_sides(self):
        with pytest.raises(ValueError, match="non-empty"):
            Partition((), ("r0",), at=1.0)
        with pytest.raises(ValueError, match="overlap"):
            Partition(("h0", "R0"), ("R0", "r0"), at=1.0)

    def test_validate_against_rejects_unknown_node(self):
        net = dumbbell(1, 2, NON_LOSSY)
        plan = FaultPlan((Partition(("h0", "nope"), ("r0",), at=1.0),))
        with pytest.raises(ValueError):
            plan.validate_against(net)

    def test_validate_against_rejects_cut_with_no_links(self):
        net = dumbbell(1, 2, NON_LOSSY)
        # r0 and r1 are both leaves of R1: no link crosses r0|r1.
        plan = FaultPlan((Partition(("r0",), ("r1",), at=1.0),))
        with pytest.raises(ValueError, match="no links cross"):
            plan.validate_against(net)

    def test_cut_downs_every_crossing_link_both_ways_then_heals(self):
        net = dumbbell(1, 2, NON_LOSSY, seed=5)
        plan = FaultPlan((
            Partition(("h0", "R0"), ("R1", "r0", "r1"), at=1.0, duration=2.0),
        ))
        FaultInjector(net, plan)
        cut = _links(net, [("R0", "R1"), ("R1", "R0")])
        spared = _links(net, [("h0", "R0"), ("R1", "r0")])
        net.run(until=1.5)
        assert all(not link.up for link in cut)
        assert all(link.up for link in spared)
        net.run(until=3.5)
        assert all(link.up for link in cut)

    def test_overlapping_partitions_nest_via_refcount(self):
        net = dumbbell(1, 2, NON_LOSSY, seed=5)
        plan = FaultPlan((
            Partition(("h0", "R0"), ("R1", "r0", "r1"), at=1.0, duration=4.0),
            Partition(("h0", "R0"), ("R1", "r0", "r1"), at=2.0, duration=1.0),
        ))
        FaultInjector(net, plan)
        link = net.nodes["R0"].links["R1"]
        net.run(until=3.5)  # inner partition healed, outer still holds
        assert not link.up
        net.run(until=5.5)  # outer healed too
        assert link.up

    def test_partition_overlapping_linkdown_composes(self):
        net = dumbbell(1, 2, NON_LOSSY, seed=5)
        plan = FaultPlan((
            LinkDown("R0", "R1", at=1.0, duration=5.0),
            Partition(("h0", "R0"), ("R1", "r0", "r1"), at=2.0, duration=1.0),
        ))
        FaultInjector(net, plan)
        link = net.nodes["R0"].links["R1"]
        net.run(until=4.0)  # partition healed; LinkDown still active
        assert not link.up
        net.run(until=6.5)
        assert link.up

    def test_actions_recorded(self):
        net = dumbbell(1, 2, NON_LOSSY, seed=5)
        plan = FaultPlan((
            Partition(("h0", "R0"), ("R1", "r0", "r1"), at=1.0, duration=1.0),
        ))
        injector = FaultInjector(net, plan)
        net.run(until=3.0)
        # one cut link, both directions, down then up
        assert len(injector.actions("link-down")) == 2
        assert len(injector.actions("link-up")) == 2


class _FakeAck:
    pass


class TestControlBlackhole:
    def test_validation_requires_kinds(self):
        with pytest.raises(ValueError, match="kind"):
            ControlBlackhole("R0", "R1", at=1.0, kinds=())

    def test_filter_drops_only_named_kinds(self):
        net = dumbbell(1, 1, NON_LOSSY, seed=5)
        link = net.nodes["h0"].links["R0"]
        link.set_control_filter(("_FakeAck",))
        dropped = link.send(Packet("h0", "R0", 64, _FakeAck(), "test"))
        passed = link.send(Packet("h0", "R0", 64, b"data", "test"))
        assert dropped is False and passed is True
        assert link.filter_drops == 1
        assert link.conserves_packets()
        link.set_control_filter(None)
        assert link.send(Packet("h0", "R0", 64, _FakeAck(), "test"))

    def test_blackhole_installs_and_restores_filter(self):
        net = dumbbell(1, 1, NON_LOSSY, seed=5)
        plan = FaultPlan((
            ControlBlackhole("R1", "R0", at=1.0, duration=2.0,
                             kinds=("Ack", "Nak")),
        ))
        injector = FaultInjector(net, plan)
        link = net.nodes["R1"].links["R0"]
        net.run(until=1.5)
        assert link._filter_kinds == frozenset({"Ack", "Nak"})
        net.run(until=3.5)
        assert link._filter_kinds is None
        assert len(injector.actions("filter-set")) == 1
        assert len(injector.actions("filter-restore")) == 1

    def test_overlapping_blackholes_union_their_kinds(self):
        net = dumbbell(1, 1, NON_LOSSY, seed=5)
        plan = FaultPlan((
            ControlBlackhole("R1", "R0", at=1.0, duration=4.0,
                             kinds=("Ack",)),
            ControlBlackhole("R1", "R0", at=2.0, duration=1.0,
                             kinds=("Nak",)),
        ))
        FaultInjector(net, plan)
        link = net.nodes["R1"].links["R0"]
        net.run(until=2.5)
        assert link._filter_kinds == frozenset({"Ack", "Nak"})
        net.run(until=3.5)  # inner popped: back to the outer set alone
        assert link._filter_kinds == frozenset({"Ack"})
        net.run(until=5.5)
        assert link._filter_kinds is None

    def test_both_directions(self):
        net = dumbbell(1, 1, NON_LOSSY, seed=5)
        plan = FaultPlan((
            ControlBlackhole("R0", "R1", at=1.0, duration=1.0, both=True),
        ))
        FaultInjector(net, plan)
        net.run(until=1.5)
        assert net.nodes["R0"].links["R1"]._filter_kinds is not None
        assert net.nodes["R1"].links["R0"]._filter_kinds is not None

    def test_filter_drops_count_in_metrics_and_conservation(self):
        net = dumbbell(1, 1, NON_LOSSY, seed=5)
        link = net.nodes["h0"].links["R0"]
        link.set_control_filter(("_FakeAck",))
        for _ in range(5):
            link.send(Packet("h0", "R0", 64, _FakeAck(), "test"))
        assert link.metrics()["filter_drops"] == 5
        assert link.conserves_packets()
