"""Direct unit tests for route computation."""

import networkx as nx
import pytest

from repro.simulator import ACCESS, LinkSpec, Network
from repro.simulator.routing import (
    build_graph,
    compute_multicast_tree,
    install_multicast_tree,
    install_unicast_routes,
)


def diamond():
    """a - {top, bot} - b, with the top path faster."""
    net = Network(seed=1)
    for h in ("a", "b"):
        net.add_host(h)
    for r in ("top", "bot"):
        net.add_router(r)
    fast = LinkSpec(1e6, 0.001, queue_slots=10)
    slow = LinkSpec(1e6, 0.1, queue_slots=10)
    net.duplex_link("a", "top", fast)
    net.duplex_link("top", "b", fast)
    net.duplex_link("a", "bot", slow)
    net.duplex_link("bot", "b", slow)
    return net


class TestGraph:
    def test_build_graph_edges_weighted_by_delay(self):
        net = diamond()
        graph = build_graph(net.nodes, net.link_delays)
        assert graph.has_edge("a", "top")
        assert graph["a"]["top"]["weight"] < graph["a"]["bot"]["weight"]

    def test_directed(self):
        net = Network(seed=2)
        net.add_host("a")
        net.add_host("b")
        net.simplex_link("a", "b", ACCESS)
        graph = build_graph(net.nodes, net.link_delays)
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")


class TestUnicast:
    def test_next_hops_follow_cheapest_path(self):
        net = diamond()
        graph = build_graph(net.nodes, net.link_delays)
        install_unicast_routes(graph, net.nodes)
        assert net.nodes["a"].unicast_routes["b"] == "top"
        assert net.nodes["b"].unicast_routes["a"] == "top"

    def test_no_self_route(self):
        net = diamond()
        graph = build_graph(net.nodes, net.link_delays)
        install_unicast_routes(graph, net.nodes)
        assert "a" not in net.nodes["a"].unicast_routes

    def test_unreachable_destination_raises_at_send_time_only(self):
        """Partitioned nodes simply get no route entry."""
        net = Network(seed=3)
        net.add_host("a")
        net.add_host("island")
        graph = build_graph(net.nodes, net.link_delays)
        install_unicast_routes(graph, net.nodes)
        assert "island" not in net.nodes["a"].unicast_routes


class TestMulticastTree:
    def test_tree_is_union_of_shortest_paths(self):
        net = diamond()
        graph = build_graph(net.nodes, net.link_delays)
        tree = compute_multicast_tree(graph, "a", ["b"])
        assert tree["a"] == {"top"}
        assert tree["top"] == {"b"}
        assert "bot" not in tree

    def test_source_as_member_skipped(self):
        net = diamond()
        graph = build_graph(net.nodes, net.link_delays)
        tree = compute_multicast_tree(graph, "a", ["a", "b"])
        assert tree["a"] == {"top"}

    def test_shared_trunk_single_entry(self):
        """Two members behind the same branch share tree edges."""
        net = Network(seed=4)
        net.add_host("s")
        net.add_router("R")
        net.add_host("m1")
        net.add_host("m2")
        net.duplex_link("s", "R", ACCESS)
        net.duplex_link("R", "m1", ACCESS)
        net.duplex_link("R", "m2", ACCESS)
        graph = build_graph(net.nodes, net.link_delays)
        tree = compute_multicast_tree(graph, "s", ["m1", "m2"])
        assert tree["s"] == {"R"}
        assert tree["R"] == {"m1", "m2"}

    def test_install_overwrites_previous_tree(self):
        net = Network(seed=5)
        net.add_host("s")
        net.add_router("R")
        net.add_host("m1")
        net.add_host("m2")
        net.duplex_link("s", "R", ACCESS)
        net.duplex_link("R", "m1", ACCESS)
        net.duplex_link("R", "m2", ACCESS)
        graph = build_graph(net.nodes, net.link_delays)
        install_multicast_tree(graph, net.nodes, "mc:g", "s", ["m1", "m2"])
        assert net.nodes["R"].multicast_routes["mc:g"] == ("m1", "m2")
        install_multicast_tree(graph, net.nodes, "mc:g", "s", ["m1"])
        assert net.nodes["R"].multicast_routes["mc:g"] == ("m1",)

    def test_unreachable_member_raises(self):
        net = Network(seed=6)
        net.add_host("s")
        net.add_host("island")
        graph = build_graph(net.nodes, net.link_delays)
        with pytest.raises(nx.NetworkXNoPath):
            compute_multicast_tree(graph, "s", ["island"])
