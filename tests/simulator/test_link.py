"""Unit tests for the rate/delay/queue/loss link."""

import random

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.link import Link
from repro.simulator.loss_models import BernoulliLoss, DeterministicLoss
from repro.simulator.packet import Packet
from repro.simulator.queues import DropTailQueue


def make_link(sim, rate=8000.0, delay=0.1, **kw):
    received = []
    link = Link(sim, "L", rate_bps=rate, delay=delay,
                deliver=received.append, **kw)
    return link, received


class TestTiming:
    def test_serialization_plus_propagation(self):
        sim = Simulator()
        link, received = make_link(sim, rate=8000.0, delay=0.1)
        arrival = []
        link.add_observer(
            lambda t, ev, p: arrival.append(t) if ev == "deliver" else None
        )
        link.send(Packet("a", "b", 100))  # 100B at 8000bps = 0.1s tx
        sim.run()
        assert arrival == [pytest.approx(0.2)]

    def test_back_to_back_packets_queue(self):
        sim = Simulator()
        link, received = make_link(sim, rate=8000.0, delay=0.0)
        times = []
        link.add_observer(lambda t, ev, p: times.append(t) if ev == "deliver" else None)
        link.send(Packet("a", "b", 100))
        link.send(Packet("a", "b", 100))
        sim.run()
        # second waits for the first's serialisation
        assert times == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_throughput_matches_rate(self):
        sim = Simulator()
        link, received = make_link(sim, rate=80_000.0, delay=0.01,
                                   queue=DropTailQueue(max_slots=1000))
        for _ in range(100):
            link.send(Packet("a", "b", 100))
        sim.run()
        # 100 packets x 100B = 80_000 bits at 80kbit/s -> 1.0s + delay
        assert sim.now == pytest.approx(1.01)
        assert len(received) == 100


class TestDrops:
    def test_queue_overflow_drops(self):
        sim = Simulator()
        link, received = make_link(sim, queue=DropTailQueue(max_slots=2))
        for _ in range(5):
            link.send(Packet("a", "b", 100))
        sim.run()
        # 1 in transmission + 2 queued = 3 delivered
        assert len(received) == 3
        assert link.queue_drops == 2

    def test_random_loss_consumes_no_bandwidth(self):
        sim = Simulator()
        link, received = make_link(sim, loss=DeterministicLoss([1]))
        assert not link.send(Packet("a", "b", 100))
        assert link.random_drops == 1
        link.send(Packet("a", "b", 100))
        sim.run()
        # the surviving packet transmits immediately (first was pre-drop)
        assert sim.now == pytest.approx(0.2)
        assert len(received) == 1

    def test_bernoulli_loss_rate(self):
        sim = Simulator()
        link, received = make_link(
            sim, rate=1e9, delay=0.0,
            loss=BernoulliLoss(0.3, random.Random(7)),
            queue=DropTailQueue(max_slots=100000),
        )
        n = 5000
        for _ in range(n):
            link.send(Packet("a", "b", 100))
        sim.run()
        rate = link.random_drops / n
        assert 0.27 < rate < 0.33

    def test_send_returns_false_on_drop(self):
        sim = Simulator()
        link, _ = make_link(sim, queue=DropTailQueue(max_slots=1))
        assert link.send(Packet("a", "b", 100))  # transmitting
        assert link.send(Packet("a", "b", 100))  # queued
        assert not link.send(Packet("a", "b", 100))  # dropped


class TestAccounting:
    def test_counters(self):
        sim = Simulator()
        link, received = make_link(sim)
        for _ in range(3):
            link.send(Packet("a", "b", 50))
        sim.run()
        assert link.sent == 3
        assert link.delivered == 3
        assert link.bytes_delivered == 150

    def test_observer_event_sequence(self):
        sim = Simulator()
        link, _ = make_link(sim)
        events = []
        link.add_observer(lambda t, ev, p: events.append(ev))
        link.send(Packet("a", "b", 100))
        sim.run()
        assert events == ["send", "deliver"]

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, "bad", rate_bps=0, delay=0.1)
        with pytest.raises(ValueError):
            Link(sim, "bad", rate_bps=1000, delay=-1)

    def test_utilization(self):
        sim = Simulator()
        link, _ = make_link(sim, rate=8000.0, delay=0.0)
        link.send(Packet("a", "b", 100))
        sim.run(until=1.0)
        assert link.utilization_bps == pytest.approx(800.0)
