"""Unit tests for hosts, routers and the interceptor hook."""

import pytest

from repro.simulator import ACCESS, LinkSpec, Network, Packet, is_multicast
from repro.simulator.engine import Simulator
from repro.simulator.node import Host, Router
from repro.simulator.packet import MULTICAST_PREFIX


class Sink:
    def __init__(self):
        self.packets = []

    def handle_packet(self, packet):
        self.packets.append(packet.retain())


class TestAddressing:
    def test_is_multicast(self):
        assert is_multicast(f"{MULTICAST_PREFIX}group1")
        assert not is_multicast("host1")

    def test_packet_uids_unique(self):
        a = Packet("a", "b", 10)
        b = Packet("a", "b", 10)
        assert a.uid != b.uid


class TestHost:
    def make_host(self):
        return Host(Simulator(), "h")

    def test_duplicate_agent_rejected(self):
        host = self.make_host()
        host.register_agent("x", Sink())
        with pytest.raises(ValueError):
            host.register_agent("x", Sink())

    def test_unregister_allows_replacement(self):
        host = self.make_host()
        host.register_agent("x", Sink())
        host.unregister_agent("x")
        host.register_agent("x", Sink())  # no raise

    def test_local_delivery_by_proto(self):
        host = self.make_host()
        sink = Sink()
        host.register_agent("tcp", sink)
        host.receive(Packet("a", "h", 10, proto="tcp"), from_node="r")
        host.receive(Packet("a", "h", 10, proto="pgm"), from_node="r")
        assert len(sink.packets) == 1

    def test_multicast_delivery_requires_join(self):
        host = self.make_host()
        sink = Sink()
        host.register_agent("raw", sink)
        group = f"{MULTICAST_PREFIX}g"
        host.receive(Packet("a", group, 10, proto="raw"), from_node="r")
        assert sink.packets == []
        host.join_group(group)
        host.receive(Packet("a", group, 10, proto="raw"), from_node="r")
        assert len(sink.packets) == 1

    def test_leave_group(self):
        host = self.make_host()
        group = f"{MULTICAST_PREFIX}g"
        host.join_group(group)
        host.leave_group(group)
        assert group not in host.groups

    def test_send_without_route_returns_false(self):
        host = self.make_host()
        assert not host.send(Packet("h", "nowhere", 10))


class TestRouterForwarding:
    def build(self):
        net = Network(seed=1)
        net.add_host("a")
        router = net.add_router("R")
        net.add_host("b")
        net.add_host("c")
        for h in ("a", "b", "c"):
            net.duplex_link(h, "R", ACCESS)
        net.build_routes()
        return net, router

    def test_unicast_next_hop(self):
        net, router = self.build()
        assert router.unicast_next_hop("b") == "b"

    def test_multicast_split_horizon(self):
        """The arrival branch is excluded from replication."""
        net, router = self.build()
        group = f"{MULTICAST_PREFIX}g"
        router.multicast_routes[group] = ("a", "b", "c")
        packet = Packet("a", group, 10)
        copies = router.forward_multicast(packet, from_node="a")
        assert copies == 2

    def test_hop_limit_drops_loops(self):
        net, router = self.build()
        packet = Packet("a", "b", 10)
        packet.hops = Packet.MAX_HOPS
        before = router.packets_dropped_no_route
        router.receive(packet, from_node="a")
        assert router.packets_dropped_no_route == before + 1

    def test_wide_multicast_fanout_not_dropped_as_loop(self):
        # Multicast fan-out shares one pooled packet instance across
        # every branch, so the hop counter accumulates one visit per
        # branch router — a fan-out wider than MAX_HOPS used to trip
        # the loop guard on whichever branch happened to be delivered
        # last, silently starving that subtree of ODATA.
        from repro.simulator import dumbbell_subtrees

        width = Packet.MAX_HOPS + 16
        net = dumbbell_subtrees(2 * width, subtrees=width)
        plan = net.subtree_plan
        group = f"{MULTICAST_PREFIX}g"
        net.set_group(group, "h0", plan.session_hosts())
        net.host("h0").send(Packet("h0", group, 100))
        net.sim.run(until=1.0)
        received = [net.host(plan.agg_host(k)).packets_received
                    for k in range(width)]
        assert received == [1] * width, received.index(0)

    def test_interceptor_consumes(self):
        net, router = self.build()

        class Interceptor:
            def __init__(self):
                self.seen = []

            def intercept(self, packet, from_node):
                self.seen.append((packet.uid, from_node))
                return True  # consume everything

        interceptor = Interceptor()
        router.set_interceptor(interceptor)
        forwarded_before = router.packets_forwarded
        router.receive(Packet("a", "b", 10), from_node="a")
        assert len(interceptor.seen) == 1
        assert router.packets_forwarded == forwarded_before

    def test_interceptor_pass_through(self):
        net, router = self.build()

        class Passive:
            def intercept(self, packet, from_node):
                return False

        router.set_interceptor(Passive())
        router.receive(Packet("a", "b", 10), from_node="a")
        assert router.packets_forwarded == 1

    def test_duplicate_link_rejected(self):
        net, router = self.build()
        from repro.simulator.link import Link

        with pytest.raises(ValueError):
            router.attach_link("a", Link(net.sim, "dup", 1000, 0.0))
