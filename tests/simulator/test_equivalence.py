"""Scheduler/pool behavior-equivalence harness (the hot-path lockdown).

The simulator overhaul (calendar-queue scheduler, packet pooling,
batched loss draws) is only acceptable if it is *invisible*: every
experiment must produce a bit-identical result digest no matter which
scheduler runs it and whether packets are pooled.  These tests run
real registry experiments under the full configuration matrix

    (heap, calendar) x (pooled, unpooled)

and assert digest equality against the heap+pooled reference.  A
representative subset runs in tier-1; the whole registry runs under
``-m slow``.

The scheduler is selected the way production runs select it — through
``PGMCC_SIM_SCHEDULER``, read by ``make_simulator`` when each
experiment constructs its ``Network`` — so the harness exercises the
real wiring, not a test-only hook.
"""

import pytest

from repro.experiments.run_all import REGISTRY
from repro.simulator import POOL, set_packet_pooling
from repro.simulator.engine import SCHEDULER_ENV

#: Scale small enough to keep tier-1 fast, large enough that every
#: experiment schedules thousands of events through queues, loss
#: models, timers and fault plans.
SCALE = 0.05

#: Fast, structurally diverse subset for tier-1: plain fairness,
#: TCP competition, NE suppression, scripted faults, ECMP reordering
#: and bursty (Gilbert) loss.
REPRESENTATIVE = ("EXP-F3", "EXP-F4", "EXP-F6", "EXP-CHAOS",
                  "EXP-MPATH", "ABL-BURST")

MATRIX = [("heap", True), ("heap", False),
          ("calendar", True), ("calendar", False)]

_SPECS = {spec.id: spec for spec in REGISTRY}


@pytest.fixture(autouse=True)
def _restore_engine_config(monkeypatch):
    """Every test leaves the process on default scheduler + pooling."""
    monkeypatch.delenv(SCHEDULER_ENV, raising=False)
    yield
    set_packet_pooling(True)


def run_config(monkeypatch, spec, scheduler, pooled):
    monkeypatch.setenv(SCHEDULER_ENV, scheduler)
    set_packet_pooling(pooled)
    before = POOL.double_release
    result = spec.run(SCALE)
    assert POOL.double_release == before, (
        f"{spec.id} under ({scheduler}, pooled={pooled}) "
        "double-released a packet"
    )
    return result.digest()


def assert_matrix_equivalent(monkeypatch, spec):
    reference = run_config(monkeypatch, spec, "heap", True)
    for scheduler, pooled in MATRIX[1:]:
        digest = run_config(monkeypatch, spec, scheduler, pooled)
        assert digest == reference, (
            f"{spec.id}: ({scheduler}, pooled={pooled}) diverged from "
            f"the heap+pooled reference"
        )


@pytest.mark.parametrize("exp_id", REPRESENTATIVE)
def test_representative_experiments_equivalent(monkeypatch, exp_id):
    assert_matrix_equivalent(monkeypatch, _SPECS[exp_id])


@pytest.mark.slow
@pytest.mark.parametrize("exp_id", sorted(_SPECS))
def test_full_registry_equivalent(monkeypatch, exp_id):
    assert_matrix_equivalent(monkeypatch, _SPECS[exp_id])


def test_representative_subset_is_current():
    """Every representative id still exists in the registry."""
    missing = [i for i in REPRESENTATIVE if i not in _SPECS]
    assert not missing, f"stale representative ids: {missing}"


def test_scheduler_env_reaches_network(monkeypatch):
    """The env knob drives Network construction end to end."""
    from repro.simulator import Network

    monkeypatch.setenv(SCHEDULER_ENV, "calendar")
    assert Network(seed=1).sim.kind == "calendar"
    monkeypatch.setenv(SCHEDULER_ENV, "heap")
    assert Network(seed=1).sim.kind == "heap"
