"""Unit tests for drop-tail and RED queues."""

import random

import pytest

from repro.simulator.packet import Packet
from repro.simulator.queues import DropTailQueue, RedQueue


def pkt(size=100):
    return Packet("a", "b", size)


class TestDropTail:
    def test_requires_a_limit(self):
        with pytest.raises(ValueError):
            DropTailQueue()

    def test_slot_limit(self):
        q = DropTailQueue(max_slots=2)
        assert q.offer(pkt())
        assert q.offer(pkt())
        assert not q.offer(pkt())
        assert q.drops == 1
        assert len(q) == 2

    def test_byte_limit(self):
        q = DropTailQueue(max_bytes=250)
        assert q.offer(pkt(100))
        assert q.offer(pkt(100))
        assert not q.offer(pkt(100))  # would be 300 bytes
        assert q.offer(pkt(50))
        assert q.bytes_queued == 250

    def test_both_limits_enforced(self):
        q = DropTailQueue(max_slots=10, max_bytes=150)
        assert q.offer(pkt(100))
        assert not q.offer(pkt(100))

    def test_fifo_order(self):
        q = DropTailQueue(max_slots=3)
        packets = [pkt(), pkt(), pkt()]
        for p in packets:
            q.offer(p)
        assert [q.pop() for _ in range(3)] == packets

    def test_pop_empty_returns_none(self):
        q = DropTailQueue(max_slots=1)
        assert q.pop() is None

    def test_bytes_accounting_on_pop(self):
        q = DropTailQueue(max_slots=5)
        q.offer(pkt(100))
        q.offer(pkt(200))
        q.pop()
        assert q.bytes_queued == 200

    def test_peak_tracking(self):
        q = DropTailQueue(max_slots=5)
        for _ in range(3):
            q.offer(pkt(100))
        q.pop()
        assert q.peak_slots == 3
        assert q.peak_bytes == 300

    def test_would_accept_is_side_effect_free(self):
        q = DropTailQueue(max_slots=1)
        assert q.would_accept(pkt())
        assert len(q) == 0
        assert q.drops == 0

    def test_clear(self):
        q = DropTailQueue(max_slots=5)
        q.offer(pkt())
        q.clear()
        assert len(q) == 0
        assert q.bytes_queued == 0

    def test_invalid_limits(self):
        with pytest.raises(ValueError):
            DropTailQueue(max_slots=0)
        with pytest.raises(ValueError):
            DropTailQueue(max_bytes=0)

    def test_paper_queue_sizes(self):
        """The paper's configurations: 30 slots or 30 KB."""
        slots = DropTailQueue(max_slots=30)
        for _ in range(30):
            assert slots.offer(pkt(1500))
        assert not slots.offer(pkt(1500))

        kb = DropTailQueue(max_bytes=30_000)
        accepted = 0
        while kb.offer(pkt(1500)):
            accepted += 1
        assert accepted == 20  # 30000 // 1500


class TestRed:
    def test_accepts_below_min_threshold(self):
        q = RedQueue(random.Random(1), max_slots=50, min_th=5, max_th=15)
        for _ in range(4):
            assert q.offer(pkt())

    def test_probabilistic_drops_between_thresholds(self):
        q = RedQueue(random.Random(1), max_slots=200, min_th=2, max_th=10,
                     max_p=1.0, weight=0.5)
        for _ in range(200):
            q.offer(pkt())
        # The EWMA sits between the thresholds, so some but not all
        # offers are dropped.
        assert 0 < q.drops < 200

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            RedQueue(random.Random(1), max_slots=10, min_th=8, max_th=5)

    def test_hard_drop_above_max_threshold(self):
        q = RedQueue(random.Random(1), max_slots=100, min_th=1, max_th=3,
                     weight=1.0)
        for _ in range(50):
            q.offer(pkt())
        # avg tracks instantaneous occupancy with weight=1; queue
        # cannot meaningfully exceed max_th.
        assert len(q) <= 5
