"""Unit tests for the deterministic fault-injection subsystem."""

import random
import types

import pytest

from repro.simulator import (
    ACKER,
    BurstLoss,
    Corruption,
    Duplication,
    ElementDown,
    FaultInjector,
    FaultPlan,
    LinkDown,
    LinkImpairment,
    LinkSpec,
    Network,
    NodeCrash,
    NodePause,
    NodeResume,
    Packet,
    flap_link,
)

FAST = LinkSpec(rate_bps=80_000, delay=0.01, queue_slots=100)


def pair(seed: int = 0) -> Network:
    """Two hosts joined by one duplex link."""
    net = Network(seed=seed)
    net.add_host("a")
    net.add_host("b")
    net.duplex_link("a", "b", FAST)
    net.build_routes()
    return net


def feed(net: Network, t0: float, t1: float, interval: float = 0.05) -> None:
    """Offer a packet to the a->b link every ``interval`` seconds."""
    link = net.link("a", "b")
    t = t0
    while t < t1:
        net.sim.schedule_at(t, link.send, Packet("a", "b", 100))
        t += interval


class TestEpisodeValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            LinkDown("a", "b", at=-1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            BurstLoss("a", "b", at=0.0, duration=0.0)
        with pytest.raises(ValueError):
            NodePause("a", at=1.0, duration=-2.0)

    def test_impairment_needs_a_knob(self):
        with pytest.raises(ValueError):
            LinkImpairment("a", "b", at=0.0, duration=1.0)

    def test_rates_bounded(self):
        with pytest.raises(ValueError):
            Duplication("a", "b", at=0.0, duration=1.0, rate=1.5)
        with pytest.raises(ValueError):
            BurstLoss("a", "b", at=0.0, duration=1.0, loss_rate=-0.1)
        with pytest.raises(ValueError):
            LinkImpairment("a", "b", at=0.0, duration=1.0, rate_bps=0)

    def test_flap_link_expands_to_cycles(self):
        episodes = flap_link("a", "b", first_at=2.0, down_for=0.5,
                             up_for=1.0, cycles=3)
        assert [ep.at for ep in episodes] == [2.0, 3.5, 5.0]
        assert all(ep.duration == 0.5 for ep in episodes)
        with pytest.raises(ValueError):
            flap_link("a", "b", first_at=0.0, down_for=0.5, up_for=1.0, cycles=0)
        with pytest.raises(ValueError):
            flap_link("a", "b", first_at=0.0, down_for=0.0, up_for=1.0, cycles=1)


class TestFaultPlan:
    def test_rejects_non_episodes(self):
        with pytest.raises(TypeError):
            FaultPlan(episodes=("not an episode",))

    def test_composition_concatenates(self):
        p1 = FaultPlan((LinkDown("a", "b", at=1.0),))
        p2 = FaultPlan((NodeCrash("b", at=2.0),))
        combined = p1 + p2
        assert len(combined) == 2
        assert combined.episodes == p1.episodes + p2.episodes
        # operands are unchanged (plans are values)
        assert len(p1) == 1 and len(p2) == 1

    def test_scaled_scales_times_and_durations(self):
        plan = FaultPlan((
            LinkDown("a", "b", at=2.0, duration=1.0),
            NodeCrash("b", at=4.0),
        ))
        scaled = plan.scaled(0.5)
        assert scaled.episodes[0].at == 1.0
        assert scaled.episodes[0].duration == 0.5
        assert scaled.episodes[1].at == 2.0
        assert scaled.horizon == plan.horizon * 0.5

    def test_horizon_covers_longest_episode(self):
        plan = FaultPlan((
            LinkDown("a", "b", at=1.0, duration=5.0),
            NodeCrash("b", at=3.0),
        ))
        assert plan.horizon == 6.0

    def test_validate_against_topology(self):
        net = pair()
        FaultPlan((LinkDown("a", "b", at=0.0),)).validate_against(net)
        with pytest.raises(ValueError):
            FaultPlan((LinkDown("a", "zz", at=0.0),)).validate_against(net)
        with pytest.raises(ValueError):
            FaultPlan((NodeCrash("zz", at=0.0),)).validate_against(net)
        # the acker sentinel is resolved at fire time, not validation time
        FaultPlan((NodeCrash(ACKER, at=0.0),)).validate_against(net)


class TestLinkFaults:
    def test_down_link_rejects_and_recovers(self):
        net = pair()
        plan = FaultPlan((LinkDown("a", "b", at=1.0, duration=1.0, both=False),))
        net.install_faults(plan)
        feed(net, 0.0, 3.0, interval=0.25)
        net.run(until=5.0)
        link = net.link("a", "b")
        # 4 packets fall inside [1.0, 2.0)
        assert link.fault_drops == 4
        assert link.delivered == link.sent - link.fault_drops
        assert link.up
        assert link.conserves_packets()

    def test_overlapping_downs_refcount(self):
        net = pair()
        plan = FaultPlan((
            LinkDown("a", "b", at=1.0, duration=2.0, both=False),
            LinkDown("a", "b", at=1.5, duration=3.0, both=False),
        ))
        net.install_faults(plan)
        states = []
        for t in (0.5, 1.2, 2.5, 3.5, 5.0):
            net.sim.schedule_at(t, lambda: states.append(net.link("a", "b").up))
        net.run(until=6.0)
        # down throughout the union [1.0, 4.5), not just the first episode
        assert states == [True, False, False, False, True]

    def test_impairment_overrides_and_restores(self):
        net = pair()
        link = net.link("a", "b")
        base_rate, base_delay, base_loss = link.rate_bps, link.delay, link.loss
        plan = FaultPlan((
            LinkImpairment("a", "b", at=1.0, duration=2.0, rate_bps=8_000,
                           delay=0.2, loss_rate=0.5, both=False),
        ))
        net.install_faults(plan)
        probes = []
        for t in (0.5, 2.0, 4.0):
            net.sim.schedule_at(
                t, lambda: probes.append((link.rate_bps, link.delay, link.loss))
            )
        net.run(until=5.0)
        assert probes[0] == (base_rate, base_delay, base_loss)
        assert probes[1][0] == 8_000 and probes[1][1] == 0.2
        assert probes[1][2] is not base_loss
        assert probes[2] == (base_rate, base_delay, base_loss)

    def test_stacked_impairments_last_started_wins(self):
        net = pair()
        link = net.link("a", "b")
        base = link.rate_bps
        plan = FaultPlan((
            LinkImpairment("a", "b", at=1.0, duration=4.0, rate_bps=40_000,
                           both=False),
            LinkImpairment("a", "b", at=2.0, duration=1.0, rate_bps=10_000,
                           both=False),
        ))
        net.install_faults(plan)
        probes = []
        for t in (1.5, 2.5, 3.5, 6.0):
            net.sim.schedule_at(t, lambda: probes.append(link.rate_bps))
        net.run(until=7.0)
        # inner episode shadows the outer, then the outer resumes
        assert probes == [40_000, 10_000, 40_000, base]

    def test_burst_loss_drops_everything(self):
        net = pair()
        plan = FaultPlan((BurstLoss("a", "b", at=1.0, duration=1.0),))
        net.install_faults(plan)
        feed(net, 1.1, 1.9, interval=0.2)
        feed(net, 3.0, 3.5, interval=0.2)
        net.run(until=5.0)
        link = net.link("a", "b")
        assert link.random_drops == 4  # all in-burst packets
        assert link.delivered == 3  # all post-burst packets
        assert link.conserves_packets()

    def test_duplication_injects_copies(self):
        net = pair()
        plan = FaultPlan((Duplication("a", "b", at=0.0, duration=10.0, rate=1.0),))
        net.install_faults(plan)
        feed(net, 1.0, 2.0, interval=0.25)
        net.run(until=5.0)
        link = net.link("a", "b")
        assert link.sent == 4
        assert link.fault_duplicates == 4
        assert link.delivered == 8
        assert link.conserves_packets()

    def test_corruption_drops_with_own_counter(self):
        net = pair()
        plan = FaultPlan((Corruption("a", "b", at=0.0, duration=10.0, rate=1.0),))
        net.install_faults(plan)
        feed(net, 1.0, 2.0, interval=0.25)
        net.run(until=5.0)
        link = net.link("a", "b")
        assert link.corrupt_drops == 4
        assert link.delivered == 0
        assert link.conserves_packets()

    def test_stages_disabled_after_episode(self):
        net = pair()
        plan = FaultPlan((Corruption("a", "b", at=0.0, duration=1.0, rate=1.0),))
        net.install_faults(plan)
        feed(net, 2.0, 3.0, interval=0.25)
        net.run(until=5.0)
        link = net.link("a", "b")
        assert link.corrupt_drops == 0
        assert link.delivered == 4
        assert link._fault_rng is None  # stage fully torn down


class TestNodeFaults:
    def test_pause_resume_cycle(self):
        net = pair()
        plan = FaultPlan((NodePause("b", at=1.0, duration=1.0),))
        net.install_faults(plan)
        feed(net, 0.5, 3.0, interval=0.5)
        net.run(until=5.0)
        b = net.nodes["b"]
        assert not b.paused and b.alive and not b.faulted
        assert b.fault_drops >= 1  # packets arriving while paused
        assert net.link("a", "b").delivered == net.link("a", "b").sent

    def test_explicit_resume(self):
        net = pair()
        plan = FaultPlan((
            NodePause("b", at=1.0),
            NodeResume("b", at=3.0),
        ))
        injector = net.install_faults(plan)
        states = []
        for t in (2.0, 4.0):
            net.sim.schedule_at(t, lambda: states.append(net.nodes["b"].paused))
        net.run(until=5.0)
        assert states == [True, False]
        assert [r.action for r in injector.log] == ["pause", "resume"]

    def test_crash_is_permanent(self):
        net = pair()
        plan = FaultPlan((
            NodeCrash("b", at=1.0),
            NodeResume("b", at=2.0),  # resume must not revive a corpse
        ))
        net.install_faults(plan)
        net.run(until=5.0)
        b = net.nodes["b"]
        assert not b.alive and b.faulted

    def test_acker_sentinel_without_lookup_is_skipped(self):
        net = pair()
        plan = FaultPlan((NodeCrash(ACKER, at=1.0),))
        injector = net.install_faults(plan)
        net.run(until=5.0)
        assert [r.action for r in injector.log] == ["crash-skipped"]
        assert all(node.alive for node in net.nodes.values())

    def test_acker_sentinel_resolved_at_fire_time(self):
        net = pair()
        plan = FaultPlan((NodeCrash(ACKER, at=1.0),))
        injector = net.install_faults(plan, acker_lookup=lambda: "b")
        net.run(until=5.0)
        assert [(r.action, r.target) for r in injector.log] == [("crash", "b")]
        assert not net.nodes["b"].alive


class TestElementFaults:
    def test_element_toggles_enabled(self):
        net = Network()
        net.add_host("a")
        net.add_router("R")
        net.add_host("b")
        net.duplex_link("a", "R", FAST)
        net.duplex_link("R", "b", FAST)
        net.build_routes()
        net.nodes["R"].interceptor = types.SimpleNamespace(enabled=True)
        plan = FaultPlan((ElementDown("R", at=1.0, duration=1.0),))
        injector = net.install_faults(plan)
        states = []
        for t in (1.5, 3.0):
            net.sim.schedule_at(
                t, lambda: states.append(net.nodes["R"].interceptor.enabled)
            )
        net.run(until=4.0)
        assert states == [False, True]
        assert [r.action for r in injector.log] == ["element-down", "element-up"]

    def test_element_without_interceptor_skipped(self):
        net = pair()
        plan = FaultPlan((ElementDown("b", at=1.0),))
        injector = net.install_faults(plan)
        net.run(until=2.0)
        assert [r.action for r in injector.log] == ["element-skipped"]


class TestInjector:
    def test_validation_on_compile(self):
        net = pair()
        with pytest.raises(ValueError):
            FaultInjector(net, FaultPlan((LinkDown("a", "zz", at=0.0),)))
        # opt-out compiles (actions targeting the missing link would fail
        # at fire time, so only use validate=False for node sentinels)
        FaultInjector(net, FaultPlan((NodeCrash("zz", at=0.0),)), validate=False)

    def test_audit_log_is_chronological(self):
        net = pair()
        plan = FaultPlan((
            LinkDown("a", "b", at=2.0, duration=1.0, both=False),
            NodePause("b", at=1.0, duration=0.5),
        ))
        injector = net.install_faults(plan)
        net.run(until=5.0)
        times = [r.time for r in injector.log]
        assert times == sorted(times)
        assert injector.actions_applied == 4
        assert len(injector.actions("link-down")) == 1
        assert len(injector.actions("pause")) == 1

    def test_past_times_clamped_to_now(self):
        net = pair()
        net.run(until=3.0)
        plan = FaultPlan((LinkDown("a", "b", at=1.0, duration=1.0, both=False),))
        injector = net.install_faults(plan)
        net.run(until=6.0)
        # both actions fired (at now), rather than raising on a past time
        assert [r.action for r in injector.log] == ["link-down", "link-up"]
        assert net.link("a", "b").up

    def test_both_directions_by_default(self):
        net = pair()
        plan = FaultPlan((LinkDown("a", "b", at=1.0, duration=1.0),))
        injector = net.install_faults(plan)
        net.run(until=3.0)
        assert {r.target for r in injector.actions("link-down")} == {
            "a->b", "b->a"
        }
