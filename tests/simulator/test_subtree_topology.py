"""SubtreePlan / dumbbell_subtrees: the O(K)-node virtual topology.

The scalability tentpole rests on two properties pinned here: the
plan's identity namespace is computed (never materialised as an O(N)
list), and virtual mode's node count is independent of ``n_receivers``
— a million-receiver topology must construct in well under a second.
"""

import time

import pytest

from repro.simulator import LinkSpec, dumbbell_subtrees

BOTTLENECK = LinkSpec(rate_bps=1_000_000, delay=0.02)


class TestPlanNamespace:
    def test_sizes_split_evenly(self):
        plan = dumbbell_subtrees(10, subtrees=3).subtree_plan
        assert sum(plan.sizes) == 10
        assert max(plan.sizes) - min(plan.sizes) <= 1
        assert plan.sizes == (4, 3, 3)

    def test_identity_and_subtree_roundtrip(self):
        plan = dumbbell_subtrees(12, subtrees=3).subtree_plan
        for k in range(3):
            for i in range(plan.sizes[k]):
                assert plan.subtree_of(plan.identity(k, i)) == k

    @pytest.mark.parametrize("bad", [
        "h0", "R0", "T0", "t0agg", "t0s1", "tXr1", "t0rX",
        "t9r0",          # subtree out of range
        "t0r99",         # member index out of range
    ])
    def test_subtree_of_rejects_non_members(self, bad):
        plan = dumbbell_subtrees(12, subtrees=3).subtree_plan
        assert plan.subtree_of(bad) is None

    def test_identities_are_lazy(self):
        plan = dumbbell_subtrees(1_000_000, subtrees=4).subtree_plan
        gen = plan.identities(0)
        assert next(gen) == "t0r0"

    def test_session_hosts_virtual_is_o_of_k(self):
        plan = dumbbell_subtrees(10_000, subtrees=2, slots=3).subtree_plan
        hosts = plan.session_hosts()
        assert hosts == ["t0agg", "t0s0", "t0s1", "t0s2",
                         "t1agg", "t1s0", "t1s1", "t1s2"]

    def test_session_hosts_real_lists_every_member(self):
        plan = dumbbell_subtrees(6, subtrees=2, members="real").subtree_plan
        assert plan.session_hosts() == [
            "t0r0", "t0r1", "t0r2", "t1r0", "t1r1", "t1r2"]


class TestTopologyConstruction:
    def test_virtual_nodes_independent_of_n(self):
        small = dumbbell_subtrees(100, subtrees=2, slots=4)
        large = dumbbell_subtrees(100_000, subtrees=2, slots=4)
        assert len(small.nodes) == len(large.nodes)
        # h0, R0, and per subtree: router + agg + slots hosts
        assert len(small.nodes) == 2 + 2 * (1 + 1 + 4)

    def test_virtual_mode_has_no_member_hosts(self):
        net = dumbbell_subtrees(100, subtrees=2)
        assert "t0r0" not in net.nodes
        assert "t0agg" in net.nodes
        assert "t0s0" in net.nodes
        assert "T0" in net.nodes

    def test_real_mode_has_member_hosts(self):
        net = dumbbell_subtrees(4, subtrees=2, members="real")
        assert "t0r0" in net.nodes and "t1r1" in net.nodes
        assert "t0agg" not in net.nodes

    def test_links_exist(self):
        net = dumbbell_subtrees(8, subtrees=2, bottleneck=BOTTLENECK)
        plan = net.subtree_plan
        assert net.link("R0", plan.router(0)) is not None
        assert net.link(plan.router(1), plan.agg_host(1)) is not None

    @pytest.mark.parametrize("kwargs", [
        {"n_receivers": 0},
        {"n_receivers": 2, "subtrees": 0},
        {"n_receivers": 2, "subtrees": 3},
        {"n_receivers": 2, "members": "imaginary"},
    ])
    def test_invalid_arguments_rejected(self, kwargs):
        with pytest.raises(ValueError):
            dumbbell_subtrees(**kwargs)

    def test_million_receiver_topology_constructs_fast(self):
        # The whole point of virtual members: node count is
        # O(subtrees * slots), so 10^6 receivers build in O(100) nodes.
        t0 = time.perf_counter()
        net = dumbbell_subtrees(1_000_000, subtrees=64)
        elapsed = time.perf_counter() - t0
        assert net.subtree_plan.n_receivers == 1_000_000
        assert len(net.nodes) == 2 + 64 * (1 + 1 + 4)
        assert elapsed < 5.0
