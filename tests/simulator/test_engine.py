"""Unit tests for the discrete-event engine.

The behavioral suites run against *both* schedulers (the reference
heap and the calendar queue) via the parametrized ``sim`` fixture —
identical observable semantics is the contract that lets experiments
select either one.
"""

import pytest

from repro.simulator.engine import (
    SCHEDULER_ENV,
    CalendarSimulator,
    Simulator,
    Timer,
    cancel_event,
    describe_event,
    make_simulator,
)


@pytest.fixture(params=["heap", "calendar"])
def sim(request):
    return make_simulator(request.param)


class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_ties_break_by_insertion_order(self, sim):
        order = []
        for tag in range(5):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_schedule_in_past_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_before_now_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_schedule_from_callback(self, sim):
        times = []

        def chain():
            times.append(sim.now)
            if len(times) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert times == [1.0, 2.0, 3.0]

    def test_zero_delay_allowed(self, sim):
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: None))
        sim.run()
        assert sim.now == 1.0


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 2)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_run_until_then_resume(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 2)
        sim.run(until=5.0)
        sim.run(until=20.0)
        assert fired == [1, 2]

    def test_stop_from_callback(self, sim):
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [(1, None)] or fired[0] is not None
        assert len(fired) == 1

    def test_max_events(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        ev = sim.schedule(1.0, fired.append, "x")
        sim.cancel(ev)
        sim.run()
        assert fired == []

    def test_events_processed_counter(self, sim):
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_pending_excludes_cancelled(self, sim):
        sim.schedule(1.0, lambda: None)
        ev = sim.schedule(2.0, lambda: None)
        sim.cancel(ev)
        assert sim.pending() == 1

    def test_metrics_names_scheduler(self, sim):
        sim.schedule(1.0, lambda: None)
        m = sim.metrics()
        assert m["scheduler"] == sim.kind
        assert m["heap_len"] == 1


class TestTimer:
    def test_fires_once(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]
        assert not timer.armed

    def test_restart_supersedes(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        timer.restart(5.0)
        sim.run()
        assert fired == [5.0]

    def test_cancel(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(1.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_double_start_raises(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        with pytest.raises(RuntimeError):
            timer.start(2.0)

    def test_expiry_property(self, sim):
        timer = Timer(sim, lambda: None)
        assert timer.expiry is None
        timer.start(3.0)
        assert timer.expiry == 3.0

    def test_rearm_from_callback(self, sim):
        fired = []
        timer = Timer(sim, lambda: None)

        def tick():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.restart(1.0)

        timer._callback = tick
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestFactory:
    def test_default_is_heap(self, monkeypatch):
        monkeypatch.delenv(SCHEDULER_ENV, raising=False)
        assert isinstance(make_simulator(), Simulator)

    def test_explicit_kinds(self):
        assert isinstance(make_simulator("heap"), Simulator)
        assert isinstance(make_simulator("calendar"), CalendarSimulator)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "calendar")
        assert isinstance(make_simulator(), CalendarSimulator)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_simulator("splay-tree")


class TestCalendarInternals:
    """Calendar-specific mechanics the shared suites don't pin down."""

    def test_adaptive_resize_preserves_all_events(self):
        sim = CalendarSimulator(nbuckets=4, width=0.01)
        fired = []
        for i in range(100):  # far beyond 2 * nbuckets
            sim.schedule(i * 0.5, fired.append, i)
        assert sim._nb > 4, "occupancy should have forced a resize"
        sim.run()
        assert fired == list(range(100))

    def test_far_future_event_found_by_min_scan(self):
        sim = CalendarSimulator(nbuckets=8, width=0.001)
        fired = []
        sim.schedule(1e6, fired.append, "far")  # many laps ahead
        sim.schedule(0.5, fired.append, "near")
        sim.run()
        assert fired == ["near", "far"]
        assert sim.now == 1e6

    def test_resume_after_budget_stop_keeps_order(self):
        # run(until=...) advances the clock on a budget stop; leftover
        # earlier events must still fire first on resume (regression
        # for the cursor-ahead-of-pending bug).
        sim = CalendarSimulator()
        fired = []
        for i in range(6):
            sim.schedule(0.0, fired.append, i)
        sim.schedule(0.015625, fired.append, "late")
        sim.run(until=1.0, max_events=3)
        assert sim.now == 1.0
        sim.run()
        assert fired == [0, 1, 2, 3, 4, 5, "late"]


class TestEventHandles:
    def test_cancel_event_function(self, sim):
        fired = []
        ev = sim.schedule(1.0, fired.append, "x")
        cancel_event(ev)
        sim.run()
        assert fired == []

    def test_describe_live_event(self, sim):
        ev = sim.schedule(1.5, print, "hello")
        text = describe_event(ev)
        assert "1.5" in text and "print" in text and "hello" in text

    def test_describe_cancelled_event_drops_args(self, sim):
        ev = sim.schedule(1.0, print, "secret-arg")
        sim.cancel(ev)
        text = describe_event(ev)
        assert "secret-arg" not in text
        assert "cancelled" in text
