"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulator.engine import Simulator, Timer


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        for tag in range(5):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_before_now_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_schedule_from_callback(self):
        sim = Simulator()
        times = []

        def chain():
            times.append(sim.now)
            if len(times) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert times == [1.0, 2.0, 3.0]

    def test_zero_delay_allowed(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: None))
        sim.run()
        assert sim.now == 1.0


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 2)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_run_until_then_resume(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 2)
        sim.run(until=5.0)
        sim.run(until=20.0)
        assert fired == [1, 2]

    def test_stop_from_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [(1, None)] or fired[0] is not None
        assert len(fired) == 1

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, fired.append, "x")
        ev.cancel()
        sim.run()
        assert fired == []

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        ev = sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.pending() == 1


class TestTimer:
    def test_fires_once(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]
        assert not timer.armed

    def test_restart_supersedes(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        timer.restart(5.0)
        sim.run()
        assert fired == [5.0]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(1.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_double_start_raises(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        with pytest.raises(RuntimeError):
            timer.start(2.0)

    def test_expiry_property(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert timer.expiry is None
        timer.start(3.0)
        assert timer.expiry == 3.0

    def test_rearm_from_callback(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: None)

        def tick():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.restart(1.0)

        timer._callback = tick
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]
