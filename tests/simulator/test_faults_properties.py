"""Property tests for fault plans: arbitrary valid plans compose and
compile without error, and the same ``(seed, plan)`` pair yields a
byte-identical trace run after run — the determinism contract the
chaos suite is built on."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pgm import create_session
from repro.pgm.session import SessionConfig
from repro.simulator import (
    ACKER,
    BurstLoss,
    ControlBlackhole,
    Corruption,
    Duplication,
    FaultPlan,
    LinkDown,
    LinkImpairment,
    LinkSpec,
    NodeCrash,
    NodePause,
    Partition,
    dumbbell,
)

BOTTLENECK = LinkSpec(rate_bps=300_000, delay=0.02, queue_slots=15)

# Names present in every dumbbell(1, 2) topology.
LINKS = [("R0", "R1"), ("h0", "R0"), ("R1", "r0"), ("R1", "r1")]
NODES = ["r0", "r1", "R0", "R1", ACKER]

TIMES = st.sampled_from([0.5, 1.0, 2.5, 4.0, 6.0, 7.5])
DURATIONS = st.sampled_from([0.2, 0.5, 1.0, 2.0])

#: ways to bisect every dumbbell(1, 2) topology — all have cut links.
CUTS = [
    (("h0", "R0"), ("R1", "r0", "r1")),
    (("h0", "R0", "R1"), ("r0", "r1")),
    (("h0",), ("R0", "R1", "r0", "r1")),
]

#: control-packet kind sets for blackholes (payload class names)
KIND_SETS = [("Ack",), ("Ack", "Nak"), ("Ack", "Nak", "Ncf", "Spm")]


@st.composite
def episodes(draw):
    kind = draw(st.sampled_from(
        ["down", "impair", "burst", "dup", "corrupt", "pause", "crash",
         "partition", "blackhole"]
    ))
    at = draw(TIMES)
    if kind == "partition":
        side_a, side_b = draw(st.sampled_from(CUTS))
        return Partition(side_a, side_b, at=at, duration=draw(DURATIONS))
    if kind == "blackhole":
        a, b = draw(st.sampled_from(LINKS))
        return ControlBlackhole(a, b, at=at, duration=draw(DURATIONS),
                                kinds=draw(st.sampled_from(KIND_SETS)),
                                both=draw(st.booleans()))
    if kind in ("pause", "crash"):
        node = draw(st.sampled_from(NODES))
        if kind == "pause":
            return NodePause(node, at=at, duration=draw(DURATIONS))
        return NodeCrash(node, at=at)
    a, b = draw(st.sampled_from(LINKS))
    duration = draw(DURATIONS)
    both = draw(st.booleans())
    if kind == "down":
        return LinkDown(a, b, at=at, duration=duration, both=both)
    if kind == "impair":
        rate_bps = draw(st.sampled_from([50_000, 150_000, None]))
        delay = draw(st.sampled_from([0.001, 0.1, None]))
        loss_rate = draw(st.sampled_from([0.05, 0.5, None]))
        if rate_bps is None and delay is None and loss_rate is None:
            rate_bps = 50_000  # at least one knob must be set
        return LinkImpairment(a, b, at=at, duration=duration, both=both,
                              rate_bps=rate_bps, delay=delay,
                              loss_rate=loss_rate)
    if kind == "burst":
        return BurstLoss(a, b, at=at, duration=duration, both=both,
                         loss_rate=draw(st.sampled_from([0.5, 1.0])))
    if kind == "dup":
        return Duplication(a, b, at=at, duration=duration, both=both,
                           rate=draw(st.sampled_from([0.1, 0.5, 1.0])))
    return Corruption(a, b, at=at, duration=duration, both=both,
                      rate=draw(st.sampled_from([0.1, 0.5])))


@st.composite
def fault_plans(draw, max_episodes=6):
    n = draw(st.integers(min_value=0, max_value=max_episodes))
    return FaultPlan(tuple(draw(episodes()) for _ in range(n)))


def run_traced(plan: FaultPlan, seed: int) -> bytes:
    """One full session under ``plan``; the trace, byte-encoded."""
    net = dumbbell(1, 2, BOTTLENECK, seed=seed)
    session = create_session(net, "h0", ["r0", "r1"], faults=plan,
                             trace_name="det")
    net.run(until=10.0)
    payload = "\n".join(repr(r) for r in session.trace.records)
    return payload.encode()


class TestPlanProperties:
    @given(p1=fault_plans(), p2=fault_plans())
    @settings(max_examples=50, deadline=None)
    def test_plans_compose_and_validate(self, p1, p2):
        combined = p1 + p2
        assert len(combined) == len(p1) + len(p2)
        net = dumbbell(1, 2, BOTTLENECK, seed=1)
        combined.validate_against(net)
        # compiling arbitrary valid plans never raises
        net.install_faults(combined, acker_lookup=lambda: "r0")

    @given(plan=fault_plans(), factor=st.sampled_from([0.25, 0.5, 2.0]))
    @settings(max_examples=50, deadline=None)
    def test_scaling_scales_the_horizon(self, plan, factor):
        scaled = plan.scaled(factor)
        assert len(scaled) == len(plan)
        assert scaled.horizon == plan.horizon * factor

    @pytest.mark.slow
    @given(plan=fault_plans(max_episodes=4),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_same_seed_and_plan_is_byte_identical(self, plan, seed):
        assert run_traced(plan, seed) == run_traced(plan, seed)


@st.composite
def partition_plans(draw, max_episodes=4):
    """Plans of only the liveness-layer faults: partitions (freely
    overlapping), control blackholes, and acker crashes — including
    heal-before-crash and crash-during-partition orderings."""
    n = draw(st.integers(min_value=1, max_value=max_episodes))
    eps = []
    for _ in range(n):
        kind = draw(st.sampled_from(["partition", "blackhole", "crash"]))
        at = draw(TIMES)
        if kind == "partition":
            side_a, side_b = draw(st.sampled_from(CUTS))
            eps.append(Partition(side_a, side_b, at=at,
                                 duration=draw(DURATIONS)))
        elif kind == "blackhole":
            a, b = draw(st.sampled_from(LINKS))
            eps.append(ControlBlackhole(
                a, b, at=at, duration=draw(DURATIONS),
                kinds=draw(st.sampled_from(KIND_SETS)),
                both=draw(st.booleans())))
        else:
            eps.append(NodeCrash(draw(st.sampled_from(["r0", "r1", ACKER])),
                                 at=at))
    return FaultPlan(tuple(eps))


class TestPartitionInvariants:
    """The satellite oracle: no ordering of partitions, blackholes and
    crashes — overlapping episodes, heals racing crashes — may ever
    violate the window/token accounting, with or without the liveness
    watchdog driving recovery restarts."""

    @pytest.mark.slow
    @given(plan=partition_plans(),
           liveness=st.booleans(),
           seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_partition_plans_never_violate_invariants(self, plan, liveness,
                                                      seed):
        net = dumbbell(1, 2, BOTTLENECK, seed=seed)
        session = create_session(
            net, "h0", ["r0", "r1"],
            config=SessionConfig(liveness=liveness, faults=plan,
                                 check_invariants=True,
                                 strict_invariants=True))
        net.run(until=12.0)
        session.invariants.verify_now()
        assert session.invariants.ok
        session.close()

    @given(plan=partition_plans(max_episodes=2))
    @settings(max_examples=20, deadline=None)
    def test_partition_plans_compile(self, plan):
        net = dumbbell(1, 2, BOTTLENECK, seed=3)
        plan.validate_against(net)
        net.install_faults(plan, acker_lookup=lambda: "r0")
