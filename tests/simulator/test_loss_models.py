"""Unit tests for the loss models."""

import random

import pytest

from repro.simulator.loss_models import (
    BernoulliLoss,
    DeterministicLoss,
    GilbertElliottLoss,
    NoLoss,
    PeriodicLoss,
)
from repro.simulator.packet import Packet


def pkt():
    return Packet("a", "b", 100)


class TestNoLoss:
    def test_never_drops(self):
        model = NoLoss()
        assert not any(model.should_drop(pkt()) for _ in range(100))


class TestBernoulli:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5, random.Random(1))
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1, random.Random(1))

    def test_zero_rate_never_drops(self):
        model = BernoulliLoss(0.0, random.Random(1))
        assert not any(model.should_drop(pkt()) for _ in range(100))

    def test_one_rate_always_drops(self):
        model = BernoulliLoss(1.0, random.Random(1))
        assert all(model.should_drop(pkt()) for _ in range(100))

    @pytest.mark.parametrize("rate", [0.01, 0.03, 0.05])
    def test_empirical_rate_close_to_nominal(self, rate):
        """The paper's lossy configs: 1%, 3%, 5%."""
        model = BernoulliLoss(rate, random.Random(42))
        n = 50_000
        drops = sum(model.should_drop(pkt()) for _ in range(n))
        assert abs(drops / n - rate) < 0.004

    def test_reproducible_with_seed(self):
        a = BernoulliLoss(0.5, random.Random(9))
        b = BernoulliLoss(0.5, random.Random(9))
        seq_a = [a.should_drop(pkt()) for _ in range(50)]
        seq_b = [b.should_drop(pkt()) for _ in range(50)]
        assert seq_a == seq_b


class TestGilbertElliott:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(random.Random(1), p_good_to_bad=1.5)

    def test_burstiness(self):
        """Losses cluster compared to Bernoulli at equal average rate."""
        model = GilbertElliottLoss(
            random.Random(3), p_good_to_bad=0.01, p_bad_to_good=0.2,
            good_loss=0.0, bad_loss=0.5,
        )
        drops = [model.should_drop(pkt()) for _ in range(50_000)]
        rate = sum(drops) / len(drops)
        assert abs(rate - model.steady_state_loss) < 0.01
        # count adjacent double-losses; bursty >> independent
        pairs = sum(1 for i in range(len(drops) - 1) if drops[i] and drops[i + 1])
        expected_independent = rate * rate * len(drops)
        assert pairs > 3 * expected_independent

    def test_steady_state_formula(self):
        model = GilbertElliottLoss(
            random.Random(1), p_good_to_bad=0.1, p_bad_to_good=0.1,
            good_loss=0.0, bad_loss=0.4,
        )
        assert model.steady_state_loss == pytest.approx(0.2)


class TestDeterministic:
    def test_drops_listed_indices(self):
        model = DeterministicLoss([2, 4])
        results = [model.should_drop(pkt()) for _ in range(5)]
        assert results == [False, True, False, True, False]


class TestPeriodic:
    def test_period_validation(self):
        with pytest.raises(ValueError):
            PeriodicLoss(0)

    def test_exact_rate(self):
        model = PeriodicLoss(10)
        drops = [model.should_drop(pkt()) for _ in range(100)]
        assert sum(drops) == 10
        assert drops[9] and drops[19]

    def test_offset_shifts_pattern(self):
        model = PeriodicLoss(10, offset=5)
        drops = [model.should_drop(pkt()) for _ in range(10)]
        assert drops.index(True) == 4
