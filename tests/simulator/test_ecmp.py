"""Tests for the ECMP (packet-spraying) router."""

import pytest

from repro.simulator import ACCESS, LinkSpec, Network, Packet


def build():
    net = Network(seed=9)
    net.add_host("a")
    net.add_ecmp_router("E")
    net.add_router("P1")
    net.add_router("P2")
    net.add_host("b")
    net.duplex_link("a", "E", ACCESS)
    net.duplex_link("E", "P1", ACCESS)
    net.duplex_link("E", "P2", LinkSpec(100_000_000, 0.050, queue_slots=1000))
    net.duplex_link("P1", "b", ACCESS)
    net.duplex_link("P2", "b", ACCESS)
    net.build_routes()
    return net


class Sink:
    def __init__(self):
        self.packets = []

    def handle_packet(self, packet):
        self.packets.append(packet.retain())


class TestEcmp:
    def test_needs_two_hops(self):
        net = build()
        with pytest.raises(ValueError):
            net.router("E").set_ecmp("b", ["P1"])

    def test_round_robin_split(self):
        net = build()
        net.router("E").set_ecmp("b", ["P1", "P2"])
        sink = Sink()
        net.host("b").register_agent("raw", sink)
        for _ in range(10):
            net.host("a").send(Packet("a", "b", 100, proto="raw"))
        net.run(until=1.0)
        assert len(sink.packets) == 10
        assert net.link("E", "P1").delivered == 5
        assert net.link("E", "P2").delivered == 5

    def test_unequal_delays_reorder(self):
        net = build()
        net.router("E").set_ecmp("b", ["P1", "P2"])
        sink = Sink()
        net.host("b").register_agent("raw", sink)
        for i in range(6):
            # tag send order in the payload (Host.send stamps created_at)
            net.host("a").send(Packet("a", "b", 100, payload=i, proto="raw"))
        net.run(until=1.0)
        arrival_order = [p.payload for p in sink.packets]
        assert arrival_order != sorted(arrival_order)  # reordering happened

    def test_non_ecmp_destinations_unchanged(self):
        net = build()
        net.router("E").set_ecmp("b", ["P1", "P2"])
        # traffic back to 'a' follows the plain unicast table
        sink = Sink()
        net.host("a").register_agent("raw", sink)
        net.host("b").send(Packet("b", "a", 100, proto="raw"))
        net.run(until=1.0)
        assert len(sink.packets) == 1

    def test_multicast_spray(self):
        net = build()
        group = "mc:g"
        net.set_group(group, "a", ["b"])
        net.router("E").set_ecmp(group, ["P1", "P2"])
        for parallel in ("P1", "P2"):
            net.router(parallel).multicast_routes[group] = ("b",)
        sink = Sink()
        net.host("b").register_agent("raw", sink)
        for _ in range(8):
            net.host("a").send(Packet("a", group, 100, proto="raw"))
        net.run(until=1.0)
        assert len(sink.packets) == 8
        assert net.link("E", "P1").delivered == 4
