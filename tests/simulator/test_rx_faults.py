"""Tests for the receiver-misbehavior fault episodes: validation,
injector wiring, audit records, and (seed, plan) determinism."""

import pytest

from repro.pgm import create_session
from repro.simulator import (
    ACKER,
    AckReplay,
    FaultInjector,
    FaultPlan,
    FrozenLead,
    GreedyAcker,
    LinkSpec,
    NakStorm,
    Network,
    SilentJoiner,
    Throttler,
    dumbbell,
)

BOTTLENECK = LinkSpec(rate_bps=300_000, delay=0.02, queue_slots=15)


def small_net(seed=5):
    return dumbbell(1, 2, BOTTLENECK, seed=seed)


class TestEpisodeValidation:
    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            GreedyAcker("r0", at=-1.0)
        with pytest.raises(ValueError):
            SilentJoiner("r0", at=-0.1)

    def test_greedy_acker_params_validated(self):
        with pytest.raises(ValueError):
            GreedyAcker("r0", at=0.0, report_ivl=0.0)
        with pytest.raises(ValueError):
            GreedyAcker("r0", at=0.0, capture_loss=0.0)
        with pytest.raises(ValueError):
            GreedyAcker("r0", at=0.0, capture_loss=1.5)
        with pytest.raises(ValueError):
            GreedyAcker("r0", at=0.0, ack_rate=-1.0)

    def test_throttler_rates_bounded(self):
        with pytest.raises(ValueError):
            Throttler("r0", at=0.0, loss_rate=2.0)
        with pytest.raises(ValueError):
            Throttler("r0", at=0.0, ack_drop_rate=-0.5)

    def test_storm_and_replay_need_durations(self):
        with pytest.raises(ValueError):
            NakStorm("r0", at=0.0, duration=0.0)
        with pytest.raises(ValueError):
            AckReplay("r0", at=0.0, duration=-1.0)
        with pytest.raises(ValueError):
            AckReplay("r0", at=0.0, duration=1.0, copies=0)
        with pytest.raises(ValueError):
            NakStorm("r0", at=0.0, duration=1.0, rate=0.0)

    def test_plans_compose_with_link_faults(self):
        plan = FaultPlan((GreedyAcker("r0", at=1.0),)) + FaultPlan(
            (Throttler("r1", at=2.0, duration=3.0),)
        )
        assert len(plan) == 2
        assert plan.horizon >= 5.0


class TestInjectorWiring:
    def test_without_receiver_lookup_episode_skipped(self):
        """A plan naming receivers compiles on a bare network (no PGM
        session): the action is skipped and audited, never an error."""
        net = small_net()
        injector = FaultInjector(
            net, FaultPlan((GreedyAcker("r0", at=0.5),)))
        net.run(until=1.0)
        assert [r.action for r in injector.log] == ["greedy-acker-skipped"]

    def test_acker_sentinel_without_lookup_skipped(self):
        net = small_net()
        injector = FaultInjector(
            net, FaultPlan((SilentJoiner(ACKER, at=0.5, duration=1.0),)))
        net.run(until=1.0)
        assert injector.actions("silent-joiner-skipped")

    def test_start_and_stop_recorded(self):
        net = small_net()
        session = create_session(
            net, "h0", ["r0", "r1"],
            faults=FaultPlan((Throttler("r0", at=0.5, duration=1.0),)),
        )
        net.run(until=2.0)
        log = [r.action for r in session.fault_injector.log]
        assert log == ["throttler-start", "throttler-stop"]
        # behaviour uninstalled after the episode
        assert session.receiver("r0").behaviors == {}
        session.close()

    def test_behavior_installed_during_episode(self):
        net = small_net()
        session = create_session(
            net, "h0", ["r0", "r1"],
            faults=FaultPlan((SilentJoiner("r0", at=0.5),)),
        )
        net.run(until=1.0)
        assert "silent-joiner" in session.receiver("r0").behaviors
        session.close()


class TestDeterminism:
    @pytest.mark.parametrize("episode", [
        GreedyAcker("r0", at=1.0, ack_rate=40.0),
        Throttler("r0", at=1.0),
        FrozenLead("r0", at=1.0),
        NakStorm("r0", at=1.0, duration=4.0, rate=80.0),
        AckReplay("r0", at=1.0, duration=4.0),
        SilentJoiner("r0", at=1.0),
    ])
    def test_same_seed_same_trace(self, episode):
        def run_once():
            net = small_net(seed=11)
            session = create_session(
                net, "h0", ["r0", "r1"], faults=FaultPlan((episode,)),
                trace_name="det")
            net.run(until=6.0)
            trace = "\n".join(repr(r) for r in session.trace.records)
            session.close()
            return trace

        assert run_once() == run_once()
