"""Packet pool: leak accounting, recycling, and the release contract.

The pool's invariant is the PR's safety net: after any drained
scenario — including NE suppression, fault episodes and queue churn —
``POOL.outstanding`` returns to zero and ``POOL.double_release`` stays
zero.  A leak means some path forgot to release; a double release
means two owners released the same reference (the bug class that used
to corrupt free lists in pooled designs).
"""

import pytest

from repro.pgm import constants as C
from repro.pgm.network_element import PgmNetworkElement
from repro.pgm.session import create_session
from repro.simulator import (
    LOSSY,
    POOL,
    BurstLoss,
    Corruption,
    Duplication,
    FaultPlan,
    LinkSpec,
    Packet,
    dumbbell,
    flap_link,
    set_packet_pooling,
)
from repro.simulator.engine import describe_event


@pytest.fixture(autouse=True)
def clean_pool():
    """Each test starts from zeroed counters and ends pooled-on."""
    POOL.reset()
    set_packet_pooling(True)
    yield
    set_packet_pooling(True)
    POOL.reset()


# -- unit-level lifecycle ------------------------------------------------


def test_refcount_lifecycle_and_reuse():
    p = Packet("a", "b", 100, payload="x")
    assert p.live
    p.retain()
    p.release()
    assert p.live  # one reference still held
    p.release()
    assert not p.live
    assert POOL.free, "released packet should enter the free list"
    q = Packet("c", "d", 200)
    assert q is p, "construction should recycle the freed instance"
    assert q.src == "c" and q.size == 200 and q.live
    assert POOL.reused == 1


def test_uids_fresh_across_reuse():
    a = Packet("a", "b", 1)
    uid_a = a.uid
    a.release()
    b = Packet("a", "b", 1)
    assert b is a and b.uid != uid_a


def test_double_release_is_counted_not_recycled_twice():
    p = Packet("a", "b", 100)
    p.release()
    frees = len(POOL.free)
    p.release()  # buggy caller
    assert POOL.double_release == 1
    assert len(POOL.free) == frees, "double release must not re-enter the free list"


def test_unpooled_keeps_refcounting():
    set_packet_pooling(False)
    p = Packet("a", "b", 100)
    p.release()
    assert not p.live
    assert not POOL.free
    q = Packet("a", "b", 100)
    assert q is not p
    assert POOL.outstanding == 1  # q live, p released


def test_disabling_pool_drops_free_list():
    Packet("a", "b", 1).release()
    assert POOL.free
    set_packet_pooling(False)
    assert not POOL.free


# -- repr / trace guards (released packets must not resurrect) -----------


def test_released_packet_repr_is_guarded():
    p = Packet("a", "b", 100, payload="secret")
    live = repr(p)
    assert "secret" in live
    p.release()
    dead = repr(p)
    assert "released" in dead
    assert "secret" not in dead


def test_describe_event_does_not_render_released_packets():
    """Regression: event dumps used to render stale pooled fields."""
    from repro.simulator.engine import Simulator

    sim = Simulator()
    p = Packet("a", "b", 100, payload="stale-payload")
    ev = sim.schedule(1.0, lambda pkt: None, p)
    p.release()
    text = describe_event(ev)
    assert "stale-payload" not in text
    assert "released" in text
    sim.cancel(ev)
    assert "stale-payload" not in describe_event(ev)


# -- integration: drained scenarios leak nothing -------------------------


def _assert_drained(tag):
    assert POOL.double_release == 0, f"{tag}: double release detected"
    assert POOL.outstanding == 0, (
        f"{tag}: {POOL.outstanding} packet(s) leaked ({POOL.stats()})"
    )


def test_session_with_loss_drains_to_zero():
    net = dumbbell(1, 3, LOSSY, seed=11)
    create_session(net, "h0", ["r0", "r1", "r2"], stop_at=4.0)
    net.run(until=8.0)
    _assert_drained("lossy session")


def test_session_with_ne_and_faults_drains_to_zero():
    """The hard case: NE retains for re-forwarding, fault episodes drop
    queued packets, duplication adds extra references, corruption
    replaces packets mid-flight."""
    duration = 6.0
    net = dumbbell(1, 3, LinkSpec(500_000, 0.050, queue_slots=30), seed=7)
    PgmNetworkElement(net.router("R0"))
    PgmNetworkElement(net.router("R1"))
    plan = FaultPlan(episodes=(
        *flap_link("R0", "R1", first_at=0.3 * duration,
                   down_for=0.05 * duration, up_for=0.1 * duration, cycles=2),
        BurstLoss("R0", "R1", at=0.5 * duration, duration=0.1 * duration,
                  loss_rate=0.8),
        Duplication("R0", "R1", at=0.6 * duration, duration=0.2 * duration,
                    rate=0.3),
        Corruption("R0", "R1", at=0.7 * duration, duration=0.2 * duration,
                   rate=0.1),
    ))
    create_session(net, "h0", ["r0", "r1", "r2"],
                   faults=plan, stop_at=0.8 * duration)
    net.run(until=2 * duration)
    _assert_drained("NE + faults session")


def test_queue_clear_releases_queued_packets():
    from repro.simulator.queues import DropTailQueue

    q = DropTailQueue(max_slots=10)
    for _ in range(5):
        q.offer(Packet("a", "b", 100))
    assert POOL.outstanding == 5
    q.clear()
    assert POOL.outstanding == 0
    assert POOL.double_release == 0
    assert q.bytes_queued == 0 and len(q) == 0


def test_unpooled_session_also_balances():
    """Refcount accounting holds with recycling off, too."""
    set_packet_pooling(False)
    net = dumbbell(1, 2, LOSSY, seed=5)
    create_session(net, "h0", ["r0", "r1"], stop_at=3.0)
    net.run(until=6.0)
    _assert_drained("unpooled session")
    assert not POOL.free
