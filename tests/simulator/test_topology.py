"""Tests for network construction, routing and multicast trees."""

import pytest

from repro.simulator import (
    ACCESS,
    LOSSY,
    NON_LOSSY,
    LinkSpec,
    Network,
    Packet,
    dumbbell,
    star,
    two_bottleneck,
)


class TestLinkSpec:
    def test_default_queue_is_30_slots(self):
        q = LinkSpec(1000, 0.01).make_queue()
        assert q.max_slots == 30

    def test_byte_queue(self):
        q = LinkSpec(1000, 0.01, queue_bytes=30_000).make_queue()
        assert q.max_bytes == 30_000
        assert q.max_slots is None

    def test_paper_configs(self):
        assert NON_LOSSY.rate_bps == 500_000
        assert NON_LOSSY.delay == 0.050
        assert NON_LOSSY.queue_slots == 30
        assert LOSSY.rate_bps == 2_000_000
        assert LOSSY.delay == 0.230
        assert LOSSY.queue_bytes == 30_000
        assert LOSSY.loss_rate == 0.03

    def test_loss_model_selection(self):
        import random

        assert LinkSpec(1000, 0.0).make_loss(random.Random(1)).__class__.__name__ == "NoLoss"
        assert (
            LinkSpec(1000, 0.0, loss_rate=0.1)
            .make_loss(random.Random(1))
            .__class__.__name__
            == "BernoulliLoss"
        )


class TestNetworkConstruction:
    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(ValueError):
            net.add_host("a")

    def test_duplex_link_creates_both_directions(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.duplex_link("a", "b", ACCESS)
        assert net.link("a", "b").name == "a->b"
        assert net.link("b", "a").name == "b->a"

    def test_asymmetric_duplex(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        slow = LinkSpec(1000, 0.5)
        net.duplex_link("a", "b", ACCESS, reverse_spec=slow)
        assert net.link("b", "a").rate_bps == 1000

    def test_host_router_type_guards(self):
        net = Network()
        net.add_host("h")
        net.add_router("r")
        with pytest.raises(TypeError):
            net.host("r")
        with pytest.raises(TypeError):
            net.router("h")


class TestUnicastRouting:
    def test_delivery_across_routers(self):
        net = dumbbell(1, 1, NON_LOSSY)
        received = []

        class Sink:
            def handle_packet(self, packet):
                received.append(packet.retain())

        net.host("r0").register_agent("raw", Sink())
        net.host("h0").send(Packet("h0", "r0", 100, proto="raw"))
        net.run(until=5.0)
        assert len(received) == 1

    def test_shortest_path_prefers_lower_delay(self):
        net = Network()
        for n in ("a", "b"):
            net.add_host(n)
        for r in ("fast", "slow"):
            net.add_router(r)
        net.duplex_link("a", "fast", LinkSpec(1e6, 0.001, queue_slots=10))
        net.duplex_link("fast", "b", LinkSpec(1e6, 0.001, queue_slots=10))
        net.duplex_link("a", "slow", LinkSpec(1e6, 0.5, queue_slots=10))
        net.duplex_link("slow", "b", LinkSpec(1e6, 0.5, queue_slots=10))
        net.build_routes()
        assert net.nodes["a"].unicast_routes["b"] == "fast"

    def test_host_does_not_forward_transit(self):
        net = dumbbell(1, 1, NON_LOSSY)
        host = net.host("r0")
        before = host.packets_dropped_no_route
        host.receive(Packet("x", "nonexistent", 10), from_node="R1")
        assert host.packets_dropped_no_route == before + 1


class TestMulticast:
    def test_tree_delivers_to_all_members(self):
        net = dumbbell(1, 3, NON_LOSSY)
        received = {f"r{i}": [] for i in range(3)}

        class Sink:
            def __init__(self, name):
                self.name = name

            def handle_packet(self, packet):
                received[self.name].append(packet.retain())

        members = ["r0", "r1", "r2"]
        net.set_group("mc:g", "h0", members)
        for m in members:
            net.host(m).register_agent("raw", Sink(m))
        net.host("h0").send(Packet("h0", "mc:g", 100, proto="raw"))
        net.run(until=5.0)
        assert all(len(v) == 1 for v in received.values())

    def test_non_members_not_delivered(self):
        net = dumbbell(1, 2, NON_LOSSY)
        hits = []

        class Sink:
            def handle_packet(self, packet):
                hits.append(packet.retain())

        net.set_group("mc:g", "h0", ["r0"])
        net.host("r1").register_agent("raw", Sink())
        net.host("h0").send(Packet("h0", "mc:g", 100, proto="raw"))
        net.run(until=5.0)
        assert hits == []

    def test_bottleneck_carries_one_copy(self):
        """Replication happens below the branch point, not above."""
        net = dumbbell(1, 3, NON_LOSSY)
        net.set_group("mc:g", "h0", ["r0", "r1", "r2"])
        bottleneck = net.link("R0", "R1")
        net.host("h0").send(Packet("h0", "mc:g", 100, proto="raw"))
        net.run(until=5.0)
        assert bottleneck.delivered == 1

    def test_join_group_requires_multicast_addr(self):
        net = Network()
        host = net.add_host("h")
        with pytest.raises(ValueError):
            host.join_group("not-multicast")

    def test_group_reinstall_extends_membership(self):
        net = star(3, ACCESS)
        net.set_group("mc:g", "src", ["r0"])
        net.set_group("mc:g", "src", ["r0", "r1"])
        hits = []

        class Sink:
            def handle_packet(self, packet):
                hits.append(packet.retain())

        net.host("r1").register_agent("raw", Sink())
        net.host("src").send(Packet("src", "mc:g", 100, proto="raw"))
        net.run(until=1.0)
        assert len(hits) == 1


class TestCannedTopologies:
    def test_dumbbell_shape(self):
        net = dumbbell(2, 3, NON_LOSSY)
        assert set(net.nodes) == {"h0", "h1", "r0", "r1", "r2", "R0", "R1"}
        assert net.link("R0", "R1").rate_bps == 500_000

    def test_star_shape(self):
        net = star(4, LOSSY)
        assert "src" in net.nodes
        assert net.link("R0", "r3").rate_bps == LOSSY.rate_bps

    def test_two_bottleneck_shape(self):
        l1 = LinkSpec(400_000, 0.05, queue_bytes=20_000)
        l2 = LinkSpec(500_000, 0.05, queue_slots=30)
        net = two_bottleneck(l1, l2)
        assert net.link("R0", "R1").rate_bps == 400_000
        assert net.link("R0", "R2").rate_bps == 500_000
        # TCP receiver shares L2's subtree
        assert net.nodes["R2"].links.keys() >= {"pr2", "tr"}
