"""Tests for the equation-based rate controller baselines (§2.1)."""

import pytest

from repro.baselines import EquationRateSender
from repro.core.reports import ReceiverReport
from repro.pgm import constants as C
from repro.pgm.packets import Nak, OData
from repro.pgm.receiver import PgmReceiver
from repro.simulator import LinkSpec, Network, Packet, star


def make_sender(net, aggregation="max-report", **kw):
    net.set_group("mc:b", "src", [n for n in net.nodes if n.startswith("r")])
    return EquationRateSender(net.host("src"), "mc:b", tsi=9,
                              aggregation=aggregation, **kw)


class TestConstruction:
    def test_unknown_aggregation_rejected(self):
        net = star(1, LinkSpec(1_000_000, 0.01, queue_slots=30))
        with pytest.raises(ValueError):
            make_sender(net, aggregation="average-of-vibes")


class TestRateDynamics:
    def test_paces_at_configured_rate(self):
        net = star(1, LinkSpec(10_000_000, 0.01, queue_slots=100), seed=1)
        sender = make_sender(net, initial_rate_bps=112_000)  # 10 pkt/s
        net.sim.schedule(0.0, sender.start)
        net.run(until=0.99)  # before the first epoch update
        assert sender.packets_sent == pytest.approx(10, abs=2)
        sender.close()

    def test_probes_up_without_loss(self):
        net = star(1, LinkSpec(50_000_000, 0.01, queue_slots=1000), seed=2)
        sender = make_sender(net, initial_rate_bps=50_000, max_rate_bps=1_000_000)
        net.sim.schedule(0.0, sender.start)
        net.run(until=6.0)
        assert sender.rate_bps == 1_000_000  # doubled to the cap
        sender.close()

    def test_loss_reports_bring_rate_down(self):
        net = star(1, LinkSpec(2_000_000, 0.1, queue_bytes=30_000,
                               loss_rate=0.02), seed=3)
        sender = make_sender(net, rtt_estimate=0.2)
        rx = PgmReceiver(net.host("r0"), "mc:b", 9, "src", reliable=False,
                         rng=net.rng.stream("t"))
        net.sim.schedule(0.0, sender.start)
        net.run(until=60.0)
        assert sender.loss_estimate > 0.001
        assert sender.rate_bps < 2_000_000
        sender.close()
        rx.close()

    def test_min_rate_floor_holds(self):
        net = star(1, LinkSpec(1_000_000, 0.01, queue_slots=30), seed=4)
        sender = make_sender(net, min_rate_bps=16_000)
        # inject a catastrophic report directly
        report = ReceiverReport("r0", 0, 60_000)
        sender.handle_packet(
            Packet("r0", "src", 100, Nak(9, 0, report), C.PROTO)
        )
        net.sim.schedule(0.0, sender.start)
        net.run(until=10.0)
        assert sender.rate_bps >= 16_000
        sender.close()


class TestAggregation:
    def nak(self, rx, loss):
        return Packet(rx, "src", 100, Nak(9, 0, ReceiverReport(rx, 0, loss)), C.PROTO)

    def test_max_report_holds_worst_receiver(self):
        net = star(2, LinkSpec(1_000_000, 0.01, queue_slots=30), seed=5)
        sender = make_sender(net, aggregation="max-report")
        sender.handle_packet(self.nak("r0", 100))
        sender.handle_packet(self.nak("r1", 900))
        assert sender._aggregate_loss() == pytest.approx(900 / 65536)
        # a newer, better report from the same receiver replaces it
        sender.handle_packet(self.nak("r1", 50))
        assert sender._aggregate_loss() == pytest.approx(100 / 65536)

    def test_nak_count_scales_with_reporters(self):
        net = star(2, LinkSpec(1_000_000, 0.01, queue_slots=30), seed=6)
        sender = make_sender(net, aggregation="nak-count")
        sender._epoch_packets = 100
        for _ in range(5):
            sender.handle_packet(self.nak("r0", 100))
            sender.handle_packet(self.nak("r1", 100))
        assert sender._aggregate_loss() == pytest.approx(0.10)

    def test_trace_records_rate_updates(self):
        net = star(1, LinkSpec(1_000_000, 0.01, queue_slots=30), seed=7)
        sender = make_sender(net)
        net.sim.schedule(0.0, sender.start)
        net.run(until=5.5)
        assert sender.trace.count("rate-update") == 5
        sender.close()
