"""Tests for the TCP Reno/NewReno baseline."""

import pytest

from repro.simulator import LOSSY, NON_LOSSY, LinkSpec, Network, dumbbell
from repro.tcp import TcpAck, TcpSegment, create_tcp_flow
from repro.tcp.sender import DUPACK_THRESHOLD, TcpSender
from repro.tcp.receiver import TcpReceiver
from repro.simulator.engine import Simulator
from repro.simulator.node import Host


class FakeHost(Host):
    """Host capturing everything it sends (unit-level tests)."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.outbox = []

    def send(self, packet):
        self.outbox.append(packet)
        return True


def unit_sender(**kw):
    sim = Simulator()
    host = FakeHost(sim, "a")
    sender = TcpSender(host, "b", flow_id=1, **kw)
    return sim, host, sender


class TestSenderUnit:
    def test_initial_window_one(self):
        sim, host, sender = unit_sender()
        sender.start()
        assert len(host.outbox) == 1
        assert host.outbox[0].payload.seq == 0

    def test_slow_start_doubles_per_rtt(self):
        sim, host, sender = unit_sender()
        sender.start()
        sender.on_ack(TcpAck(1, 1))
        assert sender.cwnd == 2.0
        assert len(host.outbox) == 3  # seq 0, then 1 and 2

    def test_dupacks_trigger_fast_retransmit(self):
        sim, host, sender = unit_sender()
        sender.start()
        for ackno in range(1, 9):
            sender.on_ack(TcpAck(1, ackno))
        host.outbox.clear()
        for _ in range(DUPACK_THRESHOLD):
            sender.on_ack(TcpAck(1, 8))
        assert sender.fast_retransmits == 1
        assert sender.in_recovery
        assert host.outbox[0].payload.seq == 8  # the retransmission

    def test_recovery_exit_on_full_ack(self):
        sim, host, sender = unit_sender()
        sender.start()
        for ackno in range(1, 9):
            sender.on_ack(TcpAck(1, ackno))
        for _ in range(3):
            sender.on_ack(TcpAck(1, 8))
        recovery_point = sender.recovery_point
        sender.on_ack(TcpAck(1, recovery_point))
        assert not sender.in_recovery
        assert sender.cwnd == pytest.approx(sender.ssthresh)

    def test_newreno_partial_ack_retransmits_next_hole(self):
        sim, host, sender = unit_sender()
        sender.start()
        for ackno in range(1, 11):
            sender.on_ack(TcpAck(1, ackno))
        for _ in range(3):
            sender.on_ack(TcpAck(1, 10))
        host.outbox.clear()
        # partial: advances but not past recovery_point
        sender.on_ack(TcpAck(1, 12))
        assert sender.in_recovery
        assert host.outbox[0].payload.seq == 12

    def test_rto_collapses_window(self):
        sim, host, sender = unit_sender()
        sender.start()
        for ackno in range(1, 9):
            sender.on_ack(TcpAck(1, ackno))
        assert sender.cwnd > 4
        sim.run(until=60.0)  # no more ACKs: RTO fires
        assert sender.timeouts >= 1
        assert sender.cwnd <= 2.0

    def test_rto_backoff_doubles(self):
        sim, host, sender = unit_sender()
        sender.start()
        sim.run(until=10.0)
        assert sender.timeouts >= 2
        assert sender._backoff >= 4.0

    def test_max_segments_completes(self):
        sim, host, sender = unit_sender(max_segments=5)
        sender.start()
        for ackno in range(1, 6):
            sender.on_ack(TcpAck(1, ackno))
        assert sender.done
        data = [p for p in host.outbox if isinstance(p.payload, TcpSegment)]
        assert len(data) == 5

    def test_srtt_sampling(self):
        sim, host, sender = unit_sender()
        sender.start()
        sim.schedule(0.3, lambda: sender.on_ack(TcpAck(1, 1)))
        sim.run(until=0.4)
        assert sender.srtt == pytest.approx(0.3)


class TestReceiverUnit:
    def make(self, delayed=False):
        sim = Simulator()
        host = FakeHost(sim, "b")
        return sim, host, TcpReceiver(host, "a", 1, delayed_acks=delayed)

    def test_cumulative_ack_advances(self):
        sim, host, rx = self.make()
        rx.on_segment(TcpSegment(1, 0, 1460))
        rx.on_segment(TcpSegment(1, 1, 1460))
        assert [p.payload.ackno for p in host.outbox] == [1, 2]

    def test_gap_produces_dupacks(self):
        sim, host, rx = self.make()
        rx.on_segment(TcpSegment(1, 0, 1460))
        rx.on_segment(TcpSegment(1, 2, 1460))
        rx.on_segment(TcpSegment(1, 3, 1460))
        assert [p.payload.ackno for p in host.outbox] == [1, 1, 1]

    def test_hole_filled_acks_jump(self):
        sim, host, rx = self.make()
        for s in (0, 2, 3, 1):
            rx.on_segment(TcpSegment(1, s, 1460))
        assert host.outbox[-1].payload.ackno == 4

    def test_duplicate_segment_reacked(self):
        sim, host, rx = self.make()
        rx.on_segment(TcpSegment(1, 0, 1460))
        rx.on_segment(TcpSegment(1, 0, 1460))
        assert rx.duplicates == 1
        assert len(host.outbox) == 2

    def test_delayed_ack_every_second_segment(self):
        sim, host, rx = self.make(delayed=True)
        rx.on_segment(TcpSegment(1, 0, 1460))
        assert host.outbox == []  # held
        rx.on_segment(TcpSegment(1, 1, 1460))
        assert [p.payload.ackno for p in host.outbox] == [2]

    def test_delayed_ack_timer_flush(self):
        sim, host, rx = self.make(delayed=True)
        rx.on_segment(TcpSegment(1, 0, 1460))
        sim.run(until=0.5)
        assert [p.payload.ackno for p in host.outbox] == [1]


class TestEndToEnd:
    def test_fills_clean_link(self):
        net = dumbbell(1, 1, NON_LOSSY, seed=2)
        flow = create_tcp_flow(net, "h0", "r0")
        net.run(until=30.0)
        rate = flow.throughput_bps(10, 30)
        assert rate > 400_000  # most of 500 kbit/s

    def test_loss_limited_on_lossy_link(self):
        net = dumbbell(1, 1, LOSSY, seed=3)
        flow = create_tcp_flow(net, "h0", "r0")
        net.run(until=60.0)
        rate = flow.throughput_bps(20, 60)
        # far below the 2 Mbit/s capacity, but alive
        assert 40_000 < rate < 800_000

    def test_two_flows_share_fairly(self):
        net = dumbbell(2, 2, NON_LOSSY, seed=4)
        f1 = create_tcp_flow(net, "h0", "r0")
        f2 = create_tcp_flow(net, "h1", "r1")
        net.run(until=60.0)
        r1, r2 = f1.throughput_bps(20, 60), f2.throughput_bps(20, 60)
        assert max(r1, r2) / min(r1, r2) < 2.0

    def test_rtt_bias(self):
        """Shorter-RTT TCP wins more bandwidth — the classic bias the
        paper leans on when discussing Fig. 6."""
        net = Network(seed=5)
        for h in ("a1", "a2", "b1", "b2"):
            net.add_host(h)
        net.add_router("L")
        net.add_router("R")
        fast = LinkSpec(50_000_000, 0.001, queue_slots=100)
        slow = LinkSpec(50_000_000, 0.200, queue_slots=100)
        net.duplex_link("a1", "L", fast)
        net.duplex_link("a2", "L", slow)
        # Small queue so the RTT is propagation-dominated — the regime
        # where the classic 1/RTT bias is visible.
        net.duplex_link("L", "R", LinkSpec(2_000_000, 0.005, queue_slots=8))
        net.duplex_link("R", "b1", fast)
        net.duplex_link("R", "b2", fast)
        net.build_routes()
        f_short = create_tcp_flow(net, "a1", "b1")
        f_long = create_tcp_flow(net, "a2", "b2")
        net.run(until=120.0)
        assert f_short.throughput_bps(30, 120) > 1.5 * f_long.throughput_bps(30, 120)

    def test_flow_ids_isolated(self):
        """Two flows between the same host pair do not cross-talk."""
        net = dumbbell(1, 1, NON_LOSSY, seed=6)
        f1 = create_tcp_flow(net, "h0", "r0", max_segments=50)
        f2 = create_tcp_flow(net, "h0", "r0", max_segments=70)
        net.run(until=30.0)
        assert f1.sender.snd_una == 50
        assert f2.sender.snd_una == 70

    def test_stop_at_ends_flow(self):
        net = dumbbell(1, 1, NON_LOSSY, seed=7)
        flow = create_tcp_flow(net, "h0", "r0", stop_at=5.0)
        net.run(until=20.0)
        assert max(flow.trace.times("data")) <= 5.0
