"""Tests for the plain-text figure renderings."""

from repro.analysis import (
    bandwidth_series,
    render_bandwidth,
    render_flow_comparison,
    render_time_seq,
)
from repro.simulator.trace import FlowTrace


def steady_trace(name="t", rate_pps=10, payload=1000, duration=20.0):
    trace = FlowTrace(name)
    for i in range(int(duration * rate_pps)):
        trace.log(i / rate_pps, "data", i, payload)
    return trace


class TestRenderBandwidth:
    def test_bar_lengths_scale_with_rate(self):
        trace = FlowTrace("t")
        for i in range(10):
            trace.log(0.5, "data", i, 1000)  # all in the first bin
        trace.log(1.5, "data", 99, 1000)
        bins = bandwidth_series(trace, 0, 2, 1.0)
        out = render_bandwidth(bins, width=20)
        lines = out.splitlines()
        assert lines[0].count("#") == 20
        assert 0 < lines[1].count("#") <= 2

    def test_empty_series(self):
        assert "empty" in render_bandwidth([])

    def test_fixed_peak_scaling(self):
        bins = bandwidth_series(steady_trace(), 0, 20, 5.0)
        out = render_bandwidth(bins, width=10, max_rate_bps=160_000)
        # steady 80 kbit/s over a 160 kbit/s axis -> half-width bars
        for line in out.splitlines():
            assert line.count("#") == 5


class TestRenderTimeSeq:
    def test_data_renders_ascending_diagonal(self):
        trace = steady_trace()
        out = render_time_seq(trace, 0, 20, width=20, height=10)
        body = out.splitlines()[1:]
        # lowest sequence bottom-left, highest top-right
        assert body[-1][0] == "."
        assert body[0].rstrip()[-1] == "."

    def test_mark_overlays(self):
        trace = steady_trace()
        trace.log(10.0, "nak", 100)
        trace.log(15.0, "acker-switch", 0)
        out = render_time_seq(trace, 0, 20, width=40, height=10)
        assert "o" in out
        assert "|" in out

    def test_empty_window(self):
        out = render_time_seq(FlowTrace("t"), 0, 10)
        assert "no data" in out

    def test_legend_present(self):
        out = render_time_seq(steady_trace(), 0, 20)
        assert "data" in out.splitlines()[0]


class TestRenderComparison:
    def test_columns_per_flow(self):
        traces = {"pgm": steady_trace("pgm"), "tcp": steady_trace("tcp", rate_pps=5)}
        out = render_flow_comparison(traces, 0, 20, 5.0)
        lines = out.splitlines()
        assert "pgm" in lines[0] and "tcp" in lines[0]
        assert len(lines) == 5  # header + 4 bins
        # pgm column ~80 kbit/s, tcp ~40
        cells = lines[1].split()
        assert float(cells[1]) > float(cells[2])
