"""Tests for throughput/fairness metrics and time series."""

import math

import pytest

from repro.analysis import (
    Bin,
    bandwidth_series,
    coefficient_of_variation,
    cumulative_bytes,
    jain_index,
    loss_event_rate,
    mean_rate,
    plateau_rate,
    throughput_bps,
    throughput_ratio,
)
from repro.simulator.trace import FlowTrace


def steady_trace(rate_pps=10, payload=1000, duration=20.0, kind="data"):
    trace = FlowTrace("t")
    # exact i/rate timestamps avoid float-accumulation drift across
    # bin boundaries
    for i in range(int(duration * rate_pps)):
        trace.log(i / rate_pps, kind, i, payload)
    return trace


class TestThroughput:
    def test_steady_rate_measured(self):
        trace = steady_trace(rate_pps=10, payload=1000)
        assert throughput_bps(trace, 0, 20) == pytest.approx(80_000, rel=0.01)

    def test_window_restriction(self):
        trace = FlowTrace("t")
        trace.log(1.0, "data", 0, 1000)
        trace.log(5.0, "data", 1, 1000)
        assert throughput_bps(trace, 0, 2) == pytest.approx(4000)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            throughput_bps(FlowTrace("t"), 5, 5)

    def test_kind_filter(self):
        trace = FlowTrace("t")
        trace.log(0.5, "data", 0, 1000)
        trace.log(0.6, "rdata", 0, 1000)
        assert throughput_bps(trace, 0, 1, kind="rdata") == pytest.approx(8000)


class TestJain:
    def test_equal_rates_index_one(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_index_one_over_n(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index([])

    def test_all_zero_vacuously_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_bounds(self):
        idx = jain_index([1.0, 2.0, 3.0])
        assert 1 / 3 <= idx <= 1.0


class TestRatios:
    def test_ratio_ordering_independent(self):
        assert throughput_ratio(100, 200) == throughput_ratio(200, 100) == 2.0

    def test_starvation_is_inf(self):
        assert throughput_ratio(0.0, 100.0) == math.inf

    def test_cov(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0
        assert coefficient_of_variation([0, 10]) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            coefficient_of_variation([])

    def test_loss_event_rate(self):
        trace = FlowTrace("t")
        for t in (1.0, 3.0, 7.0):
            trace.log(t, "cc-loss", 0)
        assert loss_event_rate(trace, 0, 10) == pytest.approx(0.3)


class TestSeries:
    def test_bandwidth_series_bins(self):
        trace = steady_trace(rate_pps=10, payload=1000, duration=10)
        bins = bandwidth_series(trace, 0, 10, 1.0)
        assert len(bins) == 10
        for b in bins:
            assert b.rate_bps == pytest.approx(80_000, rel=0.01)

    def test_bin_properties(self):
        b = Bin(2.0, 4.0, 16000)
        assert b.rate_bps == 8000
        assert b.midpoint == 3.0

    def test_mean_rate(self):
        trace = steady_trace(rate_pps=10, payload=1000, duration=10)
        assert mean_rate(bandwidth_series(trace, 0, 10, 1.0)) == pytest.approx(
            80_000, rel=0.01
        )

    def test_plateau_rate_robust_to_transient(self):
        trace = FlowTrace("t")
        t = 0.0
        while t < 100.0:
            # steady 10 pps except a 5 s dropout
            if not 40 <= t < 45:
                trace.log(t, "data", 0, 1000)
            t += 0.1
        plateau = plateau_rate(trace, 0, 100, bin_width=5.0)
        assert plateau == pytest.approx(80_000, rel=0.02)

    def test_cumulative_bytes_monotone(self):
        trace = steady_trace(rate_pps=5, payload=500, duration=4)
        series = cumulative_bytes(trace)
        totals = [v for _, v in series]
        assert totals == sorted(totals)
        assert totals[-1] == 500 * len(series)

    def test_validation(self):
        trace = FlowTrace("t")
        with pytest.raises(ValueError):
            bandwidth_series(trace, 0, 10, 0)
        with pytest.raises(ValueError):
            bandwidth_series(trace, 10, 0, 1)
        with pytest.raises(ValueError):
            mean_rate([])
