"""Cross-cutting property tests on the core state machines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acker import AckerElection
from repro.core.acktrack import AckTracker, build_bitmap
from repro.core.loss_filter import SCALE
from repro.core.reports import ReceiverReport
from repro.core.throughput_models import PadhyeModel, SimpleModel


class TestElectionProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["r0", "r1", "r2", "r3"]),
                st.integers(min_value=0, max_value=99),   # rxw_lead
                st.integers(min_value=0, max_value=SCALE),  # rx_loss
            ),
            min_size=1,
            max_size=60,
        ),
        st.sampled_from([0.6, 0.75, 1.0]),
    )
    @settings(max_examples=150, deadline=None)
    def test_never_switches_to_strictly_faster_candidate(self, reports, c):
        """For any report sequence, a switch only happens when the
        candidate's modelled slowness exceeds the incumbent's by the
        bias factor — never toward a strictly faster receiver."""
        election = AckerElection(c=c)
        last_tx = 100
        for i, (rx, lead, loss) in enumerate(reports):
            inc_metric = election.incumbent_metric
            inc_id = election.current
            switched = election.on_nak_report(
                ReceiverReport(rx, lead, loss), last_tx, float(i)
            )
            if switched and inc_metric is not None and inc_id != rx:
                cand_metric = election.switches[-1].candidate_metric
                assert cand_metric * c > inc_metric - 1e-9

    @given(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=200),
                      st.integers(min_value=0, max_value=SCALE)),
            min_size=2, max_size=2, unique=True,
        )
    )
    @settings(max_examples=200)
    def test_models_agree_on_dominated_comparisons(self, pair):
        """When one receiver is worse in BOTH rtt and loss, every model
        must rank it slower (dominance consistency)."""
        (rtt_a, loss_a), (rtt_b, loss_b) = pair
        if not (rtt_a >= rtt_b and loss_a >= loss_b):
            return
        if rtt_a == rtt_b and loss_a == loss_b:
            return
        for model in (SimpleModel(), PadhyeModel()):
            assert model.slowness(rtt_a, loss_a) >= model.slowness(rtt_b, loss_b)


class TestAckReplayProperties:
    @given(
        st.integers(min_value=3, max_value=40),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_ack_replay_is_idempotent_for_acks(self, n, data):
        """Replaying any ACK never un-acknowledges a packet, and a
        packet acked once is never later declared lost."""
        tracker = AckTracker()
        received: set[int] = set()
        acked: set[int] = set()
        lost: set[int] = set()
        history: list[tuple[int, int]] = []
        for seq in range(n):
            tracker.on_data_sent(seq)
            if data.draw(st.booleans()):
                received.add(seq)
                ack = (seq, build_bitmap(seq, received))
                history.append(ack)
                outcome = tracker.on_ack(*ack)
                acked.update(outcome.newly_acked)
                lost.update(outcome.losses)
            # replay a random previous ACK sometimes
            if history and data.draw(st.booleans()):
                replay = data.draw(st.sampled_from(history))
                outcome = tracker.on_ack(*replay)
                acked.update(outcome.newly_acked)
                lost.update(outcome.losses)
        assert acked & lost == set()
        # everything the receiver got and covered by some bitmap is
        # never in the lost set
        assert lost.isdisjoint(acked)

    @given(st.integers(min_value=0, max_value=1000),
           st.sets(st.integers(min_value=0, max_value=1000), max_size=40))
    @settings(max_examples=150)
    def test_bitmap_build_is_pure(self, ack_seq, received):
        a = build_bitmap(ack_seq, received)
        b = build_bitmap(ack_seq, set(received))
        assert a == b
        assert 0 <= a < (1 << 32)


class TestLinkFifoProperty:
    @given(st.lists(st.integers(min_value=40, max_value=1500),
                    min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_single_link_preserves_order(self, sizes):
        """A FIFO link never reorders, whatever the packet sizes."""
        from repro.simulator import Packet
        from repro.simulator.engine import Simulator
        from repro.simulator.link import Link
        from repro.simulator.queues import DropTailQueue

        sim = Simulator()
        got = []
        link = Link(sim, "L", rate_bps=1e6, delay=0.01,
                    deliver=lambda p: got.append(p.payload),
                    queue=DropTailQueue(max_slots=1000))
        for i, size in enumerate(sizes):
            link.send(Packet("a", "b", size, payload=i))
        sim.run()
        assert got == sorted(got)
        assert len(got) == len(sizes)
