"""Tests for the window/token controller (§3.4)."""

import pytest

from repro.core.window import WindowController


class TestInitialState:
    def test_starts_at_one_one(self):
        ctl = WindowController()
        assert ctl.w == 1.0
        assert ctl.tokens == 1.0
        assert ctl.can_send

    def test_restart_resets(self):
        ctl = WindowController()
        ctl.on_transmit()
        for _ in range(10):
            ctl.on_ack()
        ctl.on_restart()
        assert ctl.w == 1.0
        assert ctl.tokens == 1.0
        assert ctl.ignore_acks == 0
        assert ctl.recovery_seq is None

    def test_ssthresh_validation(self):
        with pytest.raises(ValueError):
            WindowController(ssthresh=0)


class TestTokens:
    def test_transmit_consumes_token(self):
        ctl = WindowController()
        ctl.on_transmit()
        assert ctl.tokens == 0.0
        assert not ctl.can_send

    def test_transmit_without_token_raises(self):
        ctl = WindowController()
        ctl.on_transmit()
        with pytest.raises(RuntimeError):
            ctl.on_transmit()

    def test_ack_regenerates_one_plus_1_over_w(self):
        """Paper: on ACK, T = T + 1 + 1/W."""
        ctl = WindowController(ssthresh=1)  # disable slow start
        ctl.on_transmit()
        ctl.on_ack()
        # W grew 1 -> 2 first, then T += 1 + 1/2
        assert ctl.tokens == pytest.approx(1.5)

    def test_token_cap(self):
        ctl = WindowController(max_tokens=2.0)
        for _ in range(10):
            ctl.on_ack()
        assert ctl.tokens == 2.0


class TestWindowGrowth:
    def test_exponential_opening_below_ssthresh(self):
        """§3.4: exponential opening up to the fixed size of 6."""
        ctl = WindowController(ssthresh=6)
        for _ in range(5):
            ctl.on_ack()
        assert ctl.w == pytest.approx(6.0)

    def test_linear_increase_above_ssthresh(self):
        ctl = WindowController(ssthresh=6)
        for _ in range(5):
            ctl.on_ack()
        w = ctl.w
        ctl.on_ack()
        assert ctl.w == pytest.approx(w + 1.0 / w)

    def test_window_opens_one_per_rtt_in_avoidance(self):
        """W ACKs (one RTT's worth) grow W by ~1, as in TCP."""
        ctl = WindowController(ssthresh=1)
        ctl.w = 10.0
        for _ in range(10):
            ctl.on_ack()
        assert ctl.w == pytest.approx(11.0, abs=0.06)


class TestLossReaction:
    def make_at(self, w):
        ctl = WindowController(ssthresh=1)
        ctl.w = w
        return ctl

    def test_halving(self):
        ctl = self.make_at(16.0)
        reacted = ctl.on_loss(loss_seq=10, last_tx_seq=30)
        assert reacted
        assert ctl.w == 8.0

    def test_ignore_next_half_window_acks(self):
        """Paper: ignore next W/2 ACKs (no token, no growth)."""
        ctl = self.make_at(16.0)
        ctl.on_loss(10, 30)
        assert ctl.ignore_acks == 8
        tokens = ctl.tokens
        w = ctl.w
        for _ in range(8):
            ctl.on_ack()
        assert ctl.tokens == tokens
        assert ctl.w == w
        ctl.on_ack()  # ninth ACK counts again
        assert ctl.tokens > tokens

    def test_realign_to_in_flight_before_halving(self):
        """§3.4: realign W to the actual packets in flight so errors
        do not accumulate."""
        ctl = self.make_at(40.0)
        ctl.on_loss(10, 30, in_flight=12)
        assert ctl.w == 6.0  # min(40, 12)/2

    def test_one_reaction_per_rtt(self):
        ctl = self.make_at(16.0)
        assert ctl.on_loss(10, 30)
        assert not ctl.on_loss(12, 32)  # within recovery (<= seq 30)
        assert ctl.w == 8.0
        assert ctl.on_loss(31, 50)  # past recovery point
        assert ctl.w == 4.0

    def test_window_floor_is_one(self):
        ctl = self.make_at(1.0)
        ctl.on_loss(1, 2)
        assert ctl.w == 1.0

    def test_counters(self):
        ctl = self.make_at(8.0)
        ctl.on_loss(1, 10)
        ctl.on_loss(2, 10)
        assert ctl.losses_reacted == 1
        assert ctl.losses_ignored == 1

    def test_realign_ignores_zero_in_flight(self):
        ctl = self.make_at(8.0)
        ctl.on_loss(1, 10, in_flight=0)
        assert ctl.w == 4.0


class TestAimdShape:
    def test_sawtooth_cycle(self):
        """A full AIMD cycle: grow from W/2 back to W takes ~W/2 RTTs
        of ACKs; throughput stays within the classic bounds."""
        ctl = WindowController(ssthresh=1)
        ctl.w = 20.0
        ctl.on_loss(0, 100)
        assert ctl.w == 10.0
        acks = 0
        while ctl.w < 20.0:
            ctl.on_ack()
            acks += 1
        # sum over w from 10..20 of w acks each ~ 150, plus ignored 10
        assert 140 < acks < 180

    def test_snapshot(self):
        ctl = WindowController()
        snap = ctl.snapshot()
        assert snap == {"w": 1.0, "tokens": 1.0, "ignore_acks": 0,
                        "recovery_seq": None}
