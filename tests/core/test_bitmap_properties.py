"""Property tests for the ACK bitmap (§3.3, Fig. 1): encode/decode is
the identity over the 32-packet window, and stale or replayed bits can
never resurrect an already-acknowledged packet."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acktrack import (
    BITMAP_BITS,
    AckTracker,
    bitmap_contains,
    bitmap_covers,
    build_bitmap,
)


def window_of(ack_seq: int) -> range:
    """The sequence numbers a bitmap anchored at ``ack_seq`` can carry."""
    return range(max(0, ack_seq - BITMAP_BITS + 1), ack_seq + 1)


class TestRoundTrip:
    @given(ack_seq=st.integers(min_value=0, max_value=10_000), data=st.data())
    @settings(max_examples=300)
    def test_encode_decode_identity_within_window(self, ack_seq, data):
        """Any subset of the ≤32 most recent sequence numbers survives
        encode -> decode exactly."""
        received = data.draw(st.sets(st.sampled_from(list(window_of(ack_seq)))))
        bitmap = build_bitmap(ack_seq, received)
        decoded = {
            seq for seq in window_of(ack_seq)
            if bitmap_contains(ack_seq, bitmap, seq)
        }
        assert decoded == received

    @given(ack_seq=st.integers(min_value=0, max_value=10_000),
           received=st.sets(st.integers(min_value=0, max_value=10_000),
                            max_size=80))
    @settings(max_examples=300)
    def test_out_of_window_seqs_never_encoded(self, ack_seq, received):
        """Sequences outside the window contribute nothing: the bitmap
        only ever describes what ``bitmap_covers`` admits."""
        bitmap = build_bitmap(ack_seq, received)
        assert 0 <= bitmap < (1 << BITMAP_BITS)
        in_window = received & set(window_of(ack_seq))
        assert bitmap == build_bitmap(ack_seq, in_window)
        for seq in received - in_window:
            assert not bitmap_covers(ack_seq, seq)
            assert not bitmap_contains(ack_seq, bitmap, seq)

    @given(ack_seq=st.integers(min_value=0, max_value=10_000),
           seq=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=300)
    def test_contains_implies_covers(self, ack_seq, seq):
        bitmap = (1 << BITMAP_BITS) - 1  # every bit set
        if bitmap_contains(ack_seq, bitmap, seq):
            assert bitmap_covers(ack_seq, seq)


class TestNoResurrection:
    @given(n=st.integers(min_value=4, max_value=40), data=st.data())
    @settings(max_examples=150)
    def test_replayed_acks_never_resurrect_acked_packets(self, n, data):
        """Feed the tracker an in-order ACK stream, then replay stale
        ACKs (old anchors, old bitmaps) in any order: no packet is ever
        newly-acked twice, and none re-enters the outstanding table."""
        tracker = AckTracker()
        received: set[int] = set()
        acked_once: set[int] = set()
        history: list[tuple[int, int]] = []

        for seq in range(n):
            tracker.on_data_sent(seq)
            received.add(seq)
            bitmap = build_bitmap(seq, received)
            history.append((seq, bitmap))
            outcome = tracker.on_ack(seq, bitmap)
            assert not acked_once & set(outcome.newly_acked)
            acked_once.update(outcome.newly_acked)

        # every packet was acknowledged exactly once on the live pass
        assert acked_once == set(range(n))
        assert tracker.outstanding_count == 0

        # replay a random sample of stale ACKs, shuffled
        replays = data.draw(st.lists(st.sampled_from(history), max_size=20))
        for ack_seq, bitmap in replays:
            outcome = tracker.on_ack(ack_seq, bitmap)
            assert outcome.newly_acked == []
            assert outcome.losses == []
            assert tracker.outstanding_count == 0

    @given(data=st.data())
    @settings(max_examples=150)
    def test_stale_bits_do_not_ack_retransmitted_range(self, data):
        """After a stall reset the tracker restarts with fresh state;
        stale pre-reset bitmaps must not acknowledge the new packets
        beyond what their bits actually cover."""
        tracker = AckTracker()
        received: set[int] = set()
        for seq in range(10):
            tracker.on_data_sent(seq)
            received.add(seq)
        stale_bitmap = build_bitmap(5, received)  # covers only 0..5
        outcome = tracker.on_ack(5, stale_bitmap)
        assert outcome.newly_acked == [0, 1, 2, 3, 4, 5]
        # replaying that same stale ACK changes nothing further
        replay_count = data.draw(st.integers(min_value=1, max_value=5))
        before = tracker.outstanding()
        for _ in range(replay_count):
            outcome = tracker.on_ack(5, stale_bitmap)
            assert outcome.newly_acked == []
        # 6..9 still outstanding except any declared lost by dupacks
        after = set(tracker.outstanding())
        assert after <= set(before)
        assert all(seq >= 6 for seq in before)
