"""Tests for the TFRC average-loss-interval estimator (§5 future work)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loss_filter import SCALE, LossRateFilter
from repro.core.tfrc_loss import DEFAULT_WEIGHTS, LossIntervalEstimator


class TestBasics:
    def test_starts_at_zero(self):
        est = LossIntervalEstimator()
        assert est.value == 0
        assert est.loss_rate == 0.0

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            LossIntervalEstimator(weights=())
        with pytest.raises(ValueError):
            LossIntervalEstimator(weights=(1.0, -1.0))

    def test_default_weights_are_tfrc(self):
        assert DEFAULT_WEIGHTS == (1.0, 1.0, 1.0, 1.0, 0.8, 0.6, 0.4, 0.2)

    def test_no_loss_stays_zero(self):
        est = LossIntervalEstimator()
        for _ in range(1000):
            est.update(False)
        assert est.loss_rate == 0.0

    def test_reset(self):
        est = LossIntervalEstimator()
        est.update_run([False, True, False])
        est.reset()
        assert est.value == 0
        assert est.samples == 0

    def test_counters(self):
        est = LossIntervalEstimator()
        est.update_run([True, False, True, False])
        assert est.samples == 4
        assert est.losses == 2
        assert est.raw_loss_rate == pytest.approx(0.5)


class TestEstimation:
    def test_periodic_loss_exact(self):
        """Loss every k packets -> intervals of k -> rate 1/k."""
        est = LossIntervalEstimator()
        for i in range(1, 2001):
            est.update(i % 20 == 0)
        assert est.loss_rate == pytest.approx(1 / 20, rel=0.01)

    def test_random_loss_converges(self):
        rng = random.Random(5)
        est = LossIntervalEstimator()
        for _ in range(50_000):
            est.update(rng.random() < 0.05)
        assert est.loss_rate == pytest.approx(0.05, rel=0.4)

    def test_open_interval_decays_estimate(self):
        """A long loss-free run lowers the rate even with no new loss
        event (the open-interval inclusion)."""
        est = LossIntervalEstimator()
        for i in range(1, 201):
            est.update(i % 10 == 0)
        at_steady = est.loss_rate
        for _ in range(500):
            est.update(False)
        assert est.loss_rate < at_steady / 3

    def test_smoother_than_raw_filter_after_burst(self):
        """TFRC counts a burst of consecutive losses as few loss
        events; the low-pass filter spikes on each lost packet."""
        tfrc = LossIntervalEstimator()
        lp = LossRateFilter()
        pattern = [False] * 500 + [True] * 5 + [False] * 20
        tfrc.update_run(pattern)
        lp.update_run(pattern)
        assert tfrc.value < lp.value

    def test_fixed_point_value_bounded(self):
        est = LossIntervalEstimator()
        est.update(True)  # interval of 1 -> rate 1.0
        assert est.value <= SCALE


class TestProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=500))
    @settings(max_examples=150)
    def test_rate_always_in_unit_interval(self, pattern):
        est = LossIntervalEstimator()
        for lost in pattern:
            est.update(lost)
            assert 0.0 <= est.loss_rate <= 1.0
            assert 0 <= est.value <= SCALE

    @given(st.integers(min_value=2, max_value=200))
    @settings(max_examples=50, deadline=None)  # long periods are slow
    def test_periodic_rate_inverse_of_period(self, period):
        est = LossIntervalEstimator()
        for i in range(1, period * 30 + 1):
            est.update(i % period == 0)
        assert est.loss_rate == pytest.approx(1 / period, rel=0.05)


class TestReceiverIntegration:
    def test_receiver_controller_accepts_tfrc(self):
        from repro.core.receiver_cc import ReceiverController

        rc = ReceiverController("r", estimator="tfrc")
        rc.on_data(0, 0.0)
        rc.on_data(2, 1.0)  # loss of 1
        report = rc.report()
        assert report.rx_loss > 0

    def test_unknown_estimator_rejected(self):
        from repro.core.receiver_cc import ReceiverController

        with pytest.raises(ValueError):
            ReceiverController("r", estimator="psychic")

    def test_session_level_tfrc_runs(self):
        from repro.pgm import create_session
        from repro.simulator import LinkSpec, star

        spec = LinkSpec(2_000_000, 0.1, queue_bytes=30_000, loss_rate=0.03)
        net = star(1, spec, seed=21)
        session = create_session(net, "src", ["r0"], estimator="tfrc")
        net.run(until=30.0)
        assert session.sender.odata_sent > 100
        assert session.receivers[0].loss_rate == pytest.approx(0.03, abs=0.025)
