"""Focused tests on window-controller corner cases and interactions."""

import pytest

from repro.core.window import WindowController


class TestIgnoreWindowInteraction:
    def test_ignore_count_uses_post_halving_window(self):
        """'ignore next W/2 acks' with W the pre-halving value equals
        the post-halving window size."""
        ctl = WindowController(ssthresh=1)
        ctl.w = 20.0
        ctl.on_loss(1, 30)
        assert ctl.w == 10.0
        assert ctl.ignore_acks == 10

    def test_back_to_back_reactions_compound(self):
        ctl = WindowController(ssthresh=1)
        ctl.w = 32.0
        ctl.on_loss(10, 20)
        ctl.on_ack()  # drains one ignored ack
        ctl.on_loss(25, 40)  # past recovery point 20 -> new reaction
        assert ctl.w == 8.0

    def test_ignored_acks_then_growth_resumes(self):
        ctl = WindowController(ssthresh=1)
        ctl.w = 8.0
        ctl.on_loss(1, 10)
        for _ in range(ctl.ignore_acks):
            ctl.on_ack()
        w = ctl.w
        tokens = ctl.tokens
        ctl.on_ack()
        assert ctl.w > w
        assert ctl.tokens > tokens

    def test_restart_clears_ignore_state(self):
        ctl = WindowController(ssthresh=1)
        ctl.w = 16.0
        ctl.on_loss(1, 10)
        ctl.on_restart()
        assert ctl.ignore_acks == 0
        ctl.on_ack()
        assert ctl.tokens > 1.0  # acks count again immediately


class TestRecoveryWindow:
    def test_boundary_sequence_is_inside_recovery(self):
        ctl = WindowController(ssthresh=1)
        ctl.w = 8.0
        ctl.on_loss(5, 20)
        # a loss exactly at the recorded last_tx_seq is the same event
        assert not ctl.on_loss(20, 25)
        assert ctl.on_loss(21, 30)

    def test_restart_clears_recovery(self):
        ctl = WindowController(ssthresh=1)
        ctl.w = 8.0
        ctl.on_loss(5, 20)
        ctl.on_restart()
        assert ctl.on_loss(6, 21)  # reacts again after restart


class TestAdaptiveVsFixedGrowthPaths:
    def test_adaptive_keeps_exponential_far_longer(self):
        fixed = WindowController(ssthresh=6)
        adaptive = WindowController(adaptive_ssthresh=True)
        for _ in range(40):
            fixed.on_ack()
            adaptive.on_ack()
        # fixed: 6 exponential steps then ~34 linear ones; adaptive:
        # still in slow start, one per ack
        assert adaptive.w == pytest.approx(41.0)
        assert fixed.w < 15.0

    def test_adaptive_threshold_tracks_each_halving(self):
        ctl = WindowController(adaptive_ssthresh=True)
        ctl.w = 64.0
        ctl.on_loss(1, 10, in_flight=64)
        assert ctl.ssthresh == 32.0
        ctl.on_loss(11, 20, in_flight=32)
        assert ctl.ssthresh == 16.0

    def test_adaptive_floor_two(self):
        ctl = WindowController(adaptive_ssthresh=True)
        ctl.w = 1.5
        ctl.on_loss(1, 10)
        assert ctl.ssthresh == 2.0
