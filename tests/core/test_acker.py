"""Tests for acker election and tracking (§3.5)."""

import pytest

from repro.core.acker import LOSS_FLOOR, AckerElection, throughput_metric
from repro.core.reports import ReceiverReport


def report(rx_id, rxw_lead, rx_loss):
    return ReceiverReport(rx_id, rxw_lead, rx_loss)


class TestMetric:
    def test_rtt_squared_times_p(self):
        """The sender compares RTT²·p (cheaper than 1/(RTT·sqrt(p)))."""
        assert throughput_metric(10.0, 100) == 10_000.0

    def test_loss_floored(self):
        assert throughput_metric(10.0, 0) == 100.0 * LOSS_FLOOR

    def test_slower_receiver_has_bigger_metric(self):
        fast = throughput_metric(5.0, 50)
        slow = throughput_metric(20.0, 200)
        assert slow > fast


class TestElectionBasics:
    def test_c_validation(self):
        with pytest.raises(ValueError):
            AckerElection(c=0.0)
        with pytest.raises(ValueError):
            AckerElection(c=1.5)

    def test_first_report_elected_unconditionally(self):
        """The startup fake NAK must seed an acker (§3.6)."""
        election = AckerElection()
        assert election.current is None
        switched = election.on_nak_report(report("r1", 0, 0), last_tx_seq=0, now=0.0)
        assert switched
        assert election.current == "r1"

    def test_incumbent_report_updates_not_switches(self):
        election = AckerElection()
        election.on_nak_report(report("r1", 0, 100), 10, 0.0)
        switched = election.on_nak_report(report("r1", 5, 500), 20, 1.0)
        assert not switched
        assert election.current == "r1"
        # state was refreshed
        assert election.incumbent_metric == pytest.approx(
            election.model.slowness(election._incumbent.rtt.value, 500)
        )

    def test_clear(self):
        election = AckerElection()
        election.on_nak_report(report("r1", 0, 0), 0, 0.0)
        election.clear()
        assert election.current is None


class TestSwitchDecision:
    def setup_incumbent(self, election, rtt=10, loss=100):
        """Install r1 with a known metric (rtt via lead gap)."""
        election.on_nak_report(report("r1", 100 - rtt, loss), 100, 0.0)

    def test_switch_to_clearly_slower(self):
        election = AckerElection(c=0.75)
        self.setup_incumbent(election, rtt=10, loss=100)
        # candidate rtt 40, loss 400: metric 640000 vs incumbent 10000
        switched = election.on_nak_report(report("r2", 60, 400), 100, 1.0)
        assert switched
        assert election.current == "r2"

    def test_no_switch_to_faster(self):
        election = AckerElection(c=0.75)
        self.setup_incumbent(election, rtt=20, loss=400)
        switched = election.on_nak_report(report("r2", 95, 10), 100, 1.0)
        assert not switched
        assert election.candidates_rejected == 1

    def test_bias_c_suppresses_marginal_switches(self):
        """Equal-throughput receivers must not swap at c<1 (§3.5: the
        paper's Fig. 4 experiment at c=1 vs 0.75)."""
        noisy = AckerElection(c=1.0)
        biased = AckerElection(c=0.75)
        for election in (noisy, biased):
            election.on_nak_report(report("r1", 90, 100), 100, 0.0)
        # candidate marginally worse: rtt 11 vs 10, same loss
        marginal = report("r2", 89, 100)
        assert noisy.on_nak_report(marginal, 100, 1.0)
        assert not biased.on_nak_report(marginal, 100, 1.0)

    def test_switch_threshold_exact(self):
        """Switch iff M_j * c² > M_i."""
        election = AckerElection(c=0.5)
        self.setup_incumbent(election, rtt=10, loss=100)  # M_i = 10000
        # boundary: M_j * 0.25 == 10000 -> M_j == 40000 -> no switch
        boundary = report("r2", 80, 100)  # rtt 20 -> 40000
        assert not election.on_nak_report(boundary, 100, 1.0)
        over = report("r3", 79, 100)  # rtt 21 -> 44100 * 0.25 > 10000
        assert election.on_nak_report(over, 100, 1.0)

    def test_switch_history_recorded(self):
        election = AckerElection(c=1.0)
        election.on_nak_report(report("r1", 90, 100), 100, 1.0)
        election.on_nak_report(report("r2", 50, 800), 100, 2.0)
        assert election.switch_count == 2
        last = election.switches[-1]
        assert (last.old, last.new, last.time) == ("r1", "r2", 2.0)

    def test_loss_free_candidate_rarely_wins(self):
        """A zero-loss candidate needs an enormous RTT to beat a lossy
        incumbent (the loss floor keeps its metric tiny)."""
        election = AckerElection(c=0.75)
        self.setup_incumbent(election, rtt=10, loss=1000)  # M=100000
        assert not election.on_nak_report(report("r2", 0, 0), 100, 1.0)  # rtt100, M=10000


class TestAckRefresh:
    def test_ack_report_smooths_rtt(self):
        election = AckerElection(rtt_gain=0.5)
        election.on_nak_report(report("r1", 90, 100), 100, 0.0)  # rtt 10
        election.on_ack_report(report("r1", 80, 100), 100, 1.0)  # rtt 20
        assert election._incumbent.rtt.value == pytest.approx(15.0)

    def test_ack_from_non_incumbent_ignored(self):
        election = AckerElection()
        election.on_nak_report(report("r1", 90, 100), 100, 0.0)
        before = election.incumbent_metric
        election.on_ack_report(report("r2", 0, 60000), 100, 1.0)
        assert election.current == "r1"
        assert election.incumbent_metric == before

    def test_stale_incumbent_replaced_when_unmeasured(self):
        election = AckerElection()
        election._incumbent = None
        election.on_nak_report(report("rX", 95, 10), 100, 0.0)
        assert election.current == "rX"
