"""Tests for the sender-side pgmcc engine (§3.4–§3.6)."""

import pytest

from repro.core.acktrack import build_bitmap
from repro.core.reports import ReceiverReport
from repro.core.sender_cc import ELICIT_AFTER_STALLS, CcConfig, SenderController
from repro.simulator.engine import Simulator


def make(sim=None, **cfg):
    sim = sim or Simulator()
    return sim, SenderController(sim, CcConfig(**cfg))


def ack_for(ctl, seq, received, rx="r1", loss=0):
    """Build the (ack_seq, bitmap, report) triple the acker would send."""
    return seq, build_bitmap(seq, received), ReceiverReport(rx, max(received), loss)


class TestTransmitAccounting:
    def test_first_packet_carries_elicit_mark(self):
        _, ctl = make()
        assert ctl.register_data(0) is True
        ctl.window.tokens = 1.0
        assert ctl.register_data(1) is False

    def test_non_monotonic_sequence_rejected(self):
        _, ctl = make()
        ctl.register_data(0)
        with pytest.raises(ValueError):
            ctl.register_data(0)

    def test_token_consumed(self):
        _, ctl = make()
        ctl.register_data(0)
        assert not ctl.can_send

    def test_disabled_cc_always_sendable(self):
        """§3.1: congestion control can be dynamically disabled."""
        _, ctl = make(enabled=False)
        for s in range(50):
            assert ctl.can_send
            ctl.register_data(s)


class TestAckProcessing:
    def test_ack_regenerates_tokens(self):
        _, ctl = make()
        ctl.register_data(0)
        digest = ctl.on_ack(*ack_for(ctl, 0, {0}))
        assert digest.newly_acked == [0]
        assert ctl.can_send

    def test_each_newly_acked_is_one_window_event(self):
        sim, ctl = make()
        ctl.register_data(0)
        ctl.window.tokens = 2.0
        ctl.register_data(1)
        ctl.register_data(2)
        # single ACK covering all three
        digest = ctl.on_ack(*ack_for(ctl, 2, {0, 1, 2}))
        assert digest.newly_acked == [0, 1, 2]
        assert ctl.window.acks_processed == 3

    def test_loss_detection_halves_window(self):
        sim, ctl = make()
        received = set()
        ctl.window.tokens = 10.0
        for s in range(8):
            ctl.register_data(s)
        ctl.window.w = 8.0
        received = {0, 2, 3, 4, 5, 6, 7}  # 1 lost
        reacted = False
        for s in (2, 3, 4):
            digest = ctl.on_ack(*ack_for(ctl, s, received))
            reacted = reacted or digest.reacted
        assert reacted
        assert ctl.window.w < 8.0

    def test_in_flight_realignment_uses_rxw_lead(self):
        sim, ctl = make()
        ctl.window.tokens = 50.0
        for s in range(30):
            ctl.register_data(s)
        ctl.window.w = 25.0
        # acker has everything up to 27 except 1: in_flight = 29-27 = 2
        received = set(range(30)) - {1}
        rep = ReceiverReport("r1", 27, 0)
        for s in (2, 3, 4):
            ctl.on_ack(s, build_bitmap(s, received), rep)
        # realigned to 2 then halved -> 1
        assert ctl.window.w == 1.0

    def test_ack_refreshes_election_state(self):
        sim, ctl = make()
        ctl.register_data(0)
        ctl.on_nak(ReceiverReport("r1", 0, 0))
        ctl.window.tokens = 5
        for s in range(1, 4):
            ctl.register_data(s)
        ctl.on_ack(*ack_for(ctl, 3, {0, 1, 2, 3}, loss=77))
        assert ctl.election._incumbent.loss_fixed == 77


class TestElectionIntegration:
    def test_first_nak_elects(self):
        _, ctl = make()
        ctl.register_data(0)
        assert ctl.on_nak(ReceiverReport("r1", 0, 0))
        assert ctl.current_acker == "r1"

    def test_initial_election_restores_token(self):
        """§3.6: the fake NAK must restart the ACK clock — packets
        sent before the election carried no acker id."""
        _, ctl = make()
        ctl.register_data(0)
        assert not ctl.can_send
        ctl.on_nak(ReceiverReport("r1", 0, 0))
        assert ctl.can_send

    def test_later_election_does_not_grant_tokens(self):
        """An acker *switch* is not a congestion (or credit) event."""
        sim, ctl = make()
        ctl.register_data(0)
        ctl.on_nak(ReceiverReport("r1", 0, 0))
        ctl.register_data(1)
        assert not ctl.can_send
        tokens = ctl.window.tokens
        ctl.on_nak(ReceiverReport("r2", 0, 60000))  # much slower -> switch
        assert ctl.current_acker == "r2"
        assert ctl.window.tokens == tokens

    def test_switch_preserves_window_state(self):
        sim, ctl = make()
        ctl.register_data(0)
        ctl.on_nak(ReceiverReport("r1", 0, 0))
        ctl.window.w = 12.0
        ctl.on_nak(ReceiverReport("r2", 0, 60000))
        assert ctl.window.w == 12.0

    def test_cc_disabled_ignores_naks(self):
        _, ctl = make(enabled=False)
        ctl.register_data(0)
        assert not ctl.on_nak(ReceiverReport("r1", 0, 0))
        assert ctl.current_acker is None


class TestAckerHandover:
    def test_old_acker_acks_still_clock_after_switch(self):
        """§3.4: 'a slightly different ack clocking scheme in presence
        of switchover' — packets in flight were stamped with the old
        acker id, so its ACKs must keep regenerating tokens after the
        switch (the acker *moved*, the clock keeps ticking)."""
        sim, ctl = make()
        ctl.register_data(0)
        ctl.on_nak(ReceiverReport("old", 0, 0))
        ctl.window.tokens = 3.0
        ctl.register_data(1)
        ctl.register_data(2)
        # switch to a much slower receiver
        ctl.on_nak(ReceiverReport("new", 0, 60000))
        assert ctl.current_acker == "new"
        # ACK arriving from the *old* acker for in-flight packets
        digest = ctl.on_ack(*ack_for(ctl, 1, {0, 1}, rx="old"))
        assert digest.newly_acked == [0, 1]
        assert ctl.window.acks_processed >= 2

    def test_new_acker_bitmap_holes_signal_congestion(self):
        """§4.4: after a switch, congestion shows up as holes in the
        new acker's bitmap, not as out-of-sequence ACKs."""
        sim, ctl = make()
        ctl.register_data(0)
        ctl.on_nak(ReceiverReport("old", 0, 0))
        ctl.window.tokens = 10.0
        for seq in range(1, 8):
            ctl.register_data(seq)
        ctl.window.w = 8.0
        ctl.on_nak(ReceiverReport("new", 2, 60000))
        # the new acker missed packet 3
        received = {0, 1, 2, 4, 5, 6, 7}
        reacted = False
        for seq in (4, 5, 6):
            digest = ctl.on_ack(
                seq, build_bitmap(seq, received),
                ReceiverReport("new", seq, 60000),
            )
            reacted = reacted or digest.reacted
        assert reacted
        assert ctl.window.w < 8.0


class TestStallHandling:
    def test_stall_restarts_window(self):
        sim, ctl = make()
        ctl.register_data(0)  # no ACK will come
        sim.run(until=30.0)
        assert ctl.stalls >= 1
        assert ctl.window.tokens >= 1.0

    def test_repeated_stalls_requests_fresh_election(self):
        sim, ctl = make()
        stalled = []
        ctl.on_stall = lambda: stalled.append(sim.now)
        seq = 0
        ctl.register_data(seq)
        ctl.on_nak(ReceiverReport("r1", 0, 0))

        def send_more():
            nonlocal seq
            if ctl.can_send:
                seq += 1
                ctl.register_data(seq)
            if len(stalled) < ELICIT_AFTER_STALLS:
                sim.schedule(1.0, send_more)

        sim.schedule(1.0, send_more)
        sim.run(until=60.0)
        assert len(stalled) >= ELICIT_AFTER_STALLS
        assert ctl.elicit_nak  # next packet re-elicits
        assert ctl.current_acker is None

    def test_idle_session_does_not_stall(self):
        sim, ctl = make()
        ctl.register_data(0)
        ctl.on_ack(*ack_for(ctl, 0, {0}))
        stalls_before = ctl.stalls
        sim.run(until=60.0)
        assert ctl.stalls == stalls_before

    def test_srtt_measured_from_acks(self):
        sim, ctl = make()
        ctl.register_data(0)
        sim.schedule(0.2, lambda: ctl.on_ack(*ack_for(ctl, 0, {0})))
        sim.run(until=1.0)
        assert ctl.srtt == pytest.approx(0.2)

    def test_close_cancels_timer(self):
        sim, ctl = make()
        ctl.register_data(0)
        ctl.close()
        sim.run(until=60.0)
        assert ctl.stalls == 0
