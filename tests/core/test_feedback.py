"""Tests for the application feedback layer (§3.9)."""

import pytest

from repro.core.feedback import AdaptiveSource, QualityLevel, TokenRateEstimator
from repro.core.reports import ReceiverReport


class TestTokenRateEstimator:
    def test_no_estimate_before_two_tokens(self):
        est = TokenRateEstimator()
        assert est.on_token(0.0) is None
        assert est.packets_per_second is None

    def test_steady_rate_estimated(self):
        est = TokenRateEstimator(tau=1.0)
        for i in range(200):
            est.on_token(i * 0.1)  # 10 pkt/s
        assert est.packets_per_second == pytest.approx(10.0, rel=0.05)

    def test_bits_per_second(self):
        est = TokenRateEstimator(tau=1.0)
        for i in range(200):
            est.on_token(i * 0.1)
        assert est.bits_per_second(1400) == pytest.approx(10 * 1400 * 8, rel=0.05)

    def test_tracks_rate_change(self):
        est = TokenRateEstimator(tau=0.5)
        t = 0.0
        for _ in range(100):
            t += 0.1
            est.on_token(t)
        for _ in range(200):
            t += 0.02  # 50 pkt/s
            est.on_token(t)
        assert est.packets_per_second == pytest.approx(50.0, rel=0.1)

    def test_tau_validation(self):
        with pytest.raises(ValueError):
            TokenRateEstimator(tau=0)

    def test_simultaneous_tokens_do_not_crash(self):
        est = TokenRateEstimator()
        est.on_token(1.0)
        est.on_token(1.0)  # zero interval
        est.on_token(1.1)
        assert est.packets_per_second is not None


LEVELS = [
    QualityLevel("low", 50_000),
    QualityLevel("mid", 200_000),
    QualityLevel("high", 800_000),
]


def drive(app, rate_pps, start, seconds):
    t = start
    interval = 1.0 / rate_pps
    end = start + seconds
    while t < end:
        app.on_token(t)
        t += interval
    return t


class TestAdaptiveSource:
    def test_needs_levels(self):
        with pytest.raises(ValueError):
            AdaptiveSource([])

    def test_up_margin_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSource(LEVELS, up_margin=0.9)

    def test_starts_at_lowest(self):
        app = AdaptiveSource(LEVELS)
        assert app.current.name == "low"

    def test_steps_up_with_capacity(self):
        app = AdaptiveSource(LEVELS, payload_bytes=1400)
        # 40 pkt/s * 1400B*8 = 448 kbit/s -> fits "mid" comfortably
        drive(app, 40.0, 0.0, 30.0)
        assert app.current.name == "mid"

    def test_steps_down_when_squeezed(self):
        app = AdaptiveSource(LEVELS, payload_bytes=1400)
        t = drive(app, 40.0, 0.0, 30.0)
        drive(app, 5.0, t, 30.0)  # 56 kbit/s
        assert app.current.name == "low"

    def test_hysteresis_prevents_flapping(self):
        """Token rate oscillating just around a boundary must not
        produce a level change per oscillation."""
        app = AdaptiveSource(LEVELS, payload_bytes=1400, headroom=1.0)
        t = 0.0
        # mid needs 200k/ (1400*8) = 17.9 pkt/s; oscillate 18..19.5
        import itertools

        for rate in itertools.islice(itertools.cycle([18.0, 19.5]), 200):
            for _ in range(20):
                t += 1.0 / rate
                app.on_token(t)
        assert len(app.level_changes) <= 2

    def test_level_change_callback(self):
        seen = []
        app = AdaptiveSource(LEVELS, payload_bytes=1400,
                             on_level_change=lambda lv: seen.append(lv.name))
        drive(app, 40.0, 0.0, 30.0)
        assert seen and seen[-1] == "mid"

    def test_redundancy_share_from_report(self):
        app = AdaptiveSource(LEVELS)
        assert app.redundancy_share == pytest.approx(0.02)  # floor
        app.on_report(ReceiverReport("r", 0, 6554))  # ~10% loss
        assert app.redundancy_share == pytest.approx(0.3, rel=0.01)
        app.on_report(ReceiverReport("r", 0, 65536))  # 100% loss
        assert app.redundancy_share == 0.5  # clamped

    def test_levels_sorted_by_rate(self):
        app = AdaptiveSource(list(reversed(LEVELS)))
        assert [lv.name for lv in app.levels] == ["low", "mid", "high"]
