"""Tests for receiver-side measurement state (§3.2, §3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acktrack import bitmap_contains
from repro.core.receiver_cc import ReceiverController


class TestDataIngest:
    def test_in_order_stream(self):
        rc = ReceiverController("r")
        for s in range(10):
            outcome = rc.on_data(s, now=float(s))
            assert outcome.new_gaps == []
            assert outcome.advanced_lead
        assert rc.rxw_lead == 9
        assert rc.loss_filter.value == 0

    def test_gap_detection(self):
        rc = ReceiverController("r")
        rc.on_data(0, 0.0)
        outcome = rc.on_data(3, 1.0)
        assert outcome.new_gaps == [1, 2]
        assert rc.rxw_lead == 3

    def test_gap_feeds_loss_filter(self):
        rc = ReceiverController("r")
        rc.on_data(0, 0.0)
        rc.on_data(2, 1.0)
        assert rc.loss_filter.losses == 1
        assert rc.loss_filter.value > 0

    def test_duplicate_detected(self):
        rc = ReceiverController("r")
        rc.on_data(0, 0.0)
        outcome = rc.on_data(0, 1.0)
        assert outcome.duplicate
        assert rc.duplicates == 1

    def test_repair_fills_gap_without_touching_filter(self):
        """The loss signal measures original transmissions; a repair
        must not lower (or raise) the measured loss."""
        rc = ReceiverController("r")
        rc.on_data(0, 0.0)
        rc.on_data(2, 1.0)
        losses_before = rc.loss_filter.losses
        samples_before = rc.loss_filter.samples
        outcome = rc.on_data(1, 2.0)  # the repair
        assert not outcome.duplicate
        assert not outcome.advanced_lead
        assert rc.loss_filter.losses == losses_before
        assert rc.loss_filter.samples == samples_before

    def test_first_packet_anchors_window(self):
        """A mid-session joiner must not count history as lost."""
        rc = ReceiverController("r")
        outcome = rc.on_data(5000, 0.0)
        assert outcome.new_gaps == []
        assert rc.rxw_lead == 5000
        assert rc.loss_filter.losses == 0

    def test_sample_observer_sees_signal(self):
        rc = ReceiverController("r")
        samples = []
        rc.sample_observer = lambda seq, lost: samples.append((seq, lost))
        rc.on_data(0, 0.0)
        rc.on_data(2, 1.0)
        assert samples == [(0, False), (1, True), (2, False)]


class TestReports:
    def test_report_fields(self):
        rc = ReceiverController("r9")
        rc.on_data(0, 0.0)
        rc.on_data(2, 1.0)
        rep = rc.report()
        assert rep.rx_id == "r9"
        assert rep.rxw_lead == 2
        assert rep.rx_loss == rc.loss_filter.value
        assert rep.timestamp_echo is None

    def test_report_before_any_data(self):
        rep = ReceiverController("r").report()
        assert rep.rxw_lead == 0

    def test_timestamp_echo_corrects_hold_time(self):
        """§3.2.1: the echo is corrected by the local hold so NAK
        suppression delays do not inflate the RTT."""
        rc = ReceiverController("r")
        rc.on_data(0, now=10.0, sender_timestamp=9.5)
        rep = rc.report(include_timestamp=True, now=10.3)
        # echo = sender_ts + hold = 9.5 + 0.3
        assert rep.timestamp_echo == pytest.approx(9.8)

    def test_no_echo_without_request(self):
        rc = ReceiverController("r")
        rc.on_data(0, 1.0, sender_timestamp=0.5)
        assert rc.report().timestamp_echo is None


class TestBitmap:
    def test_bitmap_reflects_receive_state(self):
        rc = ReceiverController("r")
        for s in (0, 1, 3, 4):
            rc.on_data(s, float(s))
        bitmap = rc.ack_bitmap(4)
        assert bitmap_contains(4, bitmap, 4)
        assert bitmap_contains(4, bitmap, 3)
        assert not bitmap_contains(4, bitmap, 2)
        assert bitmap_contains(4, bitmap, 1)

    def test_pruning_keeps_bitmap_window(self):
        rc = ReceiverController("r")
        for s in range(2000):
            rc.on_data(s, float(s))
        bitmap = rc.ack_bitmap(1999)
        assert bitmap == (1 << 32) - 1  # all of the last 32 present

    def test_has_received(self):
        rc = ReceiverController("r")
        rc.on_data(7, 0.0)
        assert rc.has_received(7)
        assert not rc.has_received(6)


class TestReceiverProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=400))
    @settings(max_examples=100)
    def test_filter_losses_match_gap_slots(self, pattern):
        """Feeding an arrival pattern seq-by-seq: the filter's loss
        count equals the number of dropped slots before the last
        arrival (trailing losses are not yet detectable)."""
        rc = ReceiverController("r")
        for seq, arrived in enumerate(pattern):
            if arrived:
                rc.on_data(seq, float(seq))
        arrived_seqs = [i for i, a in enumerate(pattern) if a]
        if not arrived_seqs:
            assert rc.loss_filter.samples == 0
            return
        first, last = arrived_seqs[0], arrived_seqs[-1]
        expected_losses = sum(
            1 for i in range(first, last) if not pattern[i]
        )
        assert rc.loss_filter.losses == expected_losses
        assert rc.rxw_lead == last

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=200))
    @settings(max_examples=100)
    def test_arbitrary_order_never_crashes_lead_monotone(self, seqs):
        rc = ReceiverController("r")
        lead = -1
        for s in seqs:
            rc.on_data(s, 0.0)
            assert rc.rxw_lead >= lead
            lead = rc.rxw_lead
