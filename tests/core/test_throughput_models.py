"""Tests for the election throughput models (§3.5, §5 future work)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loss_filter import SCALE, to_fixed
from repro.core.throughput_models import (
    PadhyeModel,
    SimpleModel,
    make_model,
)


class TestFactory:
    def test_make_simple(self):
        assert isinstance(make_model("simple"), SimpleModel)

    def test_make_padhye(self):
        assert isinstance(make_model("padhye"), PadhyeModel)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_model("quantum")


class TestSimpleModel:
    def test_order_matches_rtt_sqrt_p(self):
        model = SimpleModel()
        # doubling RTT doubles slowness; quadrupling p doubles slowness
        base = model.slowness(10.0, 400)
        assert model.slowness(20.0, 400) == pytest.approx(2 * base)
        assert model.slowness(10.0, 1600) == pytest.approx(2 * base)

    def test_loss_floor(self):
        model = SimpleModel()
        assert model.slowness(10.0, 0) == model.slowness(10.0, 1)


class TestPadhyeModel:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PadhyeModel(b=0)
        with pytest.raises(ValueError):
            PadhyeModel(rto_rtts=-1)

    def test_matches_simple_at_low_loss(self):
        """Below ~1% loss, the timeout term vanishes and Padhye reduces
        to the sqrt model up to the constant sqrt(2b/3)."""
        padhye = PadhyeModel(b=1.0)
        rtt = 20.0
        for p in (0.001, 0.005):
            t_model = padhye.throughput(rtt, p)
            t_sqrt = 1.0 / (rtt * math.sqrt(2 * p / 3))
            assert t_model == pytest.approx(t_sqrt, rel=0.1)

    def test_penalises_high_loss_more_than_simple(self):
        """Footnote 3: the simple equation largely overestimates
        throughput above ~5% loss; Padhye's timeout term corrects it."""
        padhye = PadhyeModel()
        rtt = 20.0
        ratio_low = (1 / (rtt * math.sqrt(0.01))) / padhye.throughput(rtt, 0.01)
        ratio_high = (1 / (rtt * math.sqrt(0.30))) / padhye.throughput(rtt, 0.30)
        assert ratio_high > 3 * ratio_low

    def test_throughput_monotone_in_loss(self):
        padhye = PadhyeModel()
        rates = [padhye.throughput(20.0, p) for p in (0.001, 0.01, 0.05, 0.2, 0.5)]
        assert rates == sorted(rates, reverse=True)

    def test_zero_loss_infinite(self):
        assert PadhyeModel().throughput(10.0, 0.0) == math.inf

    @given(
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=1e-4, max_value=0.9),
    )
    @settings(max_examples=200)
    def test_slowness_positive_finite(self, rtt, p):
        model = PadhyeModel()
        slowness = model.slowness(rtt, to_fixed(p))
        assert 0 < slowness < math.inf

    @given(st.floats(min_value=1.0, max_value=500.0))
    @settings(max_examples=100)
    def test_slowness_monotone_in_loss_fixed(self, rtt):
        model = PadhyeModel()
        values = [model.slowness(rtt, lf) for lf in (100, 1000, 10_000, 50_000)]
        assert values == sorted(values)


class TestElectionDivergence:
    """The scenario footnote 3 describes: a high-loss/low-RTT receiver
    vs a low-loss/high-RTT one — the models can rank them differently,
    with Padhye correctly penalising the heavy loss."""

    HIGH_LOSS_LOW_RTT = (5.0, to_fixed(0.30))
    LOW_LOSS_HIGH_RTT = (40.0, to_fixed(0.01))

    def test_simple_prefers_high_rtt_receiver_as_acker(self):
        simple = SimpleModel()
        s_lossy = simple.slowness(*self.HIGH_LOSS_LOW_RTT)
        s_far = simple.slowness(*self.LOW_LOSS_HIGH_RTT)
        # sqrt model: 5·sqrt(.3)=2.74 vs 40·sqrt(.01)=4.0 — the far
        # receiver looks slower
        assert s_far > s_lossy

    def test_padhye_flags_the_lossy_receiver(self):
        padhye = PadhyeModel()
        s_lossy = padhye.slowness(*self.HIGH_LOSS_LOW_RTT)
        s_far = padhye.slowness(*self.LOW_LOSS_HIGH_RTT)
        # the timeout term makes 30% loss the real bottleneck
        assert s_lossy > s_far

    def test_election_outcome_depends_on_model(self):
        from repro.core.acker import AckerElection
        from repro.core.reports import ReceiverReport

        last_tx = 100
        lossy = ReceiverReport("lossy", last_tx - 5, to_fixed(0.30))
        far = ReceiverReport("far", last_tx - 40, to_fixed(0.01))
        for model, expected in (("simple", "far"), ("padhye", "lossy")):
            election = AckerElection(c=1.0, model=model)
            election.on_nak_report(far, last_tx, 0.0)
            election.on_nak_report(lossy, last_tx, 1.0)
            # whichever is judged slower ends up (or stays) the acker
            if expected == "lossy":
                assert election.current == "lossy"
            else:
                assert election.current == "far"
