"""Tests for RTT measurement (§3.2.1) and receiver reports (§3.2)."""

import pytest

from repro.core.loss_filter import SCALE
from repro.core.reports import ReceiverReport
from repro.core.rtt import RttSampler, SmoothedRtt, packet_rtt


class TestPacketRtt:
    def test_difference_of_sequences(self):
        """The paper's scheme: last_tx_seq - rxw_lead, in packets."""
        assert packet_rtt(100, 80) == 20

    def test_floor(self):
        assert packet_rtt(100, 100) == 1
        assert packet_rtt(100, 150) == 1  # stale sender view

    def test_custom_floor(self):
        assert packet_rtt(5, 5, floor=0) == 0

    def test_rate_scaling_preserves_receiver_ordering(self):
        """§3.2.1: the packet-RTT value varies with the data rate, but
        identically for all receivers, so comparisons are unaffected.
        At k times the rate, a path holding t seconds of data holds
        k times as many packets."""
        time_rtt_fast, time_rtt_slow = 0.1, 0.4  # seconds of path delay
        for rate_pps in (10, 100, 1000):
            fast = packet_rtt(1000, 1000 - int(time_rtt_fast * rate_pps))
            slow = packet_rtt(1000, 1000 - int(time_rtt_slow * rate_pps))
            assert slow > fast
            # the ratio approaches the time-RTT ratio as rate grows
            if rate_pps >= 100:
                assert slow / fast == pytest.approx(4.0, rel=0.35)


class TestSmoothedRtt:
    def test_first_sample_initialises(self):
        s = SmoothedRtt()
        assert s.value is None
        s.update(10.0)
        assert s.value == 10.0

    def test_ewma_gain(self):
        s = SmoothedRtt(gain=0.5)
        s.update(10.0)
        s.update(20.0)
        assert s.value == pytest.approx(15.0)

    def test_gain_validation(self):
        with pytest.raises(ValueError):
            SmoothedRtt(gain=0.0)

    def test_reset(self):
        s = SmoothedRtt()
        s.update(5.0)
        s.reset()
        assert s.value is None
        s.reset(3.0)
        assert s.value == 3.0

    def test_converges_to_constant_input(self):
        s = SmoothedRtt(gain=0.25)
        s.update(100.0)
        for _ in range(50):
            s.update(10.0)
        assert s.value == pytest.approx(10.0, abs=0.01)


class TestRttSampler:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            RttSampler("bogus")

    def test_seq_mode(self):
        sampler = RttSampler(RttSampler.SEQ)
        rep = ReceiverReport("r", 80, 0)
        assert sampler.sample(rep, last_tx_seq=100, now=5.0) == 20.0

    def test_time_mode_uses_echo(self):
        sampler = RttSampler(RttSampler.TIME)
        rep = ReceiverReport("r", 80, 0, timestamp_echo=4.5)
        assert sampler.sample(rep, last_tx_seq=100, now=5.0) == pytest.approx(0.5)

    def test_time_mode_without_echo_returns_none(self):
        sampler = RttSampler(RttSampler.TIME)
        rep = ReceiverReport("r", 80, 0)
        assert sampler.sample(rep, 100, 5.0) is None

    def test_time_mode_clamps_nonpositive(self):
        sampler = RttSampler(RttSampler.TIME)
        rep = ReceiverReport("r", 80, 0, timestamp_echo=9.0)
        assert sampler.sample(rep, 100, 5.0) == pytest.approx(1e-6)


class TestReceiverReport:
    def test_valid_report(self):
        rep = ReceiverReport("r1", 10, 500)
        assert rep.loss_rate == pytest.approx(500 / SCALE)

    def test_negative_lead_rejected(self):
        with pytest.raises(ValueError):
            ReceiverReport("r1", -1, 0)

    def test_loss_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ReceiverReport("r1", 0, SCALE + 1)
        with pytest.raises(ValueError):
            ReceiverReport("r1", 0, -1)

    def test_frozen(self):
        rep = ReceiverReport("r1", 0, 0)
        with pytest.raises(AttributeError):
            rep.rx_loss = 5
