"""Tests for the fixed-point loss filter (§3.2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loss_filter import (
    DEFAULT_W,
    SCALE,
    LossRateFilter,
    to_fixed,
    to_float,
)


class TestFixedPointConversion:
    def test_round_trip_extremes(self):
        assert to_fixed(0.0) == 0
        assert to_fixed(1.0) == SCALE
        assert to_float(0) == 0.0
        assert to_float(SCALE) == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            to_fixed(1.01)
        with pytest.raises(ValueError):
            to_fixed(-0.01)

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_round_trip_error_bounded(self, x):
        assert abs(to_float(to_fixed(x)) - x) <= 1.0 / SCALE


class TestFilterBasics:
    def test_starts_at_zero(self):
        assert LossRateFilter().value == 0

    def test_w_validation(self):
        with pytest.raises(ValueError):
            LossRateFilter(0)
        with pytest.raises(ValueError):
            LossRateFilter(SCALE)

    def test_single_loss_impulse(self):
        """One loss raises the output by exactly (1-W) in fixed point."""
        filt = LossRateFilter(DEFAULT_W)
        value = filt.update(True)
        assert value == SCALE - DEFAULT_W  # 536

    def test_loss_then_decay(self):
        filt = LossRateFilter(DEFAULT_W)
        peak = filt.update(True)
        value = peak
        for _ in range(100):
            new = filt.update(False)
            assert new <= value
            value = new
        assert value < peak

    def test_all_losses_converges_to_one(self):
        filt = LossRateFilter(DEFAULT_W)
        for _ in range(20_000):
            filt.update(True)
        assert filt.loss_rate > 0.97

    def test_integer_arithmetic_only(self):
        """The paper: fixed point with shifts — the state stays int."""
        filt = LossRateFilter()
        for i in range(100):
            filt.update(i % 7 == 0)
            assert isinstance(filt.value, int)

    def test_reset(self):
        filt = LossRateFilter()
        filt.update(True)
        filt.reset()
        assert filt.value == 0
        assert filt.samples == 0

    def test_update_run(self):
        a = LossRateFilter()
        b = LossRateFilter()
        pattern = [True, False, False, True, False]
        final = a.update_run(pattern)
        for lost in pattern:
            b.update(lost)
        assert final == b.value

    def test_counters(self):
        filt = LossRateFilter()
        filt.update_run([True, False, True, False, False])
        assert filt.samples == 5
        assert filt.losses == 2
        assert filt.raw_loss_rate == pytest.approx(0.4)


class TestSteadyState:
    @pytest.mark.parametrize("period,expected", [(10, 0.1), (20, 0.05), (100, 0.01)])
    def test_periodic_loss_converges_to_rate(self, period, expected):
        """At steady state the filter's cycle-average equals the loss
        rate (point samples oscillate within the cycle)."""
        filt = LossRateFilter(DEFAULT_W)
        outputs = []
        for i in range(60_000):
            outputs.append(filt.update(i % period == 0))
        last_cycle = outputs[-period:]
        mean = sum(last_cycle) / len(last_cycle) / 65536
        # Fixed-point truncation biases the output low by up to
        # ~0.5 LSB per step ≈ 0.0009 absolute; wider tolerance at the
        # low rate where that bias is relatively large.
        assert mean == pytest.approx(expected, rel=0.15)

    def test_paper_w_corner_frequency(self):
        """The paper quotes ~0.0013 packets^-1 for W=65000/65536."""
        assert LossRateFilter(65000).corner_frequency() == pytest.approx(0.0013, rel=0.05)

    def test_smaller_w_responds_faster(self):
        """Fig. 2: smaller W = higher corner frequency = noisier."""
        fast = LossRateFilter(64000)
        slow = LossRateFilter(65280)
        fast.update(True)
        slow.update(True)
        assert fast.value > slow.value  # bigger impulse response

    def test_five_percent_random_loss_band(self):
        """Fig. 2 bottom: 5% loss keeps the output in the 2000–6000
        fixed-point band (around 3277)."""
        import random

        rng = random.Random(4)
        filt = LossRateFilter(DEFAULT_W)
        outputs = []
        for _ in range(20_000):
            outputs.append(filt.update(rng.random() < 0.05))
        steady = outputs[5000:]
        mean = sum(steady) / len(steady)
        assert 2500 < mean < 4200
        assert min(steady) > 500
        assert max(steady) < 9000


class TestFilterProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=500))
    @settings(max_examples=200)
    def test_output_bounded(self, pattern):
        filt = LossRateFilter()
        for lost in pattern:
            value = filt.update(lost)
            assert 0 <= value <= SCALE

    @given(
        st.lists(st.booleans(), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=SCALE - 1),
    )
    @settings(max_examples=100)
    def test_output_bounded_any_w(self, pattern, w):
        filt = LossRateFilter(w)
        for lost in pattern:
            assert 0 <= filt.update(lost) <= SCALE

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=100)
    def test_monotone_in_losses(self, pattern):
        """Turning any received slot into a lost slot never lowers the
        final output (monotonicity of the linear filter)."""
        base = LossRateFilter()
        base.update_run(pattern)
        worse_pattern = list(pattern)
        # flip the first received slot to lost, if any
        try:
            worse_pattern[worse_pattern.index(False)] = True
        except ValueError:
            return
        worse = LossRateFilter()
        worse.update_run(worse_pattern)
        assert worse.value >= base.value

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=100)
    def test_deterministic(self, pattern):
        a = LossRateFilter()
        b = LossRateFilter()
        assert a.update_run(pattern) == b.update_run(pattern)

    @given(st.integers(min_value=1, max_value=SCALE - 1))
    def test_all_loss_fixed_point_stable(self, w):
        """The filter must not overflow/oscillate at saturation."""
        filt = LossRateFilter(w)
        last = 0
        for _ in range(1000):
            value = filt.update(True)
            assert value >= last  # non-decreasing toward SCALE
            last = value
        assert last <= SCALE
