"""Tests for ACK-bitmap accounting and loss detection (§3.3, §3.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acktrack import (
    BITMAP_BITS,
    AckTracker,
    bitmap_contains,
    bitmap_covers,
    build_bitmap,
)


class TestBitmapHelpers:
    def test_build_sets_bit_zero_for_ack_seq(self):
        bitmap = build_bitmap(10, {10})
        assert bitmap & 1

    def test_build_skips_missing(self):
        bitmap = build_bitmap(10, {10, 8})
        assert bitmap_contains(10, bitmap, 10)
        assert not bitmap_contains(10, bitmap, 9)
        assert bitmap_contains(10, bitmap, 8)

    def test_width_is_32(self):
        received = set(range(100))
        bitmap = build_bitmap(60, received)
        assert bitmap_covers(60, 60 - 31)
        assert not bitmap_covers(60, 60 - 32)
        assert bitmap < (1 << BITMAP_BITS)

    def test_negative_seqs_ignored(self):
        bitmap = build_bitmap(2, {0, 1, 2})
        assert bitmap == 0b111

    @given(st.integers(min_value=0, max_value=1000),
           st.sets(st.integers(min_value=0, max_value=1000), max_size=64))
    @settings(max_examples=200)
    def test_contains_matches_build(self, ack_seq, received):
        bitmap = build_bitmap(ack_seq, received)
        for seq in range(max(0, ack_seq - BITMAP_BITS + 1), ack_seq + 1):
            assert bitmap_contains(ack_seq, bitmap, seq) == (seq in received)


class TestTrackerBasics:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            AckTracker(0)

    def test_duplicate_send_rejected(self):
        tracker = AckTracker()
        tracker.on_data_sent(0)
        with pytest.raises(ValueError):
            tracker.on_data_sent(0)

    def test_simple_ack_clears_outstanding(self):
        tracker = AckTracker()
        tracker.on_data_sent(0)
        outcome = tracker.on_ack(0, build_bitmap(0, {0}))
        assert outcome.newly_acked == [0]
        assert tracker.outstanding_count == 0

    def test_bitmap_recovers_lost_ack(self):
        """§3.3: each ACK is effectively transmitted multiple times."""
        tracker = AckTracker()
        tracker.on_data_sent(0)
        tracker.on_data_sent(1)
        # ACK for 0 lost; ACK for 1 carries both in its bitmap.
        outcome = tracker.on_ack(1, build_bitmap(1, {0, 1}))
        assert outcome.newly_acked == [0, 1]

    def test_out_of_order_ack_accepted(self):
        tracker = AckTracker()
        for s in range(3):
            tracker.on_data_sent(s)
        tracker.on_ack(2, build_bitmap(2, {0, 1, 2}))
        outcome = tracker.on_ack(1, build_bitmap(1, {0, 1}))
        assert not outcome.is_new_high
        assert tracker.duplicate_acks == 1

    def test_ack_for_unknown_seq_harmless(self):
        tracker = AckTracker()
        outcome = tracker.on_ack(5, build_bitmap(5, {5}))
        assert outcome.newly_acked == []


class TestLossDetection:
    def test_loss_after_dupack_threshold(self):
        """A packet missed by 3 subsequent ACKs is declared lost."""
        tracker = AckTracker(dupack_threshold=3)
        for s in range(5):
            tracker.on_data_sent(s)
        received = {0, 2, 3, 4}  # packet 1 lost
        losses = []
        for s in (2, 3, 4):
            outcome = tracker.on_ack(s, build_bitmap(s, received))
            losses.extend(outcome.losses)
        assert losses == [1]
        assert not tracker.is_outstanding(1)

    def test_no_loss_below_threshold(self):
        tracker = AckTracker(dupack_threshold=3)
        for s in range(4):
            tracker.on_data_sent(s)
        received = {0, 2, 3}
        outcome2 = tracker.on_ack(2, build_bitmap(2, received))
        outcome3 = tracker.on_ack(3, build_bitmap(3, received))
        assert outcome2.losses == outcome3.losses == []
        assert tracker.is_outstanding(1)

    def test_late_bitmap_arrival_cancels_miss_count(self):
        """A repair-path ACK covering the packet rescinds suspicion."""
        tracker = AckTracker(dupack_threshold=3)
        for s in range(4):
            tracker.on_data_sent(s)
        tracker.on_ack(2, build_bitmap(2, {0, 2}))  # 1 missing (count 1)
        # next ACK's bitmap includes 1 (reordered delivery)
        outcome = tracker.on_ack(3, build_bitmap(3, {0, 1, 2, 3}))
        assert 1 in outcome.newly_acked
        assert outcome.losses == []

    def test_each_covering_ack_counts_once(self):
        tracker = AckTracker(dupack_threshold=2)
        tracker.on_data_sent(0)
        tracker.on_data_sent(1)
        tracker.on_data_sent(2)
        received = {1, 2}
        tracker.on_ack(1, build_bitmap(1, received))
        outcome = tracker.on_ack(2, build_bitmap(2, received))
        assert outcome.losses == [0]

    def test_duplicate_acks_count_toward_losses(self):
        """Replayed ACKs with the same ack_seq keep counting, like
        TCP duplicate ACKs."""
        tracker = AckTracker(dupack_threshold=3)
        tracker.on_data_sent(0)
        tracker.on_data_sent(1)
        bitmap = build_bitmap(1, {1})
        losses = []
        for _ in range(3):
            losses.extend(tracker.on_ack(1, bitmap).losses)
        assert losses == [0]

    def test_reset_forgets_everything(self):
        tracker = AckTracker()
        tracker.on_data_sent(0)
        tracker.on_ack(0, 0)
        tracker.reset()
        assert tracker.outstanding_count == 0
        assert tracker.highest_ack_seq == -1


class TestTrackerProperties:
    @given(
        st.integers(min_value=5, max_value=60),
        st.sets(st.integers(min_value=0, max_value=59), max_size=20),
    )
    @settings(max_examples=100)
    def test_every_packet_acked_or_lost_eventually(self, n, lost):
        """With ACKs for every received packet, each sent packet ends
        up either newly_acked or declared lost — never both, never
        neither (conservation)."""
        tracker = AckTracker(dupack_threshold=3)
        lost = {s for s in lost if s < n - 4}  # keep tail ACKs flowing
        received: set[int] = set()
        acked, declared = set(), set()
        for s in range(n):
            tracker.on_data_sent(s)
            if s in lost:
                continue
            received.add(s)
            outcome = tracker.on_ack(s, build_bitmap(s, received))
            acked.update(outcome.newly_acked)
            declared.update(outcome.losses)
        assert acked & declared == set()
        assert acked | declared | set(tracker.outstanding()) == set(range(n))
        assert declared == lost

    @given(st.data())
    @settings(max_examples=50)
    def test_outstanding_never_negative_or_duplicated(self, data):
        tracker = AckTracker()
        sent = 0
        for _ in range(30):
            if data.draw(st.booleans()):
                tracker.on_data_sent(sent)
                sent += 1
            elif sent:
                seq = data.draw(st.integers(min_value=0, max_value=sent - 1))
                tracker.on_ack(seq, data.draw(st.integers(min_value=0, max_value=2**32 - 1)))
            outs = tracker.outstanding()
            assert len(outs) == len(set(outs))
            assert tracker.outstanding_count >= 0
