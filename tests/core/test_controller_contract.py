"""Conformance suite for the congestion-controller contract.

Every backend in the registry — builtins and anything registered later
— must pass these: they are the behavioral half of the contract that
``docs/CONTROLLERS.md`` documents and that the sender engine and the
invariant checker assume.  The suite is parametrized over
:func:`repro.core.controller.controller_names`, so registering a new
backend automatically puts it under test.
"""

from __future__ import annotations

import json

import pytest

from repro.core.controller import (
    KINDS,
    PARAMS_SCHEMA,
    STATE_SCHEMA,
    Controller,
    controller_names,
    make_controller,
    register_controller,
)
from repro.core.reports import ReceiverReport
from repro.core.sender_cc import CcConfig

ALL = controller_names()


def fresh(name: str):
    return make_controller(name, CcConfig())


def report(rx="r0", lead=0):
    return ReceiverReport(rx_id=rx, rxw_lead=lead, rx_loss=0)


def drive_acks(ctl, n: int, start_seq: int = 0, now: float = 0.0,
               rtt: float = 0.1):
    """Send/ack ``n`` packets honoring the backend's pacing; returns
    (next_seq, now)."""
    seq = start_seq
    for _ in range(n):
        delay = ctl.send_delay(now)
        assert delay is not None, "ACK-clocked backend blocked while acked up"
        now += delay
        ctl.on_send(seq, now)
        now += rtt
        ctl.observe_report(report(lead=seq), rtt, now)
        ctl.on_ack(now, in_flight=1)
        seq += 1
    return seq, now


# -- structural conformance ----------------------------------------------------


@pytest.mark.parametrize("name", ALL)
def test_satisfies_protocol(name):
    ctl = fresh(name)
    assert isinstance(ctl, Controller)
    assert ctl.name == name
    assert ctl.kind in KINDS
    assert isinstance(ctl.congestion_signals, tuple) and ctl.congestion_signals


@pytest.mark.parametrize("name", ALL)
def test_window_view_surface(name):
    """The observable view telemetry samples and invariants wrap."""
    view = fresh(name).window
    assert view.w >= 1.0
    assert view.tokens >= 0.0
    assert view.ignore_acks >= 0
    assert view.losses_reacted == 0
    assert view.losses_ignored == 0
    assert callable(view.on_loss)


@pytest.mark.parametrize("name", ALL)
def test_params_and_state_are_serializable_documents(name):
    ctl = fresh(name)
    params = ctl.params()
    state = ctl.state_summary()
    assert params["schema"] == PARAMS_SCHEMA
    assert state["schema"] == STATE_SCHEMA
    for doc in (params, state):
        assert doc["name"] == name
        assert doc["kind"] == ctl.kind
        round_tripped = json.loads(json.dumps(doc, sort_keys=True))
        assert round_tripped == doc


@pytest.mark.parametrize("name", ALL)
def test_fresh_backend_can_send(name):
    """A new session must be able to emit its first packet."""
    ctl = fresh(name)
    assert ctl.can_send
    assert ctl.send_delay(0.0) == 0.0


# -- behavioral conformance ----------------------------------------------------


@pytest.mark.parametrize("name", ALL)
def test_acks_grow_output_monotonically(name):
    """More clean ACKs never shrink the (equivalent) window."""
    ctl = fresh(name)
    seen = []
    seq, now = 0, 0.0
    for _ in range(8):
        seq, now = drive_acks(ctl, 5, seq, now)
        seen.append(ctl.window.w)
    assert all(b >= a - 1e-9 for a, b in zip(seen, seen[1:])), seen
    assert seen[-1] > seen[0]


@pytest.mark.parametrize("name", ALL)
def test_congestion_signal_reduces_output(name):
    """Each declared congestion signal must actually reduce output:
    a dupack-declared loss shrinks the window (roughly halving for the
    paper's controller), a timeout collapses it."""
    ctl = fresh(name)
    seq, now = drive_acks(ctl, 40, rtt=0.1)
    before = ctl.window.w
    if "dupack" in ctl.congestion_signals:
        reacted = ctl.on_congestion(seq - 2, seq - 1, int(before), now)
        assert reacted
        assert ctl.window.w <= before * 0.75 + 1e-9, (
            f"{name}: dupack reaction {before:.2f} -> {ctl.window.w:.2f}"
        )
        assert ctl.window.losses_reacted == 1
    else:
        # Backends that ignore dupacks must say so and not react.
        reacted = ctl.on_congestion(seq - 2, seq - 1, int(before), now)
        assert not reacted
        assert ctl.window.w == pytest.approx(before)
        assert ctl.window.losses_ignored == 1


@pytest.mark.parametrize("name", ALL)
def test_one_reaction_per_rtt(name):
    """Losses within an already-open recovery window are folded into
    the same congestion event (§3.4)."""
    ctl = fresh(name)
    if "dupack" not in ctl.congestion_signals:
        pytest.skip("timeout-only backend")
    seq, now = drive_acks(ctl, 40, rtt=0.1)
    assert ctl.on_congestion(seq - 3, seq - 1, 20, now)
    after_first = ctl.window.w
    # Second loss below the recorded recovery sequence: same event.
    assert not ctl.on_congestion(seq - 2, seq - 1, 20, now)
    assert ctl.window.w == pytest.approx(after_first)
    assert ctl.window.losses_ignored >= 1


@pytest.mark.parametrize("name", ALL)
def test_timeout_recovery(name):
    """A timeout collapses output, and the backend must be able to
    start sending again afterwards (possibly after a paced delay)."""
    ctl = fresh(name)
    seq, now = drive_acks(ctl, 40, rtt=0.1)
    before = ctl.window.w
    ctl.on_timeout(now)
    assert ctl.window.w <= before / 2.0 + 1e-9, (
        f"{name}: timeout {before:.2f} -> {ctl.window.w:.2f}"
    )
    # Recovery: sending becomes legal again within bounded time.
    ctl.kick()
    delay = ctl.send_delay(now)
    assert delay is not None and delay <= 10.0
    now += delay
    assert ctl.send_delay(now) == 0.0
    ctl.on_send(seq, now)


@pytest.mark.parametrize("name", ALL)
def test_kick_enables_send(name):
    """After a kick (dead feedback clock) one send must be possible."""
    ctl = fresh(name)
    now = 0.0
    # Exhaust send credit without any feedback.
    for seq in range(100):
        delay = ctl.send_delay(now)
        if delay != 0.0:
            break
        ctl.on_send(seq, now)
    else:
        pytest.fail("backend never exhausted its initial credit")
    ctl.kick()
    assert ctl.can_send
    assert ctl.send_delay(now) == 0.0


@pytest.mark.parametrize("name", ALL)
def test_state_summary_tracks_events(name):
    ctl = fresh(name)
    drive_acks(ctl, 10)
    state = ctl.state_summary()
    # Every backend reports reaction counters in its state document.
    assert "losses_reacted" in state
    assert "losses_ignored" in state


# -- registry ------------------------------------------------------------------


def test_registry_has_all_builtins():
    assert set(ALL) >= {"pgmcc", "jain", "aimd", "tfrc"}


def test_unknown_name_raises_with_listing():
    with pytest.raises(KeyError, match="pgmcc"):
        make_controller("nope", CcConfig())


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_controller("pgmcc")(object)


def test_backend_params_forwarded():
    ctl = make_controller("aimd", CcConfig(), beta=0.9)
    assert ctl.params()["beta"] == 0.9
    with pytest.raises(ValueError):
        make_controller("aimd", CcConfig(), beta=1.5)


def test_cc_config_controller_selection():
    from repro.core.sender_cc import SenderController
    from repro.simulator.engine import Simulator

    cc = CcConfig(controller="aimd", controller_params=(("beta", 0.8),))
    ctl = SenderController(Simulator(), cc)
    assert ctl.backend.name == "aimd"
    assert ctl.backend.window.beta == 0.8
    assert ctl.window is ctl.backend.window
