"""EXP-F1 — byte-level round-trips of the Fig. 1 packet formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reports import ReceiverReport
from repro.pgm import constants as C
from repro.pgm.packets import Ack, Nak, Ncf, OData, RData, Spm, decode

rx_ids = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=16,
)
seqs = st.integers(min_value=0, max_value=2**32 - 1)
tsis = st.integers(min_value=0, max_value=2**64 - 1)
losses = st.integers(min_value=0, max_value=65535)


def reports():
    return st.builds(
        ReceiverReport,
        rx_id=rx_ids,
        rxw_lead=seqs,
        rx_loss=losses,
        timestamp_echo=st.one_of(
            st.none(), st.floats(min_value=0, max_value=1e6, allow_nan=False)
        ),
    )


class TestRoundTrips:
    def test_spm(self):
        spm = Spm(1, 5, 10, 20, path="R7")
        assert decode(spm.pack()) == spm

    def test_odata_with_acker_option(self):
        od = OData(9, 100, 50, 1400, timestamp=1.5, acker_id="r3",
                   elicit_nak=False, payload=b"x" * 10)
        back = decode(od.pack())
        assert back.acker_id == "r3"
        assert back.seq == 100
        assert back.payload == b"x" * 10

    def test_odata_elicit_mark(self):
        """§3.6: the first packet is marked to elicit a fake NAK."""
        od = OData(9, 0, 0, 1400, elicit_nak=True)
        assert decode(od.pack()).elicit_nak

    def test_odata_without_option(self):
        od = OData(9, 1, 0, 1400)
        back = decode(od.pack())
        assert back.acker_id is None
        assert not back.elicit_nak

    def test_rdata(self):
        rd = RData(9, 42, 10, 1400, timestamp=2.0, payload=b"abc")
        back = decode(rd.pack())
        assert (back.seq, back.payload) == (42, b"abc")

    def test_nak_with_report(self):
        """Fig. 1: NAKs carry rx_id, rxw_lead, rx_loss."""
        rep = ReceiverReport("receiver-1", 500, 1234)
        nak = Nak(9, 499, rep)
        back = decode(nak.pack())
        assert back.report == rep
        assert back.seq == 499
        assert not back.fake

    def test_fake_nak_flag(self):
        nak = Nak(9, 5, ReceiverReport("r", 5, 0), fake=True)
        assert decode(nak.pack()).fake

    def test_nak_list(self):
        nak = Nak(9, 5, ReceiverReport("r", 9, 0), extra_seqs=(7, 8))
        back = decode(nak.pack())
        assert back.all_seqs() == (5, 7, 8)

    def test_ncf(self):
        assert decode(Ncf(9, 123).pack()) == Ncf(9, 123)

    def test_ack_fields(self):
        """Fig. 1: ACKs add ack_seq and the 32-bit bitmask."""
        rep = ReceiverReport("r", 100, 99)
        ack = Ack(9, 100, 0xDEADBEEF, rep)
        back = decode(ack.pack())
        assert back.ack_seq == 100
        assert back.bitmask == 0xDEADBEEF
        assert back.report == rep

    def test_bad_magic_rejected(self):
        data = bytearray(Ncf(9, 1).pack())
        data[0] = 0xFF
        with pytest.raises(ValueError):
            decode(bytes(data))

    def test_unknown_type_rejected(self):
        data = bytearray(Ncf(9, 1).pack())
        data[1] = 0x3F
        with pytest.raises(ValueError):
            decode(bytes(data))


class TestWireSizes:
    def test_header_size_constant(self):
        assert len(Ncf(9, 1).pack()) == C.HEADER_SIZE + 4

    def test_odata_wire_size_matches_formula(self):
        """The fast-path size formula must agree with the real codec."""
        od = OData(9, 100, 50, 1400, acker_id="r3", payload=b"")
        # wire_size counts payload_len even when bytes are elided
        assert od.wire_size() == len(od.pack()) + 1400 + C.IP_UDP_OVERHEAD

    def test_odata_wire_size_with_real_payload(self):
        payload = b"z" * 1400
        od = OData(9, 100, 50, 1400, acker_id="r3", payload=payload)
        assert od.wire_size() == len(od.pack()) + C.IP_UDP_OVERHEAD

    def test_data_packet_size_near_tcp(self):
        """§4: 1400-byte pgmcc payloads give packets approximately the
        size of 1460-byte-payload TCP segments (1500 bytes)."""
        od = OData(9, 0, 0, 1400, acker_id="r0")
        assert abs(od.wire_size() - 1500) < 40

    def test_rdata_wire_size(self):
        rd = RData(9, 0, 0, 1400)
        assert rd.wire_size() == len(rd.pack()) + 1400 + C.IP_UDP_OVERHEAD


class TestPropertyRoundTrips:
    @given(tsis, seqs, seqs, seqs, rx_ids)
    @settings(max_examples=150)
    def test_spm_round_trip(self, tsi, a, b, c, path):
        spm = Spm(tsi, a, b, c, path)
        assert decode(spm.pack()) == spm

    @given(tsis, seqs, seqs, st.integers(min_value=0, max_value=9000),
           st.one_of(st.none(), rx_ids), st.booleans(),
           st.binary(max_size=64))
    @settings(max_examples=150)
    def test_odata_round_trip(self, tsi, seq, trail, plen, acker, elicit, payload):
        od = OData(tsi, seq, trail, plen, timestamp=1.25, acker_id=acker,
                   elicit_nak=elicit, payload=payload)
        back = decode(od.pack())
        assert back.seq == seq and back.trail == trail
        assert back.acker_id == acker
        assert back.elicit_nak == elicit
        assert back.payload == payload[:plen] if plen < len(payload) else back.payload == payload

    @given(tsis, seqs, reports(), st.booleans(),
           st.lists(seqs, max_size=5).map(tuple))
    @settings(max_examples=150)
    def test_nak_round_trip(self, tsi, seq, report, fake, extra):
        nak = Nak(tsi, seq, report, fake, extra)
        back = decode(nak.pack())
        assert back.seq == seq
        assert back.fake == fake
        assert back.extra_seqs == extra
        assert back.report.rx_id == report.rx_id
        assert back.report.rxw_lead == report.rxw_lead
        assert back.report.rx_loss == report.rx_loss
        if report.timestamp_echo is None:
            assert back.report.timestamp_echo is None
        else:
            assert back.report.timestamp_echo == pytest.approx(report.timestamp_echo)

    @given(tsis, seqs, st.integers(min_value=0, max_value=2**32 - 1), reports())
    @settings(max_examples=150)
    def test_ack_round_trip(self, tsi, ack_seq, bitmap, report):
        ack = Ack(tsi, ack_seq, bitmap, report)
        back = decode(ack.pack())
        assert back.ack_seq == ack_seq
        assert back.bitmask == bitmap
        assert back.report.rx_id == report.rx_id
