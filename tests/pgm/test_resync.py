"""Receiver resync-after-heal: the cc window jump, the receiver-level
rejoin (ODATA- and SPM-triggered), and the network element's repair
soft-state refresh — the pieces that stop a healed partition from
turning into a NAK storm or a permanently deaf repair path."""

import pytest

from repro.core.receiver_cc import ReceiverController
from repro.core.reports import ReceiverReport
from repro.pgm import create_session
from repro.pgm.constants import NE_REPAIR_LINGER
from repro.pgm.network_element import PgmNetworkElement
from repro.pgm.packets import Nak, RData, Spm
from repro.pgm.session import SessionConfig
from repro.simulator import NON_LOSSY, FaultPlan, Partition, dumbbell
from repro.simulator.packet import Packet


class TestCcResync:
    def _primed(self):
        cc = ReceiverController("r0")
        for seq in range(5):
            cc.on_data(seq, now=float(seq))
        assert cc.rxw_lead == 4
        return cc

    def test_jump_counts_skipped_span(self):
        cc = self._primed()
        skipped = cc.resync(104)
        assert cc.rxw_lead == 104
        assert skipped == 104 - 4 - 1

    def test_already_received_packets_are_not_counted_lost(self):
        cc = self._primed()
        # two packets inside the skipped span already arrived
        cc.on_data(50, now=6.0)
        cc.on_data(51, now=6.0)
        # ...which opened gaps and moved the lead to 51; jump from there
        skipped = cc.resync(104)
        assert skipped == 104 - 51 - 1

    def test_backward_or_equal_jump_is_a_noop(self):
        cc = self._primed()
        assert cc.resync(4) == 0
        assert cc.resync(2) == 0
        assert cc.rxw_lead == 4

    def test_loss_filter_untouched_by_resync(self):
        cc = self._primed()
        samples_before = cc.loss_filter.samples
        state_before = cc.loss_filter._y
        cc.resync(500)
        assert cc.loss_filter.samples == samples_before
        assert cc.loss_filter._y == state_before

    def test_delivery_resumes_cleanly_after_jump(self):
        cc = self._primed()
        cc.resync(104)
        outcome = cc.on_data(105, now=10.0)
        assert not outcome.new_gaps  # no loss signal across the jump
        assert cc.rxw_lead == 105


class TestReceiverResync:
    def test_partition_beyond_repair_horizon_triggers_resync(self):
        """When an outage outlives the sender's transmit window the
        receiver rejoins at the live edge instead of NAK-storming for
        data the sender can no longer supply."""
        net = dumbbell(1, 1, NON_LOSSY, seed=21)
        faults = FaultPlan((
            Partition(("h0", "R0"), ("R1", "r0"), at=3.0, duration=6.0),
        ))
        session = create_session(
            net, "h0", ["r0"],
            config=SessionConfig(liveness=True, faults=faults))
        # Shrink the repair horizon so the outage outlives it: the
        # degraded-mode probes sent during the blackout push the trail
        # past everything the receiver is missing.
        session.sender._tx_window_capacity = 8
        net.run(until=30.0)
        rx = session.receivers[0]
        assert rx.resyncs >= 1
        assert rx.unrecoverable_data_loss > 0
        assert rx.delivered > 0
        # post-heal delivery actually resumed: lead tracked the sender
        assert rx.cc.rxw_lead > 0
        summary = session.summary()
        assert summary["receivers"]["r0"]["resyncs"] == rx.resyncs
        assert summary["recovery"]["resyncs"] == rx.resyncs
        session.close()

    def test_resync_clears_pending_nak_state(self):
        net = dumbbell(1, 1, NON_LOSSY, seed=21)
        session = create_session(net, "h0", ["r0"])
        net.run(until=2.0)
        rx = session.receivers[0]
        # fabricate open NAK machinery, then resync over it
        rx._open_nak_state(rx.cc.rxw_lead + 5)
        rx._open_nak_state(rx.cc.rxw_lead + 6)
        assert rx._nak_states
        rx._resync(rx.cc.rxw_lead + 500)
        assert not rx._nak_states
        assert rx.resyncs == 1

    def test_spm_trail_jump_triggers_resync(self):
        net = dumbbell(1, 1, NON_LOSSY, seed=21)
        session = create_session(net, "h0", ["r0"])
        net.run(until=2.0)
        rx = session.receivers[0]
        lead = rx.cc.rxw_lead
        assert lead >= 0
        spm = Spm(session.sender.tsi, 999, trail=lead + 100, lead=lead + 150)
        rx._handle_spm(spm)
        assert rx.resyncs == 1
        assert rx.cc.rxw_lead == lead + 150

    def test_spm_within_window_does_not_resync(self):
        net = dumbbell(1, 1, NON_LOSSY, seed=21)
        session = create_session(net, "h0", ["r0"])
        net.run(until=2.0)
        rx = session.receivers[0]
        lead = rx.cc.rxw_lead
        spm = Spm(session.sender.tsi, 999, trail=max(lead - 5, 0),
                  lead=lead)
        rx._handle_spm(spm)
        assert rx.resyncs == 0


class _FakeSim:
    def __init__(self):
        self.now = 0.0


class _FakeRouter:
    """Just enough Router surface for PgmNetworkElement."""

    name = "NE"

    def __init__(self):
        self.sim = _FakeSim()
        self.multicast_routes = {}
        self.forwarded = []
        self.sent = []

    def set_interceptor(self, interceptor):
        self.interceptor = interceptor

    def forward_unicast(self, packet):
        self.forwarded.append(packet)

    def send_via(self, branch, packet):
        self.sent.append((branch, packet))


def _nak(seq, rx="r0", lead=100):
    report = ReceiverReport(rx_id=rx, rxw_lead=lead, rx_loss=0)
    return Nak(tsi=7, seq=seq, report=report)


class TestNeSoftStateRefresh:
    def _ne(self, **kwargs):
        router = _FakeRouter()
        return router, PgmNetworkElement(router, **kwargs)

    def test_renak_after_linger_refreshes_state(self):
        router, ne = self._ne()
        nak = _nak(42)
        pkt = Packet("r0", "R0", 64, nak, "pgm")
        assert ne._handle_nak(pkt, nak, "r0")
        assert ne.naks_forwarded == 1
        # the repair passes through and flips the entry to repaired
        rdata = RData(tsi=7, seq=42, trail=0, payload_len=64)
        ne._handle_rdata(Packet("h0", "mc:g", 64, rdata, "pgm"), rdata, "up")
        # a straggler NAK inside the linger window is eliminated
        router.sim.now = NE_REPAIR_LINGER / 2
        assert ne._handle_nak(pkt, nak, "r0")
        assert ne.naks_suppressed == 1
        assert ne.naks_refreshed == 0
        # ...but once the linger passes, a re-NAK means the repair died
        # downstream: retire the stale state and forward it fresh
        router.sim.now = NE_REPAIR_LINGER + 0.01
        assert ne._handle_nak(pkt, nak, "r0")
        assert ne.naks_refreshed == 1
        assert ne.naks_forwarded == 2

    def test_unrepaired_state_is_not_refreshed(self):
        router, ne = self._ne()
        nak = _nak(7)
        pkt = Packet("r0", "R0", 64, nak, "pgm")
        ne._handle_nak(pkt, nak, "r0")
        # no repair passed; re-NAKs keep being suppressed until the
        # full state lifetime expires, linger or not
        router.sim.now = NE_REPAIR_LINGER * 2
        ne._handle_nak(pkt, nak, "r0")
        assert ne.naks_refreshed == 0
        assert ne.naks_suppressed == 1

    def test_refresh_counter_exported_in_metrics(self):
        _, ne = self._ne()
        assert ne.metrics()["naks_refreshed"] == 0
