"""Targeted tests for less-travelled paths: NE garbage collection,
receiver timestamp echo on the wire, disabled-CC ACK handling."""

from repro.core.reports import ReceiverReport
from repro.core.sender_cc import CcConfig, SenderController
from repro.pgm import constants as C
from repro.pgm.network_element import PgmNetworkElement, _NakEntry
from repro.pgm.packets import Ack, Nak, OData
from repro.pgm.receiver import PgmReceiver
from repro.simulator import ACCESS, Network, Packet
from repro.simulator.engine import Simulator

from .conftest import Collector


class TestNeGarbageCollection:
    def test_expired_state_pruned(self):
        net = Network(seed=1)
        router = net.add_router("R")
        net.add_host("x")
        net.duplex_link("R", "x", ACCESS)
        net.build_routes()
        ne = PgmNetworkElement(router)
        # fabricate a large population of expired entries
        for i in range(5000):
            ne._nak_state[(1, i)] = _NakEntry(created=-10.0)
            ne._fake_seen[(1, i)] = -10.0
        ne._maybe_gc(now=net.sim.now)
        assert len(ne._nak_state) == 0
        assert len(ne._fake_seen) == 0

    def test_fresh_state_survives_gc(self):
        net = Network(seed=2)
        router = net.add_router("R")
        ne = PgmNetworkElement(router)
        for i in range(5000):
            ne._nak_state[(1, i)] = _NakEntry(created=net.sim.now)
        ne._maybe_gc(now=net.sim.now)
        assert len(ne._nak_state) == 5000


class TestTimestampEchoOnWire:
    def test_ack_report_carries_corrected_echo(self, wire):
        collector = Collector()
        wire.host("src").register_agent(C.PROTO, collector)
        rx = PgmReceiver(wire.host("rx"), "mc:t", 1, "src",
                         echo_timestamps=True)
        odata = OData(1, 0, 0, 1400, timestamp=0.0, acker_id="rx")
        wire.host("src").send(Packet("src", "mc:t", 1500, odata, C.PROTO))
        wire.run(until=1.0)
        acks = collector.payloads(Ack)
        assert acks
        echo = acks[0].report.timestamp_echo
        assert echo is not None
        # echoed timestamp (0.0) + ~zero hold: close to the send time
        assert echo < 0.1

    def test_nak_report_echo(self, wire):
        collector = Collector()
        wire.host("src").register_agent(C.PROTO, collector)
        rx = PgmReceiver(wire.host("rx"), "mc:t", 1, "src",
                         echo_timestamps=True, nak_bo_ivl=0.01)
        for seq in (0, 2):
            wire.host("src").send(
                Packet("src", "mc:t", 1500,
                       OData(1, seq, 0, 1400, timestamp=wire.sim.now), C.PROTO)
            )
        wire.run(until=1.0)
        naks = collector.payloads(Nak)
        assert naks and naks[0].report.timestamp_echo is not None


class TestDisabledCcAcks:
    def test_acks_are_inert_when_disabled(self):
        sim = Simulator()
        ctl = SenderController(sim, CcConfig(enabled=False))
        ctl.register_data(0)
        digest = ctl.on_ack(0, 1, ReceiverReport("r", 0, 0))
        assert digest.newly_acked == []
        assert digest.losses_declared == []
        assert not digest.reacted
        assert ctl.acks_seen == 1
