"""Tests for PGM network elements (§3.1, §3.7)."""

import pytest

from repro.core.reports import ReceiverReport
from repro.pgm import constants as C
from repro.pgm.network_element import PgmNetworkElement
from repro.pgm.packets import Nak, Ncf, OData, RData, Spm
from repro.simulator import Packet

from .conftest import Collector


def install_ne(net, router="R0", **kw):
    return PgmNetworkElement(net.router(router), **kw)


def odata(seq, tsi=1):
    return OData(tsi, seq, 0, 1400)


def nak(seq, rx="rx0", loss=0, fake=False, tsi=1):
    return Nak(tsi, seq, ReceiverReport(rx, max(seq, 0), loss), fake=fake)


def src_collector(net):
    collector = Collector()
    net.host("src").register_agent(C.PROTO, collector)
    return collector


def rx_collectors(net, names=("rx0", "rx1", "rx2")):
    out = {}
    for name in names:
        out[name] = Collector()
        net.host(name).register_agent(C.PROTO, out[name])
    return out


def learn_group(net, ne):
    """Let the NE learn the tsi->group mapping from one data packet."""
    net.host("src").send(Packet("src", "mc:t", 1500, odata(0), C.PROTO))
    net.run(until=0.1)


class TestNakSuppression:
    def test_first_nak_forwarded(self, fanout):
        ne = install_ne(fanout)
        collector = src_collector(fanout)
        rx_collectors(fanout)
        learn_group(fanout, ne)
        fanout.host("rx0").send(Packet("rx0", "src", 100, nak(5), C.PROTO))
        fanout.run(until=1.0)
        assert len(collector.payloads(Nak)) == 1
        assert ne.naks_forwarded == 1

    def test_duplicate_nak_suppressed_with_ncf(self, fanout):
        ne = install_ne(fanout)
        collector = src_collector(fanout)
        rxs = rx_collectors(fanout)
        learn_group(fanout, ne)
        fanout.host("rx0").send(Packet("rx0", "src", 100, nak(5), C.PROTO))
        fanout.run(until=0.05)
        fanout.host("rx1").send(Packet("rx1", "src", 100, nak(5, rx="rx1"), C.PROTO))
        fanout.run(until=1.0)
        assert len(collector.payloads(Nak)) == 1
        assert ne.naks_suppressed == 1
        # the suppressed branch got an NCF
        assert any(isinstance(m, Ncf) and m.seq == 5 for m in rxs["rx1"].payloads())

    def test_suppression_disabled_forwards_all(self, fanout):
        ne = install_ne(fanout, suppress=False)
        collector = src_collector(fanout)
        rx_collectors(fanout)
        learn_group(fanout, ne)
        for rx in ("rx0", "rx1"):
            fanout.host(rx).send(Packet(rx, "src", 100, nak(5, rx=rx), C.PROTO))
        fanout.run(until=1.0)
        assert len(collector.payloads(Nak)) == 2

    def test_state_expires(self, fanout):
        ne = install_ne(fanout, state_lifetime=0.2)
        collector = src_collector(fanout)
        rx_collectors(fanout)
        learn_group(fanout, ne)
        fanout.host("rx0").send(Packet("rx0", "src", 100, nak(5), C.PROTO))
        fanout.run(until=0.5)  # past the lifetime
        fanout.host("rx1").send(Packet("rx1", "src", 100, nak(5, rx="rx1"), C.PROTO))
        fanout.run(until=1.0)
        assert len(collector.payloads(Nak)) == 2

    def test_different_seqs_not_suppressed(self, fanout):
        ne = install_ne(fanout)
        collector = src_collector(fanout)
        rx_collectors(fanout)
        learn_group(fanout, ne)
        fanout.host("rx0").send(Packet("rx0", "src", 100, nak(5), C.PROTO))
        fanout.host("rx1").send(Packet("rx1", "src", 100, nak(6, rx="rx1"), C.PROTO))
        fanout.run(until=1.0)
        assert len(collector.payloads(Nak)) == 2


class TestRxLossAwareRule:
    def test_worse_report_forwarded(self, fanout):
        """§3.7: a NAK with higher rx_loss than the one already
        forwarded goes through anyway."""
        ne = install_ne(fanout, rx_loss_aware=True)
        collector = src_collector(fanout)
        rx_collectors(fanout)
        learn_group(fanout, ne)
        fanout.host("rx0").send(Packet("rx0", "src", 100, nak(5, loss=100), C.PROTO))
        fanout.run(until=0.05)
        fanout.host("rx1").send(
            Packet("rx1", "src", 100, nak(5, rx="rx1", loss=900), C.PROTO)
        )
        fanout.run(until=1.0)
        assert len(collector.payloads(Nak)) == 2
        assert ne.naks_forwarded_rx_loss == 1

    def test_equal_or_better_report_still_suppressed(self, fanout):
        ne = install_ne(fanout, rx_loss_aware=True)
        collector = src_collector(fanout)
        rx_collectors(fanout)
        learn_group(fanout, ne)
        fanout.host("rx0").send(Packet("rx0", "src", 100, nak(5, loss=500), C.PROTO))
        fanout.run(until=0.05)
        fanout.host("rx1").send(
            Packet("rx1", "src", 100, nak(5, rx="rx1", loss=400), C.PROTO)
        )
        fanout.run(until=1.0)
        assert len(collector.payloads(Nak)) == 1
        assert ne.naks_suppressed == 1

    def test_forwarded_threshold_ratchets(self, fanout):
        ne = install_ne(fanout, rx_loss_aware=True)
        collector = src_collector(fanout)
        rx_collectors(fanout)
        learn_group(fanout, ne)
        for loss, rx in ((100, "rx0"), (500, "rx1"), (400, "rx2")):
            fanout.host(rx).send(Packet(rx, "src", 100, nak(5, rx=rx, loss=loss), C.PROTO))
            fanout.run(until=fanout.sim.now + 0.05)
        # 100 forwarded (first), 500 forwarded (worse), 400 suppressed
        assert len(collector.payloads(Nak)) == 2


class TestSelectiveRepair:
    def test_rdata_only_to_naked_branches(self, fanout):
        ne = install_ne(fanout)
        src_collector(fanout)
        rxs = rx_collectors(fanout)
        learn_group(fanout, ne)
        fanout.host("rx1").send(Packet("rx1", "src", 100, nak(0, rx="rx1"), C.PROTO))
        fanout.run(until=0.2)
        fanout.host("src").send(Packet("src", "mc:t", 1500, RData(1, 0, 0, 1400), C.PROTO))
        fanout.run(until=1.0)
        assert any(isinstance(m, RData) for m in rxs["rx1"].payloads())
        assert not any(isinstance(m, RData) for m in rxs["rx0"].payloads())
        assert ne.rdata_selective == 1

    def test_rdata_without_state_floods(self, fanout):
        ne = install_ne(fanout)
        rxs = rx_collectors(fanout)
        learn_group(fanout, ne)
        fanout.host("src").send(Packet("src", "mc:t", 1500, RData(1, 7, 0, 1400), C.PROTO))
        fanout.run(until=1.0)
        assert all(
            any(isinstance(m, RData) for m in rxs[name].payloads())
            for name in rxs
        )
        assert ne.rdata_flooded == 1

    def test_selective_repair_disabled_floods(self, fanout):
        ne = install_ne(fanout, selective_repair=False)
        rxs = rx_collectors(fanout)
        learn_group(fanout, ne)
        fanout.host("rx1").send(Packet("rx1", "src", 100, nak(0, rx="rx1"), C.PROTO))
        fanout.run(until=0.2)
        fanout.host("src").send(Packet("src", "mc:t", 1500, RData(1, 0, 0, 1400), C.PROTO))
        fanout.run(until=1.0)
        assert any(isinstance(m, RData) for m in rxs["rx0"].payloads())

    def test_straggler_nak_after_repair_suppressed(self, fanout):
        """PGM NAK elimination: the entry outlives the repair so late
        NAKs are still suppressed until it expires."""
        ne = install_ne(fanout)
        collector = src_collector(fanout)
        rx_collectors(fanout)
        learn_group(fanout, ne)
        fanout.host("rx0").send(Packet("rx0", "src", 100, nak(0), C.PROTO))
        fanout.run(until=0.1)
        fanout.host("src").send(Packet("src", "mc:t", 1500, RData(1, 0, 0, 1400), C.PROTO))
        fanout.run(until=0.2)
        fanout.host("rx2").send(Packet("rx2", "src", 100, nak(0, rx="rx2"), C.PROTO))
        fanout.run(until=1.0)
        assert len(collector.payloads(Nak)) == 1
        assert ne.naks_suppressed == 1


class TestFakeNaks:
    def test_fake_naks_deduplicated(self, fanout):
        ne = install_ne(fanout)
        collector = src_collector(fanout)
        rx_collectors(fanout)
        learn_group(fanout, ne)
        for rx in ("rx0", "rx1", "rx2"):
            fanout.host(rx).send(
                Packet(rx, "src", 100, nak(0, rx=rx, fake=True), C.PROTO)
            )
        fanout.run(until=1.0)
        assert len(collector.payloads(Nak)) == 1

    def test_fake_state_does_not_block_real_nak(self, fanout):
        """A fake NAK for a *received* packet must not suppress a real
        NAK for the same sequence from another receiver."""
        ne = install_ne(fanout)
        collector = src_collector(fanout)
        rx_collectors(fanout)
        learn_group(fanout, ne)
        fanout.host("rx0").send(Packet("rx0", "src", 100, nak(0, fake=True), C.PROTO))
        fanout.run(until=0.05)
        fanout.host("rx1").send(Packet("rx1", "src", 100, nak(0, rx="rx1"), C.PROTO))
        fanout.run(until=1.0)
        naks = collector.payloads(Nak)
        assert len(naks) == 2
        assert {n.fake for n in naks} == {True, False}


class TestSpmHandling:
    def test_spm_rewritten_and_upstream_learned(self, fanout):
        ne = install_ne(fanout)
        rxs = rx_collectors(fanout)
        fanout.host("src").send(Packet("src", "mc:t", 64, Spm(1, 0, 0, 0, path="src"), C.PROTO))
        fanout.run(until=1.0)
        assert ne.upstream[1] == "src"
        spms = [m for m in rxs["rx0"].payloads() if isinstance(m, Spm)]
        assert spms and spms[0].path == "R0"  # rewritten hop-by-hop

    def test_odata_passthrough_learns_group(self, fanout):
        ne = install_ne(fanout)
        rxs = rx_collectors(fanout)
        fanout.host("src").send(Packet("src", "mc:t", 1500, odata(0), C.PROTO))
        fanout.run(until=1.0)
        assert ne.group_of[1] == "mc:t"
        assert all(
            any(isinstance(m, OData) for m in rxs[n].payloads()) for n in rxs
        )
