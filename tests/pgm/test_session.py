"""Tests for session wiring (create_session, add_receiver, NEs)."""

import pytest

from repro.pgm import (
    PgmNetworkElement,
    add_receiver,
    create_session,
    enable_network_elements,
)
from repro.simulator import NON_LOSSY, LinkSpec, dumbbell, star


class TestCreateSession:
    def test_end_to_end_flow(self):
        net = dumbbell(1, 1, NON_LOSSY)
        session = create_session(net, "h0", ["r0"])
        net.run(until=10.0)
        assert session.sender.odata_sent > 50
        assert session.receivers[0].odata_received > 50
        assert session.sender.current_acker == "r0"

    def test_delayed_start(self):
        net = dumbbell(1, 1, NON_LOSSY)
        session = create_session(net, "h0", ["r0"], start_at=5.0)
        net.run(until=4.9)
        assert session.sender.odata_sent == 0
        net.run(until=10.0)
        assert session.sender.odata_sent > 0

    def test_stop_at(self):
        net = dumbbell(1, 1, NON_LOSSY)
        session = create_session(net, "h0", ["r0"], stop_at=5.0)
        net.run(until=20.0)
        last_data = max(session.trace.times("data"))
        assert last_data <= 5.0

    def test_unique_tsi_and_group(self):
        net = dumbbell(2, 2, NON_LOSSY)
        s1 = create_session(net, "h0", ["r0"])
        s2 = create_session(net, "h1", ["r1"])
        assert s1.tsi != s2.tsi
        assert s1.group != s2.group

    def test_throughput_helper(self):
        net = dumbbell(1, 1, NON_LOSSY)
        session = create_session(net, "h0", ["r0"])
        net.run(until=20.0)
        rate = session.throughput_bps(5.0, 20.0)
        assert 300_000 < rate < 520_000  # most of a 500 kbit/s link

    def test_receiver_lookup(self):
        net = dumbbell(1, 2, NON_LOSSY)
        session = create_session(net, "h0", ["r0", "r1"])
        assert session.receiver("r1").rx_id == "r1"
        with pytest.raises(KeyError):
            session.receiver("zzz")

    def test_sessions_share_bottleneck_fairly(self):
        net = dumbbell(2, 2, NON_LOSSY, seed=6)
        s1 = create_session(net, "h0", ["r0"])
        s2 = create_session(net, "h1", ["r1"])
        net.run(until=60.0)
        r1 = s1.throughput_bps(20, 60)
        r2 = s2.throughput_bps(20, 60)
        assert max(r1, r2) / min(r1, r2) < 2.0


class TestAddReceiver:
    def test_mid_session_join_receives_data(self):
        net = dumbbell(1, 2, NON_LOSSY)
        session = create_session(net, "h0", ["r0"])
        add_receiver(net, session, "r1", at=5.0)
        net.run(until=15.0)
        late = session.receiver("r1")
        assert late.odata_received > 0
        assert late.naks_sent == 0 or late.naks_sent < 5  # no history storm
        assert late.cc.loss_filter.losses < 5

    def test_immediate_join(self):
        net = dumbbell(1, 2, NON_LOSSY)
        session = create_session(net, "h0", ["r0"])
        add_receiver(net, session, "r1")
        assert len(session.receivers) == 2

    def test_members_tracked(self):
        net = dumbbell(1, 3, NON_LOSSY)
        session = create_session(net, "h0", ["r0"])
        add_receiver(net, session, "r1", at=1.0)
        add_receiver(net, session, "r2", at=2.0)
        net.run(until=5.0)
        assert session.members == ["r0", "r1", "r2"]


class TestNetworkElements:
    def test_enable_on_all_routers(self):
        net = dumbbell(1, 2, NON_LOSSY)
        elements = enable_network_elements(net)
        assert set(elements) == {"R0", "R1"}
        assert all(isinstance(ne, PgmNetworkElement) for ne in elements.values())

    def test_enable_on_subset(self):
        net = dumbbell(1, 2, NON_LOSSY)
        elements = enable_network_elements(net, ["R1"])
        assert set(elements) == {"R1"}

    def test_session_works_through_nes(self):
        net = dumbbell(1, 3, NON_LOSSY, seed=9)
        enable_network_elements(net)
        session = create_session(net, "h0", ["r0", "r1", "r2"])
        net.run(until=20.0)
        rate = session.throughput_bps(5, 20)
        assert rate > 300_000
        for rx in session.receivers:
            assert rx.odata_received > 100

    def test_nes_reduce_naks_at_source(self):
        """Three co-located receivers: suppression cuts the duplicate
        NAKs the source sees for the same loss events."""
        lossy_bneck = LinkSpec(rate_bps=500_000, delay=0.050,
                               queue_slots=30, loss_rate=0.02)

        def run_one(with_ne):
            net = dumbbell(1, 3, lossy_bneck, seed=12)
            if with_ne:
                enable_network_elements(net)
            session = create_session(net, "h0", ["r0", "r1", "r2"])
            net.run(until=40.0)
            naks = session.sender.naks_received
            session.close()
            return naks

        assert run_one(True) < run_one(False)


class TestUnreliableSession:
    def test_no_rdata_but_data_flows(self):
        spec = LinkSpec(rate_bps=500_000, delay=0.05, queue_slots=30,
                        loss_rate=0.02)
        net = star(1, spec, seed=8)
        session = create_session(net, "src", ["r0"], reliable=False)
        net.run(until=20.0)
        assert session.sender.odata_sent > 100
        assert session.sender.rdata_sent == 0
        assert session.sender.naks_received > 0  # reports still flow
