"""End-to-end controller selection through SessionConfig/create_session."""

from __future__ import annotations

import pytest

from repro.core.controller import controller_names
from repro.core.sender_cc import CcConfig
from repro.pgm.session import SessionConfig, create_session
from repro.simulator.topology import LinkSpec, dumbbell

LOSSY = LinkSpec(rate_bps=2_000_000, delay=0.230, queue_bytes=30_000,
                 loss_rate=0.03)


def run_session(name: str, seed: int = 7, until: float = 12.0, **cfg_kwargs):
    net = dumbbell(1, 3, LOSSY, seed=seed)
    session = create_session(
        net, "h0", ["r0", "r1", "r2"],
        config=SessionConfig(controller=name, stop_at=until - 2.0,
                             check_invariants=True, guard=True, **cfg_kwargs),
    )
    net.sim.run(until=until)
    summary = session.summary()
    session.close()
    return session, summary


@pytest.mark.parametrize("name", controller_names())
def test_every_backend_moves_data_under_loss(name):
    session, summary = run_session(name)
    assert summary["controller"] == name
    assert summary["odata_sent"] > 20
    # every receiver actually got data
    for rx_stats in summary["receivers"].values():
        assert rx_stats["delivered"] > 0
    # invariants held for the whole run
    assert session.invariants is not None and session.invariants.ok


@pytest.mark.parametrize("name", controller_names())
def test_summary_carries_controller_state(name):
    _, summary = run_session(name, until=6.0)
    state = summary["controller_state"]
    assert state["schema"] == "pgmcc.controller-state/v1"
    assert state["name"] == name


def test_controller_params_flow_through_config():
    session, summary = run_session("aimd", controller_params={"beta": 0.85})
    assert session.sender.controller.backend.window.beta == 0.85
    assert summary["controller"] == "aimd"


def test_controller_in_cc_config_directly():
    net = dumbbell(1, 2, LOSSY, seed=11)
    session = create_session(
        net, "h0", ["r0", "r1"],
        config=SessionConfig(cc=CcConfig(controller="jain"), stop_at=4.0),
    )
    net.sim.run(until=5.0)
    assert session.sender.controller.backend.name == "jain"
    session.close()


def test_session_config_controller_overrides_cc():
    net = dumbbell(1, 2, LOSSY, seed=12)
    session = create_session(
        net, "h0", ["r0", "r1"],
        config=SessionConfig(cc=CcConfig(controller="jain"),
                             controller="tfrc", stop_at=4.0),
    )
    assert session.sender.controller.backend.name == "tfrc"
    session.close()


def test_unknown_controller_raises():
    net = dumbbell(1, 2, LOSSY, seed=13)
    with pytest.raises(KeyError, match="unknown controller"):
        create_session(net, "h0", ["r0", "r1"],
                       config=SessionConfig(controller="bogus"))


def test_default_session_still_pgmcc():
    net = dumbbell(1, 2, LOSSY, seed=14)
    session = create_session(net, "h0", ["r0", "r1"],
                             config=SessionConfig(stop_at=4.0))
    assert session.sender.controller.backend.name == "pgmcc"
    summary_keys = set(session.summary())
    assert {"controller", "controller_state"} <= summary_keys
    session.close()


@pytest.mark.parametrize("name", controller_names())
def test_telemetry_binds_for_every_backend(name):
    """The metric surface (gauges + probe series over window.w/tokens)
    must work for rate backends' synthesized views too."""
    session, _ = run_session(name, until=8.0, telemetry=True)
    export = session.metrics.export()
    assert export["meta"]["controller"] == name
    gauges = export["gauges"]
    assert gauges["cc.window_w"] >= 1.0
    assert gauges["cc.tokens"] >= 0.0
    series = export["series"]
    assert series["cc.window"]["count"] > 0
    assert series["cc.window"]["points"]
