"""Tests for the PGM receiver: ACK duty, NAK state machine, delivery."""

import pytest

from repro.core.reports import ReceiverReport
from repro.pgm import constants as C
from repro.pgm.packets import Ack, Nak, Ncf, OData, RData
from repro.pgm.receiver import PgmReceiver
from repro.simulator import Packet

from .conftest import Collector


def make_receiver(net, host="rx", **kw):
    collector = Collector()
    net.host("src").register_agent(C.PROTO, collector)
    rx = PgmReceiver(net.host(host), "mc:t", tsi=1, source_addr="src", **kw)
    return rx, collector


def odata(seq, acker=None, elicit=False, tsi=1):
    return OData(tsi, seq, 0, 1400, timestamp=0.0, acker_id=acker, elicit_nak=elicit)


def send_data(net, msg):
    net.host("src").send(Packet("src", "mc:t", 1500, msg, C.PROTO))


class TestAckDuty:
    def test_acks_when_named_acker(self, wire):
        rx, collector = make_receiver(wire)
        send_data(wire, odata(0, acker="rx"))
        wire.run(until=1.0)
        acks = collector.payloads(Ack)
        assert len(acks) == 1
        assert acks[0].ack_seq == 0
        assert acks[0].bitmask & 1

    def test_no_ack_when_other_is_acker(self, wire):
        rx, collector = make_receiver(wire)
        send_data(wire, odata(0, acker="somebody-else"))
        wire.run(until=1.0)
        assert collector.payloads(Ack) == []

    def test_no_ack_for_rdata(self, wire):
        """§3.3: ACKs for each data packet, but not retransmissions."""
        rx, collector = make_receiver(wire)
        send_data(wire, odata(0, acker="rx"))
        send_data(wire, RData(1, 1, 0, 1400))
        wire.run(until=1.0)
        assert len(collector.payloads(Ack)) == 1

    def test_ack_carries_report(self, wire):
        rx, collector = make_receiver(wire)
        for s in (0, 2):  # loss of 1
            send_data(wire, odata(s, acker="rx"))
        wire.run(until=1.0)
        report = collector.payloads(Ack)[-1].report
        assert report.rx_id == "rx"
        assert report.rxw_lead == 2
        assert report.rx_loss > 0

    def test_ack_bitmap_has_hole_for_loss(self, wire):
        rx, collector = make_receiver(wire)
        for s in (0, 1, 3):
            send_data(wire, odata(s, acker="rx"))
        wire.run(until=1.0)
        last = collector.payloads(Ack)[-1]
        assert last.ack_seq == 3
        assert not (last.bitmask >> 1) & 1  # seq 2 missing
        assert (last.bitmask >> 2) & 1  # seq 1 present


class TestFakeNak:
    def test_elicit_mark_triggers_fake_nak(self, wire):
        rx, collector = make_receiver(wire)
        send_data(wire, odata(0, elicit=True))
        wire.run(until=1.0)
        naks = collector.payloads(Nak)
        assert len(naks) == 1
        assert naks[0].fake
        assert naks[0].report.rx_id == "rx"
        assert rx.fake_naks_sent == 1

    def test_unmarked_packet_no_fake_nak(self, wire):
        rx, collector = make_receiver(wire)
        send_data(wire, odata(0))
        wire.run(until=1.0)
        assert collector.payloads(Nak) == []


class TestNakMachine:
    def test_gap_produces_nak(self, wire):
        rx, collector = make_receiver(wire)
        send_data(wire, odata(0))
        send_data(wire, odata(2))
        wire.run(until=1.0)
        naks = collector.payloads(Nak)
        assert [n.seq for n in naks] == [1]
        assert not naks[0].fake

    def test_nak_suppressed_by_data_arrival(self, wire):
        """A repair arriving during backoff cancels the pending NAK."""
        import random

        # rng whose first uniform(0, 5) draw comfortably exceeds the
        # repair arrival time below
        rng = next(
            random.Random(s) for s in range(100)
            if random.Random(s).uniform(0, 5) > 1.0
        )
        rx, _ = make_receiver(wire, nak_bo_ivl=5.0, rng=rng)
        send_data(wire, odata(0))
        send_data(wire, odata(2))
        wire.run(until=0.5)
        send_data(wire, RData(1, 1, 0, 1400))
        wire.run(until=10.0)
        assert rx.naks_sent == 0

    def test_ncf_confirms_then_rdata_timeout_renaks(self, wire):
        rx, collector = make_receiver(
            wire, nak_bo_ivl=0.01, nak_rdata_ivl=0.5, nak_rpt_ivl=0.5
        )
        send_data(wire, odata(0))
        send_data(wire, odata(2))
        wire.run(until=0.2)
        assert rx.naks_sent == 1
        # confirm, but never repair
        wire.host("src").send(Packet("src", "mc:t", 64, Ncf(1, 1), C.PROTO))
        wire.run(until=0.4)
        assert rx.naks_suppressed_by_ncf == 1
        wire.run(until=2.0)
        assert rx.naks_sent >= 2  # re-NAK after rdata wait expired

    def test_retry_without_ncf(self, wire):
        rx, collector = make_receiver(wire, nak_bo_ivl=0.01, nak_rpt_ivl=0.2)
        send_data(wire, odata(0))
        send_data(wire, odata(2))
        wire.run(until=1.5)
        assert rx.naks_sent >= 3

    def test_gives_up_after_max_retries(self, wire):
        rx, _ = make_receiver(
            wire, nak_bo_ivl=0.01, nak_rpt_ivl=0.05, nak_max_retries=3
        )
        send_data(wire, odata(0))
        send_data(wire, odata(2))
        wire.run(until=5.0)
        assert rx.naks_sent == 3
        assert rx.repairs_abandoned == 1

    def test_unreliable_mode_single_report_nak(self, wire):
        """§3.9: report-only NAKs, no retry loop."""
        rx, _ = make_receiver(wire, reliable=False, nak_bo_ivl=0.01)
        send_data(wire, odata(0))
        send_data(wire, odata(2))
        wire.run(until=5.0)
        assert rx.naks_sent == 1


class TestDelivery:
    def test_in_order_delivery(self, wire):
        got = []
        rx, _ = make_receiver(wire, deliver=lambda s, n, p: got.append(s))
        for s in (0, 2, 1, 3):
            send_data(wire, odata(s) if s != 1 else RData(1, 1, 0, 1400))
        wire.run(until=1.0)
        assert got == [0, 1, 2, 3]

    def test_unreliable_delivers_immediately_with_holes(self, wire):
        got = []
        rx, _ = make_receiver(wire, reliable=False,
                              deliver=lambda s, n, p: got.append(s))
        for s in (0, 2, 3):
            send_data(wire, odata(s))
        wire.run(until=1.0)
        assert got == [0, 2, 3]

    def test_abandoned_repair_unblocks_delivery(self, wire):
        got = []
        rx, _ = make_receiver(
            wire, nak_bo_ivl=0.01, nak_rpt_ivl=0.05, nak_max_retries=2,
            deliver=lambda s, n, p: got.append(s),
        )
        send_data(wire, odata(0))
        send_data(wire, odata(2))
        send_data(wire, odata(3))
        wire.run(until=5.0)
        assert got == [0, 2, 3]  # seq 1 skipped after abandonment

    def test_mid_join_anchors_delivery(self, wire):
        got = []
        rx, _ = make_receiver(wire, deliver=lambda s, n, p: got.append(s))
        send_data(wire, odata(500))
        send_data(wire, odata(501))
        wire.run(until=1.0)
        assert got == [500, 501]
        assert rx.naks_sent == 0


class TestDispatch:
    def test_wrong_tsi_ignored(self, wire):
        rx, collector = make_receiver(wire)
        send_data(wire, odata(0, acker="rx", tsi=99))
        wire.run(until=1.0)
        assert rx.odata_received == 0
        assert collector.payloads(Ack) == []

    def test_counters(self, wire):
        rx, _ = make_receiver(wire)
        send_data(wire, odata(0))
        send_data(wire, RData(1, 0, 0, 1400))
        wire.run(until=1.0)
        assert rx.odata_received == 1
        assert rx.rdata_received == 1
