"""Tests for the §3.8/§5 protocol extensions: adaptive ssthresh,
history recovery and NAK-storm pacing."""

import pytest

from repro.core.sender_cc import CcConfig
from repro.core.window import WindowController
from repro.pgm import add_receiver, create_session
from repro.simulator import LinkSpec, NON_LOSSY, dumbbell, star


class TestAdaptiveSsthresh:
    def test_starts_effectively_unlimited(self):
        ctl = WindowController(adaptive_ssthresh=True)
        assert ctl.ssthresh > 1000

    def test_loss_sets_half_window(self):
        ctl = WindowController(adaptive_ssthresh=True)
        ctl.w = 40.0
        ctl.on_loss(1, 100, in_flight=40)
        assert ctl.ssthresh == pytest.approx(20.0)

    def test_survives_restart(self):
        """§3.4: TCP's adaptive threshold persists across stalls."""
        ctl = WindowController(adaptive_ssthresh=True)
        ctl.w = 40.0
        ctl.on_loss(1, 100, in_flight=40)
        ctl.on_restart()
        assert ctl.ssthresh == pytest.approx(20.0)
        assert ctl.w == 1.0

    def test_fixed_mode_unchanged(self):
        ctl = WindowController(ssthresh=6)
        ctl.w = 40.0
        ctl.on_loss(1, 100, in_flight=40)
        assert ctl.ssthresh == 6

    def test_exponential_reopening_after_restart(self):
        ctl = WindowController(adaptive_ssthresh=True)
        ctl.w = 32.0
        ctl.on_loss(1, 100, in_flight=32)  # ssthresh 16
        ctl.on_restart()
        for _ in range(15):
            ctl.on_ack()
        assert ctl.w == pytest.approx(16.0)
        ctl.on_ack()
        assert ctl.w == pytest.approx(16.0 + 1 / 16.0)

    def test_session_runs_with_adaptive_ssthresh(self):
        net = dumbbell(1, 1, NON_LOSSY, seed=31)
        session = create_session(
            net, "h0", ["r0"], cc=CcConfig(adaptive_ssthresh=True)
        )
        net.run(until=20.0)
        assert session.throughput_bps(5, 20) > 300_000


class TestHistoryRecovery:
    def make_session(self, recover, seed=33):
        net = dumbbell(1, 2, NON_LOSSY, seed=seed)
        session = create_session(net, "h0", ["r0"])
        add_receiver(net, session, "r1", at=10.0, recover_history=recover)
        return net, session

    def test_late_joiner_recovers_history(self):
        net, session = self.make_session(recover=True)
        net.run(until=60.0)
        late = session.receiver("r1")
        # recovered repairs well before its join point
        assert late.rdata_received > 50
        assert late._next_deliver > 0 or late.delivered >= 0
        assert late.naks_sent > 10

    def test_default_joiner_requests_nothing(self):
        net, session = self.make_session(recover=False)
        net.run(until=60.0)
        late = session.receiver("r1")
        assert late.rdata_received < 10

    def test_history_limit_caps_request(self):
        net = dumbbell(1, 2, NON_LOSSY, seed=34)
        session = create_session(net, "h0", ["r0"])

        def join():
            from repro.pgm.receiver import PgmReceiver

            session.members.append("r1")
            net.set_group(session.group, "h0", session.members)
            rx = PgmReceiver(
                net.host("r1"), session.group, session.tsi, "h0",
                recover_history=True, history_limit=20,
            )
            session.receivers.append(rx)

        net.sim.schedule_at(20.0, join)
        net.run(until=25.0)
        late = session.receivers[-1]
        assert len(late._nak_states) <= 20


class TestNakStormPacing:
    def test_paced_naks_are_spaced(self):
        """A joiner requesting lots of history must not burst NAKs."""
        net = dumbbell(1, 2, NON_LOSSY, seed=35)
        session = create_session(net, "h0", ["r0"])
        nak_times = []

        def join():
            from repro.pgm.receiver import PgmReceiver

            session.members.append("r1")
            net.set_group(session.group, "h0", session.members)
            rx = PgmReceiver(
                net.host("r1"), session.group, session.tsi, "h0",
                recover_history=True, history_limit=400,
                storm_threshold=16, storm_spacing=0.05,
            )
            original = rx._send_nak

            def tap(seq, fake=False):
                nak_times.append(net.sim.now)
                original(seq, fake)

            rx._send_nak = tap
            session.receivers.append(rx)

        net.sim.schedule_at(15.0, join)
        net.run(until=25.0)
        assert len(nak_times) > 20
        # during the storm, consecutive NAKs respect the spacing floor
        storm = [t for t in nak_times if t < 17.0]
        gaps = [b - a for a, b in zip(storm, storm[1:])]
        assert gaps and min(gaps) >= 0.04

    def test_unpaced_joiner_bursts(self):
        net = dumbbell(1, 2, NON_LOSSY, seed=35)
        session = create_session(net, "h0", ["r0"])
        nak_times = []

        def join():
            from repro.pgm.receiver import PgmReceiver

            session.members.append("r1")
            net.set_group(session.group, "h0", session.members)
            rx = PgmReceiver(
                net.host("r1"), session.group, session.tsi, "h0",
                recover_history=True, history_limit=400,
                storm_threshold=10_000,  # pacing effectively off
            )
            original = rx._send_nak

            def tap(seq, fake=False):
                nak_times.append(net.sim.now)
                original(seq, fake)

            rx._send_nak = tap
            session.receivers.append(rx)

        net.sim.schedule_at(15.0, join)
        net.run(until=25.0)
        storm = [t for t in nak_times if t < 15.2]
        # without pacing the whole backlog is NAKed within the backoff window
        assert len(storm) > 100
