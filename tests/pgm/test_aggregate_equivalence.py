"""Small-N equivalence oracle + promotion-safety properties.

The oracle runs the same group once with full per-receiver engines and
once through the aggregate-tail subsystem and requires them to agree on
acker identity, window-trajectory digest and goodput — across both
schedulers and both packet-pool settings, since hybrid mode must not
perturb the engine-equivalence lockdown.

The hypothesis suite drives arbitrary promote/demote/quarantine/sweep
sequences against a live manager and asserts the invariants the
checker enforces in-sim: exact+tail always partitions the population,
and a quarantined identity is promoted by the sweep and never demoted
back into the anonymous tail while serving quarantine
(quarantined-never-acker needs the full engine to exist).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.scalability import GOODPUT_TOLERANCE, exact_vs_hybrid
from repro.pgm import SessionConfig, create_session
from repro.simulator import dumbbell_subtrees

MATRIX = [("heap", True), ("heap", False), ("calendar", True),
          ("calendar", False)]


@pytest.mark.parametrize("scheduler,pooled", MATRIX,
                         ids=[f"{s}-{'pooled' if p else 'unpooled'}"
                              for s, p in MATRIX])
def test_exact_vs_hybrid_oracle(scheduler, pooled):
    verdict = exact_vs_hybrid(scheduler=scheduler, packet_pool=pooled)
    assert verdict["acker_match"], (
        f"elections diverged: exact={verdict['exact']['acker']} "
        f"hybrid={verdict['hybrid']['acker']}")
    assert verdict["digest_match"], "window trajectories diverged"
    assert verdict["goodput_rel_err"] <= GOODPUT_TOLERANCE
    # Same-subtree members see the same stream: the sparse
    # deterministic drops make the comparison exact, not just close.
    assert verdict["exact"]["odata"] == verdict["hybrid"]["odata"]
    assert verdict["exact"]["switches"] == verdict["hybrid"]["switches"]


# ---------------------------------------------------------------------------
# Promotion/demotion safety properties
# ---------------------------------------------------------------------------

N, SUBTREES = 12, 2

OPS = st.lists(
    st.tuples(st.sampled_from(["promote", "demote", "quarantine", "tick"]),
              st.integers(min_value=0, max_value=N - 1)),
    max_size=24,
)


def _fresh_manager():
    net = dumbbell_subtrees(N, subtrees=SUBTREES, seed=3)
    cfg = SessionConfig(
        aggregate=True, guard=True,
        # demote_after=0: the sweep demotes *every* eligible member
        # immediately, so any member that survives a tick is protected
        # by an explicit rule (pinned / acker / quarantined).
        aggregate_params={"predict_acker": False, "demote_after": 0.0},
    )
    session = create_session(net, "h0", [], config=cfg)
    return net, session


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_promotion_never_breaks_conservation_or_quarantine(ops):
    net, session = _fresh_manager()
    try:
        mgr = session.aggregate
        plan = net.subtree_plan
        guard = session.sender.guard
        for op, idx in ops:
            k = idx % plan.subtrees
            identity = plan.identity(k, idx % plan.sizes[k])
            if op == "promote":
                mgr.promote(identity)
            elif op == "demote":
                mgr.demote(identity)
            elif op == "quarantine":
                guard._ledger(identity).quarantined_until = (
                    net.sim.now + 1000.0)
            else:
                mgr._tick()
            assert mgr.conservation_errors() == []
        # A final sweep must leave every quarantined member exact —
        # the guard's quarantined-never-acker machinery only sees
        # receivers that exist as engines.
        mgr._tick()
        for rx_id in guard.quarantined_ids():
            assert not mgr.is_tail_identity(rx_id)
        # ... and a second sweep (instant-demotion config) must not
        # demote them back into the tail while quarantine is serving.
        mgr._tick()
        for rx_id in guard.quarantined_ids():
            assert not mgr.is_tail_identity(rx_id)
        assert mgr.conservation_errors() == []
    finally:
        session.close()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_sampled_cohort_survives_any_sweep(seed):
    net = dumbbell_subtrees(N, subtrees=SUBTREES, seed=seed)
    session = create_session(
        net, "h0", [],
        config=SessionConfig(
            aggregate=True,
            aggregate_params={"predict_acker": False, "demote_after": 0.0}),
    )
    try:
        mgr = session.aggregate
        pinned = {m.identity for s in mgr.subtrees
                  for m in s.exact.values() if m.pinned}
        assert len(pinned) == SUBTREES  # sample=1 per subtree
        mgr._tick()
        mgr._tick()
        still = {m.identity for s in mgr.subtrees
                 for m in s.exact.values() if m.pinned}
        assert still == pinned
        assert mgr.conservation_errors() == []
    finally:
        session.close()
