"""Tests for the PGM token-bucket rate limiter (§3.1)."""

import pytest

from repro.pgm.rate_limiter import TokenBucket


class TestTokenBucket:
    def test_none_rate_is_unlimited(self):
        bucket = TokenBucket(None)
        assert bucket.try_consume(10**9, now=0.0)
        assert bucket.delay_until_available(10**9, now=0.0) == 0.0

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0)
        with pytest.raises(ValueError):
            TokenBucket(-5)

    def test_burst_up_to_bucket(self):
        bucket = TokenBucket(8000.0, bucket_bytes=3000)
        assert bucket.try_consume(3000, now=0.0)
        assert not bucket.try_consume(1, now=0.0)

    def test_refill_at_rate(self):
        bucket = TokenBucket(8000.0, bucket_bytes=1000)  # 1000 B/s
        bucket.try_consume(1000, now=0.0)
        assert not bucket.try_consume(500, now=0.25)
        assert bucket.try_consume(500, now=0.5)

    def test_delay_until_available(self):
        bucket = TokenBucket(8000.0, bucket_bytes=1000)
        bucket.try_consume(1000, now=0.0)
        assert bucket.delay_until_available(1000, now=0.0) == pytest.approx(1.0)
        assert bucket.delay_until_available(100, now=0.0) == pytest.approx(0.1)

    def test_refill_capped_at_bucket(self):
        bucket = TokenBucket(8000.0, bucket_bytes=1000)
        bucket.try_consume(1000, now=0.0)
        # after a long idle, only bucket_bytes are available
        assert bucket.try_consume(1000, now=100.0)
        assert not bucket.try_consume(1, now=100.0)

    def test_sustained_rate_is_enforced(self):
        """Consuming as fast as allowed over 10 s ≈ rate * 10 bytes."""
        bucket = TokenBucket(80_000.0, bucket_bytes=1500)  # 10 kB/s
        now, sent = 0.0, 0
        while now < 10.0:
            if bucket.try_consume(1000, now):
                sent += 1000
            # a floor on the step avoids float-underflow busy loops
            now += max(bucket.delay_until_available(1000, now), 1e-4)
        assert sent == pytest.approx(100_000, rel=0.05)
