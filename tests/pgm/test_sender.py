"""Tests for the PGM/pgmcc sender."""

import pytest

from repro.core.acktrack import build_bitmap
from repro.core.reports import ReceiverReport
from repro.core.sender_cc import CcConfig
from repro.pgm import constants as C
from repro.pgm.packets import Ack, Nak, Ncf, OData, RData, Spm
from repro.pgm.sender import BulkSource, FiniteSource, PgmSender
from repro.simulator import Packet

from .conftest import Collector


def make_sender(net, **kw):
    collector = Collector()
    net.host("rx").register_agent(C.PROTO, collector)
    sender = PgmSender(net.host("src"), "mc:t", tsi=1, **kw)
    return sender, collector


def nak(seq, rx="rx", lead=0, loss=0, fake=False):
    return Nak(1, seq, ReceiverReport(rx, lead, loss), fake=fake)


def send_to_src(net, msg, size=100):
    net.host("rx").send(Packet("rx", "src", size, msg, C.PROTO))


class TestDataSources:
    def test_bulk_source_infinite(self):
        src = BulkSource(1400)
        assert src.has_data()
        assert src.peek_size() == 1400
        assert src.next_payload() == (1400, b"")

    def test_finite_source_exhausts(self):
        src = FiniteSource([b"ab", b"cde"])
        assert src.peek_size() == 2
        assert src.next_payload() == (2, b"ab")
        assert src.remaining == 1
        src.next_payload()
        assert not src.has_data()


class TestStartupAndClock:
    def test_first_packet_marked_elicit(self, wire):
        sender, collector = make_sender(wire)
        sender.start()
        wire.run(until=0.5)
        odatas = collector.payloads(OData)
        assert odatas
        assert odatas[0].elicit_nak
        assert odatas[0].seq == 0

    def test_single_packet_until_acker_elected(self, wire):
        """W=T=1 at start: exactly one packet can go out before the
        election restores the clock."""
        sender, collector = make_sender(wire)
        sender.start()
        wire.run(until=0.05)  # before any NAK can arrive back
        assert len(collector.payloads(OData)) == 1

    def test_fake_nak_elects_and_resumes(self, wire):
        sender, collector = make_sender(wire)
        sender.start()
        wire.run(until=0.2)
        send_to_src(wire, nak(0, fake=True))
        wire.run(until=0.5)
        assert sender.current_acker == "rx"
        assert sender.odata_sent >= 2
        # subsequent data carries the acker id
        assert collector.payloads(OData)[-1].acker_id == "rx"

    def test_double_start_rejected(self, wire):
        sender, _ = make_sender(wire)
        sender.start()
        with pytest.raises(RuntimeError):
            sender.start()

    def test_spm_heartbeat(self, wire):
        sender, collector = make_sender(wire, spm_ivl=0.1)
        sender.start()
        wire.run(until=1.05)
        spms = collector.payloads(Spm)
        assert len(spms) >= 10
        assert spms[0].path == "src"


class TestAckDriven:
    def ack(self, seq, received, lead=None, rx="rx"):
        lead = lead if lead is not None else max(received)
        return Ack(1, seq, build_bitmap(seq, received),
                   ReceiverReport(rx, lead, 0))

    def test_acks_sustain_transmission(self, wire):
        sender, collector = make_sender(wire)
        sender.start()
        wire.run(until=0.2)
        send_to_src(wire, nak(0, fake=True))

        # echo an ACK for every ODATA the receiver sees
        class AckingCollector(Collector):
            def handle_packet(self, packet):
                super().handle_packet(packet)
                msg = packet.payload
                if isinstance(msg, OData):
                    received.add(msg.seq)
                    ack = Ack(1, msg.seq, build_bitmap(msg.seq, received),
                              ReceiverReport("rx", msg.seq, 0))
                    wire.host("rx").send(Packet("rx", "src", 100, ack, C.PROTO))

        received = set()
        wire.host("rx").unregister_agent(C.PROTO)
        acker = AckingCollector()
        wire.host("rx").register_agent(C.PROTO, acker)
        wire.run(until=5.0)
        # the ack clock must keep the session flowing without stalls
        assert sender.odata_sent > 100
        assert sender.controller.stalls == 0

    def test_stall_without_acks(self, wire):
        sender, _ = make_sender(wire)
        sender.start()
        wire.run(until=0.2)
        send_to_src(wire, nak(0, fake=True))
        wire.run(until=30.0)
        assert sender.controller.stalls >= 1


class TestRepairs:
    def start_elected(self, wire, **kw):
        sender, collector = make_sender(wire, **kw)
        sender.start()
        wire.run(until=0.2)
        send_to_src(wire, nak(0, fake=True))
        wire.run(until=0.3)
        return sender, collector

    def test_nak_triggers_rdata_and_ncf(self, wire):
        sender, collector = self.start_elected(wire)
        send_to_src(wire, nak(0))
        wire.run(until=1.0)
        rdatas = collector.payloads(RData)
        assert [r.seq for r in rdatas] == [0]
        assert any(n.seq == 0 for n in collector.payloads(Ncf))

    def test_duplicate_nak_held_off(self, wire):
        sender, collector = self.start_elected(wire)
        send_to_src(wire, nak(0))
        wire.run(until=0.4)
        send_to_src(wire, nak(0))  # within holdoff
        wire.run(until=0.6)
        assert len(collector.payloads(RData)) == 1

    def test_nak_list_repairs_all(self, wire):
        sender, collector = self.start_elected(wire)
        wire.run(until=2.0)  # let several packets flow... at W small
        # force availability of seqs 0..2 in the tx window
        assert sender.odata_sent >= 1
        msg = Nak(1, 0, ReceiverReport("rx", 0, 0), extra_seqs=(0,))
        send_to_src(wire, msg)
        wire.run(until=2.5)
        assert len(collector.payloads(RData)) >= 1

    def test_unreliable_mode_sends_no_rdata(self, wire):
        sender, collector = self.start_elected(wire, reliable=False)
        send_to_src(wire, nak(0))
        wire.run(until=1.0)
        assert collector.payloads(RData) == []
        assert sender.rdata_sent == 0

    def test_fake_nak_no_repair(self, wire):
        sender, collector = self.start_elected(wire)
        send_to_src(wire, nak(0, fake=True))
        wire.run(until=1.0)
        assert collector.payloads(RData) == []

    def test_nak_beyond_trail_ignored(self, wire):
        sender, collector = self.start_elected(wire)
        send_to_src(wire, nak(10_000))
        wire.run(until=1.0)
        assert collector.payloads(RData) == []


class TestCcDisabled:
    def test_plain_pgm_sends_at_rate_limit(self, wire):
        """§3.1: with cc disabled the sender is a plain rate-limited
        PGM source needing no ACKs."""
        sender, collector = make_sender(
            wire, cc=CcConfig(enabled=False), max_rate_bps=400_000
        )
        sender.start()
        wire.run(until=10.0)
        rate = sender.bytes_sent * 8 / 10.0
        assert rate == pytest.approx(400_000, rel=0.15)
        assert sender.controller.stalls == 0


class TestBookkeeping:
    def test_nak_origin_accounting(self, wire):
        sender, _ = make_sender(wire)
        sender.start()
        wire.run(until=0.2)
        send_to_src(wire, nak(0, rx="a", fake=True))
        send_to_src(wire, nak(0, rx="b"))
        send_to_src(wire, nak(0, rx="a"))
        wire.run(until=0.5)
        assert sender.nak_origins == {"a": 2, "b": 1}

    def test_trace_records(self, wire):
        sender, _ = make_sender(wire)
        sender.start()
        wire.run(until=0.2)
        send_to_src(wire, nak(0, fake=True))
        wire.run(until=1.0)
        assert sender.trace.count("data") == sender.odata_sent
        assert sender.trace.count("nak") == 1

    def test_close_stops_everything(self, wire):
        sender, collector = make_sender(wire)
        sender.start()
        wire.run(until=0.2)
        sender.close()
        sent = len(collector.payloads(OData))
        wire.run(until=5.0)
        assert len(collector.payloads(OData)) == sent
