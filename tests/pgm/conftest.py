"""Shared fixtures for PGM protocol tests."""

import pytest

from repro.simulator import LinkSpec, Network

FAST = LinkSpec(rate_bps=10_000_000, delay=0.010, queue_slots=200)


class Collector:
    """Agent capturing every packet delivered to its host."""

    def __init__(self):
        self.packets = []

    def handle_packet(self, packet):
        # Agents borrow; keeping the packet past the callback needs a
        # reference of our own (pooled packets get recycled otherwise).
        self.packets.append(packet.retain())

    def payloads(self, cls=None):
        msgs = [p.payload for p in self.packets]
        if cls is not None:
            msgs = [m for m in msgs if isinstance(m, cls)]
        return msgs


@pytest.fixture
def wire():
    """src -- R0 -- rx  over fast symmetric links, multicast group
    'mc:t' installed from src to rx."""
    net = Network(seed=3)
    net.add_host("src")
    net.add_router("R0")
    net.add_host("rx")
    net.duplex_link("src", "R0", FAST)
    net.duplex_link("R0", "rx", FAST)
    net.build_routes()
    net.set_group("mc:t", "src", ["rx"])
    return net


@pytest.fixture
def fanout():
    """src -- R0 -- {rx0, rx1, rx2}, group installed to all three."""
    net = Network(seed=4)
    net.add_host("src")
    net.add_router("R0")
    for i in range(3):
        net.add_host(f"rx{i}")
        net.duplex_link("R0", f"rx{i}", FAST)
    net.duplex_link("src", "R0", FAST)
    net.build_routes()
    net.set_group("mc:t", "src", ["rx0", "rx1", "rx2"])
    return net
