"""Unit tests for the sender-side feedback guard (repro.pgm.guard).

The guard is exercised directly against a stub clock: each test drives
one plausibility rule with hand-built reports/ACKs and asserts the
verdict, the suspicion bookkeeping, and the quarantine lifecycle.
"""

import pytest

from repro.core.loss_filter import SCALE
from repro.core.reports import ReceiverReport
from repro.pgm.guard import RULES, FeedbackGuard, GuardConfig

FULL = 0xFFFFFFFF


class Clock:
    """Minimal stand-in for the event engine: just a settable now."""

    def __init__(self):
        self.now = 0.0


def rep(lead, loss=0, rx="r0"):
    return ReceiverReport(rx_id=rx, rxw_lead=lead, rx_loss=loss)


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def guard(clock):
    return FeedbackGuard(clock)


class TestStrongRules:
    def test_lead_beyond_tx(self, guard):
        v = guard.on_nak(rep(500), last_tx_seq=100, requests_repair=False)
        assert v.violations == ["lead-beyond-tx"]
        assert guard.violation_counts["lead-beyond-tx"] == 1

    def test_ack_unsent(self, guard):
        v = guard.on_ack(150, FULL, rep(90), last_tx_seq=100)
        assert v.violations == ["ack-unsent"]

    def test_ack_beyond_lead(self, guard):
        # acking 90 while claiming the window only reaches 50: an
        # honest receiver reports after absorbing the acked packet
        v = guard.on_ack(90, FULL, rep(50), last_tx_seq=100)
        assert v.violations == ["ack-beyond-lead"]

    def test_clean_ack_has_no_violations(self, guard):
        v = guard.on_ack(90, FULL, rep(95), last_tx_seq=100)
        assert v.violations == []
        assert v.allow_control and not v.drop


class TestLeadRegression:
    def test_large_regression_flagged(self, guard):
        guard.on_nak(rep(1000), last_tx_seq=2000, requests_repair=False)
        v = guard.on_nak(rep(900), last_tx_seq=2000, requests_repair=False)
        assert v.violations == ["lead-regression"]

    def test_small_regression_tolerated(self, guard):
        # reordered feedback legitimately carries slightly stale leads
        guard.on_nak(rep(1000), last_tx_seq=2000, requests_repair=False)
        v = guard.on_nak(rep(1000 - 32), last_tx_seq=2000,
                         requests_repair=False)
        assert v.violations == []


class TestLossRange:
    def test_teleported_loss_flagged(self, guard):
        guard.on_nak(rep(100, 0), last_tx_seq=2000, requests_repair=False)
        v = guard.on_nak(rep(106, int(0.4 * SCALE)), last_tx_seq=2000,
                         requests_repair=False)
        assert v.violations == ["loss-range"]

    def test_lie_does_not_become_baseline(self, guard):
        """A teleported claim must keep firing, not legitimise itself."""
        guard.on_nak(rep(100, 0), last_tx_seq=2000, requests_repair=False)
        hits = 0
        for i in range(1, 6):
            v = guard.on_nak(rep(100 + 6 * i, int(0.4 * SCALE)),
                             last_tx_seq=2000, requests_repair=False)
            hits += v.violations.count("loss-range")
        assert hits == 5

    def test_gradual_rise_passes(self, guard):
        # a genuine loss burst: the filter can move (1 - W**n) per n
        # slots, so a slow climb is always inside the reachable band
        guard.on_nak(rep(100, 0), last_tx_seq=5000, requests_repair=False)
        loss = 0
        for i in range(1, 10):
            loss = int(SCALE * (1 - (65000 / 65536) ** (20 * i)) * 0.8)
            v = guard.on_nak(rep(100 + 20 * i, loss), last_tx_seq=5000,
                             requests_repair=False)
            assert v.violations == []

    def test_stationary_window_tolerates_jitter_only(self, guard):
        guard.on_nak(rep(100, 1000), last_tx_seq=2000, requests_repair=False)
        ok = guard.on_nak(rep(100, 1100), last_tx_seq=2000,
                          requests_repair=False)
        assert ok.violations == []
        bad = guard.on_nak(rep(100, 9000), last_tx_seq=2000,
                           requests_repair=False)
        assert bad.violations == ["loss-range"]


class TestShadowDivergence:
    @pytest.fixture
    def guard(self, clock):
        # isolate the shadow rule from the range rule
        return FeedbackGuard(clock, GuardConfig(check_loss_range=False))

    def _mature_shadow(self, guard, acks=10):
        """Feed loss-free bitmaps until the shadow is judged usable."""
        for i in range(1, acks + 1):
            seq = 32 * i
            guard.on_ack(seq, FULL, rep(seq), last_tx_seq=10_000)

    def test_overclaim_against_loss_free_bitmaps(self, guard):
        self._mature_shadow(guard)
        hits = 0
        for i in range(5):
            v = guard.on_nak(rep(320 + i, int(0.4 * SCALE)),
                             last_tx_seq=10_000, requests_repair=False)
            hits += v.violations.count("shadow-divergence")
        assert hits == 1  # fires on the 5th consecutive divergent report

    def test_stale_shadow_never_condemns(self, guard, clock):
        self._mature_shadow(guard)
        clock.now += 5.0  # > shadow_max_age: no bitmaps since
        for i in range(10):
            v = guard.on_nak(rep(320 + i, int(0.4 * SCALE)),
                             last_tx_seq=10_000, requests_repair=False)
            assert "shadow-divergence" not in v.violations

    def test_immature_shadow_not_judged(self, guard):
        self._mature_shadow(guard, acks=3)  # 96 samples < min_updates
        for i in range(10):
            v = guard.on_nak(rep(96 + i, int(0.4 * SCALE)),
                             last_tx_seq=10_000, requests_repair=False)
            assert "shadow-divergence" not in v.violations


class TestNakBucket:
    def test_flood_drops_and_accrues_suspicion(self, guard):
        cfg = guard.config
        dropped = 0
        for i in range(int(cfg.nak_burst) + 50):
            v = guard.on_nak(rep(100), last_tx_seq=2000)
            dropped += v.drop
        assert dropped == 50
        assert guard.violation_counts["nak-flood"] == 50

    def test_paced_naks_never_drop(self, guard, clock):
        # §3.8-compliant pacing (50/s) stays under the 60/s refill
        for _ in range(300):
            clock.now += 0.02
            v = guard.on_nak(rep(100), last_tx_seq=2000)
            assert not v.drop

    def test_fake_naks_spend_no_tokens(self, guard):
        for _ in range(500):
            v = guard.on_nak(rep(100), last_tx_seq=2000,
                             requests_repair=False)
            assert not v.drop


class TestQuarantineLifecycle:
    def _strong(self, guard, n):
        for _ in range(n):
            guard.on_nak(rep(9999), last_tx_seq=100, requests_repair=False)

    def test_two_strong_violations_quarantine(self, guard):
        self._strong(guard, 1)
        assert not guard.is_quarantined("r0")
        self._strong(guard, 1)
        assert guard.is_quarantined("r0")
        assert guard.quarantines == 1
        assert guard.quarantined_ids() == ["r0"]

    def test_quarantine_blocks_control_not_ingress(self, guard):
        self._strong(guard, 2)
        v = guard.on_ack(50, FULL, rep(60), last_tx_seq=100)
        assert not v.allow_control
        assert not v.drop  # the packet itself is not discarded
        assert guard.control_blocked >= 1

    def test_readmission_after_backoff(self, guard, clock):
        self._strong(guard, 2)
        cfg = guard.config
        assert guard.is_quarantined("r0")
        clock.now += cfg.quarantine_base + 0.1
        assert not guard.is_quarantined("r0")
        v = guard.on_ack(50, FULL, rep(60), last_tx_seq=100)
        assert v.allow_control
        # probation: readmitted with half the threshold already accrued
        assert guard.suspicion("r0") > 0

    def test_backoff_doubles(self, guard, clock):
        cfg = guard.config
        self._strong(guard, 2)
        first = guard._ledgers["r0"].quarantined_until - clock.now
        clock.now += cfg.quarantine_base + 1.0
        self._strong(guard, 2)
        second = guard._ledgers["r0"].quarantined_until - clock.now
        assert second == pytest.approx(first * cfg.quarantine_backoff)

    def test_suspicion_decays(self, guard, clock):
        self._strong(guard, 1)
        s0 = guard.suspicion("r0")
        clock.now += guard.config.suspicion_decay_tau
        assert guard.suspicion("r0") == pytest.approx(s0 / 2.718, rel=0.01)


class TestReplayDedup:
    def test_verbatim_replay_dropped_without_suspicion(self, guard):
        guard.on_ack(50, FULL, rep(60), last_tx_seq=100)
        v = guard.on_ack(50, FULL, rep(60), last_tx_seq=100)
        assert v.drop and not v.allow_control
        assert guard.acks_deduped == 1
        assert guard.suspicion("r0") == 0.0

    def test_expired_signature_is_fresh_again(self, guard, clock):
        # a stall-elicited keep-alive ACK is verbatim-identical to the
        # previous one; only rapid-fire duplicates are replays
        guard.on_ack(50, FULL, rep(60), last_tx_seq=100)
        clock.now += guard.config.replay_ttl + 0.1
        v = guard.on_ack(50, FULL, rep(60), last_tx_seq=100)
        assert not v.drop
        assert guard.acks_deduped == 0

    def test_distinct_acks_pass(self, guard):
        for seq in range(50, 60):
            v = guard.on_ack(seq, FULL, rep(seq + 5), last_tx_seq=100)
            assert not v.drop


class TestQuarantinedRepairBudget:
    def test_budget_bound_by_transmission(self, guard):
        # quarantine r0 first (two physical impossibilities)
        for _ in range(2):
            guard.on_nak(rep(9999), last_tx_seq=100, requests_repair=False)
        assert guard.is_quarantined("r0")
        cfg = guard.config
        # with the sender not transmitting, only the burst allowance
        # passes — a storm cannot outrun the data rate
        passed = sum(
            not guard.on_nak(rep(90), last_tx_seq=100).drop
            for _ in range(200)
        )
        assert passed == int(cfg.quarantine_repair_burst)
        # each newly transmitted packet funds one more repair
        v = guard.on_nak(rep(90), last_tx_seq=110)
        assert not v.drop

    def test_unquarantined_budget_is_wall_clock(self, guard, clock):
        # drain most of the bucket in a burst...
        for _ in range(100):
            guard.on_nak(rep(90), last_tx_seq=100)
        led = guard._ledgers["r0"]
        drained = led.nak_tokens
        # ...then one second refills nak_rate tokens with zero new tx
        clock.now += 1.0
        guard.on_nak(rep(90), last_tx_seq=100)
        assert led.nak_tokens == pytest.approx(
            drained + guard.config.nak_rate - 1.0)


class TestSummary:
    def test_summary_shape(self, guard):
        guard.on_nak(rep(9999), last_tx_seq=100, requests_repair=False)
        s = guard.summary()
        assert s["receivers_tracked"] == 1
        assert s["violations"] == {"lead-beyond-tx": 1}
        assert "r0" in s["suspects"]
        assert set(guard.violation_counts) == set(RULES)
