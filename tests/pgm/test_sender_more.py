"""Additional PGM sender behaviours: repairs, windows, feedback hooks."""

import pytest

from repro.core.reports import ReceiverReport
from repro.core.sender_cc import CcConfig
from repro.pgm import constants as C
from repro.pgm.packets import Nak, OData, RData
from repro.pgm.sender import FiniteSource, PgmSender
from repro.simulator import Packet

from .conftest import Collector


def make_sender(net, **kw):
    collector = Collector()
    net.host("rx").register_agent(C.PROTO, collector)
    sender = PgmSender(net.host("src"), "mc:t", tsi=1, **kw)
    return sender, collector


def elect(net, sender):
    sender.start()
    net.run(until=0.2)
    net.host("rx").send(
        Packet("rx", "src", 100,
               Nak(1, 0, ReceiverReport("rx", 0, 0), fake=True), C.PROTO)
    )
    net.run(until=0.3)


class TestRepairWindow:
    def test_repair_resent_after_holdoff(self, wire):
        sender, collector = make_sender(wire)
        elect(wire, sender)
        nak = Nak(1, 0, ReceiverReport("rx", 0, 0))
        wire.host("rx").send(Packet("rx", "src", 100, nak, C.PROTO))
        # wait well past RDATA_HOLDOFF before re-NAKing
        wire.run(until=0.3 + 2 * PgmSender.RDATA_HOLDOFF)
        wire.host("rx").send(Packet("rx", "src", 100, nak, C.PROTO))
        wire.run(until=3.0)
        assert len(collector.payloads(RData)) == 2

    def test_tx_window_trail_advances(self, wire):
        sender, _ = make_sender(
            wire, cc=CcConfig(enabled=False), max_rate_bps=2_000_000
        )
        sender._tx_window_capacity = 10
        sender.start()
        wire.run(until=0.5)
        assert sender.odata_sent > 20
        assert sender.trail > 0
        assert len(sender._tx_window) <= 10

    def test_cc_disabled_without_rate_limit_rejected(self, wire):
        """A plain PGM sender must have a pre-set rate (§3.1)."""
        with pytest.raises(ValueError):
            make_sender(wire, cc=CcConfig(enabled=False))

    def test_repair_carries_stored_payload(self, wire):
        chunks = [b"alpha", b"beta", b"gamma"]
        sender, collector = make_sender(wire, source=FiniteSource(list(chunks)))
        elect(wire, sender)
        wire.run(until=1.0)
        wire.host("rx").send(
            Packet("rx", "src", 100, Nak(1, 1, ReceiverReport("rx", 2, 0)), C.PROTO)
        )
        wire.run(until=2.0)
        rdatas = collector.payloads(RData)
        assert rdatas and rdatas[0].payload == b"beta"


class TestAppLimited:
    def test_finite_transfer_completes_then_idles(self, wire):
        sender, collector = make_sender(
            wire, source=FiniteSource([b"x" * 100 for _ in range(20)])
        )
        elect(wire, sender)

        # the acker echoes ACKs so the transfer can finish
        from repro.core.acktrack import build_bitmap
        from repro.pgm.packets import Ack

        received = set()

        class Acker(Collector):
            def handle_packet(self, packet):
                super().handle_packet(packet)
                msg = packet.payload
                if isinstance(msg, OData):
                    received.add(msg.seq)
                    ack = Ack(1, msg.seq, build_bitmap(msg.seq, received),
                              ReceiverReport("rx", msg.seq, 0))
                    wire.host("rx").send(Packet("rx", "src", 100, ack, C.PROTO))

        wire.host("rx").unregister_agent(C.PROTO)
        wire.host("rx").register_agent(C.PROTO, Acker())
        wire.run(until=30.0)
        assert sender.odata_sent == 20
        assert not sender.source.has_data()
        # idle after completion: no stall-restart churn
        stalls = sender.controller.stalls
        wire.run(until=60.0)
        assert sender.controller.stalls == stalls
        assert sender.odata_sent == 20

    def test_on_token_hook_called_per_transmission(self, wire):
        ticks = []
        sender, _ = make_sender(wire, on_token=lambda now: ticks.append(now))
        elect(wire, sender)
        assert len(ticks) == sender.odata_sent >= 1


class TestAccounting:
    def test_bytes_sent_counts_payload_only(self, wire):
        sender, _ = make_sender(wire, payload_size=1000)
        elect(wire, sender)
        assert sender.bytes_sent == sender.odata_sent * 1000

    def test_summary_dict(self, wire):
        from repro.pgm import create_session
        from repro.simulator import NON_LOSSY, dumbbell

        net = dumbbell(1, 2, NON_LOSSY, seed=55)
        session = create_session(net, "h0", ["r0", "r1"])
        net.run(until=10.0)
        summary = session.summary()
        assert summary["odata_sent"] > 100
        assert summary["acker"] in ("r0", "r1")
        assert set(summary["receivers"]) == {"r0", "r1"}
        assert summary["receivers"]["r0"]["odata_received"] > 100
        assert summary["stalls"] == 0
