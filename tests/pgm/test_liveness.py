"""Liveness watchdog: state machine, timers, degraded mode and its
interaction with the generic stall machinery."""

import pytest

from repro.pgm import LivenessConfig, LivenessWatchdog, create_session
from repro.pgm.liveness import DEGRADED, NORMAL, SUSPECT
from repro.pgm.session import SessionConfig
from repro.simulator import (
    ACKER,
    NON_LOSSY,
    ControlBlackhole,
    FaultPlan,
    NodeCrash,
    Partition,
    dumbbell,
)


def _session(net, liveness=True, faults=None, **params):
    return create_session(
        net, "h0", [f"r{i}" for i in range(2)],
        config=SessionConfig(
            liveness=liveness,
            liveness_params=params or None,
            faults=faults,
        ),
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LivenessConfig(ack_timeout_factor=0)
        with pytest.raises(ValueError):
            LivenessConfig(min_timeout=2.0, max_timeout=1.0)
        with pytest.raises(ValueError):
            LivenessConfig(max_demotions=0)
        with pytest.raises(ValueError):
            LivenessConfig(degraded_interval=0)
        with pytest.raises(ValueError):
            LivenessConfig(degraded_repair_budget=-1)

    def test_session_config_folds_params(self):
        net = dumbbell(1, 2, NON_LOSSY)
        session = _session(net, max_demotions=3, degraded_interval=0.5)
        watchdog = session.sender.watchdog
        assert watchdog is not None
        assert watchdog.config.max_demotions == 3
        assert watchdog.config.degraded_interval == 0.5

    def test_no_watchdog_without_opt_in(self):
        net = dumbbell(1, 2, NON_LOSSY)
        session = create_session(net, "h0", ["r0"])
        assert session.sender.watchdog is None


class TestHealthySession:
    def test_stays_normal_with_live_acker(self):
        net = dumbbell(1, 2, NON_LOSSY, seed=11)
        session = _session(net)
        net.run(until=15.0)
        watchdog = session.sender.watchdog
        assert watchdog.state == NORMAL
        assert watchdog.demotions == 0
        assert watchdog.degraded_entries == 0
        assert watchdog.transitions == []

    def test_idle_sender_stands_down(self):
        # A finished transmission must not look like a dead acker.
        net = dumbbell(1, 2, NON_LOSSY, seed=11)
        session = create_session(
            net, "h0", ["r0", "r1"],
            config=SessionConfig(liveness=True, stop_at=3.0))
        net.run(until=20.0)
        assert session.sender.watchdog.demotions == 0


class TestAckerCrash:
    def test_watchdog_demotes_and_reelects(self):
        net = dumbbell(1, 2, NON_LOSSY, seed=11)
        faults = FaultPlan((NodeCrash(ACKER, at=5.0),))
        session = _session(net, faults=faults)
        net.run(until=20.0)
        watchdog = session.sender.watchdog
        assert watchdog.demotions >= 1
        assert watchdog.state == NORMAL  # recovered
        assert watchdog.ttr_samples  # the episode was measured
        # the election moved off the dead receiver
        assert session.sender.controller.current_acker is not None

    def test_watchdog_beats_generic_stall_path(self):
        """The headline claim: with the watchdog, the session is back
        to a live acker strictly sooner than stall-machinery-only."""

        def first_ack_after_crash(liveness):
            net = dumbbell(1, 2, NON_LOSSY, seed=11)
            faults = FaultPlan((NodeCrash(ACKER, at=5.0),))
            session = create_session(
                net, "h0", ["r0", "r1"],
                config=SessionConfig(liveness=liveness, faults=faults))
            controller = session.sender.controller
            acks = []
            original = controller.on_ack

            def spy(ack_seq, bitmap, report):
                acks.append((net.sim.now, report.rx_id))
                return original(ack_seq, bitmap, report)

            controller.on_ack = spy
            crashed = []
            net.sim.schedule_at(5.0, lambda: crashed.append(
                controller.current_acker))
            net.run(until=30.0)
            # In-flight ACKs from the dead acker still land just after
            # the crash; recovery means hearing from a *different*
            # receiver (the successor the election produced).
            recovery = [t for t, rx in acks if t > 5.0 and rx != crashed[0]]
            assert recovery, "session never recovered after the crash"
            return recovery[0]

        with_watchdog = first_ack_after_crash(True)
        stall_only = first_ack_after_crash(False)
        assert with_watchdog < stall_only

    def test_demotion_is_not_an_eviction(self):
        net = dumbbell(1, 2, NON_LOSSY, seed=11)
        faults = FaultPlan((NodeCrash(ACKER, at=5.0),))
        session = _session(net, faults=faults)
        net.run(until=20.0)
        controller = session.sender.controller
        assert session.sender.watchdog.demotions >= 1
        assert controller.acker_evictions == 0


class TestDegradedMode:
    def _blackout(self, duration=6.0, **params):
        """Total feedback loss: ACK+NAK blackhole on the reverse
        bottleneck from t=3."""
        net = dumbbell(1, 2, NON_LOSSY, seed=13)
        faults = FaultPlan((
            ControlBlackhole("R1", "R0", at=3.0, duration=duration,
                             kinds=("Ack", "Nak")),
        ))
        return net, _session(net, faults=faults, **params)

    def test_enters_degraded_and_recovers_on_heal(self):
        net, session = self._blackout()
        net.run(until=25.0)
        watchdog = session.sender.watchdog
        assert watchdog.degraded_entries >= 1
        assert watchdog.probes_sent >= 1
        assert watchdog.state == NORMAL
        assert watchdog.degraded_time_s > 0
        reasons = [r for _, _, _, r in watchdog.transitions]
        assert "demotions-exhausted" in reasons

    def test_stall_counter_frozen_while_degraded(self):
        # Degraded mode owns recovery: the generic stall timer restarts
        # quietly instead of stacking exponential stall episodes.
        net, session = self._blackout()
        net.run(until=25.0)
        controller = session.sender.controller
        assert controller.restarts >= controller.stalls
        assert controller.stalls <= 3

    def test_nak_exits_degraded_to_suspect(self):
        net, session = self._blackout()
        watchdog = session.sender.watchdog
        net.run(until=25.0)
        trans = [(old, new, r) for _, old, new, r in watchdog.transitions]
        assert (DEGRADED, SUSPECT, "nak") in trans or \
               (DEGRADED, NORMAL, "ack") in [(o, n, r) for o, n, r in trans]

    def test_repair_budget_gates_rdata(self):
        config = LivenessConfig(degraded_repair_budget=2)

        class _Sim:
            now = 0.0

            def schedule(self, delay, fn, *args):  # pragma: no cover
                return object()

            def cancel(self, ev):  # pragma: no cover
                pass

        class _Ctl:
            closed = False
            rto = None

        watchdog = LivenessWatchdog(_Sim(), _Ctl(), config)
        watchdog.state = DEGRADED
        watchdog.repair_budget_left = config.degraded_repair_budget
        assert watchdog.allow_repair()
        assert watchdog.allow_repair()
        assert not watchdog.allow_repair()
        assert watchdog.repairs_blocked == 1
        # outside degraded mode the budget does not apply
        watchdog.state = NORMAL
        assert watchdog.allow_repair()

    def test_summary_has_fixed_keys(self):
        net, session = self._blackout()
        net.run(until=10.0)
        summary = session.sender.watchdog.summary()
        assert set(summary) == {
            "state", "demotions", "degraded_entries", "degraded_time_s",
            "probes_sent", "repairs_blocked", "ttr_last_s", "ttr_samples",
        }


class TestPartitionRecovery:
    def test_recovers_after_partition_heals(self):
        net = dumbbell(1, 2, NON_LOSSY, seed=17)
        faults = FaultPlan((
            Partition(("h0", "R0"), ("R1", "r0", "r1"), at=4.0, duration=4.0),
        ))
        session = _session(net, faults=faults)
        net.run(until=30.0)
        watchdog = session.sender.watchdog
        assert watchdog.state == NORMAL
        assert watchdog.ttr_samples
        # deliveries resumed after the heal
        assert all(rx.delivered > 0 for rx in session.receivers)

    def test_close_is_idempotent_and_cancels_timers(self):
        net = dumbbell(1, 2, NON_LOSSY, seed=17)
        session = _session(net)
        net.run(until=2.0)
        session.close()
        watchdog = session.sender.watchdog
        assert watchdog.closed
        session.close()  # second close must not raise
        net.run(until=4.0)  # no stray timer fires after close
