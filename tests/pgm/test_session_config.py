"""SessionConfig construction API: config objects, the legacy kwargs
shim, summary schema stability and the indexed receiver lookup."""

import dataclasses

import pytest

from repro.core.sender_cc import CcConfig
from repro.pgm import SUMMARY_SCHEMA, add_receiver, create_session
from repro.pgm.session import SessionConfig
from repro.simulator import NON_LOSSY, dumbbell

#: every summary key is part of the pgmcc.session-summary/v1 contract —
#: keys may be added in later versions but never removed or renamed.
SUMMARY_V1_KEYS = {
    "schema", "tsi", "group", "odata_sent", "rdata_sent", "bytes_sent",
    "acks_received", "naks_received", "nak_origins", "acker",
    "acker_switches", "acker_evictions", "stalls", "window",
    "malformed_dropped", "unrecoverable_data_loss", "guard", "phases",
    "repair_latency", "receivers",
}

RECEIVER_V1_KEYS = {
    "odata_received", "rdata_received", "loss_rate", "delivered",
    "acks_sent", "naks_sent", "malformed_dropped",
    "unrecoverable_data_loss",
}


class TestSessionConfig:
    def test_config_object_is_primary_signature(self):
        net = dumbbell(1, 1, NON_LOSSY)
        cfg = SessionConfig(cc=CcConfig(), stop_at=5.0, trace_name="cfg")
        session = create_session(net, "h0", ["r0"], config=cfg)
        net.run(until=10.0)
        assert session.sender.odata_sent > 0
        assert max(session.trace.times("data")) <= 5.0
        assert session.trace.name == "cfg"

    def test_legacy_kwargs_still_accepted(self):
        net = dumbbell(1, 1, NON_LOSSY)
        session = create_session(net, "h0", ["r0"], stop_at=5.0,
                                 trace_name="legacy")
        net.run(until=10.0)
        assert max(session.trace.times("data")) <= 5.0

    def test_kwargs_and_config_produce_identical_sessions(self):
        def run_one(use_config):
            net = dumbbell(1, 1, NON_LOSSY, seed=21)
            if use_config:
                session = create_session(
                    net, "h0", ["r0"],
                    config=SessionConfig(payload_size=512, filter_w=16))
            else:
                session = create_session(net, "h0", ["r0"],
                                         payload_size=512, filter_w=16)
            net.run(until=15.0)
            out = (session.sender.odata_sent, session.sender.acks_received,
                   session.receivers[0].delivered)
            session.close()
            return out

        assert run_one(True) == run_one(False)

    def test_kwargs_override_config_fields(self):
        net = dumbbell(1, 1, NON_LOSSY)
        cfg = SessionConfig(trace_name="from-config")
        session = create_session(net, "h0", ["r0"], config=cfg,
                                 trace_name="from-kwarg")
        assert session.trace.name == "from-kwarg"
        # the caller's config object is never mutated
        assert cfg.trace_name == "from-config"

    def test_unknown_kwarg_raises_type_error(self):
        net = dumbbell(1, 1, NON_LOSSY)
        with pytest.raises(TypeError, match="create_session"):
            create_session(net, "h0", ["r0"], no_such_option=1)

    def test_config_sweeps_compose_with_replace(self):
        base = SessionConfig(stop_at=30.0)
        variants = [dataclasses.replace(base, filter_w=w) for w in (2, 8)]
        assert [v.filter_w for v in variants] == [2, 8]
        assert all(v.stop_at == 30.0 for v in variants)
        assert base.filter_w is None


class TestReceiverIndex:
    def test_lookup_after_add_receiver(self):
        net = dumbbell(1, 3, NON_LOSSY)
        session = create_session(net, "h0", ["r0"])
        add_receiver(net, session, "r1")
        add_receiver(net, session, "r2", at=2.0)
        net.run(until=5.0)
        assert session.receiver("r1").rx_id == "r1"
        assert session.receiver("r2").rx_id == "r2"

    def test_lookup_survives_direct_list_append(self):
        # Some experiments extend session.receivers directly; the index
        # rebuilds itself rather than returning stale misses.
        net = dumbbell(1, 2, NON_LOSSY)
        session = create_session(net, "h0", ["r0"])
        from repro.pgm.session import _make_receiver

        session.receivers.append(
            _make_receiver(net, session, "r1", True, False, None))
        assert session.receiver("r1").host.name == "r1"

    def test_missing_receiver_raises_keyerror(self):
        net = dumbbell(1, 1, NON_LOSSY)
        session = create_session(net, "h0", ["r0"])
        with pytest.raises(KeyError):
            session.receiver("nope")


class TestSummarySchema:
    def test_v1_key_set(self):
        net = dumbbell(1, 2, NON_LOSSY)
        session = create_session(net, "h0", ["r0", "r1"])
        net.run(until=10.0)
        summary = session.summary()
        assert summary["schema"] == SUMMARY_SCHEMA == "pgmcc.session-summary/v1"
        assert SUMMARY_V1_KEYS <= set(summary)
        for rx_summary in summary["receivers"].values():
            assert RECEIVER_V1_KEYS <= set(rx_summary)
        session.close()

    def test_summary_round_trips_through_json(self):
        import json

        net = dumbbell(1, 1, NON_LOSSY)
        session = create_session(net, "h0", ["r0"])
        net.run(until=10.0)
        session.close()
        summary = session.summary()
        restored = json.loads(json.dumps(summary))
        assert restored["odata_sent"] == summary["odata_sent"]
        assert restored["receivers"].keys() == summary["receivers"].keys()
