"""SessionConfig construction API: config objects, the legacy kwargs
shim, summary schema stability and the indexed receiver lookup."""

import dataclasses

import pytest

from repro.core.sender_cc import CcConfig
from repro.pgm import SUMMARY_SCHEMA, add_receiver, create_session
from repro.pgm.session import SessionConfig
from repro.simulator import NON_LOSSY, dumbbell

#: every v1 summary key remains part of the pgmcc.session-summary/v2
#: contract — keys may be added in later versions but never removed or
#: renamed, so v1 consumers keep working against v2 summaries.
SUMMARY_V1_KEYS = {
    "schema", "tsi", "group", "odata_sent", "rdata_sent", "bytes_sent",
    "acks_received", "naks_received", "nak_origins", "acker",
    "acker_switches", "acker_evictions", "stalls", "window",
    "malformed_dropped", "unrecoverable_data_loss", "guard", "phases",
    "repair_latency", "receivers",
}

RECEIVER_V1_KEYS = {
    "odata_received", "rdata_received", "loss_rate", "delivered",
    "acks_sent", "naks_sent", "malformed_dropped",
    "unrecoverable_data_loss",
}

#: keys v2 adds on top of v1.
SUMMARY_V2_NEW_KEYS = {"stall_duration", "recovery"}

RECEIVER_V2_NEW_KEYS = {"resyncs"}

#: the fixed key set of the v2 ``recovery`` block — identical whether
#: or not a liveness watchdog is attached.
RECOVERY_KEYS = {
    "watchdog", "state", "demotions", "degraded_entries",
    "degraded_time_s", "probes_sent", "repairs_blocked", "ttr_last_s",
    "ttr_samples", "resyncs", "unrecoverable_loss",
}


class TestSessionConfig:
    def test_config_object_is_primary_signature(self):
        net = dumbbell(1, 1, NON_LOSSY)
        cfg = SessionConfig(cc=CcConfig(), stop_at=5.0, trace_name="cfg")
        session = create_session(net, "h0", ["r0"], config=cfg)
        net.run(until=10.0)
        assert session.sender.odata_sent > 0
        assert max(session.trace.times("data")) <= 5.0
        assert session.trace.name == "cfg"

    def test_legacy_kwargs_still_accepted(self):
        net = dumbbell(1, 1, NON_LOSSY)
        session = create_session(net, "h0", ["r0"], stop_at=5.0,
                                 trace_name="legacy")
        net.run(until=10.0)
        assert max(session.trace.times("data")) <= 5.0

    def test_kwargs_and_config_produce_identical_sessions(self):
        def run_one(use_config):
            net = dumbbell(1, 1, NON_LOSSY, seed=21)
            if use_config:
                session = create_session(
                    net, "h0", ["r0"],
                    config=SessionConfig(payload_size=512, filter_w=16))
            else:
                session = create_session(net, "h0", ["r0"],
                                         payload_size=512, filter_w=16)
            net.run(until=15.0)
            out = (session.sender.odata_sent, session.sender.acks_received,
                   session.receivers[0].delivered)
            session.close()
            return out

        assert run_one(True) == run_one(False)

    def test_kwargs_override_config_fields(self):
        net = dumbbell(1, 1, NON_LOSSY)
        cfg = SessionConfig(trace_name="from-config")
        session = create_session(net, "h0", ["r0"], config=cfg,
                                 trace_name="from-kwarg")
        assert session.trace.name == "from-kwarg"
        # the caller's config object is never mutated
        assert cfg.trace_name == "from-config"

    def test_unknown_kwarg_raises_type_error(self):
        net = dumbbell(1, 1, NON_LOSSY)
        with pytest.raises(TypeError, match="create_session"):
            create_session(net, "h0", ["r0"], no_such_option=1)

    def test_config_sweeps_compose_with_replace(self):
        base = SessionConfig(stop_at=30.0)
        variants = [dataclasses.replace(base, filter_w=w) for w in (2, 8)]
        assert [v.filter_w for v in variants] == [2, 8]
        assert all(v.stop_at == 30.0 for v in variants)
        assert base.filter_w is None


class TestReceiverIndex:
    def test_lookup_after_add_receiver(self):
        net = dumbbell(1, 3, NON_LOSSY)
        session = create_session(net, "h0", ["r0"])
        add_receiver(net, session, "r1")
        add_receiver(net, session, "r2", at=2.0)
        net.run(until=5.0)
        assert session.receiver("r1").rx_id == "r1"
        assert session.receiver("r2").rx_id == "r2"

    def test_lookup_survives_direct_list_append(self):
        # Some experiments extend session.receivers directly; the index
        # rebuilds itself rather than returning stale misses.
        net = dumbbell(1, 2, NON_LOSSY)
        session = create_session(net, "h0", ["r0"])
        from repro.pgm.session import _make_receiver

        session.receivers.append(
            _make_receiver(net, session, "r1", True, False, None))
        assert session.receiver("r1").host.name == "r1"

    def test_missing_receiver_raises_keyerror(self):
        net = dumbbell(1, 1, NON_LOSSY)
        session = create_session(net, "h0", ["r0"])
        with pytest.raises(KeyError):
            session.receiver("nope")

    def test_add_receiver_during_election_with_guard_active(self):
        # A receiver joining while the FeedbackGuard is active and the
        # acker election is still converging must integrate cleanly:
        # it gets delivered to, may win the election, and a demotion
        # (election cleared, elicit in flight) right before the join
        # must not wedge the session or violate guard rules.
        net = dumbbell(1, 3, NON_LOSSY, seed=9)
        session = create_session(net, "h0", ["r0", "r1"], guard=True)
        controller = session.sender.controller

        def join_mid_election():
            # Force an in-flight election: clear the incumbent and
            # mark the next ODATA elicit-NAK, then add the receiver
            # before any report answers it.
            controller.demote_acker()
            add_receiver(net, session, "r2")

        net.sim.schedule_at(3.0, join_mid_election)
        net.run(until=12.0)
        assert session.sender.guard is not None
        late = session.receiver("r2")
        assert late.delivered > 0
        # Election re-converged on some live receiver.
        assert controller.current_acker in {"r0", "r1", "r2"}
        summary = session.summary()
        assert "r2" in summary["receivers"]
        session.close()


class TestSummarySchema:
    def test_v1_keys_survive_in_v2(self):
        net = dumbbell(1, 2, NON_LOSSY)
        session = create_session(net, "h0", ["r0", "r1"])
        net.run(until=10.0)
        summary = session.summary()
        assert summary["schema"] == SUMMARY_SCHEMA == "pgmcc.session-summary/v2"
        assert SUMMARY_V1_KEYS <= set(summary)
        for rx_summary in summary["receivers"].values():
            assert RECEIVER_V1_KEYS <= set(rx_summary)
        session.close()

    def test_v2_recovery_block_fixed_keys_without_watchdog(self):
        net = dumbbell(1, 1, NON_LOSSY)
        session = create_session(net, "h0", ["r0"])
        net.run(until=5.0)
        summary = session.summary()
        assert SUMMARY_V2_NEW_KEYS <= set(summary)
        recovery = summary["recovery"]
        assert set(recovery) == RECOVERY_KEYS
        assert recovery["watchdog"] is False
        assert recovery["demotions"] == 0
        for rx_summary in summary["receivers"].values():
            assert RECEIVER_V2_NEW_KEYS <= set(rx_summary)
        session.close()

    def test_v2_recovery_block_fixed_keys_with_watchdog(self):
        net = dumbbell(1, 1, NON_LOSSY)
        session = create_session(
            net, "h0", ["r0"], config=SessionConfig(liveness=True))
        net.run(until=5.0)
        summary = session.summary()
        recovery = summary["recovery"]
        assert set(recovery) == RECOVERY_KEYS
        assert recovery["watchdog"] is True
        assert recovery["state"] == "normal"
        session.close()

    def test_summary_round_trips_through_json(self):
        import json

        net = dumbbell(1, 1, NON_LOSSY)
        session = create_session(net, "h0", ["r0"])
        net.run(until=10.0)
        session.close()
        summary = session.summary()
        restored = json.loads(json.dumps(summary))
        assert restored["odata_sent"] == summary["odata_sent"]
        assert restored["receivers"].keys() == summary["receivers"].keys()
