"""Tests for receiver-side SPM window bookkeeping (trail advance and
tail-loss detection)."""

import pytest

from repro.pgm import constants as C
from repro.pgm.packets import Nak, OData, Spm
from repro.pgm.receiver import PgmReceiver
from repro.simulator import Packet

from .conftest import Collector


def make_receiver(net, **kw):
    collector = Collector()
    net.host("src").register_agent(C.PROTO, collector)
    kw.setdefault("nak_bo_ivl", 0.01)
    rx = PgmReceiver(net.host("rx"), "mc:t", tsi=1, source_addr="src", **kw)
    return rx, collector


def send(net, msg, size=100):
    net.host("src").send(Packet("src", "mc:t", size, msg, C.PROTO))


def odata(seq):
    return OData(1, seq, 0, 1400)


def spm(trail, lead):
    return Spm(1, 0, trail, lead, path="src")


class TestTrailAdvance:
    def test_nak_state_below_trail_abandoned(self, wire):
        rx, _ = make_receiver(wire, nak_bo_ivl=5.0)  # hold NAKs back
        send(wire, odata(0))
        send(wire, odata(3))  # gaps at 1, 2
        wire.run(until=0.2)
        assert len(rx._nak_states) == 2
        send(wire, spm(trail=3, lead=3))
        wire.run(until=0.5)
        assert rx._nak_states == {}
        assert rx.repairs_abandoned == 2

    def test_trail_unblocks_delivery(self, wire):
        got = []
        rx, _ = make_receiver(wire, deliver=lambda s, n, p: got.append(s))
        send(wire, odata(0))
        send(wire, odata(3))  # 1, 2 missing; delivery stuck after 0
        wire.run(until=0.2)
        assert got == [0]
        send(wire, spm(trail=3, lead=3))
        wire.run(until=0.5)
        assert got == [0, 3]

    def test_trail_behind_state_is_noop(self, wire):
        rx, _ = make_receiver(wire, nak_bo_ivl=5.0)
        send(wire, odata(0))
        send(wire, odata(2))
        wire.run(until=0.2)
        send(wire, spm(trail=0, lead=2))
        wire.run(until=0.5)
        assert 1 in rx._nak_states


class TestTailLossDetection:
    def test_two_agreeing_spms_trigger_naks(self, wire):
        rx, collector = make_receiver(wire)
        send(wire, odata(0))
        wire.run(until=0.1)
        # sender claims lead 2; packets 1-2 were tail-lost
        send(wire, spm(trail=0, lead=2))
        wire.run(until=0.2)
        assert rx.tail_loss_detections == 0  # first SPM arms only
        send(wire, spm(trail=0, lead=2))
        wire.run(until=0.5)
        assert rx.tail_loss_detections == 1
        naks = collector.payloads(Nak)
        assert sorted(n.seq for n in naks) == [1, 2]

    def test_single_spm_does_not_trigger(self, wire):
        rx, collector = make_receiver(wire)
        send(wire, odata(0))
        wire.run(until=0.1)
        send(wire, spm(trail=0, lead=5))
        wire.run(until=0.5)
        assert collector.payloads(Nak) == []

    def test_advancing_lead_rearms(self, wire):
        """While data keeps arriving between SPMs (lead changes), no
        tail-loss NAKs fire."""
        rx, collector = make_receiver(wire)
        send(wire, odata(0))
        wire.run(until=0.05)
        send(wire, spm(trail=0, lead=1))
        send(wire, odata(1))
        wire.run(until=0.1)
        send(wire, spm(trail=0, lead=2))
        send(wire, odata(2))
        wire.run(until=0.5)
        assert rx.tail_loss_detections == 0
        assert collector.payloads(Nak) == []

    def test_no_detection_before_first_data(self, wire):
        rx, collector = make_receiver(wire)
        send(wire, spm(trail=0, lead=5))
        send(wire, spm(trail=0, lead=5))
        wire.run(until=0.5)
        assert rx.tail_loss_detections == 0


class TestEndToEndTailLoss:
    def test_lost_final_packet_recovered_via_spm(self):
        """A finite transfer whose last packet is dropped completes
        anyway: the SPM lead reveals the tail loss."""
        from repro.pgm import create_session
        from repro.pgm.sender import FiniteSource
        from repro.simulator import DeterministicLoss, LinkSpec, Network

        net = Network(seed=88)
        net.add_host("src")
        net.add_router("R0")
        net.add_host("rx")
        net.duplex_link("src", "R0", LinkSpec(10_000_000, 0.01, queue_slots=100))
        fwd, _ = net.duplex_link("R0", "rx", LinkSpec(10_000_000, 0.01, queue_slots=100))
        net.build_routes()

        got = []
        chunks = [b"c%d" % i for i in range(10)]
        session = create_session(net, "src", ["rx"],
                                 source=FiniteSource(chunks))
        session.receivers[0].deliver = lambda s, n, p: got.append(s)
        # drop exactly the 10th PGM data packet crossing the leaf
        # (the last ODATA of the transfer; SPMs/NCFs use other slots)
        net.run(until=0.05)

        original_send = fwd.send
        state = {"dropped": False}

        def tail_dropper(packet):
            msg = packet.payload
            if (not state["dropped"] and isinstance(msg, OData)
                    and msg.seq == 9):
                state["dropped"] = True
                return False
            return original_send(packet)

        fwd.send = tail_dropper
        net.run(until=20.0)
        assert state["dropped"]
        assert got == list(range(10))  # repaired via SPM tail detection
