"""Tests for the sender's window-trajectory trace records."""

from repro.pgm import create_session
from repro.simulator import NON_LOSSY, dumbbell


class TestWindowTrace:
    def test_samples_recorded(self):
        net = dumbbell(1, 1, NON_LOSSY, seed=66)
        session = create_session(net, "h0", ["r0"])
        net.run(until=30.0)
        samples = session.trace.of_kind("window")
        assert len(samples) > 10
        # values are W in hundredths of a packet: at least 1.0
        assert all(r.seq >= 100 for r in samples)
        session.close()

    def test_sawtooth_shape_on_congested_link(self):
        """On a clean bottleneck the window climbs to the pipe size,
        halves on queue overflow, climbs again — the AIMD sawtooth."""
        net = dumbbell(1, 1, NON_LOSSY, seed=67)
        session = create_session(net, "h0", ["r0"])
        net.run(until=60.0)
        values = [r.seq / 100 for r in session.trace.of_kind("window")
                  if r.time > 10.0]
        assert max(values) > 2 * min(values)  # real oscillation
        # every cc-loss coincides with a window sample (logged together)
        losses = session.trace.count("cc-loss")
        assert losses >= 1
        session.close()

    def test_window_bounded_by_pipe(self):
        """W never runs far beyond BDP + queue (realignment works)."""
        net = dumbbell(1, 1, NON_LOSSY, seed=68)
        session = create_session(net, "h0", ["r0"])
        net.run(until=60.0)
        values = [r.seq / 100 for r in session.trace.of_kind("window")]
        # BDP ≈ 4-5 pkts + 30-slot queue; allow generous slack
        assert max(values) < 80
        session.close()
