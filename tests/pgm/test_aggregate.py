"""Aggregate-tail subsystem: banks, promotion/demotion, accounting.

Bank math is pinned against hand-computed draws (the MirrorBank must
be draw-for-draw what exact receivers would do; the AnalyticBank must
match the order-statistic inverse CDF).  Manager tests run tiny hybrid
sessions and drive promotion/demotion directly.
"""

import random

import pytest

from repro.pgm import SessionConfig, create_session, enable_network_elements
from repro.pgm.aggregate import (
    AGGREGATE_SUMMARY_KEYS,
    AnalyticBank,
    MirrorBank,
    empty_aggregate_summary,
)
from repro.simulator import (
    DeterministicLoss,
    LinkSpec,
    dumbbell,
    dumbbell_subtrees,
)

BOTTLENECK = LinkSpec(rate_bps=2_000_000, delay=0.02)


def hybrid_session(n=24, subtrees=2, seed=5, drops=(), stop_at=4.0,
                   **cfg_kw):
    net = dumbbell_subtrees(n, subtrees=subtrees, bottleneck=BOTTLENECK,
                            seed=seed)
    if drops:
        net.link("R0", net.subtree_plan.router(0)).loss = (
            DeterministicLoss(drops))
    cfg = SessionConfig(stop_at=stop_at, aggregate=True, **cfg_kw)
    session = create_session(net, "h0", [], config=cfg)
    enable_network_elements(net, telemetry=session.metrics)
    return net, session


# ---------------------------------------------------------------------------
# Banks
# ---------------------------------------------------------------------------


class TestMirrorBank:
    def _banks(self, n=5):
        streams = {f"m{i}": random.Random(100 + i) for i in range(n)}
        shadow = {f"m{i}": random.Random(100 + i) for i in range(n)}
        return MirrorBank(streams), shadow

    def test_draw_is_min_and_argmin_of_member_draws(self):
        bank, shadow = self._banks()
        delay, winner = bank.draw(1.0)
        expected = {k: rng.uniform(0, 1.0) for k, rng in shadow.items()}
        assert winner == min(expected, key=expected.get)
        assert delay == min(expected.values())

    def test_every_member_stream_advances_each_round(self):
        # Draw indices must stay aligned with an exact run: one value
        # per member per lottery, loser streams included.
        bank, shadow = self._banks()
        for _ in range(3):
            bank.draw(0.5)
        delay, winner = bank.draw(0.5)
        for rng in shadow.values():
            for _ in range(3):
                rng.uniform(0, 0.5)
        expected = {k: rng.uniform(0, 0.5) for k, rng in shadow.items()}
        assert (delay, winner) == (min(expected.values()),
                                   min(expected, key=expected.get))

    def test_peek_min_consumes_nothing(self):
        bank, _ = self._banks()
        first = bank.peek_min(1.0)
        assert bank.peek_min(1.0) == first
        assert bank.draw(1.0) == first

    def test_remove_and_add(self):
        bank, _ = self._banks(3)
        assert bank.size == 3 and "m1" in bank
        assert bank.remove("m1") is True
        assert bank.size == 2 and "m1" not in bank
        assert bank.remove("m1") is False
        bank.add("m1", random.Random(101))
        assert bank.size == 3 and "m1" in bank


class TestAnalyticBank:
    def _bank(self, excluded=(3, 50), seed=9):
        plan = dumbbell_subtrees(100, subtrees=1).subtree_plan
        return AnalyticBank(plan, 0, 100, set(excluded), random.Random(seed))

    def test_size_excludes_promoted(self):
        assert self._bank().size == 98

    def test_contains(self):
        bank = self._bank()
        assert "t0r4" in bank
        assert "t0r3" not in bank        # excluded
        assert "t0r200" not in bank      # out of range
        assert "t1r0" not in bank        # wrong subtree
        assert "h0" not in bank

    def test_draw_matches_order_statistic_inverse_cdf(self):
        bank = self._bank()
        shadow = random.Random(9)
        u = shadow.random()
        expected = 2.0 * (1.0 - (1.0 - u) ** (1.0 / 98))
        delay, identity = bank.draw(2.0)
        assert delay == pytest.approx(expected)
        assert identity.startswith("t0r")

    def test_draw_never_returns_excluded_identity(self):
        bank = self._bank(excluded=(0, 1, 97, 50))
        for _ in range(500):
            delay, identity = bank.draw(1.0)
            assert 0.0 <= delay <= 1.0
            index = int(identity[len("t0r"):])
            assert index < 100
            assert index not in (0, 1, 97, 50)

    def test_peek_min_consumes_nothing(self):
        bank = self._bank()
        first = bank.peek_min(1.0)
        assert bank.peek_min(1.0) == first
        assert bank.draw(1.0) == first

    def test_remove_add_roundtrip(self):
        bank = self._bank(excluded=())
        assert bank.remove("t0r7") is True
        assert bank.size == 99 and "t0r7" not in bank
        assert bank.remove("t0r7") is False
        bank.add("t0r7")
        assert bank.size == 100 and "t0r7" in bank

    def test_empty_bank_peek(self):
        plan = dumbbell_subtrees(2, subtrees=1).subtree_plan
        bank = AnalyticBank(plan, 0, 2, {0, 1}, random.Random(1))
        assert bank.size == 0
        assert bank.peek_min(1.0) == (None, None)


# ---------------------------------------------------------------------------
# Summary block
# ---------------------------------------------------------------------------


class TestSummaryBlock:
    def test_empty_summary_has_the_fixed_keys(self):
        assert tuple(empty_aggregate_summary()) == AGGREGATE_SUMMARY_KEYS

    def test_non_aggregate_session_ships_zeroed_block(self):
        net = dumbbell(1, 2, BOTTLENECK)
        session = create_session(net, "h0", ["r0", "r1"])
        assert session.summary()["aggregate"] == empty_aggregate_summary()
        session.close()

    def test_hybrid_session_summary(self):
        net, session = hybrid_session(n=24, subtrees=2)
        block = session.summary()["aggregate"]
        assert tuple(block) == AGGREGATE_SUMMARY_KEYS
        assert block["enabled"] is True
        assert block["population"] == 24
        assert block["subtrees"] == 2
        assert block["exact_cohort"] + block["tail"] == 24
        assert block["modes"] == {"mirror": 2, "analytic": 0}
        session.close()


# ---------------------------------------------------------------------------
# Manager: promotion / demotion / conservation
# ---------------------------------------------------------------------------


def tail_identities(manager, k, count):
    plan = manager.plan
    found = [i for i in plan.identities(k) if manager.is_tail_identity(i)]
    assert len(found) >= count
    return found[:count]


class TestPromotionDemotion:
    def test_promote_demote_roundtrip(self):
        net, session = hybrid_session(
            aggregate_params={"predict_acker": False})
        mgr = session.aggregate
        identity = tail_identities(mgr, 0, 1)[0]
        before_tail = mgr.tail_count()

        assert mgr.promote(identity) is True
        assert not mgr.is_tail_identity(identity)
        assert mgr.tail_count() == before_tail - 1
        assert identity in session._rx_index
        assert mgr.conservation_errors() == []
        assert mgr.promote(identity) is False  # already exact

        assert mgr.demote(identity) is True
        assert mgr.is_tail_identity(identity)
        assert mgr.tail_count() == before_tail
        assert identity not in session._rx_index
        assert mgr.conservation_errors() == []
        assert mgr.demote(identity) is False   # already tail
        assert (mgr.promotions, mgr.demotions) == (1, 1)
        session.close()

    def test_sampled_members_never_demote(self):
        net, session = hybrid_session(
            aggregate_params={"predict_acker": False})
        mgr = session.aggregate
        pinned = [m.identity for s in mgr.subtrees
                  for m in s.exact.values() if m.pinned]
        assert pinned  # sample=1 per subtree by default
        for identity in pinned:
            assert mgr.demote(identity) is False
        session.close()

    def test_slot_exhaustion_defers(self):
        # slots=4 per subtree, one taken by the sampled member: the
        # 4th promotion into the same subtree must defer, not crash.
        net, session = hybrid_session(
            aggregate_params={"predict_acker": False})
        mgr = session.aggregate
        candidates = tail_identities(mgr, 0, 4)
        assert [mgr.promote(i) for i in candidates[:3]] == [True] * 3
        assert mgr.promote(candidates[3]) is False
        assert mgr.promotions_deferred == 1
        assert mgr.conservation_errors() == []
        session.close()

    def test_promote_foreign_identity_refused(self):
        net, session = hybrid_session(
            aggregate_params={"predict_acker": False})
        mgr = session.aggregate
        assert mgr.promote("h0") is False
        assert mgr.promote("t9r0") is False
        session.close()

    def test_on_acker_observed_promotes_tail(self):
        net, session = hybrid_session(
            aggregate_params={"predict_acker": False})
        mgr = session.aggregate
        identity = tail_identities(mgr, 1, 1)[0]
        mgr.on_acker_observed(identity)
        assert not mgr.is_tail_identity(identity)
        assert mgr.promotions == 1
        session.close()


# ---------------------------------------------------------------------------
# End-to-end: a small hybrid run
# ---------------------------------------------------------------------------


class TestHybridRun:
    def test_run_conserves_and_elects_a_member(self):
        net, session = hybrid_session(drops=(100, 250), stop_at=5.0)
        net.sim.run(until=6.0)
        mgr = session.aggregate
        summary = session.summary()
        assert mgr.conservation_errors() == []
        # The acker is a member identity, never a proxy/agg host.
        assert net.subtree_plan.subtree_of(summary["acker"]) is not None
        assert summary["odata_sent"] > 100
        assert summary["acks_received"] > 0
        session.close()

    def test_network_element_counts_aggregated_naks(self):
        net, session = hybrid_session(drops=(100, 250), stop_at=5.0)
        net.sim.run(until=6.0)
        element = net.nodes["T0"].interceptor
        metrics = element.metrics()
        # The proxy's synthetic NAK stands in for bank.size+1 members.
        assert metrics["aggregate_branches"] >= 1
        assert metrics["naks_aggregated"] > 0
        session.close()

    def test_telemetry_exports_agg_series(self):
        net, session = hybrid_session(drops=(100, 250), stop_at=5.0)
        net.sim.run(until=6.0)
        doc = session.metrics.export(experiment="test")
        assert doc["gauges"]["agg.population"] == 24
        assert "agg.promotions" in doc["counters"]
        assert "agg.synthetic_naks" in doc["counters"]
        session.close()

    def test_aggregate_requires_subtree_plan(self):
        net = dumbbell(1, 2, BOTTLENECK)
        with pytest.raises(ValueError, match="subtree"):
            create_session(net, "h0", [],
                           config=SessionConfig(aggregate=True))

    def test_aggregate_requires_virtual_members(self):
        net = dumbbell_subtrees(6, subtrees=2, members="real")
        with pytest.raises(ValueError, match="virtual"):
            create_session(net, "h0", [],
                           config=SessionConfig(aggregate=True))
