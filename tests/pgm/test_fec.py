"""Tests for the FEC repair substrate (§3.9 / Fig. 7 caveat)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pgm.fec import FecAssembler, FecPayload, FecSource, attach_fec_receiver


class TestFecSource:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FecSource(k=0)
        with pytest.raises(ValueError):
            FecSource(redundancy=-1)

    def test_block_structure(self):
        src = FecSource(k=3, redundancy=2)
        tags = [src.next_payload()[1] for _ in range(10)]
        assert [t.block for t in tags] == [0] * 5 + [1] * 5
        assert [t.index for t in tags[:5]] == [0, 1, 2, 3, 4]
        assert [t.is_parity for t in tags[:5]] == [False, False, False, True, True]

    def test_counters_and_overhead(self):
        src = FecSource(k=4, redundancy=1)
        for _ in range(10):
            src.next_payload()
        assert src.data_packets == 8
        assert src.parity_packets == 2
        assert src.overhead == pytest.approx(0.2)

    def test_limit_blocks(self):
        src = FecSource(k=2, redundancy=1, limit_blocks=2)
        count = 0
        while src.has_data():
            src.next_payload()
            count += 1
        assert count == 6

    def test_adaptive_redundancy_applies_next_block(self):
        src = FecSource(k=2, redundancy=0)
        src.next_payload()  # block 0 started with n=2
        src.set_redundancy(2)
        tags = [src.next_payload()[1] for _ in range(5)]
        # block 0 finishes with its original geometry (n=2, no parity)
        block0 = [t for t in tags if t.block == 0]
        assert all(t.n == 2 and not t.is_parity for t in block0)
        # block 1 carries the new redundancy
        block1 = [t for t in tags if t.block == 1]
        assert sum(t.is_parity for t in block1) == 2
        assert all(t.n == 4 for t in block1)

    def test_zero_redundancy_plain_stream(self):
        src = FecSource(k=4, redundancy=0)
        tags = [src.next_payload()[1] for _ in range(8)]
        assert not any(t.is_parity for t in tags)


class TestFecAssembler:
    def tag(self, block, index, k=3, n=5):
        return FecPayload(block, index, k, n)

    def test_decodes_with_any_k_packets(self):
        """The MDS property: any k of n reconstructs the block."""
        asm = FecAssembler()
        assert not asm.on_payload(self.tag(0, 4))  # parity
        assert not asm.on_payload(self.tag(0, 1))
        assert asm.on_payload(self.tag(0, 3))  # third packet: decoded
        assert asm.blocks_decoded == 1

    def test_fewer_than_k_insufficient(self):
        asm = FecAssembler()
        asm.on_payload(self.tag(0, 0))
        asm.on_payload(self.tag(0, 1))
        assert asm.blocks_decoded == 0
        assert asm.undecoded_blocks(0) == [0]

    def test_duplicates_do_not_count(self):
        asm = FecAssembler()
        for _ in range(5):
            asm.on_payload(self.tag(0, 0))
        assert asm.blocks_decoded == 0

    def test_residual_loss_counts_closed_blocks(self):
        asm = FecAssembler()
        # block 0 complete, block 1 incomplete, block 2 open (highest)
        for i in range(3):
            asm.on_payload(self.tag(0, i))
        asm.on_payload(self.tag(1, 0))
        asm.on_payload(self.tag(2, 0))
        assert asm.residual_block_loss() == pytest.approx(0.5)

    def test_mid_block_joiner_excludes_partial_first_block(self):
        """A receiver joining mid-session must not count the blocks it
        never observed (or its partial first block) as residual loss."""
        asm = FecAssembler()
        # first packet ever seen: block 50, index 2 (mid-block join)
        asm.on_payload(self.tag(50, 2))
        for i in range(3):
            asm.on_payload(self.tag(51, i))
        assert asm.residual_block_loss(up_to_block=51) == 0.0

    def test_from_start_receiver_counts_block_zero(self):
        asm = FecAssembler()
        asm.on_payload(self.tag(0, 0))
        asm.on_payload(self.tag(1, 0))
        asm.on_payload(self.tag(2, 0))
        # blocks 0 and 1 closed, neither decoded
        assert asm.residual_block_loss() == 1.0

    def test_block_callback(self):
        done = []
        asm = FecAssembler(on_block=done.append)
        for i in range(3):
            asm.on_payload(self.tag(7, i))
        assert done == [7]

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=6),
        st.data(),
    )
    @settings(max_examples=150)
    def test_decode_iff_k_survivors(self, k, r, data):
        """Property: a block decodes exactly when >= k distinct packets
        of it arrive, in any order."""
        n = k + r
        arrivals = data.draw(
            st.lists(st.integers(min_value=0, max_value=n - 1), max_size=2 * n)
        )
        asm = FecAssembler()
        for index in arrivals:
            asm.on_payload(FecPayload(0, index, k, n))
        decoded = asm.blocks_decoded == 1
        assert decoded == (len(set(arrivals)) >= k)


class TestEndToEndFec:
    def test_fec_recovers_without_any_rdata(self):
        """One receiver on a 3% lossy link, unreliable session with
        25% parity: essentially all blocks decode, zero repair
        traffic — the scalable alternative to Fig. 7's RDATA."""
        from repro.pgm import create_session
        from repro.simulator import LinkSpec, star

        spec = LinkSpec(2_000_000, 0.1, queue_bytes=30_000, loss_rate=0.03)
        net = star(1, spec, seed=77)
        source = FecSource(k=12, redundancy=4)
        session = create_session(net, "src", ["r0"], reliable=False, source=source)
        assembler = FecAssembler()
        attach_fec_receiver(session.receivers[0], assembler)
        net.run(until=120.0)
        assert session.sender.rdata_sent == 0
        assert assembler.blocks_decoded > 20
        assert assembler.residual_block_loss() < 0.02

    def test_insufficient_redundancy_leaves_residual_loss(self):
        from repro.pgm import create_session
        from repro.simulator import LinkSpec, star

        spec = LinkSpec(2_000_000, 0.1, queue_bytes=30_000, loss_rate=0.08)
        net = star(1, spec, seed=78)
        source = FecSource(k=16, redundancy=0)  # no protection
        session = create_session(net, "src", ["r0"], reliable=False, source=source)
        assembler = FecAssembler()
        attach_fec_receiver(session.receivers[0], assembler)
        net.run(until=120.0)
        assert assembler.residual_block_loss() > 0.3  # most blocks hit
