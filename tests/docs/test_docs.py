"""The docs CI, as tier-1 tests: links resolve, doc examples execute.

Runs the same checks as ``python tools/check_docs.py`` (the CI docs
job), so a broken anchor or a drifted code example fails the ordinary
test suite too.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(ROOT / "tools"))

import check_docs  # noqa: E402


def test_doc_set_is_nonempty():
    docs = list(check_docs.iter_markdown(ROOT))
    names = {d.name for d in docs}
    assert {"README.md", "DESIGN.md", "EXPERIMENTS.md",
            "API.md", "CONTROLLERS.md"} <= names


def test_no_broken_links_or_anchors():
    errors = check_docs.check_links(ROOT)
    assert errors == []


def test_docs_actually_contain_links():
    """Guard against the checker silently parsing nothing."""
    total = sum(
        1
        for doc in check_docs.iter_markdown(ROOT)
        for _ in check_docs.links_of(doc)
    )
    assert total >= 10


def test_controllers_examples_execute():
    fences = list(check_docs.python_fences(ROOT / "docs" / "CONTROLLERS.md"))
    assert len(fences) >= 3, "walkthrough examples went missing"
    errors = check_docs.run_doc_examples(ROOT)
    assert errors == []


def test_example_runner_restores_registry():
    """The walkthrough registers a demo backend; the runner must not
    leak it into this process (the arena iterates the registry)."""
    from repro.core.controller import controller_names

    before = controller_names()
    check_docs.run_doc_examples(ROOT)
    assert controller_names() == before


@pytest.mark.parametrize(
    ("heading", "slug"),
    [
        ("EXP-ARENA — controller head-to-head",
         "exp-arena--controller-head-to-head"),
        ("repro.core — the pgmcc engine", "reprocore--the-pgmcc-engine"),
        ("§4.3's configuration grid", "43s-configuration-grid"),
        ("`tfrc` — equation-based rate controller",
         "tfrc--equation-based-rate-controller"),
        ("Fig. 7: 100 receivers, uncorrelated 1 % loss",
         "fig-7-100-receivers-uncorrelated-1--loss"),
    ],
)
def test_slugify_matches_github(heading, slug):
    assert check_docs.slugify(heading) == slug


def test_cli_exit_status():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs.py"), "--links"],
        cwd=ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr + proc.stdout
    assert "docs check: ok" in proc.stdout
