"""Probe behaviour: sim-clock sampling, determinism, stop semantics,
null probe under a disabled registry."""

import pytest

from repro.simulator.engine import Simulator
from repro.telemetry import (
    MetricsRegistry,
    NullProbe,
    NullRegistry,
    TimeSeriesProbe,
    make_probe,
)


class TestTimeSeriesProbe:
    def test_samples_at_fixed_sim_interval(self):
        sim = Simulator()
        reg = MetricsRegistry()
        probe = make_probe(sim, reg, interval=1.0)
        probe.sample("clock", lambda: sim.now)
        probe.start()
        sim.run(until=5.5)
        pts = reg.timeseries("clock").points
        assert [t for t, _ in pts] == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert probe.samples_taken == 5

    def test_multiple_sources_share_one_timer(self):
        sim = Simulator()
        reg = MetricsRegistry()
        probe = make_probe(sim, reg, interval=0.5)
        probe.sample("a", lambda: 1.0).sample("b", lambda: 2.0)
        probe.start()
        sim.run(until=2.0)
        assert reg.timeseries("a").count == reg.timeseries("b").count == 4

    def test_sampling_deterministic_for_fixed_seed(self):
        """Two identical runs (fixed seeds everywhere) produce
        byte-identical series snapshots."""

        def run_once():
            import random

            rng = random.Random(7)
            sim = Simulator()
            reg = MetricsRegistry()
            state = {"v": 0.0}

            def jitter():
                state["v"] += rng.random()
                sim.schedule(0.3, jitter)

            sim.schedule(0.0, jitter)
            probe = make_probe(sim, reg, interval=0.25)
            probe.sample("v", lambda: state["v"])
            probe.start()
            sim.run(until=30.0)
            return reg.timeseries("v").snapshot()

        assert run_once() == run_once()

    def test_stop_cancels_timer_and_heap_drains(self):
        sim = Simulator()
        reg = MetricsRegistry()
        probe = make_probe(sim, reg, interval=1.0)
        probe.sample("x", lambda: 0.0)
        probe.start()
        sim.run(until=2.5)
        assert probe.running
        reg.close()  # the session-close path
        assert not probe.running
        sim.run()
        assert sim.pending() == 0

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            TimeSeriesProbe(Simulator(), MetricsRegistry(), interval=0.0)

    def test_registers_itself_for_close(self):
        sim = Simulator()
        reg = MetricsRegistry()
        probe = make_probe(sim, reg, interval=1.0).start()
        reg.close()
        assert not probe.running


class TestNullProbe:
    def test_disabled_registry_gets_null_probe(self):
        sim = Simulator()
        probe = make_probe(sim, NullRegistry(), interval=1.0)
        assert isinstance(probe, NullProbe)

    def test_null_probe_schedules_nothing(self):
        sim = Simulator()
        probe = make_probe(sim, NullRegistry(), interval=0.01)
        probe.sample("x", lambda: 1.0).start()
        sim.run(until=10.0)
        assert sim.events_processed == 0
        assert sim.pending() == 0
        assert probe.samples_taken == 0
