"""Registry semantics: get-or-create, pull bindings, spans, export
schema, null backend, as_registry normalisation."""

import json

import pytest

from repro.telemetry import (
    METRICS_SCHEMA,
    MetricsRegistry,
    NullRegistry,
    SpanTracker,
    as_registry,
)


class TestInstrumentsByName:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.timeseries("s") is reg.timeseries("s")
        assert reg.gauge("g") is reg.gauge("g")

    def test_push_values_appear_in_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.2)
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 3
        assert snap["gauges"]["g"] == 1.5
        assert snap["histograms"]["h"]["count"] == 1


class TestBindings:
    def test_binding_sampled_at_snapshot_time(self):
        reg = MetricsRegistry()
        state = {"n": 0}
        reg.bind("live.n", lambda: state["n"])
        assert reg.snapshot()["counters"]["live.n"] == 0
        state["n"] = 7
        assert reg.snapshot()["counters"]["live.n"] == 7

    def test_gauge_kind_lands_in_gauges(self):
        reg = MetricsRegistry()
        reg.bind("w", lambda: 2.5, kind="gauge")
        snap = reg.snapshot()
        assert snap["gauges"]["w"] == 2.5
        assert "w" not in snap["counters"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().bind("x", lambda: 0, kind="series")


class TestSpans:
    def test_begin_end_accumulates(self):
        spans = SpanTracker()
        spans.begin("phase", 1.0)
        spans.end("phase", 3.5)
        spans.begin("phase", 10.0)
        spans.end("phase", 11.0)
        stats = spans.stats("phase")
        assert stats["count"] == 2
        assert stats["total_s"] == pytest.approx(3.5)
        assert stats["max_s"] == pytest.approx(2.5)
        assert stats["mean_s"] == pytest.approx(1.75)

    def test_end_without_begin_is_noop(self):
        spans = SpanTracker()
        spans.end("ghost", 5.0)
        assert spans.stats("ghost") is None

    def test_rebegin_restarts(self):
        spans = SpanTracker()
        spans.begin("p", 0.0)
        spans.begin("p", 10.0)  # restart supersedes the first begin
        spans.end("p", 11.0)
        assert spans.stats("p")["total_s"] == pytest.approx(1.0)

    def test_close_all_ends_open_spans(self):
        spans = SpanTracker()
        spans.begin("a", 0.0)
        spans.begin("b", 1.0)
        spans.close_all(4.0)
        assert spans.open == []
        assert spans.stats("a")["total_s"] == pytest.approx(4.0)
        assert spans.stats("b")["total_s"] == pytest.approx(3.0)


class TestExport:
    def test_versioned_schema_and_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.meta["tsi"] = 7
        doc = reg.export(experiment="t")
        assert doc["schema"] == METRICS_SCHEMA == "pgmcc.session-metrics/v1"
        assert doc["enabled"] is True
        assert doc["meta"] == {"tsi": 7, "experiment": "t"}
        for section in ("counters", "gauges", "histograms", "series", "spans"):
            assert section in doc

    def test_export_is_json_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z.b").inc()
        reg.counter("a.a").inc()
        reg.bind("m.m", lambda: 1)
        doc = reg.export()
        json.dumps(doc)  # must be JSON-serialisable as-is
        assert list(doc["counters"]) == ["a.a", "m.m", "z.b"]

    def test_null_export_same_shape(self):
        doc = NullRegistry().export(experiment="t")
        assert doc["schema"] == METRICS_SCHEMA
        assert doc["enabled"] is False
        assert doc["counters"] == {} and doc["series"] == {}
        assert doc["spans"] == {"stats": {}, "open": []}


class TestNullRegistry:
    def test_all_calls_are_inert(self):
        reg = NullRegistry()
        reg.counter("a").inc(100)
        reg.bind("b", lambda: 1 / 0)  # never sampled
        reg.histogram("h").observe(1.0)
        reg.spans.begin("p", 0.0)
        reg.spans.end("p", 9.0)
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert reg.spans.stats("p") is None

    def test_close_stops_probes(self):
        class FakeProbe:
            stopped = False

            def stop(self):
                self.stopped = True

        reg = MetricsRegistry()
        probe = FakeProbe()
        reg.add_probe(probe)
        reg.close()
        assert probe.stopped


class TestAsRegistry:
    def test_normalisation(self):
        assert isinstance(as_registry(True), MetricsRegistry)
        assert isinstance(as_registry(False), NullRegistry)
        assert isinstance(as_registry(None), NullRegistry)
        shared = MetricsRegistry()
        assert as_registry(shared) is shared
        null = NullRegistry()
        assert as_registry(null) is null

    def test_fresh_instances(self):
        assert as_registry(True) is not as_registry(True)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_registry("yes")
