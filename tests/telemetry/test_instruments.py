"""Instrument semantics: exact stats, bounded deterministic reservoirs,
null twins."""

import pytest

from repro.telemetry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_TIMESERIES,
    Counter,
    Gauge,
    Histogram,
    TimeSeries,
)


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == 5

    def test_gauge_sets(self):
        g = Gauge("w")
        g.set(3.5)
        g.set(1.25)
        assert g.snapshot() == 1.25


class TestHistogram:
    def test_exact_stats_survive_decimation(self):
        h = Histogram("lat", max_samples=8)
        for i in range(1000):
            h.observe(float(i))
        # count/total/min/max/mean are exact regardless of reservoir size.
        assert h.count == 1000
        assert h.total == sum(range(1000))
        assert h.min == 0.0
        assert h.max == 999.0
        assert h.mean == pytest.approx(499.5)

    def test_reservoir_bounded(self):
        h = Histogram("lat", max_samples=16)
        for i in range(10_000):
            h.observe(float(i))
        assert len(h._samples) < 16

    def test_reservoir_deterministic(self):
        def fill():
            h = Histogram("lat", max_samples=32)
            for i in range(5000):
                h.observe((i * 37) % 101 / 10.0)
            return h.snapshot()

        assert fill() == fill()

    def test_percentiles_ordered(self):
        h = Histogram("lat")
        for i in range(200):
            h.observe(float(i))
        snap = h.snapshot()
        assert snap["p50"] <= snap["p90"] <= snap["p99"] <= snap["max"]
        assert snap["p50"] == pytest.approx(99.0, abs=5)

    def test_empty_snapshot(self):
        snap = Histogram("lat").snapshot()
        assert snap["count"] == 0
        assert snap["mean"] is None
        assert snap["p99"] is None

    def test_rejects_tiny_reservoir(self):
        with pytest.raises(ValueError):
            Histogram("lat", max_samples=1)


class TestTimeSeries:
    def test_records_points_in_order(self):
        ts = TimeSeries("w")
        for i in range(5):
            ts.append(float(i), i * 10.0)
        assert ts.points == [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0),
                             (3.0, 30.0), (4.0, 40.0)]
        assert ts.last() == (4.0, 40.0)

    def test_decimation_preserves_temporal_coverage(self):
        ts = TimeSeries("w", max_points=16)
        for i in range(1000):
            ts.append(float(i), 0.0)
        pts = ts.points
        assert len(pts) < 16
        assert ts.count == 1000
        # Thinned but still spanning the run, early to late.
        assert pts[0][0] < 100
        assert pts[-1][0] > 850
        assert [t for t, _ in pts] == sorted(t for t, _ in pts)

    def test_decimation_deterministic(self):
        def fill():
            ts = TimeSeries("w", max_points=8)
            for i in range(300):
                ts.append(i * 0.5, float(i % 7))
            return ts.snapshot()

        assert fill() == fill()


class TestNullTwins:
    def test_null_instruments_are_inert(self):
        NULL_COUNTER.inc(5)
        NULL_GAUGE.set(9.0)
        NULL_HISTOGRAM.observe(1.0)
        NULL_TIMESERIES.append(0.0, 1.0)
        assert NULL_COUNTER.snapshot() == 0
        assert NULL_GAUGE.snapshot() == 0.0
        assert NULL_HISTOGRAM.snapshot()["count"] == 0
        assert NULL_TIMESERIES.snapshot()["points"] == []

    def test_null_surface_matches_real(self):
        for real, null in ((Counter("c"), NULL_COUNTER),
                           (Gauge("g"), NULL_GAUGE),
                           (Histogram("h"), NULL_HISTOGRAM),
                           (TimeSeries("t"), NULL_TIMESERIES)):
            real_api = {m for m in dir(real)
                        if not m.startswith("_") and callable(getattr(real, m))}
            null_api = {m for m in dir(null)
                        if not m.startswith("_") and callable(getattr(null, m))}
            assert real_api <= null_api
