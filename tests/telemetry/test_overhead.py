"""Overhead smoke CLI: modes run, report prints, gate logic fires."""

import pytest

from repro.telemetry.overhead import best_of, main, measure


class TestMeasure:
    def test_all_modes_produce_positive_rates(self):
        for mode in ("baseline", "disabled", "enabled"):
            assert measure(mode, chain=2_000) > 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            measure("turbo")

    def test_best_of_takes_max(self):
        assert best_of("baseline", repeats=2, chain=1_000) > 0


class TestCli:
    def test_report_only_exits_zero(self, capsys):
        assert main(["--chain", "2000", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "baseline:" in out and "disabled:" in out and "enabled:" in out

    def test_impossible_threshold_fails(self, capsys):
        # Requiring disabled mode to be >=1000x faster than baseline
        # cannot pass: the gate path must return 1 and say why.
        assert main(["--chain", "2000", "--repeats", "1",
                     "--threshold", "-1000"]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_generous_threshold_passes(self):
        # Disabled mode pays a couple of no-op calls per event; it can
        # never be 95% slower than baseline.
        assert main(["--chain", "5000", "--repeats", "2",
                     "--threshold", "0.95"]) == 0
