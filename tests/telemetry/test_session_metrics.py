"""Session telemetry wiring: PgmSession.metrics, schema round-trips,
probe lifecycle inside a real session, disabled mode."""

import json

from repro.pgm import SUMMARY_SCHEMA, create_session
from repro.pgm.session import SessionConfig
from repro.simulator import LinkSpec, dumbbell
from repro.telemetry import METRICS_SCHEMA, MetricsRegistry, NullRegistry

LOSSY = LinkSpec(rate_bps=500_000, delay=0.050, queue_slots=30,
                 loss_rate=0.02)


def lossy_session(telemetry=True, seconds=20.0, seed=11):
    net = dumbbell(1, 2, LOSSY, seed=seed)
    session = create_session(
        net, "h0", ["r0", "r1"],
        config=SessionConfig(telemetry=telemetry, telemetry_interval=0.5),
    )
    net.run(until=seconds)
    return net, session


class TestSessionMetrics:
    def test_counters_track_protocol_state(self):
        net, session = lossy_session()
        doc = session.metrics.export()
        assert doc["schema"] == METRICS_SCHEMA
        assert doc["counters"]["sender.odata_sent"] == session.sender.odata_sent
        assert doc["counters"]["sender.naks_received"] > 0
        assert doc["counters"]["rx.delivered"] == sum(
            rx.delivered for rx in session.receivers)
        assert doc["gauges"]["rx.count"] == 2
        assert doc["gauges"]["cc.window_w"] > 0
        assert doc["meta"]["tsi"] == session.tsi
        session.close()

    def test_probe_series_recorded_on_sim_clock(self):
        net, session = lossy_session(seconds=10.0)
        series = session.metrics.snapshot()["series"]
        assert series["cc.window"]["count"] >= 18  # ~10s at 0.5s interval
        times = [t for t, _ in series["cc.window"]["points"]]
        assert times == sorted(times)
        assert times[-1] <= 10.0
        session.close()

    def test_repair_latency_histogram_fills_under_loss(self):
        net, session = lossy_session(seconds=30.0)
        hist = session.metrics.snapshot()["histograms"]["repair.latency_s"]
        assert hist["count"] > 0
        assert 0.0 < hist["mean"] < 10.0
        session.close()

    def test_sender_phase_spans(self):
        net, session = lossy_session(seconds=30.0)
        session.close()
        stats = session.metrics.spans.snapshot()["stats"]
        assert "slow_start" in stats
        assert stats["slow_start"]["count"] >= 1
        assert "loss_recovery" in stats

    def test_close_drains_probe_from_heap(self):
        net, session = lossy_session(seconds=5.0)
        session.close()
        net.sim.run()
        assert net.sim.pending() == 0

    def test_export_survives_json_round_trip(self):
        net, session = lossy_session(seconds=10.0)
        doc = session.metrics.export(experiment="round-trip")
        restored = json.loads(json.dumps(doc, sort_keys=True))
        assert restored == json.loads(json.dumps(doc, sort_keys=True))
        assert restored["schema"] == METRICS_SCHEMA
        assert restored["counters"] == doc["counters"]
        session.close()


class TestDisabledTelemetry:
    def test_null_backend_by_request(self):
        net, session = lossy_session(telemetry=False, seconds=10.0)
        assert isinstance(session.metrics, NullRegistry)
        doc = session.metrics.export()
        assert doc["enabled"] is False
        assert doc["counters"] == {}
        session.close()

    def test_disabled_session_behaves_identically(self):
        """Telemetry must be purely observational: the protocol's own
        counters match exactly with it on and off."""
        _, on = lossy_session(telemetry=True, seconds=15.0)
        _, off = lossy_session(telemetry=False, seconds=15.0)
        assert on.sender.odata_sent == off.sender.odata_sent
        assert on.sender.rdata_sent == off.sender.rdata_sent
        assert on.sender.acks_received == off.sender.acks_received
        assert [rx.delivered for rx in on.receivers] == [
            rx.delivered for rx in off.receivers]
        on.close(), off.close()

    def test_shared_registry_passthrough(self):
        shared = MetricsRegistry()
        net = dumbbell(1, 1, LOSSY, seed=3)
        session = create_session(net, "h0", ["r0"],
                                 config=SessionConfig(telemetry=shared))
        assert session.metrics is shared
        session.close()


class TestSummaryInteroperability:
    def test_summary_matches_metrics_export(self):
        net, session = lossy_session(seconds=15.0)
        summary = session.summary()
        doc = session.metrics.export()
        assert summary["schema"] == SUMMARY_SCHEMA
        assert summary["odata_sent"] == doc["counters"]["sender.odata_sent"]
        assert summary["stalls"] == doc["counters"]["cc.stalls"]
        assert summary["acker_switches"] == doc["counters"]["cc.acker_switches"]
        assert summary["window"] == doc["gauges"]["cc.window_w"]
        session.close()

    def test_summary_phases_and_repair_latency_sections(self):
        net, session = lossy_session(seconds=20.0)
        session.close()
        summary = session.summary()
        assert "slow_start" in summary["phases"]
        assert summary["repair_latency"]["count"] >= 0

    def test_summary_works_with_telemetry_disabled(self):
        net, session = lossy_session(telemetry=False, seconds=10.0)
        summary = session.summary()
        assert summary["schema"] == SUMMARY_SCHEMA
        assert summary["odata_sent"] > 0
        assert summary["phases"] == {}
        assert summary["repair_latency"] is None
        session.close()
