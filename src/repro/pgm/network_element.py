"""PGM network elements (§3.1, §3.7).

A PGM-enabled router keeps per-(session, sequence) NAK state so that:

* only the first NAK for a data segment is forwarded towards the
  source — subsequent ones are *suppressed* (answered with an NCF on
  the arrival branch) at least until the state expires;
* repair traffic (RDATA) is *selectively forwarded* only to the
  branches from which a matching NAK was heard;
* SPMs are rewritten hop-by-hop so downstream nodes learn their
  upstream PGM hop.

§3.7's refinement is implemented behind ``rx_loss_aware``: a NAK whose
``rx_loss`` exceeds the value already forwarded upstream for that
sequence is forwarded anyway (and the stored value updated), so the
acker election still hears about the worst receiver behind this NE.

Everything here is optional: pgmcc must work end to end with plain
routers (incremental deployment), which is simply a router without an
interceptor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simulator.node import Router
from ..simulator.packet import Packet
from . import constants as C
from .packets import Ack, Nak, Ncf, OData, RData, Spm, decode


@dataclass
class _NakEntry:
    created: float
    branches: set[str] = field(default_factory=set)
    forwarded_rx_loss: int = 0
    #: repair already forwarded; the entry then only *eliminates*
    #: duplicate NAKs until it expires (PGM's NAK elimination state).
    repaired: bool = False
    #: when the repair passed through (drives the soft-state refresh:
    #: a re-NAK arriving well after the repair means the repair was
    #: lost downstream, so the elimination state must not eat it).
    repaired_at: float = 0.0


class PgmNetworkElement:
    """Router-resident PGM logic, installed as a packet interceptor."""

    def __init__(
        self,
        router: Router,
        suppress: bool = True,
        rx_loss_aware: bool = False,
        selective_repair: bool = True,
        state_lifetime: float = C.NE_STATE_LIFETIME,
        repair_linger: float = C.NE_REPAIR_LINGER,
    ):
        self.router = router
        self.sim = router.sim
        self.suppress = suppress
        self.rx_loss_aware = rx_loss_aware
        self.selective_repair = selective_repair
        self.state_lifetime = state_lifetime
        self.repair_linger = repair_linger
        #: fault-injection hook: a disabled NE passes every packet
        #: through untouched, degrading the router to plain forwarding
        #: (the incremental-deployment fallback, §3.1).  Existing NAK
        #: state is retained for when the element comes back.
        self.enabled = True
        self._nak_state: dict[tuple[int, int], _NakEntry] = {}
        self._fake_seen: dict[tuple[int, int], float] = {}
        #: (tsi, branch) -> member count an aggregate proxy stands for
        #: (repro.pgm.aggregate side-channel, no wire-format change)
        self._aggregate_weight: dict[tuple[int, str], int] = {}
        #: upstream PGM hop per session, learned from SPM arrivals
        self.upstream: dict[int, str] = {}
        #: session -> multicast group, learned from downstream traffic
        self.group_of: dict[int, str] = {}
        # statistics
        self.naks_seen = 0
        self.naks_forwarded = 0
        self.naks_suppressed = 0
        self.naks_forwarded_rx_loss = 0
        self.rdata_selective = 0
        self.rdata_flooded = 0
        self.ncfs_sent = 0
        self.naks_refreshed = 0
        self.malformed_dropped = 0
        self.naks_aggregated = 0
        router.set_interceptor(self)

    def register_aggregate_branch(self, tsi: int, branch: str,
                                  weight: int) -> None:
        """Declare ``branch`` an aggregate proxy speaking for ``weight``
        receivers of session ``tsi``.

        A NAK heard on that branch then counts as ``weight`` member
        NAKs in the suppression accounting (``naks_aggregated``) —
        exactly the NAKs a full population would have sent and this NE
        would have absorbed.  Forwarding behaviour is unchanged: the
        proxy already emits only the would-be suppression winner.
        """
        if weight > 1:
            self._aggregate_weight[(tsi, branch)] = weight
        else:
            self._aggregate_weight.pop((tsi, branch), None)

    # -- interceptor entry point ---------------------------------------------

    def intercept(self, packet: Packet, from_node: str) -> bool:
        msg = packet.payload
        if isinstance(msg, (bytes, bytearray)):
            # A mangled frame: a PGM router verifies the checksum like
            # any other hop.  Undecodable bytes are consumed (dropped)
            # here; decodable ones are plain-forwarded and left to the
            # end hosts to validate — NE state must never be built
            # from fields a bit flip may have rewritten.
            try:
                decode(bytes(msg))
            except ValueError:
                self.malformed_dropped += 1
                return True
            return False
        if not self.enabled:
            return False
        if isinstance(msg, Spm):
            return self._handle_spm(packet, msg, from_node)
        if isinstance(msg, Nak):
            return self._handle_nak(packet, msg, from_node)
        if isinstance(msg, RData):
            self.group_of.setdefault(msg.tsi, packet.dst)
            return self._handle_rdata(packet, msg, from_node)
        if isinstance(msg, OData):
            self.group_of.setdefault(msg.tsi, packet.dst)
            return False  # normal multicast forwarding
        if isinstance(msg, (Ncf, Ack)):
            return False  # pass through
        return False

    # -- SPM: learn upstream, rewrite hop-by-hop ------------------------------

    def _handle_spm(self, packet: Packet, spm: Spm, from_node: str) -> bool:
        self.upstream[spm.tsi] = from_node
        self.group_of.setdefault(spm.tsi, packet.dst)
        branches = self.router.multicast_routes.get(packet.dst, ())
        for branch in branches:
            if branch == from_node:
                continue
            rewritten = Spm(spm.tsi, spm.spm_seq, spm.trail, spm.lead,
                            path=self.router.name)
            self.router.send_via(
                branch,
                Packet(packet.src, packet.dst, packet.size, rewritten, C.PROTO,
                       created_at=packet.created_at, hops=packet.hops),
            )
        return True

    # -- NAK: suppression + state creation --------------------------------------

    def _handle_nak(self, packet: Packet, nak: Nak, from_node: str) -> bool:
        self.naks_seen += 1
        weight = self._aggregate_weight.get((nak.tsi, from_node), 0)
        if weight > 1:
            # The proxy's NAK is the one its tail's suppression lottery
            # let through; the other weight-1 never left this subtree.
            self.naks_aggregated += weight - 1
        now = self.sim.now
        if nak.fake:
            # Fake NAKs exist purely to seed the election; they create
            # no repair state but duplicates are still deduplicated.
            key = (nak.tsi, nak.seq)
            seen = self._fake_seen.get(key)
            if self.suppress and seen is not None and now - seen < self.state_lifetime:
                self.naks_suppressed += 1
                return True
            self._fake_seen[key] = now
            self.naks_forwarded += 1
            # Interceptors borrow packets: retain before re-forwarding
            # the same object (the router releases its reference when
            # we return True).
            self.router.forward_unicast(packet.retain())
            return True

        key = (nak.tsi, nak.seq)
        entry = self._nak_state.get(key)
        if entry is not None and now - entry.created >= self.state_lifetime:
            del self._nak_state[key]
            entry = None
        elif (entry is not None and entry.repaired
                and now - entry.repaired_at >= self.repair_linger):
            # Soft-state refresh: the repair passed a while ago yet a
            # receiver is NAKing again — the RDATA must have died
            # downstream (partition, loss burst).  Retire the stale
            # elimination state and let this NAK through instead of
            # eating the retry until the full lifetime expires.
            del self._nak_state[key]
            entry = None
            self.naks_refreshed += 1

        if entry is None:
            self._nak_state[key] = _NakEntry(
                created=now,
                branches={from_node},
                forwarded_rx_loss=nak.report.rx_loss,
            )
            self._send_ncf(nak, from_node)
            self.naks_forwarded += 1
            self.router.forward_unicast(packet.retain())
            self._maybe_gc(now)
            return True

        # Replicated NAK from the same subtree: record the branch and
        # confirm it, then suppress — unless the §3.7 rule applies.
        if not entry.repaired:
            entry.branches.add(from_node)
        self._send_ncf(nak, from_node)
        if not self.suppress:
            self.naks_forwarded += 1
            self.router.forward_unicast(packet.retain())
            return True
        if self.rx_loss_aware and nak.report.rx_loss > entry.forwarded_rx_loss:
            entry.forwarded_rx_loss = nak.report.rx_loss
            self.naks_forwarded += 1
            self.naks_forwarded_rx_loss += 1
            self.router.forward_unicast(packet.retain())
            return True
        self.naks_suppressed += 1
        return True

    def _send_ncf(self, nak: Nak, branch: str) -> None:
        group = self.group_of.get(nak.tsi)
        if group is None:
            return
        ncf = Ncf(nak.tsi, nak.seq)
        self.router.send_via(
            branch, Packet(self.router.name, group, 64, ncf, C.PROTO)
        )
        self.ncfs_sent += 1

    def _maybe_gc(self, now: float) -> None:
        if len(self._nak_state) < 4096 and len(self._fake_seen) < 4096:
            return
        self._nak_state = {
            k: e for k, e in self._nak_state.items()
            if now - e.created < self.state_lifetime
        }
        self._fake_seen = {
            k: t for k, t in self._fake_seen.items()
            if now - t < self.state_lifetime
        }

    # -- RDATA: selective forwarding --------------------------------------------

    def _handle_rdata(self, packet: Packet, rdata: RData, from_node: str) -> bool:
        if not self.selective_repair:
            return False
        entry = self._nak_state.get((rdata.tsi, rdata.seq))
        if entry is None or entry.repaired:
            # No live repair state (expired, never NAKed here, or
            # already repaired): PGM floods the repair to all branches.
            self.rdata_flooded += 1
            return False
        for branch in entry.branches:
            if branch == from_node:
                continue
            # Borrowed packet, one reference per re-emitted branch.
            self.router.send_via(branch, packet.retain())
        self.rdata_selective += 1
        # Keep the entry as NAK-elimination state until it expires, so
        # straggler NAKs (e.g. from long-RTT receivers that detected
        # the loss late) are still suppressed after the repair passed.
        entry.repaired = True
        entry.repaired_at = self.sim.now
        entry.branches = set()
        return True

    # -- introspection -----------------------------------------------------

    def metrics(self) -> dict:
        """NE counters for telemetry pull-bindings."""
        return {
            "naks_seen": self.naks_seen,
            "naks_forwarded": self.naks_forwarded,
            "naks_suppressed": self.naks_suppressed,
            "naks_forwarded_rx_loss": self.naks_forwarded_rx_loss,
            "rdata_selective": self.rdata_selective,
            "rdata_flooded": self.rdata_flooded,
            "ncfs_sent": self.ncfs_sent,
            "naks_refreshed": self.naks_refreshed,
            "naks_aggregated": self.naks_aggregated,
            "aggregate_branches": len(self._aggregate_weight),
            "malformed_dropped": self.malformed_dropped,
            "state_entries": len(self._nak_state),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PgmNetworkElement {self.router.name} "
            f"fwd={self.naks_forwarded} sup={self.naks_suppressed}>"
        )
