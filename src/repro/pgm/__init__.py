"""PGM protocol substrate with pgmcc congestion control.

Public surface::

    from repro.pgm import (
        PgmSender, PgmReceiver, PgmNetworkElement, PgmSession,
        SessionConfig, create_session, add_receiver,
        enable_network_elements, BulkSource, FiniteSource,
    )
"""

from . import constants
from .aggregate import (
    AggregateManager,
    AggregateParams,
    MirrorBank,
    AnalyticBank,
    TailProxy,
)
from .fec import FecAssembler, FecPayload, FecSource, attach_fec_receiver
from .guard import FeedbackGuard, GuardConfig, GuardVerdict
from .invariants import InvariantChecker, InvariantViolation, Violation
from .liveness import LivenessConfig, LivenessWatchdog
from .misbehavior import Misbehavior, make_behavior
from .network_element import PgmNetworkElement
from .packets import Ack, Nak, Ncf, OData, PgmMessage, RData, Spm, decode
from .rate_limiter import TokenBucket
from .receiver import PgmReceiver
from .sender import BulkSource, DataSource, FiniteSource, PgmSender
from .session import (
    SUMMARY_SCHEMA,
    PgmSession,
    SessionConfig,
    add_receiver,
    create_session,
    enable_network_elements,
)

__all__ = [
    "constants",
    "AggregateManager",
    "AggregateParams",
    "MirrorBank",
    "AnalyticBank",
    "TailProxy",
    "FeedbackGuard",
    "GuardConfig",
    "GuardVerdict",
    "Misbehavior",
    "make_behavior",
    "InvariantChecker",
    "InvariantViolation",
    "Violation",
    "LivenessConfig",
    "LivenessWatchdog",
    "FecAssembler",
    "FecPayload",
    "FecSource",
    "attach_fec_receiver",
    "PgmNetworkElement",
    "Ack",
    "Nak",
    "Ncf",
    "OData",
    "PgmMessage",
    "RData",
    "Spm",
    "decode",
    "TokenBucket",
    "PgmReceiver",
    "BulkSource",
    "DataSource",
    "FiniteSource",
    "PgmSender",
    "PgmSession",
    "SessionConfig",
    "SUMMARY_SCHEMA",
    "add_receiver",
    "create_session",
    "enable_network_elements",
]
