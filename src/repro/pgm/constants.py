"""PGM protocol constants.

Packet type codes, header sizes, and the protocol timers (NAK backoff
and retry intervals, SPM heartbeat) used by senders, receivers and
network elements.  Values follow the PGM draft's structure scaled to
the paper's testbed timescales; all are overridable per session.
"""

from __future__ import annotations

#: Simulator protocol tag for all PGM traffic.
PROTO = "pgm"

# -- packet type codes (one byte on the wire) -------------------------------
SPM = 0x00
ODATA = 0x04
RDATA = 0x05
NAK = 0x08
NCF = 0x0A
#: positive acknowledgement — the packet type pgmcc adds to PGM (§3.1).
ACK = 0x0D

TYPE_NAMES = {
    SPM: "SPM",
    ODATA: "ODATA",
    RDATA: "RDATA",
    NAK: "NAK",
    NCF: "NCF",
    ACK: "ACK",
}

# -- wire sizes (bytes) ----------------------------------------------------
#: common PGM header: magic, type, options length, TSI.
HEADER_SIZE = 16
#: data-packet fixed part: seq, trail, timestamp, payload length.
DATA_FIXED_SIZE = 18
#: per-packet IP+UDP encapsulation accounted by the simulator.
IP_UDP_OVERHEAD = 28

#: default pgmcc payload (paper §4: 1400 bytes, so that pgmcc packets
#: and 1460-byte-payload TCP packets are approximately the same size).
DEFAULT_PAYLOAD = 1400

# -- protocol timers (seconds) -----------------------------------------------
#: receiver NAK backoff: uniform random delay before the first NAK for
#: a missing packet (feedback suppression via randomisation, §3.1).
NAK_BO_IVL = 0.050
#: NAK retry interval while no NCF confirms it.  Must comfortably
#: exceed the path RTT or receivers re-NAK while the first NAK's NCF
#: is still in flight, multiplying repair traffic (the PGM draft's
#: defaults are of this order).
NAK_RPT_IVL = 2.0
#: how long to await RDATA after an NCF before re-NAKing.
NAK_RDATA_IVL = 2.0
#: maximum NAK attempts per sequence before giving up.
NAK_MAX_RETRIES = 10
#: SPM heartbeat period (lets NEs refresh upstream state).
SPM_IVL = 0.500
#: NE per-sequence NAK state lifetime (suppression window).
NE_STATE_LIFETIME = 1.0
#: how long after forwarding an RDATA a repaired NE entry still
#: eliminates duplicate NAKs; a re-NAK later than this refreshes the
#: entry instead (the repair evidently died downstream).
NE_REPAIR_LINGER = 0.25

#: default sender transmit-window capacity, in packets, for repairs.
TX_WINDOW_PACKETS = 8192
