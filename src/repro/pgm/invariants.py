"""Runtime protocol invariants (the chaos suite's oracle).

:class:`InvariantChecker` attaches to a live :class:`PgmSession` and
asserts, *while the simulation runs*, the properties the paper's
design arguments rest on:

``token-accounting``
    ``T`` never goes negative, ``W >= 1``, the post-halving ignore
    counter never underflows, and the sender's outstanding-packet
    table agrees with an independently maintained in-flight count
    (tokens spent minus packets acknowledged or declared lost) —
    the "T vs true in flight" bookkeeping of §3.4.

``single-halving-per-rtt``
    at most one window halving per RTT: a congestion reaction is only
    legal for a loss *beyond* the sequence recorded at the previous
    reaction (§3.4's "ignore further congestion events for one RTT").

``rxw-lead-monotonic``
    each receiver's ``rxw_lead`` never moves backwards, and no
    receiver report ever claims a lead beyond what the sender has
    transmitted.

``link-conservation``
    on every link, at any instant: ``sent + duplicated == delivered +
    dropped (loss/corrupt/fault/queue) + queued + in transit``.

``switch-no-reaction``
    an acker switch is a *move*, not a congestion signal (§3.5): the
    election may change the representative but must leave the window
    untouched and trigger no halving.

``quarantined-no-acker``
    when a :class:`~repro.pgm.guard.FeedbackGuard` is active, a
    quarantined receiver never holds ackership: its reports must not
    win (or keep) the election while its control influence is revoked.

``aggregate-conservation``
    under hybrid fidelity (:mod:`repro.pgm.aggregate`), the exact
    cohort and the analytic tail partition the population exactly —
    per subtree and in total — and every exact-cohort identity is
    backed by a live receiver engine.  Aggregated fan-out is
    tolerated; the exact-cohort accounting is binding.

``aggregate-promotion``
    a tail identity that wins the acker election must be promoted to
    the exact cohort within ``AggregateParams.promotion_grace``
    seconds — ackership may never *rest* on analytic state.

The checker works by wrapping the relevant methods on attach — the
unattached hot path pays nothing.  With ``strict=True`` (the default,
and what the fuzzers use as an oracle) the first violation raises
:class:`InvariantViolation`; with ``strict=False`` violations are
collected in :attr:`violations` for experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .receiver import PgmReceiver
    from .session import PgmSession

#: All rule names, for reports and filtering.
RULES = (
    "token-accounting",
    "single-halving-per-rtt",
    "rxw-lead-monotonic",
    "link-conservation",
    "switch-no-reaction",
    "quarantined-no-acker",
    "aggregate-conservation",
    "aggregate-promotion",
)


class InvariantViolation(AssertionError):
    """Raised in strict mode on the first violated invariant."""


@dataclass(frozen=True)
class Violation:
    """One observed invariant violation."""

    time: float
    rule: str
    detail: str


class InvariantChecker:
    """Attachable runtime invariant oracle for one PGM session.

    Args:
        session: the session to watch (sender must exist; receivers
            may join later — new ones are picked up on each periodic
            check).
        strict: raise on the first violation (fuzz-oracle mode) rather
            than just recording it.
        check_interval: simulated seconds between periodic sweeps
            (link conservation + state sanity).
    """

    def __init__(self, session: "PgmSession", strict: bool = True,
                 check_interval: float = 1.0):
        if check_interval <= 0:
            raise ValueError("check_interval must be positive")
        self.session = session
        self.net = session.network
        self.sim = session.network.sim
        self.strict = strict
        self.check_interval = check_interval
        self.violations: list[Violation] = []
        self.checks_run = 0
        self._attached = False
        self._saved: list[tuple[object, str, object]] = []
        self._wrapped_receivers: set[int] = set()
        self._tick_event = None
        # independent in-flight ledger for token-accounting
        self._in_flight = 0
        self._restarts_seen = 0
        self._last_reaction_recovery: Optional[int] = None
        #: >0 while inside controller feedback processing: the token
        #: grant -> pump path re-enters register_data before the ACK
        #: digest is reconciled, so ledger comparisons are deferred to
        #: the end of the outer call.
        self._in_feedback = 0
        #: (acker, since) while a tail identity holds ackership
        #: unpromoted (aggregate-promotion grace tracking)
        self._tail_acker_since: Optional[tuple[str, float]] = None

    # -- lifecycle ---------------------------------------------------------

    def attach(self) -> "InvariantChecker":
        """Install the wrappers and start the periodic sweep."""
        if self._attached:
            return self
        self._attached = True
        controller = self.session.sender.controller
        self._in_flight = controller.tracker.outstanding_count
        self._restarts_seen = controller.restarts
        self._wrap(controller, "register_data", self._wrap_register_data)
        self._wrap(controller, "on_ack", self._wrap_on_ack)
        self._wrap(controller, "on_nak", self._wrap_on_nak)
        self._wrap(controller.window, "on_loss", self._wrap_on_loss)
        for rx in self.session.receivers:
            self._wrap_receiver(rx)
        self._tick_event = self.sim.schedule(self.check_interval, self._tick)
        return self

    def detach(self) -> None:
        """Remove every wrapper and stop the periodic sweep."""
        for owner, name, original in self._saved:
            if original is None:
                try:
                    delattr(owner, name)
                except AttributeError:
                    pass
            else:
                setattr(owner, name, original)
        self._saved.clear()
        self._wrapped_receivers.clear()
        if self._tick_event is not None:
            self.sim.cancel(self._tick_event)
            self._tick_event = None
        self._attached = False

    # -- results -----------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> str:
        """Human-readable summary for experiment output."""
        if self.ok:
            return f"invariants: ok ({self.checks_run} sweeps, 0 violations)"
        lines = [f"invariants: {len(self.violations)} violation(s):"]
        for v in self.violations[:20]:
            lines.append(f"  t={v.time:.3f} [{v.rule}] {v.detail}")
        return "\n".join(lines)

    def verify_now(self) -> None:
        """Run the periodic sweep's checks immediately (e.g. at the
        end of a run, after the heap has drained)."""
        self._sweep()

    # -- internals ---------------------------------------------------------

    def _violate(self, rule: str, detail: str) -> None:
        violation = Violation(self.sim.now, rule, detail)
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolation(f"t={violation.time:.3f} [{rule}] {detail}")

    def _wrap(self, owner, name: str, factory) -> None:
        original_bound = getattr(owner, name)
        # Record whether the attribute lived on the instance (so detach
        # can restore exactly) — wrappers always go on the instance.
        instance_attr = name in vars(owner)
        self._saved.append((owner, name, original_bound if instance_attr else None))
        setattr(owner, name, factory(original_bound))

    def _resync_after_stall(self, controller) -> None:
        # Keyed on ``restarts`` (stall restarts + watchdog degraded
        # restarts): any W=T=1 restart wipes the tracker, so the
        # ledger realigns regardless of which machinery fired it.
        if controller.restarts != self._restarts_seen:
            self._restarts_seen = controller.restarts
            self._in_flight = controller.tracker.outstanding_count

    # wrapper factories ----------------------------------------------------

    def _wrap_register_data(self, original):
        def register_data(seq: int):
            controller = self.session.sender.controller
            self._resync_after_stall(controller)
            elicit = original(seq)
            self._in_flight += 1
            window = controller.window
            if window.tokens < -1e-9:
                self._violate("token-accounting",
                              f"tokens went negative: {window.tokens:.6f}")
            if self._in_feedback == 0:
                self._check_ledger(controller, "after transmit")
            return elicit

        return register_data

    def _wrap_on_ack(self, original):
        def on_ack(ack_seq: int, bitmap: int, report):
            controller = self.session.sender.controller
            self._resync_after_stall(controller)
            if report.rxw_lead > controller.last_tx_seq:
                self._violate(
                    "rxw-lead-monotonic",
                    f"ACK report claims lead {report.rxw_lead} beyond "
                    f"last transmitted {controller.last_tx_seq}",
                )
            self._in_feedback += 1
            try:
                digest = original(ack_seq, bitmap, report)
            finally:
                self._in_feedback -= 1
            self._resync_after_stall(controller)
            self._in_flight -= len(digest.newly_acked) + len(digest.losses_declared)
            self._check_window(controller.window)
            if self._in_feedback == 0:
                self._check_ledger(controller, f"after ACK {ack_seq}")
            self._check_quarantine(f"after ACK {ack_seq}")
            return digest

        return on_ack

    def _wrap_on_nak(self, original):
        def on_nak(report):
            controller = self.session.sender.controller
            if report.rxw_lead > controller.last_tx_seq:
                self._violate(
                    "rxw-lead-monotonic",
                    f"NAK report claims lead {report.rxw_lead} beyond "
                    f"last transmitted {controller.last_tx_seq}",
                )
            window = controller.window
            w_before = window.w
            reacted_before = window.losses_reacted
            ignore_before = window.ignore_acks
            self._in_feedback += 1
            try:
                switched = original(report)
            finally:
                self._in_feedback -= 1
            if switched:
                if window.w != w_before:
                    self._violate(
                        "switch-no-reaction",
                        f"acker switch changed W: {w_before:.3f} -> {window.w:.3f}",
                    )
                if window.losses_reacted != reacted_before:
                    self._violate(
                        "switch-no-reaction",
                        "acker switch triggered a congestion reaction",
                    )
                if window.ignore_acks != ignore_before:
                    self._violate(
                        "switch-no-reaction",
                        "acker switch changed the post-halving ignore counter",
                    )
            self._check_quarantine("after NAK report")
            return switched

        return on_nak

    def _wrap_on_loss(self, original):
        def on_loss(loss_seq: int, last_tx_seq: int, in_flight=None):
            window = self.session.sender.controller.window
            reacted = original(loss_seq, last_tx_seq, in_flight=in_flight)
            if reacted:
                prev = self._last_reaction_recovery
                if prev is not None and loss_seq <= prev:
                    self._violate(
                        "single-halving-per-rtt",
                        f"halving for loss {loss_seq} inside the previous "
                        f"recovery window (<= {prev})",
                    )
                self._last_reaction_recovery = window.recovery_seq
                if window.w < 1.0:
                    self._violate("token-accounting",
                                  f"W fell below 1 after halving: {window.w:.6f}")
            return reacted

        return on_loss

    def _wrap_receiver(self, rx: "PgmReceiver") -> None:
        if id(rx) in self._wrapped_receivers:
            return
        self._wrapped_receivers.add(id(rx))

        original = rx.cc.on_data
        checker = self

        def on_data(seq: int, now: float, sender_timestamp=None):
            lead_before = rx.cc.rxw_lead
            outcome = original(seq, now, sender_timestamp)
            if rx.cc.rxw_lead < lead_before:
                checker._violate(
                    "rxw-lead-monotonic",
                    f"{rx.rx_id}: rxw_lead moved backwards "
                    f"{lead_before} -> {rx.cc.rxw_lead}",
                )
            return outcome

        self._saved.append((rx.cc, "on_data", None))
        rx.cc.on_data = on_data

    # periodic + shared checks ---------------------------------------------

    def _check_window(self, window) -> None:
        if window.w < 1.0:
            self._violate("token-accounting", f"W below 1: {window.w:.6f}")
        if window.ignore_acks < 0:
            self._violate("token-accounting",
                          f"ignore counter negative: {window.ignore_acks}")
        if window.tokens < -1e-9 or window.tokens > 1e12:
            self._violate("token-accounting",
                          f"token count out of range: {window.tokens}")

    def _check_quarantine(self, context: str) -> None:
        guard = getattr(self.session.sender, "guard", None)
        if guard is None:
            return
        acker = self.session.sender.controller.current_acker
        if acker is not None and guard.is_quarantined(acker):
            self._violate(
                "quarantined-no-acker",
                f"quarantined receiver {acker} holds ackership ({context})",
            )

    def _check_ledger(self, controller, context: str) -> None:
        actual = controller.tracker.outstanding_count
        if actual != self._in_flight:
            self._violate(
                "token-accounting",
                f"in-flight ledger {self._in_flight} != outstanding "
                f"table {actual} ({context})",
            )

    def _sweep(self) -> None:
        self.checks_run += 1
        for node in self.net.nodes.values():
            for link in node.links.values():
                if not link.conserves_packets():
                    self._violate(
                        "link-conservation",
                        f"{link.name}: sent={link.sent} dup={link.fault_duplicates} "
                        f"delivered={link.delivered} loss={link.random_drops} "
                        f"corrupt={link.corrupt_drops} fault={link.fault_drops} "
                        f"filter={link.filter_drops} "
                        f"qdrop={link.queue.drops} queued={len(link.queue)} "
                        f"transit={link.in_transit}",
                    )
        controller = self.session.sender.controller
        self._resync_after_stall(controller)
        self._check_window(controller.window)
        self._check_quarantine("periodic sweep")
        self._check_aggregate(controller)
        # Receivers that joined after attach get wrapped here.
        for rx in self.session.receivers:
            self._wrap_receiver(rx)

    def _check_aggregate(self, controller) -> None:
        manager = getattr(self.session, "aggregate", None)
        if manager is None:
            return
        for detail in manager.conservation_errors():
            self._violate("aggregate-conservation", detail)
        acker = controller.current_acker
        if acker is not None and manager.is_tail_identity(acker):
            now = self.sim.now
            if (self._tail_acker_since is None
                    or self._tail_acker_since[0] != acker):
                self._tail_acker_since = (acker, now)
            elif now - self._tail_acker_since[1] > manager.params.promotion_grace:
                self._violate(
                    "aggregate-promotion",
                    f"acker {acker} is an unpromoted tail identity "
                    f"(for {now - self._tail_acker_since[1]:.3f}s, grace "
                    f"{manager.params.promotion_grace}s)",
                )
        else:
            self._tail_acker_since = None

    def _tick(self) -> None:
        self._sweep()
        self._tick_event = self.sim.schedule(self.check_interval, self._tick)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "attached" if self._attached else "detached"
        return (
            f"<InvariantChecker {state} sweeps={self.checks_run} "
            f"violations={len(self.violations)}>"
        )
