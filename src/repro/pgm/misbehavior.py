"""Receiver misbehaviour implementations (the Byzantine endpoints).

pgmcc's control loop runs entirely on unauthenticated receiver
feedback (§3.2, §3.5): the acker election believes every report's
``rxw_lead`` and ``rx_loss``, and the window clock believes every ACK
bitmap.  This module implements the attacker side of that trust
problem — the behaviours the
:mod:`repro.simulator.faults` receiver-misbehavior episodes switch on:

``greedy-acker``
    the ackership-capture + optimistic-ACK attack.  The sender reads
    the two feedback channels for different things: reported
    ``rx_loss`` feeds only the §3.5 election metric, while the ACK
    ``ack_seq``/bitmap stream is the only congestion signal the
    window reacts to.  The attacker pins ``rx_loss`` high
    (``capture_loss``) on every report — winning and holding the
    election — and runs a self-paced ACK timer that optimistically
    acknowledges sequences it never received (SPMs advertise the
    sender's true lead, so the claims are always plausible), each ACK
    carrying an all-ones bitmap.  The window never sees a loss and
    the ACK clock never starves, even while the overdriven bottleneck
    drops almost everything — the classic optimistic-ACK attack
    (Savage et al.) transplanted to pgmcc.  Guard-off outcome: the
    rate climbs to whatever cap exists and compliant receivers drown
    in unrepairable queue loss; the guard catches ``ack_seq``
    overtaking the attacker's own reported ``rxw_lead``, and the
    shadow filter catches the claimed loss rate contradicting its
    loss-free bitmaps.

``throttler``
    pin the reported loss rate high to win the election, then drop a
    fraction of own ACKs — the group is clocked by a receiver
    pretending to be much slower than it is.

``frozen-lead``
    keep reporting the episode-start ``rxw_lead`` (a stale/stuck
    report generator; the honest-loss variant of the greedy acker).

``nak-storm``
    flood the source with repair-requesting NAKs for random old
    sequences at a configured rate.

``ack-replay``
    re-send verbatim copies of the most recent ACK on a timer; the
    duplicated stale feedback inflates dupack counts at the sender.

``silent-joiner``
    stay subscribed but emit no feedback at all.

Behaviours mutate only what leaves the receiver (reports, bitmaps,
ACK/NAK emission); the receiver's local measurement state stays
honest, so stopping an episode restores compliant behaviour exactly.
Every random decision draws from the injector-provided named RNG
stream, preserving (seed, plan) determinism.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import TYPE_CHECKING, Optional

from ..core.acktrack import BITMAP_BITS
from ..core.loss_filter import SCALE, to_fixed
from ..simulator.engine import Timer
from ..simulator.packet import Packet
from . import constants as C
from .packets import Ack

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.reports import ReceiverReport
    from .receiver import PgmReceiver

#: All-ones receive bitmap (claims the last 32 packets all arrived).
FULL_BITMAP = 0xFFFFFFFF


class Misbehavior:
    """Base class: a no-op behaviour.  Subclasses override the hooks
    they need; the receiver calls every hook of every active behaviour
    in activation order."""

    kind = ""

    def __init__(self, receiver: "PgmReceiver", rng: random.Random):
        self.receiver = receiver
        self.rng = rng

    def start(self, now: float) -> None:
        pass

    def stop(self) -> None:
        pass

    # -- mutation hooks ---------------------------------------------------

    def mutate_report(self, report: "ReceiverReport",
                      context: str) -> "ReceiverReport":
        """``context`` is "nak" or "ack" — the two report channels feed
        different sender machinery (election vs window clock), and the
        interesting attacks lie differently on each."""
        return report

    def mutate_bitmap(self, ack_seq: int, bitmap: int) -> int:
        return bitmap

    def suppress_ack(self, ack_seq: int) -> bool:
        return False

    def suppress_nak(self, seq: int, fake: bool) -> bool:
        return False

    def on_ack_sent(self, ack: Ack) -> None:
        pass


class _PeriodicReporter(Misbehavior):
    """Shared machinery: a timer that refreshes the receiver's acker
    candidacy with fake (report-only) NAKs every ``report_ivl``."""

    def __init__(self, receiver: "PgmReceiver", rng: random.Random,
                 report_ivl: float = 0.25):
        super().__init__(receiver, rng)
        self.report_ivl = report_ivl
        self._timer = Timer(receiver.sim, self._tick)

    def start(self, now: float) -> None:
        self._timer.start(self.report_ivl * self.rng.uniform(0.5, 1.0))

    def stop(self) -> None:
        self._timer.cancel()

    def _tick(self) -> None:
        rx = self.receiver
        if rx.rxw_lead >= 0:
            # The fake NAK names a received packet, so it requests no
            # repair — it exists purely to push a report at the
            # election (the attacker's use of the §3.6 mechanism).
            rx._send_nak(max(rx.rxw_lead, 0), fake=True)
        self._timer.restart(self.report_ivl * self.rng.uniform(0.9, 1.1))


class GreedyAckerBehavior(_PeriodicReporter):
    kind = "greedy-acker"

    def __init__(self, receiver, rng, report_ivl: float = 0.25,
                 capture_loss: float = 0.4, ack_rate: float = 60.0):
        super().__init__(receiver, rng, report_ivl)
        self.capture_loss = min(to_fixed(capture_loss), SCALE)
        self.ack_rate = ack_rate
        self.opt_acks_sent = 0
        self._opt_ack = -1
        self._ack_timer = Timer(receiver.sim, self._ack_tick)

    def start(self, now: float) -> None:
        super().start(now)
        self._opt_ack = max(self.receiver.rxw_lead, -1)
        self._ack_timer.start(self.rng.uniform(0, 1.0 / self.ack_rate))

    def stop(self) -> None:
        super().stop()
        self._ack_timer.cancel()

    def mutate_report(self, report, context):
        # Claimed loss feeds only the election metric: pinning it high
        # wins and keeps the acker seat.  The lead stays honest so the
        # claims remain individually plausible.
        return replace(report, rx_loss=self.capture_loss)

    def mutate_bitmap(self, ack_seq: int, bitmap: int) -> int:
        # The bitmap is the only loss signal the window reacts to.
        return FULL_BITMAP

    def _ack_tick(self) -> None:
        rx = self.receiver
        # Highest sequence known to exist: own window lead, or the
        # lead the latest SPM advertised (what makes optimism safe —
        # the sender provably transmitted it).
        known = max(rx.rxw_lead, rx._last_spm_lead)
        if not rx._closed and known >= 0:
            # Advance at most one bitmap width per tick: the sender
            # only harvests ACK events from the 32-sequence bitmap, so
            # bigger jumps would strand sequences (declared lost —
            # a congestion signal, the one thing to avoid).
            self._opt_ack = min(known, max(self._opt_ack, -1) + BITMAP_BITS)
            ack = Ack(rx.tsi, self._opt_ack, FULL_BITMAP, rx._report("ack"))
            rx.host.send(Packet(rx.host.name, rx.source_addr,
                                ack.wire_size(), ack, C.PROTO))
            self.opt_acks_sent += 1
        self._ack_timer.restart(self.rng.uniform(0.9, 1.1) / self.ack_rate)


class ThrottlerBehavior(_PeriodicReporter):
    kind = "throttler"

    def __init__(self, receiver, rng, loss_rate: float = 0.4,
                 ack_drop_rate: float = 0.7, report_ivl: float = 0.25):
        super().__init__(receiver, rng, report_ivl)
        self.loss_fixed = min(to_fixed(loss_rate), SCALE)
        self.ack_drop_rate = ack_drop_rate

    def mutate_report(self, report, context):
        return replace(report, rx_loss=self.loss_fixed)

    def suppress_ack(self, ack_seq: int) -> bool:
        return self.rng.random() < self.ack_drop_rate


class FrozenLeadBehavior(_PeriodicReporter):
    kind = "frozen-lead"

    def __init__(self, receiver, rng, report_ivl: float = 0.25):
        super().__init__(receiver, rng, report_ivl)
        self.frozen_lead: int = 0

    def start(self, now: float) -> None:
        self.frozen_lead = max(self.receiver.rxw_lead, 0)
        super().start(now)

    def mutate_report(self, report, context):
        return replace(report, rxw_lead=self.frozen_lead)


class NakStormBehavior(Misbehavior):
    kind = "nak-storm"

    def __init__(self, receiver, rng, rate: float = 200.0):
        super().__init__(receiver, rng)
        self.rate = rate
        self._timer = Timer(receiver.sim, self._tick)

    def start(self, now: float) -> None:
        self._timer.start(self.rng.uniform(0, 1.0 / self.rate))

    def stop(self) -> None:
        self._timer.cancel()

    def _tick(self) -> None:
        rx = self.receiver
        if rx.rxw_lead >= 0:
            # A *real* NAK for a random already-transmitted sequence:
            # the source answers with NCF + RDATA, so every storm NAK
            # costs the group repair bandwidth.
            seq = self.rng.randrange(rx.rxw_lead + 1)
            rx._send_nak(seq, fake=False)
        self._timer.restart(self.rng.uniform(0.5, 1.5) / self.rate)


class AckReplayBehavior(Misbehavior):
    kind = "ack-replay"

    def __init__(self, receiver, rng, copies: int = 3, interval: float = 0.05):
        super().__init__(receiver, rng)
        self.copies = copies
        self.interval = interval
        self._last_ack: Optional[Ack] = None
        self._timer = Timer(receiver.sim, self._tick)

    def start(self, now: float) -> None:
        self._timer.start(self.interval)

    def stop(self) -> None:
        self._timer.cancel()
        self._last_ack = None

    def on_ack_sent(self, ack: Ack) -> None:
        self._last_ack = ack

    def _tick(self) -> None:
        rx = self.receiver
        ack = self._last_ack
        if ack is not None and not rx._closed:
            for _ in range(self.copies):
                rx.host.send(Packet(rx.host.name, rx.source_addr,
                                    ack.wire_size(), ack, C.PROTO))
                rx.acks_replayed += 1
        self._timer.restart(self.interval * self.rng.uniform(0.9, 1.1))


class SilentJoinerBehavior(Misbehavior):
    kind = "silent-joiner"

    def suppress_ack(self, ack_seq: int) -> bool:
        return True

    def suppress_nak(self, seq: int, fake: bool) -> bool:
        return True


_BEHAVIORS: dict[str, type] = {
    cls.kind: cls
    for cls in (
        GreedyAckerBehavior,
        ThrottlerBehavior,
        FrozenLeadBehavior,
        NakStormBehavior,
        AckReplayBehavior,
        SilentJoinerBehavior,
    )
}

#: Every behaviour kind string, in a stable order (for tests/docs).
BEHAVIOR_KINDS = tuple(_BEHAVIORS)


def make_behavior(kind: str, receiver: "PgmReceiver", rng: random.Random,
                  **params) -> Misbehavior:
    """Instantiate the behaviour implementing ``kind``."""
    cls = _BEHAVIORS.get(kind)
    if cls is None:
        raise ValueError(f"unknown misbehavior kind {kind!r}")
    return cls(receiver, rng, **params)
