"""The PGM sender rate limiter.

The PGM specification has no congestion control; sources transmit at a
pre-set rate.  With pgmcc enabled, the limiter "only serves to limit
the maximum data rate of the session" (§3.1) — the token bucket here
implements that cap, and also paces RDATA (§3.8: repairs are sent "only
subject to the throughput of the rate limiter").
"""

from __future__ import annotations

from typing import Optional


class TokenBucket:
    """Byte-granularity token bucket.

    Args:
        rate_bps: sustained rate in bits per second; ``None`` disables
            limiting entirely.
        bucket_bytes: burst capacity; defaults to ~4 max-size packets.
    """

    def __init__(self, rate_bps: Optional[float], bucket_bytes: int = 6000):
        if rate_bps is not None and rate_bps <= 0:
            raise ValueError("rate_bps must be positive (or None)")
        self.rate_bps = rate_bps
        self.bucket_bytes = bucket_bytes
        self._tokens = float(bucket_bytes)
        self._last_update = 0.0

    def _refill(self, now: float) -> None:
        if self.rate_bps is None:
            return
        elapsed = now - self._last_update
        if elapsed > 0:
            self._tokens = min(
                self.bucket_bytes, self._tokens + elapsed * self.rate_bps / 8.0
            )
            self._last_update = now

    #: tolerance absorbing float rounding so a deficit of a nano-byte
    #: neither blocks consumption nor yields a zero-ish busy-loop delay
    EPSILON_BYTES = 1e-6

    def try_consume(self, nbytes: int, now: float) -> bool:
        """Consume ``nbytes`` if available; returns success."""
        if self.rate_bps is None:
            return True
        self._refill(now)
        if self._tokens >= nbytes - self.EPSILON_BYTES:
            self._tokens -= nbytes
            return True
        return False

    def delay_until_available(self, nbytes: int, now: float) -> float:
        """Seconds until ``nbytes`` could be consumed (0 if now)."""
        if self.rate_bps is None:
            return 0.0
        self._refill(now)
        deficit = nbytes - self._tokens
        if deficit <= self.EPSILON_BYTES:
            return 0.0
        return deficit * 8.0 / self.rate_bps
