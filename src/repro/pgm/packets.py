"""PGM packet formats, including the pgmcc options of Fig. 1.

Inside the simulator, packets carry these dataclasses directly (fast
path); ``pack``/``unpack`` provide true byte-level codecs for every
type so the Fig. 1 formats are real and round-trip tested (EXP-F1).

Wire layout (network byte order)::

    common header (16 B): magic 'P' | type u8 | options_len u16 |
                          tsi u64 | checksum u32

The checksum is CRC-32 over the whole frame (checksum field zeroed),
written by ``pack`` and verified by ``decode`` — any bit flip in
transit turns into a :class:`ValueError` at the first PGM ingress.

    SPM:   spm_seq u32 | trail u32 | lead u32 | path str8
    ODATA: seq u32 | trail u32 | tstamp f64 | payload_len u16 |
           [acker option] | payload
    RDATA: same fixed part as ODATA (no acker option)
    NAK:   seq u32 | flags u8 | nseqs u8 | extra seqs u32* |
           [report option]
    NCF:   seq u32
    ACK:   ack_seq u32 | bitmask u32 | [report option]

Options are TLVs (type u8, length u8, value).  ``str8`` is a u8 length
prefix followed by UTF-8 bytes.  The grey areas of Fig. 1 — rx_id,
rxw_lead, rx_loss on NAKs; the same plus ack_seq and bitmask on ACKs;
acker_id on ODATA — map to OPT_CC_FEEDBACK and OPT_CC_ACKER below.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Optional

from ..core.reports import ReceiverReport
from . import constants as C

MAGIC = 0x50  # 'P'

#: byte offset of the checksum word inside the common header (the
#: header's trailing u32, Fig. 1's reserved area)
_CRC_OFFSET = C.HEADER_SIZE - 4
_CRC_ZERO = b"\x00\x00\x00\x00"


def _seal(raw: bytes) -> bytes:
    """Write the frame checksum into the header's reserved word.

    CRC-32 over the whole frame with the checksum field zeroed —
    guaranteed to catch the 1–3 bit flips the mangle fault injects, so
    every corrupted frame dies in :func:`decode` instead of feeding
    garbage field values to protocol state machines.
    """
    crc = zlib.crc32(raw) & 0xFFFFFFFF
    return raw[:_CRC_OFFSET] + struct.pack("!I", crc) + raw[C.HEADER_SIZE:]

# option TLV types
OPT_CC_FEEDBACK = 0x01  # receiver report (NAK and ACK)
OPT_CC_ACKER = 0x02  # acker identity + elicit flag (ODATA)

# NAK flag bits
NAK_FLAG_FAKE = 0x01  # elicited "fake" NAK (§3.6): reports only, no repair

_HEADER = struct.Struct("!BBHQI")
assert _HEADER.size == C.HEADER_SIZE


def _pack_str8(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 255:
        raise ValueError(f"string too long for str8: {len(raw)} bytes")
    return bytes([len(raw)]) + raw


def _unpack_str8(data: bytes, offset: int) -> tuple[str, int]:
    n = data[offset]
    end = offset + 1 + n
    return data[offset + 1 : end].decode("utf-8"), end


def _pack_report(report: ReceiverReport) -> bytes:
    """OPT_CC_FEEDBACK TLV carrying the Fig. 1 grey fields."""
    flags = 0x01 if report.timestamp_echo is not None else 0x00
    body = struct.pack("!IHB", report.rxw_lead, report.rx_loss, flags)
    if report.timestamp_echo is not None:
        body += struct.pack("!d", report.timestamp_echo)
    body += _pack_str8(report.rx_id)
    return struct.pack("!BB", OPT_CC_FEEDBACK, len(body)) + body


def _unpack_report(data: bytes, offset: int) -> tuple[ReceiverReport, int]:
    opt_type, opt_len = struct.unpack_from("!BB", data, offset)
    if opt_type != OPT_CC_FEEDBACK:
        raise ValueError(f"expected feedback option, got 0x{opt_type:02x}")
    body_off = offset + 2
    rxw_lead, rx_loss, flags = struct.unpack_from("!IHB", data, body_off)
    pos = body_off + 7
    echo = None
    if flags & 0x01:
        (echo,) = struct.unpack_from("!d", data, pos)
        pos += 8
    rx_id, pos = _unpack_str8(data, pos)
    if pos != body_off + opt_len:
        raise ValueError("feedback option length mismatch")
    return ReceiverReport(rx_id, rxw_lead, rx_loss, echo), pos


class PgmMessage:
    """Base for all PGM messages: header packing and type dispatch."""

    TYPE: int = -1
    tsi: int

    def _header(self, options_len: int = 0) -> bytes:
        return _HEADER.pack(MAGIC, self.TYPE, options_len, self.tsi, 0)

    def pack(self) -> bytes:
        """Encode to bytes, with the header checksum filled in."""
        return _seal(self._pack_body())

    def _pack_body(self) -> bytes:  # pragma: no cover - overridden
        raise NotImplementedError

    def wire_size(self) -> int:
        """Total simulated wire size: encoding + IP/UDP overhead."""
        return len(self.pack()) + C.IP_UDP_OVERHEAD


@dataclass
class Spm(PgmMessage):
    """Source Path Message: heartbeat rewritten hop-by-hop so nodes
    learn their upstream PGM hop (§3.1)."""

    TYPE = C.SPM

    tsi: int
    spm_seq: int
    trail: int
    lead: int
    path: str = ""  # name of the last PGM hop traversed

    def _pack_body(self) -> bytes:
        body = struct.pack("!III", self.spm_seq, self.trail, self.lead)
        body += _pack_str8(self.path)
        return self._header() + body

    @classmethod
    def unpack_body(cls, tsi: int, data: bytes, offset: int) -> "Spm":
        spm_seq, trail, lead = struct.unpack_from("!III", data, offset)
        path, _ = _unpack_str8(data, offset + 12)
        return cls(tsi, spm_seq, trail, lead, path)


@dataclass
class OData(PgmMessage):
    """Original data.  Carries the acker identity as a PGM option and
    optionally the elicit-NAK mark (first packet of a session, §3.6)."""

    TYPE = C.ODATA

    tsi: int
    seq: int
    trail: int
    payload_len: int
    timestamp: float = 0.0
    acker_id: Optional[str] = None
    elicit_nak: bool = False
    payload: bytes = b""

    def _pack_body(self) -> bytes:
        fixed = struct.pack("!IIdH", self.seq, self.trail, self.timestamp, self.payload_len)
        option = b""
        if self.acker_id is not None or self.elicit_nak:
            flags = 0x01 if self.elicit_nak else 0x00
            body = bytes([flags]) + _pack_str8(self.acker_id or "")
            option = struct.pack("!BB", OPT_CC_ACKER, len(body)) + body
        # The simulator fast path may carry arbitrary payload objects
        # (e.g. FEC tags); only byte payloads are encodable.
        payload = self.payload if isinstance(self.payload, bytes) else bytes(0)
        return self._header(len(option)) + fixed + option + payload

    def wire_size(self) -> int:
        acker = self.acker_id or ""
        opt_len = 2 + 1 + 1 + len(acker.encode("utf-8"))
        return (
            C.HEADER_SIZE + C.DATA_FIXED_SIZE + opt_len + self.payload_len + C.IP_UDP_OVERHEAD
        )

    @classmethod
    def unpack_body(cls, tsi: int, data: bytes, offset: int, options_len: int) -> "OData":
        seq, trail, tstamp, payload_len = struct.unpack_from("!IIdH", data, offset)
        pos = offset + 18
        acker_id = None
        elicit = False
        if options_len:
            opt_type, opt_len = struct.unpack_from("!BB", data, pos)
            if opt_type != OPT_CC_ACKER:
                raise ValueError(f"unexpected ODATA option 0x{opt_type:02x}")
            flags = data[pos + 2]
            elicit = bool(flags & 0x01)
            acker_id, _ = _unpack_str8(data, pos + 3)
            if acker_id == "":
                acker_id = None  # empty string encodes "no acker yet"
            pos += 2 + opt_len
        payload = data[pos : pos + payload_len] if len(data) > pos else b""
        return cls(tsi, seq, trail, payload_len, tstamp, acker_id, elicit, payload)


@dataclass
class RData(PgmMessage):
    """Repair data (retransmission).  Never ACKed, never carries the
    acker option."""

    TYPE = C.RDATA

    tsi: int
    seq: int
    trail: int
    payload_len: int
    timestamp: float = 0.0
    payload: bytes = b""

    def _pack_body(self) -> bytes:
        fixed = struct.pack("!IIdH", self.seq, self.trail, self.timestamp, self.payload_len)
        payload = self.payload if isinstance(self.payload, bytes) else bytes(0)
        return self._header() + fixed + payload

    def wire_size(self) -> int:
        return C.HEADER_SIZE + C.DATA_FIXED_SIZE + self.payload_len + C.IP_UDP_OVERHEAD

    @classmethod
    def unpack_body(cls, tsi: int, data: bytes, offset: int) -> "RData":
        seq, trail, tstamp, payload_len = struct.unpack_from("!IIdH", data, offset)
        pos = offset + 18
        payload = data[pos : pos + payload_len] if len(data) > pos else b""
        return cls(tsi, seq, trail, payload_len, tstamp, payload)


@dataclass
class Nak(PgmMessage):
    """Negative acknowledgement carrying the receiver report option.

    ``extra_seqs`` implements PGM's NAK-list compaction; ``fake`` marks
    the elicited startup NAK that requests no repair (§3.6).
    """

    TYPE = C.NAK

    tsi: int
    seq: int
    report: ReceiverReport
    fake: bool = False
    extra_seqs: tuple[int, ...] = ()

    def all_seqs(self) -> tuple[int, ...]:
        return (self.seq, *self.extra_seqs)

    def _pack_body(self) -> bytes:
        flags = NAK_FLAG_FAKE if self.fake else 0
        fixed = struct.pack("!IBB", self.seq, flags, len(self.extra_seqs))
        fixed += b"".join(struct.pack("!I", s) for s in self.extra_seqs)
        option = _pack_report(self.report)
        return self._header(len(option)) + fixed + option

    def wire_size(self) -> int:
        return len(self.pack()) + C.IP_UDP_OVERHEAD

    @classmethod
    def unpack_body(cls, tsi: int, data: bytes, offset: int) -> "Nak":
        seq, flags, nextra = struct.unpack_from("!IBB", data, offset)
        pos = offset + 6
        extra = tuple(
            struct.unpack_from("!I", data, pos + 4 * i)[0] for i in range(nextra)
        )
        pos += 4 * nextra
        report, _ = _unpack_report(data, pos)
        return cls(tsi, seq, report, bool(flags & NAK_FLAG_FAKE), extra)


@dataclass
class Ncf(PgmMessage):
    """NAK confirmation, multicast downstream by NEs and the source to
    suppress duplicate NAKs."""

    TYPE = C.NCF

    tsi: int
    seq: int

    def _pack_body(self) -> bytes:
        return self._header() + struct.pack("!I", self.seq)

    @classmethod
    def unpack_body(cls, tsi: int, data: bytes, offset: int) -> "Ncf":
        (seq,) = struct.unpack_from("!I", data, offset)
        return cls(tsi, seq)


@dataclass
class Ack(PgmMessage):
    """Positive acknowledgement — the packet type pgmcc adds (Fig. 1).

    Carries the same report as a NAK plus ``ack_seq`` (the eliciting
    data packet) and the 32-bit receive bitmap of the most recent 32
    packets (§3.3).
    """

    TYPE = C.ACK

    tsi: int
    ack_seq: int
    bitmask: int
    report: ReceiverReport

    def _pack_body(self) -> bytes:
        fixed = struct.pack("!II", self.ack_seq, self.bitmask & 0xFFFFFFFF)
        option = _pack_report(self.report)
        return self._header(len(option)) + fixed + option

    def wire_size(self) -> int:
        return len(self.pack()) + C.IP_UDP_OVERHEAD

    @classmethod
    def unpack_body(cls, tsi: int, data: bytes, offset: int) -> "Ack":
        ack_seq, bitmask = struct.unpack_from("!II", data, offset)
        report, _ = _unpack_report(data, offset + 8)
        return cls(tsi, ack_seq, bitmask, report)


def decode(data: bytes) -> PgmMessage:
    """Decode a packed PGM message of any type.

    Every malformed input — truncated buffers, bad magic, option
    garbage, broken UTF-8 — raises :class:`ValueError`, so ingress
    paths need exactly one except clause to drop corrupted packets.
    """
    try:
        if len(data) < C.HEADER_SIZE:
            raise ValueError(f"truncated PGM packet: {len(data)} bytes")
        (stored,) = struct.unpack_from("!I", data, _CRC_OFFSET)
        actual = zlib.crc32(
            data[:_CRC_OFFSET] + _CRC_ZERO + data[C.HEADER_SIZE:]
        ) & 0xFFFFFFFF
        if stored != actual:
            raise ValueError(
                f"checksum mismatch: 0x{stored:08x} != 0x{actual:08x}"
            )
        return _decode(data)
    except ValueError:
        raise
    except (struct.error, IndexError, UnicodeDecodeError) as exc:
        raise ValueError(f"malformed PGM packet: {exc}") from None


def _decode(data: bytes) -> PgmMessage:
    magic, msg_type, options_len, tsi, _reserved = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise ValueError(f"bad magic 0x{magic:02x}")
    offset = C.HEADER_SIZE
    if msg_type == C.SPM:
        return Spm.unpack_body(tsi, data, offset)
    if msg_type == C.ODATA:
        return OData.unpack_body(tsi, data, offset, options_len)
    if msg_type == C.RDATA:
        return RData.unpack_body(tsi, data, offset)
    if msg_type == C.NAK:
        return Nak.unpack_body(tsi, data, offset)
    if msg_type == C.NCF:
        return Ncf.unpack_body(tsi, data, offset)
    if msg_type == C.ACK:
        return Ack.unpack_body(tsi, data, offset)
    raise ValueError(f"unknown PGM type 0x{msg_type:02x}")
