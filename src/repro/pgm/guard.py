"""Sender-side feedback hardening: the per-receiver report guard.

pgmcc's §3.5 election trusts every receiver's self-reported
``rxw_lead`` and ``rx_loss``; a single liar can capture ackership and
drive the group faster than TCP-friendly (under-report) or throttle it
(over-report).  The :class:`FeedbackGuard` sits between packet ingress
and the congestion controller and keeps, per receiver, a ledger of
everything that receiver has claimed — then cross-checks each new
report against physics the sender *can* verify:

* ``rxw_lead`` can never exceed ``last_tx_seq`` (you cannot receive
  what was never sent) and must be (nearly) monotone;
* an ACK's ``ack_seq`` can never exceed the same report's
  ``rxw_lead`` — an honest receiver builds the report after updating
  its window with the packet it is acking;
* ``rx_loss`` must stay within the reachable range of the paper's IIR
  filter (``W = 65000/65536``) given how many packet slots elapsed
  since the receiver's previous report: the filter moves at most
  ``W**n`` per ``n`` slots, so teleporting estimates are lies;
* sustained divergence between the reported loss rate and a shadow
  filter the guard feeds from the receiver's own ACK bitmaps;
* NAK arrival rate against a token bucket (§3.8 pacing makes honest
  receivers naturally compliant);
* verbatim ACK replays (same ``ack_seq`` + bitmap) are deduplicated.

Violations accrue an exponentially-decaying *suspicion score*; weak
signals (explainable by reordering or loss) weigh less than physical
impossibilities.  Crossing the threshold quarantines the receiver
with exponential-backoff readmission.  Quarantine removes *control
influence only*: the receiver's reports stop feeding the election and
its ACKs stop clocking the window, but its NAKs are still honored for
repair — reliability is never sacrificed to the guard (the worst a
false positive can do is ignore a receiver's opinion, never starve
it of data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import exp, inf
from typing import Optional

from ..core.acktrack import BITMAP_BITS, bitmap_contains
from ..core.loss_filter import DEFAULT_W, SCALE, LossRateFilter
from ..core.reports import ReceiverReport

#: Violation rules, in documentation order.  "strong" rules flag
#: physical impossibilities; "weak" rules flag patterns that a hostile
#: network could conceivably produce for an honest receiver.
RULES = (
    "lead-beyond-tx",       # strong: rxw_lead > last_tx_seq
    "ack-unsent",           # strong: ack_seq > last_tx_seq
    "ack-beyond-lead",      # strong: ack_seq > same report's rxw_lead
    "lead-regression",      # weak: rxw_lead moved backwards past slack
    "loss-range",           # strong: rx_loss outside IIR reachable range
    "shadow-divergence",    # strong: sustained loss over-report vs bitmaps
    "nak-flood",            # weak: NAK rate above the token bucket
)
_STRONG = frozenset(
    ("lead-beyond-tx", "ack-unsent", "ack-beyond-lead", "loss-range",
     "shadow-divergence")
)


@dataclass
class GuardConfig:
    """All guard tunables (defaults sized for the paper's scenarios).

    The suspicion scale is calibrated so two strong violations (or six
    weak ones) quarantine: threshold 3.0, strong weight 1.5, weak 0.5.
    """

    suspicion_threshold: float = 3.0
    suspicion_decay_tau: float = 30.0   # seconds; e-folding of suspicion
    strong_weight: float = 1.5
    weak_weight: float = 0.5
    #: tolerated backwards movement of rxw_lead (reordered NAKs/ACKs
    #: legitimately carry slightly stale reports)
    lead_regression_slack: int = 64
    #: extra filter steps granted when bounding the reachable rx_loss
    #: range (covers reports generated a moment before arrival)
    loss_range_slack: int = 16
    #: absolute fixed-point tolerance added to both range bounds
    loss_range_tol: int = 256
    #: whether the loss-range rule runs at all (only sound when the
    #: receivers use the paper's IIR estimator)
    check_loss_range: bool = True
    #: IIR smoothing constant the receivers are configured with
    filter_w: int = DEFAULT_W
    #: NAK token bucket: refill rate (per second) and burst depth.
    #: §3.8 pacing spaces honest NAKs ≥ storm_spacing apart (50/s).
    nak_rate: float = 60.0
    nak_burst: float = 120.0
    #: once quarantined, the repair budget is bound by physics instead
    #: of wall-clock: a receiver cannot have lost more than the sender
    #: transmitted, so tokens refill per *transmitted packet* (factor
    #: covers RDATA-loss retries) with a small burst allowance
    quarantine_repair_factor: float = 1.0
    quarantine_repair_burst: float = 32.0
    #: verbatim-ACK dedup table depth per receiver, and how long a
    #: signature stays "recent".  The TTL matters: a stall-elicited
    #: keep-alive ACK is legitimately verbatim-identical to the
    #: receiver's previous ACK (no new data arrived), and swallowing
    #: it would leave the sender stalled — only rapid-fire duplicates
    #: are replay attacks.
    replay_window: int = 32
    replay_ttl: float = 1.0
    #: quarantine duration: base * backoff**(n-1), capped
    quarantine_base: float = 10.0
    quarantine_backoff: float = 2.0
    quarantine_max: float = 300.0
    #: suspicion retained on readmission (fraction of threshold) — a
    #: readmitted receiver is on probation, not forgiven
    readmit_suspicion_fraction: float = 0.5
    #: shadow-filter divergence gate: only judge after this many shadow
    #: updates, and only when reported > shadow*factor + margin for
    #: this many consecutive reports
    shadow_min_updates: int = 256
    shadow_factor: float = 4.0
    shadow_margin: int = int(0.05 * SCALE)
    shadow_consecutive: int = 5
    #: the shadow is only a valid cross-check while bitmaps keep
    #: feeding it — a receiver that lost ackership stops supplying
    #: bitmaps while its true loss keeps evolving, so a stale shadow
    #: must not condemn honest reports
    shadow_max_age: float = 2.0


@dataclass
class GuardVerdict:
    """What the guard decided about one incoming report/ACK."""

    #: feed this feedback to the congestion controller / election?
    allow_control: bool = True
    #: drop the packet outright (currently: verbatim ACK replays)
    drop: bool = False
    #: rules violated by this packet (empty for clean feedback)
    violations: list = field(default_factory=list)
    #: True when this packet pushed the receiver into quarantine
    newly_quarantined: bool = False


@dataclass
class _Ledger:
    """Per-receiver claim history (one per rx_id ever heard from)."""

    rx_id: str
    last_lead: int = -1
    last_loss: int = 0
    has_report: bool = False
    suspicion: float = 0.0
    last_suspicion_update: float = 0.0
    quarantined_until: float = 0.0
    quarantine_count: int = 0
    nak_tokens: float = 0.0
    nak_last_refill: float = 0.0
    nak_tx_mark: int = -1
    #: recent verbatim ACK signatures, insertion-ordered for eviction
    recent_acks: dict = field(default_factory=dict)
    shadow: Optional[LossRateFilter] = None
    shadow_high: int = -1
    shadow_fed_at: float = -inf
    divergent_streak: int = 0
    violations: int = 0


class FeedbackGuard:
    """Plausibility-checks receiver feedback before it can steer pgmcc.

    Args:
        sim: the event engine (time source).
        config: tunables; ``GuardConfig()`` gives the paper-sized
            defaults.
    """

    def __init__(self, sim, config: Optional[GuardConfig] = None):
        self.sim = sim
        self.config = config or GuardConfig()
        self._ledgers: dict[str, _Ledger] = {}
        # counters
        self.reports_checked = 0
        self.acks_checked = 0
        self.acks_deduped = 0
        self.control_blocked = 0
        self.quarantines = 0
        self.violation_counts: dict[str, int] = {rule: 0 for rule in RULES}

    # -- ledger access -----------------------------------------------------

    def _ledger(self, rx_id: str) -> _Ledger:
        led = self._ledgers.get(rx_id)
        if led is None:
            cfg = self.config
            led = _Ledger(
                rx_id,
                nak_tokens=cfg.nak_burst,
                nak_last_refill=self.sim.now,
                shadow=LossRateFilter(cfg.filter_w),
            )
            self._ledgers[rx_id] = led
        return led

    def is_quarantined(self, rx_id: str, now: Optional[float] = None) -> bool:
        """Whether ``rx_id`` is currently serving a quarantine."""
        led = self._ledgers.get(rx_id)
        if led is None:
            return False
        return (now if now is not None else self.sim.now) < led.quarantined_until

    def quarantined_ids(self) -> list:
        """All receivers currently quarantined (for invariant sweeps)."""
        now = self.sim.now
        return sorted(
            led.rx_id for led in self._ledgers.values()
            if now < led.quarantined_until
        )

    # -- suspicion machinery -----------------------------------------------

    def _decay(self, led: _Ledger, now: float) -> None:
        dt = now - led.last_suspicion_update
        if dt > 0 and led.suspicion > 0:
            led.suspicion *= exp(-dt / self.config.suspicion_decay_tau)
        led.last_suspicion_update = now

    def _punish(self, led: _Ledger, now: float, verdict: GuardVerdict,
                rule: str) -> None:
        cfg = self.config
        self._decay(led, now)
        led.suspicion += cfg.strong_weight if rule in _STRONG else cfg.weak_weight
        led.violations += 1
        self.violation_counts[rule] += 1
        verdict.violations.append(rule)
        if (led.suspicion >= cfg.suspicion_threshold
                and now >= led.quarantined_until):
            led.quarantine_count += 1
            duration = min(
                cfg.quarantine_max,
                cfg.quarantine_base
                * cfg.quarantine_backoff ** (led.quarantine_count - 1),
            )
            led.quarantined_until = now + duration
            led.suspicion = cfg.suspicion_threshold * cfg.readmit_suspicion_fraction
            self.quarantines += 1
            verdict.newly_quarantined = True

    # -- report plausibility -------------------------------------------------

    def _check_report(self, led: _Ledger, report: ReceiverReport, now: float,
                      last_tx_seq: int, verdict: GuardVerdict) -> None:
        cfg = self.config
        if report.rxw_lead > last_tx_seq:
            self._punish(led, now, verdict, "lead-beyond-tx")
        elif led.has_report and report.rxw_lead < led.last_lead - cfg.lead_regression_slack:
            self._punish(led, now, verdict, "lead-regression")
        loss_teleported = False
        if cfg.check_loss_range and led.has_report:
            loss_teleported = self._check_loss_range(led, report, now, verdict)
        self._check_shadow(led, report, now, verdict)
        # Advance the ledger only along plausible claims, so one lie
        # does not poison the baseline for subsequent checks.  In
        # particular a teleported rx_loss must NOT become the new
        # baseline — otherwise the first lie legitimises every repeat.
        # The frozen (lead, loss) pair self-heals: as the true lead
        # advances, the reachable band from the old baseline widens
        # until honest claims fit again.
        if (report.rxw_lead <= last_tx_seq and report.rxw_lead >= led.last_lead
                and not loss_teleported):
            led.last_lead = report.rxw_lead
            led.last_loss = report.rx_loss
            led.has_report = True

    def _check_loss_range(self, led: _Ledger, report: ReceiverReport,
                          now: float, verdict: GuardVerdict) -> bool:
        """The IIR filter moves deterministically: after ``n`` packet
        slots the estimate lies in ``[y0*W**n, y0*W**n + (1-W**n)]``
        (all-received vs all-lost extremes).  A report outside that
        band — padded by slack slots and an absolute tolerance — is
        arithmetically unreachable from the receiver's previous claim.
        Returns True when the rule fired (the caller must then keep
        the old baseline).
        """
        cfg = self.config
        n = report.rxw_lead - led.last_lead
        if n < 0:
            return False  # stale/reordered; regression rule handles it
        if n == 0:
            # No window movement: the filter cannot move either.
            if abs(report.rx_loss - led.last_loss) > cfg.loss_range_tol:
                self._punish(led, now, verdict, "loss-range")
                return True
            return False
        wf = cfg.filter_w / SCALE
        wn = wf ** n
        wn_slack = wf ** (n + cfg.loss_range_slack)
        lower = led.last_loss * wn_slack - cfg.loss_range_tol
        upper = led.last_loss * wn + SCALE * (1.0 - wn_slack) + cfg.loss_range_tol
        if not lower <= report.rx_loss <= upper:
            self._punish(led, now, verdict, "loss-range")
            return True
        return False

    def _check_shadow(self, led: _Ledger, report: ReceiverReport, now: float,
                      verdict: GuardVerdict) -> None:
        """Directional cross-check for *over*-reporters: the shadow
        filter replays the receiver's own ACK bitmaps through the same
        IIR, so a throttler claiming heavy loss while acking nearly
        everything diverges without ever tripping the range rule.
        Under-reporting is not judged here (repairs and ACK loss make
        the shadow read high for honest receivers, never low)."""
        cfg = self.config
        shadow = led.shadow
        if shadow is None or shadow.samples < cfg.shadow_min_updates:
            return
        if now - led.shadow_fed_at > cfg.shadow_max_age:
            # Stale shadow (no recent bitmaps — e.g. ackership moved
            # on while the receiver's true loss kept changing): not a
            # usable baseline.
            led.divergent_streak = 0
            return
        threshold = shadow.value * cfg.shadow_factor + cfg.shadow_margin
        if report.rx_loss > threshold:
            led.divergent_streak += 1
            if led.divergent_streak >= cfg.shadow_consecutive:
                led.divergent_streak = 0
                self._punish(led, now, verdict, "shadow-divergence")
        else:
            led.divergent_streak = 0

    def _feed_shadow(self, led: _Ledger, ack_seq: int, bitmap: int) -> None:
        shadow = led.shadow
        if shadow is None:
            return
        if ack_seq - led.shadow_high > BITMAP_BITS:
            # Gap wider than the bitmap (first ACK, or control silence):
            # skip ahead rather than inventing loss samples.
            led.shadow_high = ack_seq - BITMAP_BITS
        for seq in range(led.shadow_high + 1, ack_seq + 1):
            shadow.update(not bitmap_contains(ack_seq, bitmap, seq))
        led.shadow_high = max(led.shadow_high, ack_seq)
        led.shadow_fed_at = self.sim.now

    # -- ingress hooks -------------------------------------------------------

    def on_nak(self, report: ReceiverReport, last_tx_seq: int,
               requests_repair: bool = True) -> GuardVerdict:
        """Vet one NAK.  ``allow_control`` gates the election feed;
        ``drop`` means the per-receiver repair budget is exhausted and
        the caller should skip the RDATA (NCF may still go out).  The
        refill rate sits above the §3.8 honest-receiver NAK ceiling, so
        a compliant receiver never loses a repair to the bucket."""
        now = self.sim.now
        verdict = GuardVerdict()
        led = self._ledger(report.rx_id)
        self.reports_checked += 1

        cfg = self.config
        if requests_repair:
            if led.nak_tx_mark < 0:
                led.nak_tx_mark = last_tx_seq
            if self.is_quarantined(report.rx_id, now):
                # A quarantined receiver's repair budget is bound by
                # physics, not wall-clock: it cannot have lost more
                # than the sender transmitted since its last request,
                # so tokens refill per transmitted packet.  Real losses
                # still get repaired (each transmitted packet funds one
                # repair) but a storm can no longer outrun the data
                # rate and drown the bottleneck in RDATA.
                grant = ((last_tx_seq - led.nak_tx_mark)
                         * cfg.quarantine_repair_factor)
                led.nak_tokens = min(cfg.quarantine_repair_burst,
                                     led.nak_tokens + grant)
            else:
                # Token-bucket NAK pacing (honest §3.8 receivers stay
                # well under the refill rate; fake NAKs are report-only
                # and do not spend repair tokens).
                led.nak_tokens = min(
                    cfg.nak_burst,
                    led.nak_tokens + (now - led.nak_last_refill) * cfg.nak_rate,
                )
            led.nak_tx_mark = last_tx_seq
            led.nak_last_refill = now
            if led.nak_tokens >= 1.0:
                led.nak_tokens -= 1.0
            else:
                verdict.drop = True
                self._punish(led, now, verdict, "nak-flood")

        self._check_report(led, report, now, last_tx_seq, verdict)
        if self.is_quarantined(report.rx_id, now):
            verdict.allow_control = False
            self.control_blocked += 1
        return verdict

    def on_ack(self, ack_seq: int, bitmap: int, report: ReceiverReport,
               last_tx_seq: int) -> GuardVerdict:
        """Vet one ACK.  ``drop`` means discard entirely (replay);
        ``allow_control`` gates the window/election feed."""
        now = self.sim.now
        verdict = GuardVerdict()
        led = self._ledger(report.rx_id)
        self.acks_checked += 1

        # Verbatim replay dedup — NO suspicion: honest duplicates occur
        # under link-level duplication faults.  Deflection is free.
        # TTL-bounded: an expired signature is treated as fresh (see
        # GuardConfig.replay_ttl for why).
        sig = (ack_seq, bitmap, report.rxw_lead, report.rx_loss)
        seen_at = led.recent_acks.get(sig)
        if seen_at is not None and now - seen_at <= self.config.replay_ttl:
            self.acks_deduped += 1
            verdict.drop = True
            verdict.allow_control = False
            return verdict
        led.recent_acks.pop(sig, None)
        led.recent_acks[sig] = now
        while len(led.recent_acks) > self.config.replay_window:
            led.recent_acks.pop(next(iter(led.recent_acks)))

        self.reports_checked += 1
        if ack_seq > last_tx_seq:
            self._punish(led, now, verdict, "ack-unsent")
        elif ack_seq > report.rxw_lead:
            # An honest receiver builds its report *after* absorbing
            # the packet it acks, so rxw_lead >= ack_seq always.
            self._punish(led, now, verdict, "ack-beyond-lead")
        else:
            self._feed_shadow(led, ack_seq, bitmap)
        self._check_report(led, report, now, last_tx_seq, verdict)
        if self.is_quarantined(report.rx_id, now):
            verdict.allow_control = False
            self.control_blocked += 1
        return verdict

    # -- introspection -----------------------------------------------------

    def suspicion(self, rx_id: str) -> float:
        """Current (decayed) suspicion score for ``rx_id``."""
        led = self._ledgers.get(rx_id)
        if led is None:
            return 0.0
        dt = self.sim.now - led.last_suspicion_update
        if dt <= 0 or led.suspicion <= 0:
            return led.suspicion
        return led.suspicion * exp(-dt / self.config.suspicion_decay_tau)

    def summary(self) -> dict:
        """Counters for session ``summary()`` and experiment reports."""
        now = self.sim.now
        return {
            "receivers_tracked": len(self._ledgers),
            "reports_checked": self.reports_checked,
            "acks_checked": self.acks_checked,
            "acks_deduped": self.acks_deduped,
            "control_blocked": self.control_blocked,
            "quarantines": self.quarantines,
            "quarantined_now": self.quarantined_ids(),
            "violations": {
                rule: count
                for rule, count in self.violation_counts.items()
                if count
            },
            "suspects": {
                led.rx_id: round(self.suspicion(led.rx_id), 3)
                for led in self._ledgers.values()
                if self.suspicion(led.rx_id) > 0.01 or now < led.quarantined_until
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FeedbackGuard rx={len(self._ledgers)} "
            f"quarantines={self.quarantines} blocked={self.control_blocked}>"
        )
