"""Hybrid-fidelity aggregate receivers: 10^6-receiver groups (§3's
scalability argument, taken at its word).

pgmcc's source-side state is *constant* in the group size: exactly one
receiver — the acker — clocks the window, and NAKs are deduplicated by
network elements before they converge on the source.  So, for
modelling the *controller*, only a handful of receivers must exist as
full protocol engines:

* the acker (and any receiver the election might pick next),
* the :class:`~repro.pgm.guard.FeedbackGuard`'s suspect set,
* a small seeded *sampled cohort* kept exact for ground truth.

Everything else — the **aggregate tail** — is folded into per-subtree
analytic state.  Receivers behind one shared bottleneck with identical
access links see the *identical* packet stream, so one shared receiver
state machine models them all; the only per-member effect that is
sender-visible is the feedback-suppression lottery (whose randomised
NAK backoff fires first).  A :class:`TailProxy` — a real
:class:`~repro.pgm.receiver.PgmReceiver` on the subtree's aggregate
host — therefore emits the *minimum* of its members' backoff draws and
stamps the winning member's identity into the report.  Behind a
suppressing network element this is packet-for-packet what the sender
would have seen from the full population.

Member draws come from one of two banks:

* :class:`MirrorBank` (tail <= ``mirror_threshold``): one persistent
  ``random.Random`` stream per member — the *same* registry streams
  exact-mode receivers would use — drawn in the same per-event order,
  so the min and argmin equal the exact simulation's.  This is what
  the small-N equivalence oracle runs against.
* :class:`AnalyticBank` (beyond the threshold): the minimum of ``n``
  uniforms drawn in O(1) via the order-statistic inverse CDF
  ``B * (1 - (1 - u)**(1/n))``, with the reporting identity drawn
  uniformly from the unpromoted index space.  Memory per subtree is
  O(promoted), independent of ``n`` — this is the 10^6 mode.

**Promotion** turns a tail member exact: when the election names a
tail identity (seen in ODATA ``acker_id``), or the guard grows
suspicious of one, the :class:`AggregateManager` instantiates a full
``PgmReceiver`` for that identity on one of the subtree's reserved
*slot hosts* (same access-link spec as every member) and removes it
from the bank.  At session start the manager *pre-promotes* the
predicted election winner — the member holding the globally smallest
first fake-NAK jitter, peeked without consuming the draw — so hybrid
runs elect the same first acker exact runs do.  **Demotion** returns a
promoted member to the tail once it has been idle (not acker, not
suspect, not sampled) for ``demote_after`` seconds.

See DESIGN.md §9 for the architecture and the promotion state machine.
"""

from __future__ import annotations

import copy
import dataclasses
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..simulator.engine import Timer
from . import constants as C
from .receiver import PgmReceiver

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..simulator.topology import Network, SubtreePlan
    from .session import PgmSession

__all__ = [
    "AggregateParams",
    "AggregateManager",
    "AggregateSubtree",
    "MirrorBank",
    "AnalyticBank",
    "TailProxy",
    "AGGREGATE_SUMMARY_KEYS",
]

#: fixed key set of the ``aggregate`` block in
#: ``pgmcc.session-summary/v2`` documents (present, zeroed, when the
#: session runs without the subsystem).
AGGREGATE_SUMMARY_KEYS = (
    "enabled", "population", "subtrees", "exact_cohort", "tail",
    "sampled", "promotions", "demotions", "promotions_deferred",
    "synthetic_naks", "synthetic_fake_naks", "predicted_acker", "modes",
)


def empty_aggregate_summary() -> dict:
    """The ``aggregate`` summary block of a session without the
    subsystem — same keys, zero values."""
    return {
        "enabled": False, "population": 0, "subtrees": 0,
        "exact_cohort": 0, "tail": 0, "sampled": 0, "promotions": 0,
        "demotions": 0, "promotions_deferred": 0, "synthetic_naks": 0,
        "synthetic_fake_naks": 0, "predicted_acker": None,
        "modes": {"mirror": 0, "analytic": 0},
    }


@dataclass(frozen=True)
class AggregateParams:
    """Tunables of the hybrid-fidelity subsystem
    (``SessionConfig.aggregate_params``)."""

    #: seeded exact engines per subtree (ground-truth cohort)
    sample: int = 1
    #: largest tail simulated draw-for-draw (MirrorBank); larger tails
    #: switch to the O(1) AnalyticBank.  A mirror stream costs ~3 KB
    #: (Mersenne state), so this bounds per-subtree memory at ~1.5 MB.
    mirror_threshold: int = 512
    #: idle seconds before a promoted member returns to the tail
    demote_after: float = 5.0
    #: manager bookkeeping period (promotion/demotion sweep)
    sweep_interval: float = 0.5
    #: invariant tolerance: how long the acker may be an unpromoted
    #: tail identity before ``aggregate-promotion`` fires
    promotion_grace: float = 1.0
    #: pre-promote the predicted first election winner at t=0
    predict_acker: bool = True
    #: guard suspicion above which a tail identity is promoted
    suspect_threshold: float = 0.5


# ---------------------------------------------------------------------------
# Member banks
# ---------------------------------------------------------------------------


class MirrorBank:
    """Draw-for-draw faithful tail: one rng stream per member.

    The streams are the registry streams (``rx:{tsi}:{identity}``)
    exact-mode receivers are seeded from, and every bank draw consumes
    exactly one value from *each* member's stream — the same draw
    indices an exact run would have consumed at the same protocol
    event — so the (min, argmin) pair equals the exact simulation's.
    """

    mode = "mirror"

    def __init__(self, streams: dict[str, random.Random]):
        self._streams = dict(streams)

    @property
    def size(self) -> int:
        return len(self._streams)

    def __contains__(self, identity: str) -> bool:
        return identity in self._streams

    def draw(self, bound: float) -> tuple[float, str]:
        """One suppression-lottery round: the winning (delay, identity)."""
        best = None
        winner = None
        for identity, rng in self._streams.items():
            value = rng.uniform(0, bound)
            if best is None or value < best:
                best, winner = value, identity
        return best, winner

    def peek_min(self, bound: float) -> tuple[Optional[float], Optional[str]]:
        """The next round's winner *without* consuming any draws."""
        best = None
        winner = None
        for identity, rng in self._streams.items():
            state = rng.getstate()
            value = rng.uniform(0, bound)
            rng.setstate(state)
            if best is None or value < best:
                best, winner = value, identity
        return best, winner

    def remove(self, identity: str) -> bool:
        return self._streams.pop(identity, None) is not None

    def add(self, identity: str, rng: random.Random) -> None:
        self._streams[identity] = rng


class AnalyticBank:
    """O(1) tail: order-statistic draws over ``n`` virtual members.

    The minimum of ``n`` iid U(0, B) draws has CDF
    ``1 - (1 - x/B)**n``; inverting one uniform gives the winning
    delay without touching ``n`` streams.  The winning identity is a
    *sticky representative* drawn uniformly over the unpromoted index
    space and reused until it is promoted away: a real group's
    election sees the same worst-path receiver win round after round,
    and redrawing a fresh identity per NAK would instead churn the
    sender through an endless parade of phantom candidates (promote,
    defer, stall).  The exclusion set and the representative are the
    only per-member state, so memory is bounded per subtree
    regardless of ``n``.
    """

    mode = "analytic"

    def __init__(self, plan: "SubtreePlan", subtree: int, size: int,
                 excluded: set[int], rng: random.Random):
        self._plan = plan
        self._subtree = subtree
        self._total = size
        self._excluded = set(excluded)  # promoted/sampled indices
        self._rng = rng
        self._rep: Optional[int] = None  # sticky reporting identity

    @property
    def size(self) -> int:
        return self._total - len(self._excluded)

    def __contains__(self, identity: str) -> bool:
        index = self._index_of(identity)
        return index is not None and index not in self._excluded

    def _index_of(self, identity: str) -> Optional[int]:
        prefix = f"t{self._subtree}r"
        if not identity.startswith(prefix):
            return None
        tail = identity[len(prefix):]
        if not tail.isdigit() or int(tail) >= self._total:
            return None
        return int(tail)

    def _representative(self) -> int:
        if self._rep is None or self._rep in self._excluded:
            # r-th available index, skipping the (few, sorted)
            # excluded ones
            r = self._rng.randrange(self.size)
            for excluded in sorted(self._excluded):
                if excluded <= r:
                    r += 1
            self._rep = r
        return self._rep

    def draw(self, bound: float) -> tuple[float, str]:
        n = self.size
        u = self._rng.random()
        delay = bound * (1.0 - (1.0 - u) ** (1.0 / n))
        return delay, self._plan.identity(self._subtree,
                                          self._representative())

    def peek_min(self, bound: float) -> tuple[Optional[float], Optional[str]]:
        if self.size == 0:
            return None, None
        state = self._rng.getstate()
        rep = self._rep
        value, winner = self.draw(bound)
        self._rng.setstate(state)
        self._rep = rep
        return value, winner

    def remove(self, identity: str) -> bool:
        index = self._index_of(identity)
        if index is None or index in self._excluded:
            return False
        self._excluded.add(index)
        if self._rep == index:
            self._rep = None
        return True

    def add(self, identity: str, rng: random.Random = None) -> None:
        index = self._index_of(identity)
        if index is not None:
            self._excluded.discard(index)


# ---------------------------------------------------------------------------
# The tail proxy receiver
# ---------------------------------------------------------------------------


class TailProxy(PgmReceiver):
    """One shared receiver engine standing in for a subtree's tail.

    Behind the shared bottleneck every tail member sees the identical
    packet stream, so the proxy's window/loss-filter state *is* every
    member's.  Only the randomised-delay hooks differ: each draw is
    the minimum over the member bank, and the winning identity is
    stamped into the outgoing report, so the NAK the network element
    forwards upstream is field-for-field the one the winning member
    would have sent.  The proxy itself never ACKs (its own identity
    never appears in a report, so the election cannot pick it).
    """

    def __init__(self, manager: "AggregateManager",
                 subtree: "AggregateSubtree", **kwargs):
        self._manager = manager
        self._subtree = subtree
        #: seq -> drawn member identity (loss NAKs keep theirs across
        #: retries; fakes are one-shot)
        self._nak_identity: dict[int, str] = {}
        self._fake_identity: dict[int, str] = {}
        self._stamp: Optional[str] = None
        self.synthetic_naks = 0
        self.synthetic_fake_naks = 0
        #: sends skipped because the whole tail was promoted away
        self.synthetic_suppressed = 0
        super().__init__(**kwargs)

    @property
    def bank(self):
        return self._subtree.bank

    # -- suppression-lottery hooks ------------------------------------------

    def _backoff_delay(self, seq: int) -> float:
        if self.bank.size == 0:
            return super()._backoff_delay(seq)
        delay, identity = self.bank.draw(self.nak_bo_ivl)
        self._nak_identity[seq] = identity
        self._manager.observe_backoff(delay)
        return delay

    def _fake_jitter(self, seq: int) -> float:
        if self.bank.size == 0:
            return super()._fake_jitter(seq)
        delay, identity = self.bank.draw(self.nak_bo_ivl / 4)
        self._fake_identity[seq] = identity
        self._manager.observe_backoff(delay)
        return delay

    def _storm_jitter(self) -> float:
        if self.bank.size == 0:
            return super()._storm_jitter()
        delay, _ = self.bank.draw(self.storm_spacing)
        return delay

    # -- synthetic feedback --------------------------------------------------

    def _send_nak(self, seq: int, fake: bool = False) -> None:
        if fake:
            identity = self._fake_identity.pop(seq, None)
        else:
            identity = self._nak_identity.get(seq)
        if identity is None and self.bank.size == 0:
            # Fully promoted subtree: every member speaks for itself.
            self.synthetic_suppressed += 1
            return
        self._stamp = identity
        try:
            super()._send_nak(seq, fake)
        finally:
            self._stamp = None
        if fake:
            self.synthetic_fake_naks += 1
        else:
            self.synthetic_naks += 1

    def _report(self, context: str = "nak"):
        report = super()._report(context)
        if self._stamp is not None:
            report = dataclasses.replace(report, rx_id=self._stamp)
        return report

    def _send_ack(self, ack_seq: int) -> None:
        # Proxy identities never enter the election, so this only fires
        # if something is badly wrong — refuse rather than double-clock.
        self.acks_suppressed += 1

    def _drop_nak_state(self, seq: int) -> None:
        super()._drop_nak_state(seq)
        self._nak_identity.pop(seq, None)

    def _handle_data(self, msg, is_repair: bool) -> None:
        super()._handle_data(msg, is_repair)
        if not is_repair and msg.acker_id:
            self._manager.on_acker_observed(msg.acker_id)

    def gc_identities(self) -> None:
        """Drop identity stamps whose NAK state is gone (sweep hook)."""
        live = self._nak_states
        self._nak_identity = {
            seq: ident for seq, ident in self._nak_identity.items()
            if seq in live
        }


# ---------------------------------------------------------------------------
# Per-subtree bookkeeping
# ---------------------------------------------------------------------------


@dataclass
class _ExactMember:
    """One member currently simulated as a full engine."""

    identity: str
    host: str            # slot host carrying the engine
    receiver: PgmReceiver
    promoted_at: float
    #: sampled members never demote
    pinned: bool = False
    #: last sweep at which this member held ackership
    last_acker_at: float = 0.0


class AggregateSubtree:
    """State of one shared-bottleneck subtree."""

    def __init__(self, index: int, size: int, bank, slot_hosts: list[str]):
        self.index = index
        self.size = size
        self.bank = bank
        self.proxy: Optional[TailProxy] = None
        self._free_slots = list(reversed(slot_hosts))  # pop() -> slot order
        self.exact: dict[str, _ExactMember] = {}

    @property
    def exact_count(self) -> int:
        return len(self.exact)

    def take_slot(self) -> Optional[str]:
        return self._free_slots.pop() if self._free_slots else None

    def give_slot(self, host: str) -> None:
        self._free_slots.append(host)


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------


class AggregateManager:
    """Owns the exact-cohort/tail split of one aggregate session.

    Built by :func:`repro.pgm.create_session` when
    ``SessionConfig.aggregate`` is set (the network must come from
    :func:`repro.simulator.dumbbell_subtrees` with
    ``members="virtual"``).  ``rx_defaults`` are the keyword arguments
    shared by every receiver the manager instantiates (group, tsi,
    source address, reliability, telemetry, ...).
    """

    def __init__(self, net: "Network", session: "PgmSession",
                 plan: "SubtreePlan", params: AggregateParams,
                 rx_defaults: dict):
        self.net = net
        self.session = session
        self.plan = plan
        self.params = params
        self.rx_defaults = rx_defaults
        self.sim = net.sim
        self.subtrees: list[AggregateSubtree] = []
        self.predicted_acker: Optional[str] = None
        # counters
        self.promotions = 0
        self.demotions = 0
        self.promotions_deferred = 0
        self.sampled_count = 0
        self._backoff_hist = None
        self._ne_registered: set[int] = set()
        self._sweep_timer: Optional[Timer] = None
        self._closed = False

    # -- construction --------------------------------------------------------

    def _stream(self, identity: str) -> random.Random:
        return self.net.rng.stream(f"rx:{self.session.tsi}:{identity}")

    def _make_exact(self, subtree: AggregateSubtree, identity: str,
                    host: str, pinned: bool) -> _ExactMember:
        receiver = PgmReceiver(
            host=self.net.host(host),
            rx_id=identity,
            rng=self._stream(identity),
            **self.rx_defaults,
        )
        proxy = subtree.proxy
        if proxy is not None and proxy.cc.data_packets > 0:
            # Mid-run promotion: the member has been behind this
            # bottleneck all along, so its protocol state *is* the
            # proxy's — loss filter, window lead, delivery cursor.  A
            # fresh engine would report zero loss and skew the acker
            # election the moment its ACKs update the incumbent metric.
            receiver.cc = copy.deepcopy(proxy.cc)
            # An attached InvariantChecker wraps cc.on_data with an
            # instance-level closure over the *proxy's* state; deepcopy
            # carries the function by reference, so the clone would
            # feed the proxy's bookkeeping.  Drop instance overrides —
            # the checker re-wraps the new receiver on its next sweep.
            receiver.cc.__dict__.pop("on_data", None)
            receiver.cc.rx_id = identity
            receiver._next_deliver = proxy._next_deliver
            receiver._pending_delivery = dict(proxy._pending_delivery)
            receiver._last_spm_lead = proxy._last_spm_lead
        self.session._register_receiver(receiver)
        member = _ExactMember(identity, host, receiver,
                              promoted_at=self.sim.now, pinned=pinned)
        subtree.exact[identity] = member
        return member

    def setup(self) -> None:
        """Build banks, sampled cohort, proxies; pre-promote the
        predicted election winner.  Must run before the sim starts."""
        plan, params, tsi = self.plan, self.params, self.session.tsi
        sample_rng = self.net.rng.stream(f"agg:sample:{tsi}")
        for k in range(plan.subtrees):
            size = plan.sizes[k]
            slots = [plan.slot_host(k, j) for j in range(plan.slots)]
            n_sampled = min(params.sample, size, plan.slots)
            sampled = sorted(sample_rng.sample(range(size), n_sampled))
            tail_size = size - n_sampled
            if tail_size <= params.mirror_threshold:
                streams = {
                    plan.identity(k, i): self._stream(plan.identity(k, i))
                    for i in range(size) if i not in sampled
                }
                bank = MirrorBank(streams)
            else:
                bank = AnalyticBank(plan, k, size, set(sampled),
                                    self.net.rng.stream(f"agg:tail:{tsi}:{k}"))
            subtree = AggregateSubtree(k, size, bank, slots)
            self.subtrees.append(subtree)
            for i in sampled:
                slot = subtree.take_slot()
                self._make_exact(subtree, plan.identity(k, i), slot,
                                 pinned=True)
                self.sampled_count += 1
            if bank.size > 0:
                subtree.proxy = TailProxy(
                    self, subtree,
                    host=self.net.host(plan.agg_host(k)),
                    rng=self._stream(plan.agg_host(k)),
                    **self.rx_defaults,
                )
                self.session._register_receiver(subtree.proxy)
        if params.predict_acker:
            self._pre_promote_predicted_acker()
        self._sweep_timer = Timer(self.sim, self._tick)
        self._sweep_timer.start(params.sweep_interval)

    def _pre_promote_predicted_acker(self) -> None:
        """Promote the member the first election will pick.

        The first fake NAK to reach the source wins the election
        unconditionally; with symmetric paths that is the member whose
        elicited-NAK jitter draw — each member's *first* draw — is
        globally smallest.  Peeking (state save/draw/restore) keeps
        every stream draw-for-draw aligned with an exact run.
        """
        bound = C.NAK_BO_IVL / 4
        best = None
        winner = None
        for subtree in self.subtrees:
            value, identity = subtree.bank.peek_min(bound)
            if value is not None and (best is None or value < best):
                best, winner = value, identity
            # Sampled engines draw for themselves, but compete too.
            for member in subtree.exact.values():
                rng = member.receiver.rng
                state = rng.getstate()
                value = rng.uniform(0, bound)
                rng.setstate(state)
                if best is None or value < best:
                    best, winner = value, member.identity
        self.predicted_acker = winner
        if winner is not None and self.is_tail_identity(winner):
            self.promote(winner, reason="predicted")

    # -- identity space -------------------------------------------------------

    def subtree_of(self, identity: str) -> Optional[AggregateSubtree]:
        k = self.plan.subtree_of(identity)
        return self.subtrees[k] if k is not None and k < len(self.subtrees) else None

    def is_tail_identity(self, identity: str) -> bool:
        """True when ``identity`` is currently modeled by a bank (not
        an exact engine, not foreign to the plan)."""
        subtree = self.subtree_of(identity)
        return subtree is not None and identity not in subtree.exact

    # -- promotion / demotion -------------------------------------------------

    def promote(self, identity: str, reason: str = "acker",
                preempt: bool = False) -> bool:
        """Turn a tail identity into a full engine on a slot host.

        ``preempt=True`` (the acker path) may demote the most idle
        unprotected member to free a slot: an acker that cannot be
        promoted cannot ACK, and the session would stall until the
        demotion sweep caught up.
        """
        subtree = self.subtree_of(identity)
        if subtree is None or identity in subtree.exact:
            return False
        slot = subtree.take_slot()
        if slot is None and preempt:
            victim = self._preemption_victim(subtree)
            if victim is not None:
                self.demote(victim)
                slot = subtree.take_slot()
        if slot is None:
            self.promotions_deferred += 1
            return False
        subtree.bank.remove(identity)
        self._make_exact(subtree, identity, slot, pinned=False)
        self.promotions += 1
        return True

    def _preemption_victim(self, subtree: AggregateSubtree) -> Optional[str]:
        """Most idle member whose slot an acker promotion may take
        (never pinned, the current acker, or anyone the guard holds)."""
        acker = self.session.sender.controller.current_acker
        guard = self.session.sender.guard
        best = None
        best_at = None
        for identity, member in subtree.exact.items():
            if member.pinned or identity == acker:
                continue
            if guard is not None and (
                    guard.is_quarantined(identity)
                    or guard.suspicion(identity) > 0.01):
                continue
            active_at = max(member.promoted_at, member.last_acker_at)
            if best_at is None or active_at < best_at:
                best, best_at = identity, active_at
        return best

    def demote(self, identity: str) -> bool:
        """Return an idle promoted member to the tail."""
        subtree = self.subtree_of(identity)
        member = subtree.exact.get(identity) if subtree else None
        if member is None or member.pinned:
            return False
        member.receiver.close()
        member.receiver.host.unregister_agent(C.PROTO)
        del subtree.exact[identity]
        subtree.give_slot(member.host)
        try:
            self.session.receivers.remove(member.receiver)
        except ValueError:  # pragma: no cover - defensive
            pass
        self.session._rx_index.pop(identity, None)
        subtree.bank.add(identity, self._stream(identity))
        self.demotions += 1
        return True

    def on_acker_observed(self, acker_id: str) -> None:
        """ODATA named ``acker_id`` as the acker: tail members must be
        exact to ACK, so promote on sight."""
        if self.is_tail_identity(acker_id):
            self.promote(acker_id, reason="acker", preempt=True)

    # -- periodic sweep -------------------------------------------------------

    def _tick(self) -> None:
        if self._closed:
            return
        now = self.sim.now
        self._bind_network_elements()
        sender = self.session.sender
        acker = sender.controller.current_acker
        guard = sender.guard
        # Guard suspects must be exact: promotion puts their quarantine
        # under the full quarantined-never-acker machinery.
        if guard is not None:
            for rx_id in guard.quarantined_ids():
                if self.is_tail_identity(rx_id):
                    self.promote(rx_id, reason="quarantine")
            for rx_id, score in guard.summary()["suspects"].items():
                if score >= self.params.suspect_threshold \
                        and self.is_tail_identity(rx_id):
                    self.promote(rx_id, reason="suspect")
        for subtree in self.subtrees:
            if subtree.proxy is not None:
                subtree.proxy.gc_identities()
            for identity in list(subtree.exact):
                member = subtree.exact[identity]
                if identity == acker:
                    member.last_acker_at = now
                    continue
                if member.pinned:
                    continue
                if guard is not None and (
                        guard.is_quarantined(identity)
                        or guard.suspicion(identity) > 0.01):
                    continue
                idle_since = max(member.promoted_at, member.last_acker_at)
                if now - idle_since >= self.params.demote_after:
                    self.demote(identity)
        self._sweep_timer.restart(self.params.sweep_interval)

    def _bind_network_elements(self) -> None:
        """Register each subtree's aggregate branch weight with the NE
        on its router (lazy: NEs may be installed after the session)."""
        tsi = self.session.tsi
        for subtree in self.subtrees:
            router = self.net.nodes.get(self.plan.router(subtree.index))
            element = getattr(router, "interceptor", None)
            if element is None or not hasattr(element,
                                              "register_aggregate_branch"):
                continue
            branch = self.plan.agg_host(subtree.index)
            element.register_aggregate_branch(tsi, branch,
                                              subtree.bank.size + 1)
            self._ne_registered.add(subtree.index)

    # -- accounting -----------------------------------------------------------

    @property
    def population(self) -> int:
        return self.plan.n_receivers

    def exact_count(self) -> int:
        return sum(s.exact_count for s in self.subtrees)

    def tail_count(self) -> int:
        return sum(s.bank.size for s in self.subtrees)

    def synthetic_naks(self) -> int:
        return sum(s.proxy.synthetic_naks for s in self.subtrees
                   if s.proxy is not None)

    def synthetic_fake_naks(self) -> int:
        return sum(s.proxy.synthetic_fake_naks for s in self.subtrees
                   if s.proxy is not None)

    def conservation_errors(self) -> list[str]:
        """Checks for the ``aggregate-conservation`` invariant: the
        exact cohort and the tail partition the population, per subtree
        and in total, and every exact identity has a live engine."""
        errors = []
        for subtree in self.subtrees:
            modeled = subtree.bank.size + subtree.exact_count
            if modeled != subtree.size:
                errors.append(
                    f"subtree {subtree.index}: bank {subtree.bank.size} + "
                    f"exact {subtree.exact_count} != population {subtree.size}"
                )
            for identity, member in subtree.exact.items():
                if member.receiver._closed:
                    errors.append(
                        f"subtree {subtree.index}: exact member {identity} "
                        "has a closed engine"
                    )
        total = self.exact_count() + self.tail_count()
        if total != self.population:
            errors.append(
                f"exact {self.exact_count()} + tail {self.tail_count()} "
                f"!= population {self.population}"
            )
        return errors

    def observe_backoff(self, delay: float) -> None:
        if self._backoff_hist is not None:
            self._backoff_hist.observe(delay)

    def bind_metrics(self, registry) -> None:
        """Pull-bindings + the synthetic-feedback histogram
        (``agg.*``, see docs/API.md)."""
        bind = registry.bind
        bind("agg.promotions", lambda: self.promotions)
        bind("agg.demotions", lambda: self.demotions)
        bind("agg.promotions_deferred", lambda: self.promotions_deferred)
        bind("agg.synthetic_naks", self.synthetic_naks)
        bind("agg.synthetic_fake_naks", self.synthetic_fake_naks)
        bind("agg.population", lambda: self.population, kind="gauge")
        bind("agg.exact_cohort", self.exact_count, kind="gauge")
        bind("agg.tail", self.tail_count, kind="gauge")
        self._backoff_hist = registry.histogram("agg.synthetic_backoff_s")

    def summary(self) -> dict:
        """The fixed-key ``aggregate`` block of session summaries."""
        modes = {"mirror": 0, "analytic": 0}
        for subtree in self.subtrees:
            modes[subtree.bank.mode] += 1
        return {
            "enabled": True,
            "population": self.population,
            "subtrees": len(self.subtrees),
            "exact_cohort": self.exact_count(),
            "tail": self.tail_count(),
            "sampled": self.sampled_count,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "promotions_deferred": self.promotions_deferred,
            "synthetic_naks": self.synthetic_naks(),
            "synthetic_fake_naks": self.synthetic_fake_naks(),
            "predicted_acker": self.predicted_acker,
            "modes": modes,
        }

    def close(self) -> None:
        self._closed = True
        if self._sweep_timer is not None:
            self._sweep_timer.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AggregateManager pop={self.population} "
            f"exact={self.exact_count()} tail={self.tail_count()} "
            f"promotions={self.promotions}>"
        )
