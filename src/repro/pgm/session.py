"""Session wiring helpers.

Gluing a PGM/pgmcc session onto a simulated :class:`Network` takes a
few coordinated steps (multicast tree, agents, staggered starts);
:func:`create_session` does them all, and :func:`add_receiver` supports
mid-session joins (Fig. 7's 90 late receivers).

Session options live in :class:`SessionConfig`; the preferred call is::

    cfg = SessionConfig(cc=CcConfig(...), stop_at=30.0)
    session = create_session(net, "src", ["r1", "r2"], config=cfg)

Passing the same options as loose keyword arguments
(``create_session(net, "src", rxs, stop_at=30.0)``) still works — the
kwargs are folded into the config via :func:`dataclasses.replace` and
override any ``config`` fields.  New code should construct a
:class:`SessionConfig`; the kwargs form is kept for compatibility.

Every session owns a telemetry registry (``session.metrics``,
:mod:`repro.telemetry`): pull-bindings over the protocol counters, a
sim-clock sampling probe and the sender's phase spans, exported as a
``pgmcc.session-metrics/v1`` document.  ``telemetry=False`` swaps in
the null backend (no probe events, no-op instruments).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core.loss_filter import DEFAULT_W
from ..core.sender_cc import CcConfig
from ..simulator.packet import set_packet_pooling
from ..simulator.topology import Network
from ..simulator.trace import FlowTrace
from ..telemetry import as_registry
from ..telemetry.registry import MetricsRegistry, NullRegistry
from . import constants as C
from .guard import FeedbackGuard, GuardConfig
from .invariants import InvariantChecker
from .network_element import PgmNetworkElement
from .receiver import PgmReceiver
from .sender import DataSource, PgmSender
from .telemetry import DEFAULT_PROBE_INTERVAL, bind_session_metrics

#: schema tag on :meth:`PgmSession.summary` documents.  v2 adds the
#: ``recovery`` block (liveness watchdog, resyncs, TTR) and the
#: ``stall_duration`` histogram on top of v1 — per the API.md
#: versioning rules every v1 key is retained, so v1 consumers keep
#: working unchanged.
SUMMARY_SCHEMA = "pgmcc.session-summary/v2"


@dataclass
class SessionConfig:
    """Everything :func:`create_session` needs beyond the topology.

    Grouping the options makes sweeps composable::

        base = SessionConfig(cc=CcConfig(), stop_at=60.0)
        for w in (2, 8, 32):
            run(dataclasses.replace(base, filter_w=w))
    """

    #: transport session id (default: allocated by the network)
    tsi: Optional[int] = None
    #: multicast group address (default: derived from the tsi)
    group: Optional[str] = None
    #: pgmcc configuration; ``CcConfig(enabled=False)`` gives plain PGM
    cc: Optional[CcConfig] = None
    #: congestion-controller backend by registry name ("pgmcc", "aimd",
    #: "jain", "tfrc", or anything registered via
    #: :func:`repro.core.controller.register_controller`); None keeps
    #: whatever ``cc.controller`` says (the pgmcc default)
    controller: Optional[str] = None
    #: backend-specific parameters (dict, e.g. {"beta": 0.8}); folded
    #: into ``cc.controller_params``
    controller_params: Optional[dict] = None
    #: acker-liveness watchdog (repro.pgm.liveness); None keeps
    #: whatever ``cc.liveness`` says (off by default)
    liveness: Optional[bool] = None
    #: LivenessConfig overrides (dict); folded into ``cc.liveness_params``
    liveness_params: Optional[dict] = None
    #: application data source (default: infinite bulk)
    source: Optional[DataSource] = None
    #: §3.9 unreliable mode when False (reports, no repairs)
    reliable: bool = True
    #: PGM rate-limiter cap (required when cc is disabled)
    max_rate_bps: Optional[float] = None
    payload_size: int = C.DEFAULT_PAYLOAD
    #: sender start/stop times (absolute sim seconds)
    start_at: float = 0.0
    stop_at: Optional[float] = None
    #: include corrected timestamp echoes in reports (RTT ablation)
    echo_timestamps: bool = False
    trace_name: Optional[str] = None
    #: application feedback hook, called at each transmission (§3.9)
    on_token: Optional[Callable[[float], None]] = None
    #: loss-filter window (paper default when None)
    filter_w: Optional[int] = None
    #: "filter" (paper) or "tfrc" loss measurement
    estimator: str = "filter"
    #: a :class:`~repro.simulator.faults.FaultPlan` to compile in
    faults: Optional[Any] = None
    #: attach a runtime :class:`InvariantChecker`
    check_invariants: bool = False
    #: raise on violation (False: collect only)
    strict_invariants: bool = True
    #: sender-side feedback guard: True, GuardConfig or FeedbackGuard
    guard: Any = None
    #: telemetry backend: True (own registry), False (null backend) or
    #: an existing registry to share
    telemetry: Any = True
    #: sim-clock sampling period for the session probe
    telemetry_interval: float = DEFAULT_PROBE_INTERVAL
    #: event scheduler for the session's network: "heap" (reference),
    #: "calendar", or None to keep whatever the Network already uses
    scheduler: Optional[str] = None
    #: process-wide packet pooling override (None: leave as configured,
    #: see ``repro.simulator.packet.set_packet_pooling``)
    packet_pool: Optional[bool] = None
    #: hybrid-fidelity aggregate mode (repro.pgm.aggregate): requires a
    #: network built by ``dumbbell_subtrees(..., members="virtual")``
    aggregate: bool = False
    #: :class:`~repro.pgm.aggregate.AggregateParams` overrides (dict)
    aggregate_params: Optional[dict] = None


@dataclass
class PgmSession:
    """Handles for one wired-up session."""

    network: Network
    sender: PgmSender
    receivers: list[PgmReceiver]
    group: str
    tsi: int
    #: every host (by name) currently subscribed
    members: list[str] = field(default_factory=list)
    #: fault injector compiled from ``SessionConfig.faults``
    fault_injector: Optional[object] = None
    #: runtime invariant checker from ``SessionConfig.check_invariants``
    invariants: Optional[InvariantChecker] = None
    #: the session's telemetry registry (null backend when disabled)
    metrics: "MetricsRegistry | NullRegistry" = field(
        default_factory=NullRegistry, repr=False
    )
    #: hybrid-fidelity manager (``SessionConfig.aggregate``), else None
    aggregate: Optional[object] = None
    #: rx_id -> receiver index backing :meth:`receiver`
    _rx_index: dict[str, PgmReceiver] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def trace(self) -> FlowTrace:
        return self.sender.trace

    @property
    def guard(self) -> Optional[FeedbackGuard]:
        return self.sender.guard

    @property
    def acker_switches(self) -> int:
        return self.sender.acker_switches

    def receiver(self, rx_id: str) -> PgmReceiver:
        """Look up a receiver by its report identity (O(1))."""
        # The index tracks self.receivers; code that appends to the
        # list directly (rather than via add_receiver) is still served
        # by rebuilding on the size mismatch.
        if len(self._rx_index) != len(self.receivers):
            self._rx_index = {rx.rx_id: rx for rx in self.receivers}
        try:
            return self._rx_index[rx_id]
        except KeyError:
            raise KeyError(rx_id) from None

    def _register_receiver(self, rx: PgmReceiver) -> PgmReceiver:
        self.receivers.append(rx)
        self._rx_index[rx.rx_id] = rx
        return rx

    def throughput_bps(self, t0: float, t1: float) -> float:
        """Sender goodput (original data payload bits/s) over [t0, t1)."""
        sub = self.trace.between(t0, t1)
        if t1 <= t0:
            return 0.0
        return sub.bytes_sent("data") * 8.0 / (t1 - t0)

    def close(self) -> None:
        self.sender.close()
        if self.aggregate is not None:
            self.aggregate.close()
        for rx in self.receivers:
            rx.close()
        if self.invariants is not None:
            self.invariants.detach()
        self.metrics.close()

    def summary(self) -> dict:
        """One-call session statistics: ``pgmcc.session-summary/v2``.

        The scalar keys read the same live counters the session's
        metric bindings sample (see :mod:`repro.pgm.telemetry`), so a
        summary agrees with a simultaneous ``metrics.export()``
        regardless of whether telemetry is enabled; ``phases``,
        ``repair_latency`` and ``stall_duration`` come from the
        registry's push instruments and are empty under the null
        backend.  The key set is stable — documented in docs/API.md —
        and only grows within a schema major: v2 is v1 plus the
        ``recovery`` block and ``stall_duration``, every v1 key intact.
        """
        controller = self.sender.controller
        watchdog = self.sender.watchdog
        spans = self.metrics.spans.snapshot()
        histograms = self.metrics.snapshot()["histograms"]
        repair = histograms.get("repair.latency_s")
        unrecoverable = sum(
            rx.unrecoverable_data_loss for rx in self.receivers
        )
        # Fixed key set whether or not the watchdog is attached, so
        # consumers never key-check per session.
        recovery = {
            "watchdog": watchdog is not None,
            "state": "normal",
            "demotions": 0,
            "degraded_entries": 0,
            "degraded_time_s": 0.0,
            "probes_sent": 0,
            "repairs_blocked": 0,
            "ttr_last_s": 0.0,
            "ttr_samples": [],
        }
        if watchdog is not None:
            recovery.update(watchdog.summary())
        recovery["resyncs"] = sum(rx.resyncs for rx in self.receivers)
        recovery["unrecoverable_loss"] = unrecoverable
        # Fixed key set whether or not the hybrid subsystem is on.
        from .aggregate import empty_aggregate_summary

        aggregate = (
            self.aggregate.summary() if self.aggregate is not None
            else empty_aggregate_summary()
        )
        return {
            "schema": SUMMARY_SCHEMA,
            "tsi": self.tsi,
            "group": self.group,
            "odata_sent": self.sender.odata_sent,
            "rdata_sent": self.sender.rdata_sent,
            "bytes_sent": self.sender.bytes_sent,
            "acks_received": self.sender.acks_received,
            "naks_received": self.sender.naks_received,
            "nak_origins": dict(self.sender.nak_origins),
            "acker": self.sender.current_acker,
            "acker_switches": self.acker_switches,
            "acker_evictions": controller.acker_evictions,
            "stalls": controller.stalls,
            "window": controller.window.w,
            "controller": controller.backend.name,
            "controller_state": controller.backend.state_summary(),
            "malformed_dropped": self.malformed_dropped(),
            "unrecoverable_data_loss": unrecoverable,
            "guard": self.guard.summary() if self.guard is not None else None,
            "phases": spans["stats"],
            "repair_latency": repair,
            "stall_duration": histograms.get("stall.duration_s"),
            "recovery": recovery,
            "aggregate": aggregate,
            "receivers": {
                rx.rx_id: {
                    "odata_received": rx.odata_received,
                    "rdata_received": rx.rdata_received,
                    "loss_rate": rx.loss_rate,
                    "delivered": rx.delivered,
                    "acks_sent": rx.acks_sent,
                    "naks_sent": rx.naks_sent,
                    "malformed_dropped": rx.malformed_dropped,
                    "unrecoverable_data_loss": rx.unrecoverable_data_loss,
                    "resyncs": rx.resyncs,
                }
                for rx in self.receivers
            },
        }

    def malformed_dropped(self) -> int:
        """Corrupted-packet drops across every session ingress."""
        total = self.sender.malformed_dropped + self.sender.insane_dropped
        for rx in self.receivers:
            total += rx.malformed_dropped + rx.insane_dropped
        return total


def create_session(
    net: Network,
    sender_host: str,
    receiver_hosts: list[str],
    config: Optional[SessionConfig] = None,
    **kwargs: Any,
) -> PgmSession:
    """Create and schedule a full PGM/pgmcc session on ``net``.

    Options come in a :class:`SessionConfig`; individual keyword
    arguments (the pre-config calling convention) are still accepted
    and override the corresponding config fields.  An unknown keyword
    raises ``TypeError`` exactly as the old signature did.

    ``faults`` takes a :class:`~repro.simulator.faults.FaultPlan` and
    compiles it onto the network with this session resolving the
    :data:`~repro.simulator.faults.ACKER` sentinel and receiver names
    for misbehavior episodes; ``check_invariants=True`` attaches a
    runtime :class:`~repro.pgm.invariants.InvariantChecker`
    (``strict_invariants=False`` collects violations instead of
    raising).  ``guard`` enables the sender-side
    :class:`~repro.pgm.guard.FeedbackGuard` — pass ``True`` for
    defaults or a :class:`~repro.pgm.guard.GuardConfig`; the loss-range
    rule is auto-configured from ``filter_w``/``estimator``.  All
    handles live on the returned session, including the telemetry
    registry (``session.metrics``).
    """
    cfg = config if config is not None else SessionConfig()
    if kwargs:
        try:
            cfg = dataclasses.replace(cfg, **kwargs)
        except TypeError as exc:
            raise TypeError(f"create_session: {exc}") from None

    # Engine knobs first: the scheduler swap migrates pending events
    # but not direct Simulator references, so it must precede every
    # agent/guard/injector construction below.
    if cfg.scheduler is not None:
        net.use_scheduler(cfg.scheduler)
    if cfg.packet_pool is not None:
        set_packet_pooling(cfg.packet_pool)

    # Controller and liveness selection fold into CcConfig so the
    # sender (and the runner's cache keys, which hash the config) see
    # one source of truth.
    if (cfg.controller is not None or cfg.controller_params is not None
            or cfg.liveness is not None or cfg.liveness_params is not None):
        cc = cfg.cc if cfg.cc is not None else CcConfig()
        cc = dataclasses.replace(
            cc,
            controller=cfg.controller if cfg.controller is not None else cc.controller,
            controller_params=(
                tuple(sorted(cfg.controller_params.items()))
                if cfg.controller_params is not None
                else cc.controller_params
            ),
            liveness=cfg.liveness if cfg.liveness is not None else cc.liveness,
            liveness_params=(
                tuple(sorted(cfg.liveness_params.items()))
                if cfg.liveness_params is not None
                else cc.liveness_params
            ),
        )
        cfg = dataclasses.replace(cfg, cc=cc)

    plan = None
    if cfg.aggregate:
        plan = getattr(net, "subtree_plan", None)
        if plan is None:
            raise ValueError(
                "SessionConfig.aggregate requires a network built by "
                "dumbbell_subtrees(..., members='virtual')"
            )
        if plan.members != "virtual":
            raise ValueError(
                "aggregate sessions need dumbbell_subtrees "
                "members='virtual' (got members='real')"
            )
        if not receiver_hosts:
            receiver_hosts = plan.session_hosts()

    tsi = cfg.tsi if cfg.tsi is not None else net.next_tsi()
    group = cfg.group if cfg.group is not None else f"mc:pgm{tsi}"
    net.set_group(group, sender_host, receiver_hosts)

    guard_obj: Optional[FeedbackGuard] = None
    if cfg.guard:
        if isinstance(cfg.guard, FeedbackGuard):
            guard_obj = cfg.guard
        else:
            if isinstance(cfg.guard, GuardConfig):
                guard_cfg = cfg.guard
            else:  # guard=True: defaults matched to the session's estimator
                guard_cfg = GuardConfig(
                    filter_w=cfg.filter_w if cfg.filter_w is not None else DEFAULT_W,
                    check_loss_range=(cfg.estimator == "filter"),
                )
            guard_obj = FeedbackGuard(net.sim, guard_cfg)

    registry = as_registry(cfg.telemetry)
    trace = FlowTrace(cfg.trace_name or f"pgm{tsi}")
    sender = PgmSender(
        net.host(sender_host),
        group,
        tsi,
        cc=cfg.cc,
        source=cfg.source,
        max_rate_bps=cfg.max_rate_bps,
        reliable=cfg.reliable,
        trace=trace,
        on_token=cfg.on_token,
        payload_size=cfg.payload_size,
        guard=guard_obj,
        telemetry=registry,
    )
    session = PgmSession(net, sender, [], group, tsi,
                         members=list(receiver_hosts), metrics=registry)
    if cfg.aggregate:
        from .aggregate import AggregateManager, AggregateParams

        rx_defaults = {
            "group": group,
            "tsi": tsi,
            "source_addr": sender_host,
            "reliable": cfg.reliable,
            "echo_timestamps": cfg.echo_timestamps,
            "estimator": cfg.estimator,
            "telemetry": registry,
        }
        if cfg.filter_w is not None:
            rx_defaults["filter_w"] = cfg.filter_w
        session.aggregate = AggregateManager(
            net, session, plan,
            AggregateParams(**(cfg.aggregate_params or {})),
            rx_defaults,
        )
        session.aggregate.setup()
    else:
        for host_name in receiver_hosts:
            session._register_receiver(
                _make_receiver(net, session, host_name, cfg.reliable,
                               cfg.echo_timestamps, cfg.filter_w,
                               cfg.estimator)
            )
    if cfg.check_invariants:
        session.invariants = InvariantChecker(
            session, strict=cfg.strict_invariants
        ).attach()
    if cfg.faults is not None:

        def _receiver_lookup(name: str):
            for rx in session.receivers:
                if rx.rx_id == name or rx.host.name == name:
                    return rx
            return None

        session.fault_injector = net.install_faults(
            cfg.faults,
            acker_lookup=lambda: sender.current_acker,
            receiver_lookup=_receiver_lookup,
        )
    bind_session_metrics(session, registry, cfg.telemetry_interval)
    if session.aggregate is not None:
        session.aggregate.bind_metrics(registry)
    if cfg.start_at <= 0:
        # Schedule rather than call so construction order never matters.
        net.sim.schedule(0.0, sender.start)
    else:
        net.sim.schedule_at(cfg.start_at, sender.start)
    if cfg.stop_at is not None:
        net.sim.schedule_at(cfg.stop_at, sender.close)
    return session


def _make_receiver(
    net: Network,
    session: PgmSession,
    host_name: str,
    reliable: bool,
    echo_timestamps: bool,
    filter_w: Optional[int],
    estimator: str = "filter",
    recover_history: bool = False,
) -> PgmReceiver:
    kwargs = {}
    if filter_w is not None:
        kwargs["filter_w"] = filter_w
    return PgmReceiver(
        net.host(host_name),
        session.group,
        session.tsi,
        source_addr=session.sender.host.name,
        reliable=reliable,
        echo_timestamps=echo_timestamps,
        rng=net.rng.stream(f"rx:{session.tsi}:{host_name}"),
        estimator=estimator,
        recover_history=recover_history,
        telemetry=session.metrics,
        **kwargs,
    )


def add_receiver(
    net: Network,
    session: PgmSession,
    host_name: str,
    at: Optional[float] = None,
    reliable: bool = True,
    echo_timestamps: bool = False,
    estimator: str = "filter",
    recover_history: bool = False,
) -> None:
    """Join ``host_name`` to the session, now or at time ``at``.

    The multicast tree is re-installed for the expanded member set —
    the simulator analogue of the IGMP join + tree graft a real
    network performs.
    """

    def _join() -> None:
        session.members.append(host_name)
        net.set_group(session.group, session.sender.host.name, session.members)
        session._register_receiver(
            _make_receiver(net, session, host_name, reliable, echo_timestamps,
                           None, estimator, recover_history)
        )

    if at is None or at <= net.sim.now:
        _join()
    else:
        net.sim.schedule_at(at, _join)


def enable_network_elements(
    net: Network,
    router_names: Optional[list[str]] = None,
    suppress: bool = True,
    rx_loss_aware: bool = False,
    selective_repair: bool = True,
    telemetry: "MetricsRegistry | NullRegistry | None" = None,
) -> dict[str, PgmNetworkElement]:
    """Install PGM network elements on the given (default: all) routers.

    Pass a session's registry as ``telemetry`` to bind each element's
    counters under ``ne.<router>.*``.
    """
    from ..simulator.node import Router

    if router_names is None:
        router_names = [
            name for name, node in net.nodes.items() if isinstance(node, Router)
        ]
    elements = {}
    for name in router_names:
        elements[name] = PgmNetworkElement(
            net.router(name),
            suppress=suppress,
            rx_loss_aware=rx_loss_aware,
            selective_repair=selective_repair,
        )
    if telemetry is not None:
        for name, element in elements.items():
            for key in ("naks_seen", "naks_forwarded", "naks_suppressed",
                        "naks_aggregated", "rdata_selective",
                        "rdata_flooded", "ncfs_sent"):
                telemetry.bind(f"ne.{name}.{key}",
                               (lambda e=element, k=key: e.metrics()[k]))
    return elements
