"""Session wiring helpers.

Gluing a PGM/pgmcc session onto a simulated :class:`Network` takes a
few coordinated steps (multicast tree, agents, staggered starts);
:func:`create_session` does them all, and :func:`add_receiver` supports
mid-session joins (Fig. 7's 90 late receivers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.loss_filter import DEFAULT_W
from ..core.sender_cc import CcConfig
from ..simulator.topology import Network
from ..simulator.trace import FlowTrace
from . import constants as C
from .guard import FeedbackGuard, GuardConfig
from .invariants import InvariantChecker
from .network_element import PgmNetworkElement
from .receiver import PgmReceiver
from .sender import DataSource, PgmSender


@dataclass
class PgmSession:
    """Handles for one wired-up session."""

    network: Network
    sender: PgmSender
    receivers: list[PgmReceiver]
    group: str
    tsi: int
    #: every host (by name) currently subscribed
    members: list[str] = field(default_factory=list)
    #: fault injector compiled from ``create_session(faults=...)``
    fault_injector: Optional[object] = None
    #: runtime invariant checker from ``create_session(check_invariants=...)``
    invariants: Optional[InvariantChecker] = None

    @property
    def trace(self) -> FlowTrace:
        return self.sender.trace

    @property
    def guard(self) -> Optional[FeedbackGuard]:
        return self.sender.guard

    @property
    def acker_switches(self) -> int:
        return self.sender.acker_switches

    def receiver(self, rx_id: str) -> PgmReceiver:
        for rx in self.receivers:
            if rx.rx_id == rx_id:
                return rx
        raise KeyError(rx_id)

    def throughput_bps(self, t0: float, t1: float) -> float:
        """Sender goodput (original data payload bits/s) over [t0, t1)."""
        sub = self.trace.between(t0, t1)
        if t1 <= t0:
            return 0.0
        return sub.bytes_sent("data") * 8.0 / (t1 - t0)

    def close(self) -> None:
        self.sender.close()
        for rx in self.receivers:
            rx.close()
        if self.invariants is not None:
            self.invariants.detach()

    def summary(self) -> dict:
        """One-call session statistics (for reports and examples)."""
        controller = self.sender.controller
        return {
            "tsi": self.tsi,
            "group": self.group,
            "odata_sent": self.sender.odata_sent,
            "rdata_sent": self.sender.rdata_sent,
            "bytes_sent": self.sender.bytes_sent,
            "acks_received": self.sender.acks_received,
            "naks_received": self.sender.naks_received,
            "nak_origins": dict(self.sender.nak_origins),
            "acker": self.sender.current_acker,
            "acker_switches": self.acker_switches,
            "acker_evictions": controller.acker_evictions,
            "stalls": controller.stalls,
            "window": controller.window.w,
            "malformed_dropped": self.malformed_dropped(),
            "unrecoverable_data_loss": sum(
                rx.unrecoverable_data_loss for rx in self.receivers
            ),
            "guard": self.guard.summary() if self.guard is not None else None,
            "receivers": {
                rx.rx_id: {
                    "odata_received": rx.odata_received,
                    "rdata_received": rx.rdata_received,
                    "loss_rate": rx.loss_rate,
                    "delivered": rx.delivered,
                    "acks_sent": rx.acks_sent,
                    "naks_sent": rx.naks_sent,
                    "malformed_dropped": rx.malformed_dropped,
                    "unrecoverable_data_loss": rx.unrecoverable_data_loss,
                }
                for rx in self.receivers
            },
        }

    def malformed_dropped(self) -> int:
        """Corrupted-packet drops across every session ingress."""
        total = self.sender.malformed_dropped + self.sender.insane_dropped
        for rx in self.receivers:
            total += rx.malformed_dropped + rx.insane_dropped
        return total


def create_session(
    net: Network,
    sender_host: str,
    receiver_hosts: list[str],
    tsi: Optional[int] = None,
    group: Optional[str] = None,
    cc: Optional[CcConfig] = None,
    source: Optional[DataSource] = None,
    reliable: bool = True,
    max_rate_bps: Optional[float] = None,
    payload_size: int = C.DEFAULT_PAYLOAD,
    start_at: float = 0.0,
    stop_at: Optional[float] = None,
    echo_timestamps: bool = False,
    trace_name: Optional[str] = None,
    on_token=None,
    filter_w: Optional[int] = None,
    estimator: str = "filter",
    faults=None,
    check_invariants: bool = False,
    strict_invariants: bool = True,
    guard=None,
) -> PgmSession:
    """Create and schedule a full PGM/pgmcc session on ``net``.

    ``faults`` takes a :class:`~repro.simulator.faults.FaultPlan` and
    compiles it onto the network with this session resolving the
    :data:`~repro.simulator.faults.ACKER` sentinel and receiver names
    for misbehavior episodes; ``check_invariants=True`` attaches a
    runtime :class:`~repro.pgm.invariants.InvariantChecker`
    (``strict_invariants=False`` collects violations instead of
    raising).  ``guard`` enables the sender-side
    :class:`~repro.pgm.guard.FeedbackGuard` — pass ``True`` for
    defaults or a :class:`~repro.pgm.guard.GuardConfig`; the loss-range
    rule is auto-configured from ``filter_w``/``estimator``.  All
    handles live on the returned session.
    """
    if tsi is None:
        tsi = net.next_tsi()
    if group is None:
        group = f"mc:pgm{tsi}"
    net.set_group(group, sender_host, receiver_hosts)

    guard_obj: Optional[FeedbackGuard] = None
    if guard:
        if isinstance(guard, FeedbackGuard):
            guard_obj = guard
        else:
            if isinstance(guard, GuardConfig):
                config = guard
            else:  # guard=True: defaults matched to the session's estimator
                config = GuardConfig(
                    filter_w=filter_w if filter_w is not None else DEFAULT_W,
                    check_loss_range=(estimator == "filter"),
                )
            guard_obj = FeedbackGuard(net.sim, config)

    trace = FlowTrace(trace_name or f"pgm{tsi}")
    sender = PgmSender(
        net.host(sender_host),
        group,
        tsi,
        cc=cc,
        source=source,
        max_rate_bps=max_rate_bps,
        reliable=reliable,
        trace=trace,
        on_token=on_token,
        payload_size=payload_size,
        guard=guard_obj,
    )
    session = PgmSession(net, sender, [], group, tsi, members=list(receiver_hosts))
    for host_name in receiver_hosts:
        session.receivers.append(
            _make_receiver(net, session, host_name, reliable, echo_timestamps,
                           filter_w, estimator)
        )
    if check_invariants:
        session.invariants = InvariantChecker(
            session, strict=strict_invariants
        ).attach()
    if faults is not None:

        def _receiver_lookup(name: str):
            for rx in session.receivers:
                if rx.rx_id == name or rx.host.name == name:
                    return rx
            return None

        session.fault_injector = net.install_faults(
            faults,
            acker_lookup=lambda: sender.current_acker,
            receiver_lookup=_receiver_lookup,
        )
    if start_at <= 0:
        # Schedule rather than call so construction order never matters.
        net.sim.schedule(0.0, sender.start)
    else:
        net.sim.schedule_at(start_at, sender.start)
    if stop_at is not None:
        net.sim.schedule_at(stop_at, sender.close)
    return session


def _make_receiver(
    net: Network,
    session: PgmSession,
    host_name: str,
    reliable: bool,
    echo_timestamps: bool,
    filter_w: Optional[int],
    estimator: str = "filter",
    recover_history: bool = False,
) -> PgmReceiver:
    kwargs = {}
    if filter_w is not None:
        kwargs["filter_w"] = filter_w
    return PgmReceiver(
        net.host(host_name),
        session.group,
        session.tsi,
        source_addr=session.sender.host.name,
        reliable=reliable,
        echo_timestamps=echo_timestamps,
        rng=net.rng.stream(f"rx:{session.tsi}:{host_name}"),
        estimator=estimator,
        recover_history=recover_history,
        **kwargs,
    )


def add_receiver(
    net: Network,
    session: PgmSession,
    host_name: str,
    at: Optional[float] = None,
    reliable: bool = True,
    echo_timestamps: bool = False,
    estimator: str = "filter",
    recover_history: bool = False,
) -> None:
    """Join ``host_name`` to the session, now or at time ``at``.

    The multicast tree is re-installed for the expanded member set —
    the simulator analogue of the IGMP join + tree graft a real
    network performs.
    """

    def _join() -> None:
        session.members.append(host_name)
        net.set_group(session.group, session.sender.host.name, session.members)
        session.receivers.append(
            _make_receiver(net, session, host_name, reliable, echo_timestamps,
                           None, estimator, recover_history)
        )

    if at is None or at <= net.sim.now:
        _join()
    else:
        net.sim.schedule_at(at, _join)


def enable_network_elements(
    net: Network,
    router_names: Optional[list[str]] = None,
    suppress: bool = True,
    rx_loss_aware: bool = False,
    selective_repair: bool = True,
) -> dict[str, PgmNetworkElement]:
    """Install PGM network elements on the given (default: all) routers."""
    from ..simulator.node import Router

    if router_names is None:
        router_names = [
            name for name, node in net.nodes.items() if isinstance(node, Router)
        ]
    elements = {}
    for name in router_names:
        elements[name] = PgmNetworkElement(
            net.router(name),
            suppress=suppress,
            rx_loss_aware=rx_loss_aware,
            selective_repair=selective_repair,
        )
    return elements
