"""The PGM receiver with pgmcc attached (§3.2, §3.3, §3.6).

Receivers detect losses from sequence gaps, run the low-pass loss
filter, and send NAKs carrying their report after a randomised backoff
(the classic feedback-suppression technique).  NCFs — from network
elements or from the source — cancel pending NAKs; if the repair then
fails to arrive within ``NAK_RDATA_IVL`` the receiver re-NAKs.

When a data packet names this receiver as the acker, it unicasts an
ACK to the source for that packet (original transmissions only, never
repairs), carrying ``ack_seq``, the 32-bit receive bitmap and its
report.

When the elicit-NAK mark is seen (first packet of a session or
post-stall restart, §3.6) the receiver answers with a *fake* NAK: a
report-only NAK for a packet it actually received, seeding the acker
election without requesting a repair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.receiver_cc import ReceiverController
from ..core.loss_filter import DEFAULT_W
from ..simulator.engine import Timer
from ..simulator.node import Host
from ..simulator.packet import Packet
from ..telemetry.instruments import NULL_HISTOGRAM
from . import constants as C
from .misbehavior import Misbehavior, make_behavior
from .packets import Ack, Nak, Ncf, OData, RData, Spm, decode


@dataclass
class _NakState:
    """Per-missing-sequence NAK state machine.

    States: BACKOFF (timer running before first/again NAK) ->
    AWAIT_NCF (NAK sent, waiting for confirmation; retry on timer) ->
    CONFIRMED (NCF seen, waiting for RDATA; re-NAK on timer).
    """

    seq: int
    timer: Timer
    state: str = "BACKOFF"
    attempts: int = 0
    #: sim time the gap was detected — anchors the repair-latency
    #: histogram (gap-open to RDATA arrival, the NAK round-trip)
    opened: float = 0.0


class PgmReceiver:
    """One PGM/pgmcc receiver.

    Args:
        host: simulator host (must be subscribed to ``group``).
        group: session multicast group.
        tsi: transport session id.
        source_addr: unicast address of the PGM source.
        rx_id: report identity; defaults to the host name.
        reliable: when False (§3.9) the receiver reports losses but
            expects no repairs (one NAK per loss, no retry loop).
        deliver: callback ``(seq, payload_len, payload)`` invoked in
            order for reliable sessions, or immediately in unreliable
            ones.
        echo_timestamps: include corrected timestamp echoes in reports
            (time-based RTT ablation only).
        estimator: "filter" (paper) or "tfrc" loss measurement.
        recover_history: on joining mid-session, NAK backwards from
            the sender's advertised trail to recover earlier data (the
            PGM option §3.8 names as a NAK-storm source).
        storm_threshold / storm_spacing: NAK pacing (§3.8): when more
            than ``storm_threshold`` repairs are pending, consecutive
            NAK transmissions are spaced at least ``storm_spacing``
            seconds apart.
    """

    def __init__(
        self,
        host: Host,
        group: str,
        tsi: int,
        source_addr: str,
        rx_id: Optional[str] = None,
        reliable: bool = True,
        filter_w: int = DEFAULT_W,
        deliver: Optional[Callable[[int, int, bytes], None]] = None,
        echo_timestamps: bool = False,
        rng: Optional[random.Random] = None,
        nak_bo_ivl: float = C.NAK_BO_IVL,
        nak_rpt_ivl: float = C.NAK_RPT_IVL,
        nak_rdata_ivl: float = C.NAK_RDATA_IVL,
        nak_max_retries: int = C.NAK_MAX_RETRIES,
        estimator: str = "filter",
        recover_history: bool = False,
        history_limit: int = 1024,
        storm_threshold: int = 32,
        storm_spacing: float = 0.02,
        telemetry=None,
    ):
        self.host = host
        self.sim = host.sim
        self.group = group
        self.tsi = tsi
        self.source_addr = source_addr
        self.rx_id = rx_id if rx_id is not None else host.name
        self.reliable = reliable
        self.deliver = deliver
        self.echo_timestamps = echo_timestamps
        if rng is None:
            # str.hash() is salted per process; derive a stable seed so
            # receivers behave identically run to run.
            import zlib

            rng = random.Random(zlib.crc32(self.rx_id.encode("utf-8")))
        self.rng = rng
        self.nak_bo_ivl = nak_bo_ivl
        self.nak_rpt_ivl = nak_rpt_ivl
        self.nak_rdata_ivl = nak_rdata_ivl
        self.nak_max_retries = nak_max_retries

        self.cc = ReceiverController(self.rx_id, filter_w, estimator=estimator)
        self.recover_history = recover_history
        self.history_limit = history_limit
        self.storm_threshold = storm_threshold
        self.storm_spacing = storm_spacing
        self._last_nak_time = -1e9
        self._repair_hist = (
            telemetry.histogram("repair.latency_s")
            if telemetry is not None else NULL_HISTOGRAM
        )
        self._nak_states: dict[int, _NakState] = {}
        self._closed = False
        #: active misbehaviours, by kind (normally empty — installed by
        #: the fault injector's receiver-misbehavior episodes)
        self.behaviors: dict[str, Misbehavior] = {}
        #: in-order delivery state (reliable mode)
        self._pending_delivery: dict[int, tuple[int, bytes]] = {}
        self._next_deliver = 0
        self._abandoned: set[int] = set()
        # statistics
        self.odata_received = 0
        self.rdata_received = 0
        self.naks_sent = 0
        self.fake_naks_sent = 0
        self.acks_sent = 0
        self.ncfs_received = 0
        self.naks_suppressed_by_ncf = 0
        self.repairs_abandoned = 0
        self.delivered = 0
        self.spms_received = 0
        self.tail_loss_detections = 0
        self.malformed_dropped = 0
        self.insane_dropped = 0
        self.unrecoverable_data_loss = 0
        #: live-edge rejoins after a gap outlived the repair horizon
        self.resyncs = 0
        self.acks_suppressed = 0
        self.naks_suppressed = 0
        self.acks_replayed = 0
        self._last_spm_lead = -1
        host.register_agent(C.PROTO, self)

    # -- misbehaviour control (driven by the fault injector) -----------------

    def misbehave_start(self, kind: str, now: float, rng: random.Random,
                        **params) -> None:
        """Switch on a misbehaviour episode (idempotent per kind)."""
        self.misbehave_stop(kind)
        behavior = make_behavior(kind, self, rng, **params)
        self.behaviors[kind] = behavior
        behavior.start(now)

    def misbehave_stop(self, kind: str) -> None:
        """Switch a misbehaviour off again (no-op when not active)."""
        behavior = self.behaviors.pop(kind, None)
        if behavior is not None:
            behavior.stop()

    # -- receive dispatch ---------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        if self._closed:
            return
        msg = packet.payload
        from_wire = isinstance(msg, (bytes, bytearray))
        if from_wire:
            # Mangled links deliver raw bytes; a decode failure models
            # a checksum-rejected frame at this host.
            try:
                msg = decode(bytes(msg))
            except ValueError:
                self.malformed_dropped += 1
                return
        if getattr(msg, "tsi", None) != self.tsi:
            return
        if from_wire and not self._sane(msg):
            # Decoded fine but carries fields no honest sender emits
            # (a bit flip landed in seq/trail/lead): treat as corrupt.
            self.insane_dropped += 1
            return
        if isinstance(msg, OData):
            self._handle_data(msg, is_repair=False)
        elif isinstance(msg, RData):
            self._handle_data(msg, is_repair=True)
        elif isinstance(msg, Ncf):
            self._handle_ncf(msg)
        elif isinstance(msg, Spm):
            self._handle_spm(msg)
        # ACKs are unicast to the source; receivers never see them.

    #: widest credible jump ahead of our window for wire-decoded
    #: sequence fields — anything further is a corrupted field, not
    #: data (an honest sender cannot outrun its own transmit window).
    _SANITY_HORIZON = 4 * C.TX_WINDOW_PACKETS

    def _sane(self, msg) -> bool:
        lead = max(self.cc.rxw_lead, 0)
        if isinstance(msg, (OData, RData)):
            return msg.trail <= msg.seq and msg.seq - lead <= self._SANITY_HORIZON
        if isinstance(msg, Spm):
            return msg.trail <= msg.lead and msg.lead - lead <= self._SANITY_HORIZON
        return True

    # -- data path -----------------------------------------------------------

    def _handle_data(self, msg, is_repair: bool) -> None:
        if is_repair:
            self.rdata_received += 1
        else:
            self.odata_received += 1
        if self.cc.rxw_lead < 0:
            # First packet anchors in-order delivery as well (mid-join
            # receivers start from here, not from sequence 0) — unless
            # the application asked to recover the session's history.
            if self.recover_history and not is_repair:
                start = max(msg.trail, msg.seq - self.history_limit)
                self._next_deliver = start
                for missing in range(start, msg.seq):
                    self._open_nak_state(missing)
            else:
                self._next_deliver = msg.seq
        elif (
            not is_repair
            and msg.trail > self.cc.rxw_lead + 1
            and msg.seq - 1 > self.cc.rxw_lead
        ):
            # The sender's trail moved past our window while we were
            # partitioned: everything between our lead and the trail is
            # unrepairable, and NAK-storming for the rest of the gap
            # would only thrash.  Rejoin at the live edge instead
            # (late-join semantics, §3.8's bounded-recovery corollary).
            self._resync(msg.seq - 1)
        outcome = self.cc.on_data(msg.seq, self.sim.now, msg.timestamp)

        # Any arrival of the sequence quenches its NAK machinery; a
        # repair arriving for an open gap closes one NAK round-trip.
        state = self._nak_states.pop(msg.seq, None)
        if state is not None:
            state.timer.cancel()
            if is_repair:
                self._repair_hist.observe(self.sim.now - state.opened)
        for gap in outcome.new_gaps:
            self._open_nak_state(gap)

        if not outcome.duplicate:
            self._deliver(msg.seq, msg.payload_len, msg.payload)

        if is_repair:
            return
        # ODATA-only behaviour: ACK if we are the acker, fake-NAK if marked.
        if msg.acker_id == self.rx_id:
            self._send_ack(msg.seq)
        if msg.elicit_nak:
            self._send_fake_nak(msg.seq)

    def _deliver(self, seq: int, payload_len: int, payload: bytes) -> None:
        if self.deliver is None:
            self.delivered += 1
            return
        if not self.reliable:
            self.delivered += 1
            self.deliver(seq, payload_len, payload)
            return
        self._pending_delivery[seq] = (payload_len, payload)
        while True:
            if self._next_deliver in self._pending_delivery:
                plen, pay = self._pending_delivery.pop(self._next_deliver)
                self.deliver(self._next_deliver, plen, pay)
                self.delivered += 1
                self._next_deliver += 1
            elif self._next_deliver in self._abandoned:
                self._abandoned.discard(self._next_deliver)
                self._next_deliver += 1
            else:
                break

    # -- NAK state machine ----------------------------------------------------

    def _open_nak_state(self, seq: int) -> None:
        if seq in self._nak_states:
            return
        state = _NakState(
            seq,
            Timer(self.sim, lambda s=seq: self._nak_timer_fired(s)),
            opened=self.sim.now,
        )
        self._nak_states[seq] = state
        state.timer.start(self._backoff_delay(seq))

    def _drop_nak_state(self, seq: int) -> None:
        state = self._nak_states.pop(seq, None)
        if state is not None:
            state.timer.cancel()

    def _nak_timer_fired(self, seq: int) -> None:
        state = self._nak_states.get(seq)
        if state is None:
            return
        if state.state == "CONFIRMED":
            # NCF seen but the repair never arrived: start over.
            state.state = "BACKOFF"
            state.timer.restart(self._backoff_delay(seq))
            return
        # BACKOFF or AWAIT_NCF: (re)send the NAK.
        if state.attempts >= self.nak_max_retries:
            self._abandon(seq, exhausted=True)
            return
        if len(self._nak_states) > self.storm_threshold:
            # §3.8 NAK-storm pacing: with many repairs pending, space
            # NAK transmissions out instead of bursting them.
            wait = self._last_nak_time + self.storm_spacing - self.sim.now
            if wait > 0:
                state.timer.restart(wait + self._storm_jitter())
                return
        state.attempts += 1
        self._send_nak(seq)
        if self.reliable:
            state.state = "AWAIT_NCF"
            state.timer.restart(self.nak_rpt_ivl)
        else:
            # Report-only mode: one NAK per loss event, no repair loop.
            self._drop_nak_state(seq)

    def _abandon(self, seq: int, exhausted: bool = False) -> None:
        self._drop_nak_state(seq)
        self.repairs_abandoned += 1
        if exhausted:
            # NAK_MAX_RETRIES spent with no repair: the data is gone
            # for good, and the application deserves to know (§3.8's
            # bounded-recovery corollary).
            self.unrecoverable_data_loss += 1
        self._abandoned.add(seq)
        # Unblock in-order delivery past the permanently missing packet.
        self._deliver_advance()

    def _deliver_advance(self) -> None:
        while self._next_deliver in self._abandoned:
            self._abandoned.discard(self._next_deliver)
            self._next_deliver += 1
        while self._next_deliver in self._pending_delivery:
            plen, pay = self._pending_delivery.pop(self._next_deliver)
            if self.deliver is not None:
                self.deliver(self._next_deliver, plen, pay)
            self.delivered += 1
            self._next_deliver += 1

    def _resync(self, live_lead: int) -> None:
        """Rejoin the session at ``live_lead`` after a gap the sender
        can no longer repair (partition heal, resumed after the repair
        horizon passed).  All pending NAK machinery is dropped — no
        post-heal NAK storm — the skipped span is recorded as
        ``unrecoverable_data_loss``, and in-order delivery restarts at
        the live edge, salvaging any already-received packets below it
        on the way out."""
        self.resyncs += 1
        for state in self._nak_states.values():
            state.timer.cancel()
        self._nak_states.clear()
        skipped = self.cc.resync(live_lead)
        if self.reliable and self.deliver is not None:
            lost = 0
            for seq in range(self._next_deliver, live_lead + 1):
                entry = self._pending_delivery.pop(seq, None)
                if entry is not None:
                    self.deliver(seq, entry[0], entry[1])
                    self.delivered += 1
                elif seq in self._abandoned:
                    self._abandoned.discard(seq)
                else:
                    lost += 1
            self._next_deliver = live_lead + 1
            self.unrecoverable_data_loss += lost
        else:
            self.unrecoverable_data_loss += skipped

    def _handle_spm(self, spm: Spm) -> None:
        """SPM window bookkeeping.

        The advertised ``trail`` marks the oldest sequence the sender
        can still repair: pending NAK state below it is abandoned and
        in-order delivery unblocked past the permanently lost data.
        The advertised ``lead`` exposes *tail losses* — packets at the
        end of a burst that no later ODATA will reveal; two
        consecutive SPMs agreeing on a lead beyond what was received
        (so in-flight data has had time to arrive) trigger NAKs.
        A trail that moved past our whole window (partition heal)
        triggers a live-edge resync off the lead advertisement instead
        of the per-sequence abandon path.
        """
        self.spms_received += 1
        if (
            self.cc.rxw_lead >= 0
            and spm.trail > self.cc.rxw_lead + 1
            and spm.lead > self.cc.rxw_lead
        ):
            self._resync(spm.lead)
        for seq in [s for s in self._nak_states if s < spm.trail]:
            self._abandon(seq)
        if self.reliable and self.deliver is not None and spm.trail > self._next_deliver:
            for seq in range(self._next_deliver, spm.trail):
                if seq not in self._pending_delivery:
                    self._abandoned.add(seq)
            self._deliver_advance()
        if (
            self.cc.rxw_lead >= 0
            and spm.lead > self.cc.rxw_lead
            and spm.lead == self._last_spm_lead
        ):
            for missing in range(self.cc.rxw_lead + 1, spm.lead + 1):
                self._open_nak_state(missing)
            self.tail_loss_detections += 1
        self._last_spm_lead = spm.lead

    def _handle_ncf(self, ncf: Ncf) -> None:
        self.ncfs_received += 1
        state = self._nak_states.get(ncf.seq)
        if state is None:
            return
        if state.state in ("BACKOFF", "AWAIT_NCF"):
            self.naks_suppressed_by_ncf += 1
            state.state = "CONFIRMED"
            state.timer.restart(self.nak_rdata_ivl)

    # -- feedback transmission ----------------------------------------------

    def _report(self, context: str = "nak"):
        report = self.cc.report(include_timestamp=self.echo_timestamps, now=self.sim.now)
        if self.behaviors:
            for behavior in self.behaviors.values():
                report = behavior.mutate_report(report, context)
        return report

    def _send_nak(self, seq: int, fake: bool = False) -> None:
        if self._closed:
            return
        if self.behaviors:
            for behavior in self.behaviors.values():
                if behavior.suppress_nak(seq, fake):
                    self.naks_suppressed += 1
                    return
        nak = Nak(self.tsi, seq, self._report(), fake=fake)
        self.host.send(
            Packet(self.host.name, self.source_addr, nak.wire_size(), nak, C.PROTO)
        )
        self._last_nak_time = self.sim.now
        if fake:
            self.fake_naks_sent += 1
        else:
            self.naks_sent += 1

    def _send_fake_nak(self, seq: int) -> None:
        # Small jitter so co-located receivers do not synchronise.
        self.sim.schedule(self._fake_jitter(seq), self._send_nak, seq, True)

    # -- randomised-delay hooks ---------------------------------------------
    # All feedback-suppression draws go through these three methods (one
    # rng draw each, so runs are draw-for-draw identical to the inlined
    # form).  repro.pgm.aggregate's TailProxy overrides them to draw the
    # *minimum over its modeled tail* instead of a single receiver's.

    def _backoff_delay(self, seq: int) -> float:
        """NAK backoff for ``seq`` (gap open and CONFIRMED restart)."""
        return self.rng.uniform(0, self.nak_bo_ivl)

    def _fake_jitter(self, seq: int) -> float:
        """Desynchronisation jitter before an elicited fake NAK."""
        return self.rng.uniform(0, self.nak_bo_ivl / 4)

    def _storm_jitter(self) -> float:
        """Extra spacing jitter in the §3.8 NAK-storm pacing regime."""
        return self.rng.uniform(0, self.storm_spacing)

    def _send_ack(self, ack_seq: int) -> None:
        if self._closed:
            return
        bitmap = self.cc.ack_bitmap(ack_seq)
        if self.behaviors:
            for behavior in self.behaviors.values():
                if behavior.suppress_ack(ack_seq):
                    self.acks_suppressed += 1
                    return
            for behavior in self.behaviors.values():
                bitmap = behavior.mutate_bitmap(ack_seq, bitmap)
        ack = Ack(self.tsi, ack_seq, bitmap, self._report("ack"))
        self.host.send(
            Packet(self.host.name, self.source_addr, ack.wire_size(), ack, C.PROTO)
        )
        self.acks_sent += 1
        if self.behaviors:
            for behavior in self.behaviors.values():
                behavior.on_ack_sent(ack)

    # -- introspection -----------------------------------------------------

    @property
    def loss_rate(self) -> float:
        return self.cc.loss_rate

    @property
    def rxw_lead(self) -> int:
        return self.cc.rxw_lead

    def close(self) -> None:
        self._closed = True
        for state in self._nak_states.values():
            state.timer.cancel()
        self._nak_states.clear()
        for kind in list(self.behaviors):
            self.misbehave_stop(kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PgmReceiver {self.rx_id} lead={self.rxw_lead} "
            f"loss={self.loss_rate:.4f} acks={self.acks_sent}>"
        )
