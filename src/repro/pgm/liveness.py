"""Acker-liveness watchdog: fast dead-acker detection + degraded mode.

The generic stall machinery (§3.2/§3.6) is deliberately conservative:
it restarts at ``W = T = 1`` on a doubled-RTO timeout and only elicits
a fresh election after :data:`~repro.core.sender_cc.ELICIT_AFTER_STALLS`
consecutive stalls — so a crashed acker costs the session two stall
backoffs (seconds) before anyone is even *asked* to take over.  This
module adds the liveness layer the partition experiments need:

* an **ACK inter-arrival watchdog** clocked by the time-RTT (the same
  estimator pgmcc uses "for determining timeouts", §3): when no ACK
  arrives within ``ack_timeout_factor * rto`` the incumbent is presumed
  dead and *demoted* — election cleared, next ODATA marked elicit-NAK
  (§3.6) — on the **first** timeout, not the second stall;
* an explicit **degraded mode** for total feedback loss (partition,
  control-plane blackhole): after ``max_demotions`` fruitless demotions
  the watchdog performs one controlled ``W = T = 1`` restart and then
  probes at a conservative rate floor (one elicit-marked packet every
  ``degraded_interval``) with a bounded repair budget, instead of
  oscillating through exponentially backed-off stall restarts.  The
  generic stall timer is suppressed while degraded (see
  ``SenderController._on_stall_timeout``).

State machine (see DESIGN.md §8 for the timer diagram)::

    NORMAL   --ack timeout-->  SUSPECT   (demote acker, elicit, backoff)
    SUSPECT  --ack timeout-->  SUSPECT   (re-demote, up to max_demotions)
    SUSPECT  --ack timeout-->  DEGRADED  (restart W=T=1, rate-floor probes)
    DEGRADED --NAK arrives-->  SUSPECT   (feedback path back, re-elect)
    any      --ACK arrives-->  NORMAL    (records time-to-recover)

Every transition is appended to :attr:`LivenessWatchdog.transitions`
and traced by the owning sender; the degraded phase is a telemetry
span (``degraded``), so degraded residence time lands in
``summary()["phases"]`` and the session-metrics export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..simulator.engine import Timer

#: watchdog states
NORMAL = "normal"
SUSPECT = "suspect"
DEGRADED = "degraded"


@dataclass(frozen=True)
class LivenessConfig:
    """Watchdog tunables (defaults tuned to beat the stall timer)."""

    #: ACK inter-arrival timeout as a multiple of the time-RTT RTO.
    ack_timeout_factor: float = 2.0
    #: timeout clamp (seconds); the floor keeps jittery early RTT
    #: samples from demoting a healthy acker, the ceiling bounds
    #: detection latency no matter what the RTO says.
    min_timeout: float = 0.3
    max_timeout: float = 4.0
    #: fruitless demotions before giving up on elections and entering
    #: degraded mode (total feedback loss presumed).  The default is
    #: deliberately aggressive: a demotion elicits an election from
    #: *every* receiver, so one full timeout with no reply at all is
    #: strong evidence the feedback path is gone — and degraded mode is
    #: cheap to leave (any ACK or NAK exits it).  Backed-off timers, by
    #: contrast, leave the session deaf for the whole backoff after the
    #: path heals.
    max_demotions: int = 1
    #: degraded-mode probe period (seconds): the conservative rate
    #: floor — one elicit-marked packet per interval.
    degraded_interval: float = 0.25
    #: RDATA budget while degraded; 0 disables repairs entirely until
    #: feedback returns.
    degraded_repair_budget: int = 64

    def __post_init__(self) -> None:
        if self.ack_timeout_factor <= 0:
            raise ValueError("ack_timeout_factor must be > 0")
        if not 0 < self.min_timeout <= self.max_timeout:
            raise ValueError("need 0 < min_timeout <= max_timeout")
        if self.max_demotions < 1:
            raise ValueError("max_demotions must be >= 1")
        if self.degraded_interval <= 0:
            raise ValueError("degraded_interval must be > 0")
        if self.degraded_repair_budget < 0:
            raise ValueError("degraded_repair_budget cannot be negative")


class LivenessWatchdog:
    """The sender-side liveness state machine.

    Args:
        sim: the event engine.
        controller: the :class:`~repro.core.sender_cc.SenderController`
            to demote/restart through (it calls back into the
            ``note_*`` hooks; wire with ``attach_watchdog``).
        config: tunables.
        on_probe: called once per degraded-mode probe interval and on
            every demotion; the transport should push an elicit-marked
            packet out (the sender's ``_liveness_probe``).
        spans: a :class:`~repro.telemetry.registry.SpanTracker` (or the
            NullRegistry's) receiving the ``degraded`` span.
        on_transition: optional ``fn(old, new, reason)`` observer
            (the sender's trace hook).
    """

    def __init__(
        self,
        sim,
        controller,
        config: Optional[LivenessConfig] = None,
        on_probe: Optional[Callable[[], None]] = None,
        spans=None,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ):
        self.sim = sim
        self.controller = controller
        self.config = config or LivenessConfig()
        self.on_probe = on_probe
        self.spans = spans
        self.on_transition = on_transition
        self.state = NORMAL
        self.closed = False
        self._timer = Timer(sim, self._on_timeout)
        self._probe_timer = Timer(sim, self._degraded_probe)
        #: demotions this suspicion episode (resets on recovery)
        self._episode_demotions = 0
        self._suspect_since: Optional[float] = None
        self._degraded_since: Optional[float] = None
        self._degraded_accum = 0.0
        self.repair_budget_left = self.config.degraded_repair_budget
        # counters / audit log
        self.demotions = 0
        self.degraded_entries = 0
        self.probes_sent = 0
        self.repairs_blocked = 0
        #: recovery times: seconds from first suspicion to the ACK that
        #: ended the episode.
        self.ttr_samples: List[float] = []
        #: (time, old_state, new_state, reason) audit log
        self.transitions: List[Tuple[float, str, str, str]] = []

    # -- introspection -----------------------------------------------------

    @property
    def degraded(self) -> bool:
        return self.state == DEGRADED

    @property
    def ttr_last_s(self) -> float:
        """Most recent time-to-recover (0.0 before any recovery)."""
        return self.ttr_samples[-1] if self.ttr_samples else 0.0

    @property
    def degraded_time_s(self) -> float:
        """Total degraded-mode residence time, live span included."""
        total = self._degraded_accum
        if self._degraded_since is not None:
            total += self.sim.now - self._degraded_since
        return total

    def summary(self) -> dict:
        """The ``recovery`` block for ``session.summary()`` (v2)."""
        return {
            "state": self.state,
            "demotions": self.demotions,
            "degraded_entries": self.degraded_entries,
            "degraded_time_s": self.degraded_time_s,
            "probes_sent": self.probes_sent,
            "repairs_blocked": self.repairs_blocked,
            "ttr_last_s": self.ttr_last_s,
            "ttr_samples": list(self.ttr_samples),
        }

    # -- controller hooks --------------------------------------------------

    def note_data_sent(self) -> None:
        """Data went out: the ACK clock should tick within a timeout."""
        if self.closed or self.state == DEGRADED:
            return
        if not self._timer.armed:
            self._timer.start(self._timeout())

    def note_ack(self) -> None:
        """A (guard-accepted) ACK arrived: full recovery."""
        if self.closed:
            return
        if self.state != NORMAL:
            if self._suspect_since is not None:
                self.ttr_samples.append(self.sim.now - self._suspect_since)
            if self.state == DEGRADED:
                self._leave_degraded()
            self._transition(NORMAL, "ack")
            self._suspect_since = None
            self._episode_demotions = 0
        self._timer.restart(self._timeout())

    def note_nak(self) -> None:
        """A NAK arrived.  NAKs prove the feedback *path* but not the
        acker's ACK clock, so they never reset the timeout — except out
        of degraded mode, where any feedback at all means elections can
        work again."""
        if self.closed or self.state != DEGRADED:
            return
        self._leave_degraded()
        self._transition(SUSPECT, "nak")
        self._timer.restart(self._timeout())

    # -- timers ------------------------------------------------------------

    def _timeout(self) -> float:
        cfg = self.config
        rto = self.controller.rto
        if rto is None:
            base = cfg.max_timeout / 4.0
        else:
            base = max(cfg.min_timeout, cfg.ack_timeout_factor * rto)
        backoff = 2.0 ** min(self._episode_demotions, 3)
        return min(cfg.max_timeout, base * backoff)

    def _on_timeout(self) -> None:
        if self.closed or self.controller.closed or self.state == DEGRADED:
            return
        tracker = self.controller.tracker
        backend = self.controller.backend
        if tracker.outstanding_count == 0 and (
            backend.kind == "rate" or backend.can_send
        ):
            # Idle, not dead: nothing in flight and sending possible —
            # mirror the stall timer's idle rule and stand down until
            # the next transmission re-arms us.
            return
        if self.state == NORMAL:
            self._suspect_since = self.sim.now
            self._transition(SUSPECT, "ack-timeout")
            self._demote()
        elif self._episode_demotions >= self.config.max_demotions:
            self._enter_degraded()
            return
        else:
            self._demote()
        self._timer.restart(self._timeout())

    def _demote(self) -> None:
        self.demotions += 1
        self._episode_demotions += 1
        self.controller.demote_acker()
        if self.on_probe is not None:
            self.on_probe()

    def _enter_degraded(self) -> None:
        self._transition(DEGRADED, "demotions-exhausted")
        self.degraded_entries += 1
        self._degraded_since = self.sim.now
        if self.spans is not None:
            self.spans.begin("degraded", self.sim.now)
        self.repair_budget_left = self.config.degraded_repair_budget
        # One controlled W=T=1 restart (counted in controller.restarts
        # so the invariant checker resyncs), then rate-floor probing.
        self.controller.degraded_restart()
        self._timer.cancel()
        self._probe_timer.restart(self.config.degraded_interval)

    def _leave_degraded(self) -> None:
        if self._degraded_since is not None:
            self._degraded_accum += self.sim.now - self._degraded_since
            self._degraded_since = None
        if self.spans is not None:
            self.spans.end("degraded", self.sim.now)
        self._probe_timer.cancel()

    def _degraded_probe(self) -> None:
        if self.closed or self.state != DEGRADED:
            return
        self.probes_sent += 1
        if self.on_probe is not None:
            self.on_probe()
        self._probe_timer.restart(self.config.degraded_interval)

    # -- degraded-mode gates -----------------------------------------------

    def allow_repair(self) -> bool:
        """Degraded-mode repair budget: RDATA allowed?  (Always true
        outside degraded mode; the budget refills on entry.)"""
        if self.state != DEGRADED:
            return True
        if self.repair_budget_left > 0:
            self.repair_budget_left -= 1
            return True
        self.repairs_blocked += 1
        return False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.closed = True
        self._timer.cancel()
        self._probe_timer.cancel()
        if self._degraded_since is not None:
            self._degraded_accum += self.sim.now - self._degraded_since
            self._degraded_since = None

    def _transition(self, new: str, reason: str) -> None:
        old = self.state
        self.state = new
        self.transitions.append((self.sim.now, old, new, reason))
        if self.on_transition is not None:
            self.on_transition(old, new, reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LivenessWatchdog state={self.state} "
            f"demotions={self.demotions} degraded={self.degraded_entries}>"
        )
