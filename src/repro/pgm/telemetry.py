"""Wiring a PGM/pgmcc session onto a metrics registry.

:func:`bind_session_metrics` installs every pull-binding and sampling
probe for one session.  The counters themselves stay where they always
lived — plain attributes on :class:`PgmSender`, :class:`PgmReceiver`,
:class:`~repro.pgm.guard.FeedbackGuard`, the links and the engine —
the registry just knows how to read them, so instrumented and
uninstrumented sessions execute identical protocol code.

Metric names (the stable ``pgmcc.session-metrics/v1`` key set):

===========================  =======  ====================================
name                         kind     source
===========================  =======  ====================================
``sender.odata_sent``        counter  original transmissions
``sender.rdata_sent``        counter  repairs (§3.8)
``sender.bytes_sent``        counter  payload bytes
``sender.acks_received``     counter  ACKs reaching the source
``sender.naks_received``     counter  NAKs reaching the source
``sender.ingress_dropped``   counter  malformed + insane feedback drops
``cc.stalls``                counter  §3.6 stall restarts
``cc.acker_switches``        counter  §3.5 election moves
``cc.acker_evictions``       counter  guard-driven unseatings
``guard.acks_blocked``       counter  ACKs denied control influence
``guard.naks_blocked``       counter  NAK reports denied control influence
``guard.quarantines``        counter  receivers quarantined (guard on)
``rx.odata_received``        counter  sum over current receivers
``rx.rdata_received``        counter  sum over current receivers
``rx.delivered``             counter  in-order deliveries
``rx.acks_sent``             counter  sum over current receivers
``rx.naks_sent``             counter  sum over current receivers
``rx.repairs_abandoned``     counter  NAK state given up
``rx.unrecoverable_loss``    counter  §3.8 bounded-recovery give-ups
``rx.ingress_dropped``       counter  malformed + insane data drops
``rx.resyncs``               counter  live-edge rejoins after heal
``net.events_processed``     counter  engine events (whole network)
``net.queue_drops``          counter  drop-tail losses, all links
``net.random_drops``         counter  random-loss stage, all links
``net.fault_drops``          counter  outage/corruption drops, all links
``net.filter_drops``         counter  control-blackhole drops, all links
``liveness.demotions``       counter  watchdog acker demotions
``liveness.degraded_entries`` counter degraded-mode entries
``cc.restarts``              counter  W=T=1 restarts (stall + degraded)
``cc.window_w``              gauge    current W
``cc.tokens``                gauge    current T
``cc.srtt_s``                gauge    smoothed time-RTT (timeouts)
``rx.count``                 gauge    current group size
``rx.max_loss_rate``         gauge    worst receiver loss estimate
``rx.mean_loss_rate``        gauge    mean receiver loss estimate
``liveness.degraded_time_s`` gauge    degraded-mode residence time
``liveness.ttr_last_s``      gauge    latest time-to-recover sample
===========================  =======  ====================================

The ``liveness.*`` instruments are always bound (0 when no watchdog is
attached) so the exported key set is identical across configurations —
only the *schema version* grows, never per-config key churn.

Sim-clock series (probe, default every ``interval`` seconds):
``cc.window`` (W), ``cc.tokens`` (T), ``rx.max_loss_rate``.

Push instruments written by the agents themselves: histogram
``repair.latency_s`` (gap-open to RDATA arrival, the NAK repair
round-trip) and the sender's protocol-phase spans ``slow_start``,
``loss_recovery``, ``stall`` (see :class:`PgmSender`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..simulator.packet import POOL
from ..telemetry import make_probe
from ..telemetry.registry import MetricsRegistry, NullRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .session import PgmSession

__all__ = ["bind_session_metrics", "DEFAULT_PROBE_INTERVAL"]

#: default sim-clock sampling period for the session probe (seconds)
DEFAULT_PROBE_INTERVAL = 1.0


def bind_session_metrics(session: "PgmSession",
                         registry: "MetricsRegistry | NullRegistry",
                         interval: float = DEFAULT_PROBE_INTERVAL) -> None:
    """Install the session's pull-bindings and sampling probe.

    No-op (beyond a handful of ignored calls) for a
    :class:`NullRegistry` — in particular the probe never schedules.
    """
    sender = session.sender
    controller = sender.controller
    net = session.network
    sim = net.sim
    receivers = session.receivers  # live list: late joins included

    registry.meta.update(tsi=session.tsi, group=session.group,
                         sender=sender.host.name,
                         controller=controller.backend.name)

    bind = registry.bind
    bind("sender.odata_sent", lambda: sender.odata_sent)
    bind("sender.rdata_sent", lambda: sender.rdata_sent)
    bind("sender.bytes_sent", lambda: sender.bytes_sent)
    bind("sender.acks_received", lambda: sender.acks_received)
    bind("sender.naks_received", lambda: sender.naks_received)
    bind("sender.ingress_dropped",
         lambda: sender.malformed_dropped + sender.insane_dropped)
    bind("cc.stalls", lambda: controller.stalls)
    bind("cc.restarts", lambda: controller.restarts)
    bind("cc.acker_switches", lambda: controller.election.switch_count)
    bind("cc.acker_evictions", lambda: controller.acker_evictions)
    bind("liveness.demotions",
         lambda: sender.watchdog.demotions if sender.watchdog else 0)
    bind("liveness.degraded_entries",
         lambda: sender.watchdog.degraded_entries if sender.watchdog else 0)
    bind("liveness.degraded_time_s",
         lambda: (sender.watchdog.degraded_time_s
                  if sender.watchdog else 0.0), kind="gauge")
    bind("liveness.ttr_last_s",
         lambda: (sender.watchdog.ttr_last_s
                  if sender.watchdog else 0.0), kind="gauge")
    bind("guard.acks_blocked", lambda: sender.guard_acks_blocked)
    bind("guard.naks_blocked", lambda: sender.guard_naks_blocked)
    bind("guard.quarantines",
         lambda: (sender.guard.summary()["quarantines"]
                  if sender.guard is not None else 0))

    def rx_sum(attr: str):
        return lambda: sum(getattr(rx, attr) for rx in receivers)

    bind("rx.odata_received", rx_sum("odata_received"))
    bind("rx.rdata_received", rx_sum("rdata_received"))
    bind("rx.delivered", rx_sum("delivered"))
    bind("rx.acks_sent", rx_sum("acks_sent"))
    bind("rx.naks_sent", rx_sum("naks_sent"))
    bind("rx.repairs_abandoned", rx_sum("repairs_abandoned"))
    bind("rx.unrecoverable_loss", rx_sum("unrecoverable_data_loss"))
    bind("rx.ingress_dropped",
         lambda: sum(rx.malformed_dropped + rx.insane_dropped
                     for rx in receivers))
    bind("rx.resyncs", rx_sum("resyncs"))

    def link_sum(key: str):
        return lambda: sum(link.metrics()[key]
                           for node in net.nodes.values()
                           for link in node.links.values())

    bind("net.events_processed", lambda: sim.events_processed)
    # Only the double-release canary is bound: it is deterministically
    # zero in correct code regardless of run order, while the pool's
    # outstanding count is process-global and order-dependent (binding
    # it would poison run-manifest digests and cache oracles).
    bind("pool.double_release", lambda: POOL.double_release)
    bind("net.queue_drops", link_sum("queue_drops"))
    bind("net.random_drops", link_sum("random_drops"))
    bind("net.fault_drops",
         lambda: sum(link.fault_drops + link.corrupt_drops
                     for node in net.nodes.values()
                     for link in node.links.values()))
    bind("net.filter_drops", link_sum("filter_drops"))

    def max_loss() -> float:
        return max((rx.loss_rate for rx in receivers), default=0.0)

    bind("cc.window_w", lambda: controller.window.w, kind="gauge")
    bind("cc.tokens", lambda: controller.window.tokens, kind="gauge")
    bind("cc.srtt_s", lambda: controller.srtt or 0.0, kind="gauge")
    bind("rx.count", lambda: len(receivers), kind="gauge")
    bind("rx.max_loss_rate", max_loss, kind="gauge")
    bind("rx.mean_loss_rate",
         lambda: (sum(rx.loss_rate for rx in receivers) / len(receivers)
                  if receivers else 0.0), kind="gauge")

    probe = make_probe(sim, registry, interval)
    probe.sample("cc.window", lambda: controller.window.w)
    probe.sample("cc.tokens", lambda: controller.window.tokens)
    probe.sample("rx.max_loss_rate", max_loss)
    probe.start()
