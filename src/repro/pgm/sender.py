"""The PGM sender with pgmcc attached (§3.1, §3.4, §3.6, §3.8).

The sender multicasts ODATA gated by two things only: the pgmcc token
count and the PGM rate limiter (which, with congestion control enabled,
merely caps the session's maximum rate).  NAKs feed the acker election
and trigger repairs; ACKs drive the window controller.

Repairs follow §3.8: RDATA goes out as soon as the NAK arrives,
subject only to the rate limiter — the congestion controller regulates
original data, and as long as the acker really is the slowest receiver
the repair percentage stays low.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from ..core.sender_cc import CcConfig, SenderController
from ..simulator.engine import Timer
from ..telemetry.registry import NullRegistry
from ..simulator.node import Host
from ..simulator.packet import Packet
from ..simulator.trace import FlowTrace
from . import constants as C
from .guard import FeedbackGuard
from .liveness import LivenessConfig, LivenessWatchdog
from .packets import Ack, Nak, Ncf, OData, RData, Spm, decode
from .rate_limiter import TokenBucket


class DataSource(Protocol):
    """Application data feed.

    ``has_data`` gates the pump; ``peek_size`` tells the pump how large
    the next payload would be (for the rate limiter) without consuming
    it; ``next_payload`` consumes and returns (payload_len, bytes).
    """

    def has_data(self) -> bool:  # pragma: no cover - protocol
        ...

    def peek_size(self) -> int:  # pragma: no cover - protocol
        ...

    def next_payload(self) -> tuple[int, bytes]:  # pragma: no cover
        ...


class BulkSource:
    """Infinite bulk transfer (what all the paper's experiments run)."""

    def __init__(self, payload_size: int = C.DEFAULT_PAYLOAD):
        self.payload_size = payload_size

    def has_data(self) -> bool:
        return True

    def peek_size(self) -> int:
        return self.payload_size

    def next_payload(self) -> tuple[int, bytes]:
        return self.payload_size, b""


class FiniteSource:
    """A finite sequence of real payload chunks (file transfer)."""

    def __init__(self, chunks: list[bytes]):
        self._chunks = list(chunks)
        self._next = 0

    def has_data(self) -> bool:
        return self._next < len(self._chunks)

    def peek_size(self) -> int:
        return len(self._chunks[self._next])

    def next_payload(self) -> tuple[int, bytes]:
        chunk = self._chunks[self._next]
        self._next += 1
        return len(chunk), chunk

    @property
    def remaining(self) -> int:
        return len(self._chunks) - self._next


class PgmSender:
    """One PGM/pgmcc source.

    Args:
        host: the simulator host this agent lives on.
        group: multicast group address for the session.
        tsi: transport session identifier.
        cc: pgmcc configuration (``CcConfig(enabled=False)`` gives a
            plain rate-limited PGM sender, §3.1's dynamic disable).
        source: application data source (default: infinite bulk).
        max_rate_bps: the PGM rate limiter setting (session cap).
        reliable: when False (§3.9), NAKs are accepted for their
            reports but no RDATA is ever sent.
        trace: flow trace receiving "data"/"rdata"/"nak"/"ack"/
            "acker-switch"/"cc-loss"/"stall" records.
        on_token: application feedback hook called at every
            transmission opportunity (§3.9).
        guard: optional :class:`~repro.pgm.guard.FeedbackGuard`; when
            set, every NAK report and ACK is plausibility-checked
            before it may steer the election or clock the window.
            Repairs are never gated by the guard.
    """

    #: suppress a duplicate RDATA for the same sequence within this
    #: window — the source-side analogue of NE NAK elimination, needed
    #: when many receivers NAK the same loss without NEs in the path.
    RDATA_HOLDOFF = 0.5

    def __init__(
        self,
        host: Host,
        group: str,
        tsi: int,
        cc: Optional[CcConfig] = None,
        source: Optional[DataSource] = None,
        max_rate_bps: Optional[float] = None,
        reliable: bool = True,
        trace: Optional[FlowTrace] = None,
        on_token: Optional[Callable[[float], None]] = None,
        spm_ivl: float = C.SPM_IVL,
        payload_size: int = C.DEFAULT_PAYLOAD,
        guard: Optional[FeedbackGuard] = None,
        telemetry=None,
    ):
        self.host = host
        self.sim = host.sim
        self.group = group
        self.tsi = tsi
        self.source = source if source is not None else BulkSource(payload_size)
        self.reliable = reliable
        self.trace = trace if trace is not None else FlowTrace(f"pgm-{tsi}")
        self.on_token = on_token
        if (cc is not None and not cc.enabled) and max_rate_bps is None:
            # A plain PGM sender transmits at a pre-set rate (§3.1);
            # with neither congestion control nor a rate limiter there
            # is nothing to pace transmissions and the pump would spin.
            raise ValueError(
                "congestion control disabled requires max_rate_bps "
                "(plain PGM senders transmit at a pre-set rate, §3.1)"
            )
        self.limiter = TokenBucket(max_rate_bps)
        self.controller = SenderController(
            self.sim, cc or CcConfig(), on_tokens=self._pump, on_stall=self._log_stall
        )
        self.next_seq = 0
        self.trail = 0
        #: retained payloads for repair: seq -> (payload_len, payload)
        self._tx_window: dict[int, tuple[int, bytes]] = {}
        self._tx_window_capacity = C.TX_WINDOW_PACKETS
        self._recent_repairs: dict[int, float] = {}
        self._spm_seq = 0
        self._spm_ivl = spm_ivl
        self._spm_timer = Timer(self.sim, self._send_spm)
        self._pump_timer = Timer(self.sim, self._pump)
        self._started = False
        self._closed = False
        registry = telemetry if telemetry is not None else NullRegistry()
        #: protocol-phase spans (slow start, loss recovery, stall);
        #: a NullRegistry's tracker when telemetry is off.
        self._spans = registry.spans
        #: stall durations (stall restart -> next clean ACK); the p99
        #: the resilience experiments report.
        self._stall_hist = registry.histogram("stall.duration_s")
        self._stall_began: Optional[float] = None
        #: optional acker-liveness watchdog (cc.liveness, DESIGN.md §8)
        self.watchdog: Optional[LivenessWatchdog] = None
        cc_config = self.controller.config
        if cc_config.enabled and cc_config.liveness:
            self.watchdog = LivenessWatchdog(
                self.sim,
                self.controller,
                LivenessConfig(**dict(cc_config.liveness_params)),
                on_probe=self._liveness_probe,
                spans=self._spans,
                on_transition=self._log_liveness,
            )
            self.controller.attach_watchdog(self.watchdog)
        # statistics
        self.guard = guard
        self.odata_sent = 0
        self.rdata_sent = 0
        self.naks_received = 0
        self.acks_received = 0
        self.bytes_sent = 0
        self.malformed_dropped = 0
        self.insane_dropped = 0
        self.guard_acks_blocked = 0
        self.guard_naks_blocked = 0
        #: NAKs reaching the source, by reporting receiver — shows how
        #: NE suppression skews the report stream (Fig. 6 discussion).
        self.nak_origins: dict[str, int] = {}
        host.register_agent(C.PROTO, self)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise RuntimeError("sender already started")
        self._started = True
        self._spans.begin("slow_start", self.sim.now)
        self._send_spm()
        self._pump()

    def close(self) -> None:
        self._closed = True
        self._spm_timer.cancel()
        self._pump_timer.cancel()
        self.controller.close()
        self._spans.close_all(self.sim.now)

    # -- transmit pump -----------------------------------------------------------

    def _pump(self) -> None:
        """Send ODATA while the controller, rate budget and app data
        allow.  ``controller.send_delay()`` distinguishes window
        backends (0.0 = token available, None = blocked until feedback)
        from rate backends (a positive delay = paced; re-arm the pump
        timer and come back)."""
        if not self._started or self._closed:
            return
        while self.source.has_data():
            cc_delay = self.controller.send_delay()
            if cc_delay is None:
                return  # window-blocked: feedback will wake the pump
            if cc_delay > 0:
                self._pump_timer.restart(cc_delay)
                return
            probe = OData(
                self.tsi,
                self.next_seq,
                self.trail,
                self.source.peek_size(),
                acker_id=self.controller.current_acker,
            )
            size = probe.wire_size()
            delay = self.limiter.delay_until_available(size, self.sim.now)
            if delay > 0:
                self._pump_timer.restart(delay)
                return
            self.limiter.try_consume(size, self.sim.now)
            payload_len, payload = self.source.next_payload()
            self._send_odata(payload_len, payload)

    def _send_odata(self, payload_len: int, payload: bytes) -> None:
        seq = self.next_seq
        self.next_seq += 1
        elicit = self.controller.register_data(seq)
        odata = OData(
            self.tsi,
            seq,
            self.trail,
            payload_len,
            timestamp=self.sim.now,
            acker_id=self.controller.current_acker,
            elicit_nak=elicit,
            payload=payload,
        )
        self._tx_window[seq] = (payload_len, payload)
        if len(self._tx_window) > self._tx_window_capacity:
            self.trail = seq - self._tx_window_capacity + 1
            for old in list(self._tx_window):
                if old < self.trail:
                    del self._tx_window[old]
        self.host.send(
            Packet(self.host.name, self.group, odata.wire_size(), odata, C.PROTO)
        )
        self.odata_sent += 1
        self.bytes_sent += payload_len
        self.trace.log(self.sim.now, "data", seq, payload_len)
        if self.on_token is not None:
            self.on_token(self.sim.now)

    # -- receive path ---------------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        if self._closed:
            return
        msg = packet.payload
        if isinstance(msg, (bytes, bytearray)):
            # Mangled links deliver raw bytes; a decode failure models
            # a checksum-rejected frame at this host.
            try:
                msg = decode(bytes(msg))
            except ValueError:
                self.malformed_dropped += 1
                return
            if not self._sane(msg):
                self.insane_dropped += 1
                return
        if isinstance(msg, Nak) and msg.tsi == self.tsi:
            self._handle_nak(msg)
        elif isinstance(msg, Ack) and msg.tsi == self.tsi:
            self._handle_ack(msg)
        # SPM/NCF/data addressed to us are not expected; ignore.

    def _sane(self, msg) -> bool:
        """Field-sanity gate for wire-decoded feedback: an honest
        receiver can never reference a sequence we have not sent (a
        decodable packet with a bit flip in a seq field must not feed
        the controller impossible values)."""
        last = self.controller.last_tx_seq
        if isinstance(msg, Nak):
            return msg.seq <= last and msg.report.rxw_lead <= last
        if isinstance(msg, Ack):
            return msg.ack_seq <= last and msg.report.rxw_lead <= last
        return True

    def _handle_nak(self, nak: Nak) -> None:
        self.naks_received += 1
        rx = nak.report.rx_id
        self.nak_origins[rx] = self.nak_origins.get(rx, 0) + 1
        self.trace.log(self.sim.now, "nak", nak.seq)
        allow_control = True
        allow_repair = True
        if self.guard is not None:
            verdict = self.guard.on_nak(
                nak.report, self.controller.last_tx_seq,
                requests_repair=not nak.fake,
            )
            if verdict.newly_quarantined:
                self._maybe_evict(rx)
            allow_control = verdict.allow_control
            allow_repair = not verdict.drop
            if not allow_control:
                self.guard_naks_blocked += 1
        if allow_control:
            before = self.controller.current_acker
            switched = self.controller.on_nak(nak.report)
            if switched:
                self.trace.log(self.sim.now, "acker-switch", nak.seq)
                self._log_switch(before, self.controller.current_acker)
        # Confirm the NAK downstream so other receivers suppress
        # theirs.  Repairs flow even for quarantined receivers —
        # quarantine removes control influence, never reliability —
        # but a receiver NAKing above the honest §3.8 ceiling has
        # exhausted its repair budget and its RDATA is skipped.
        ncf = Ncf(self.tsi, nak.seq)
        self.host.send(Packet(self.host.name, self.group, 64, ncf, C.PROTO))
        if nak.fake or not self.reliable or not allow_repair:
            return
        for seq in nak.all_seqs():
            self._maybe_repair(seq)

    def _maybe_evict(self, rx_id: str) -> None:
        """A receiver just entered quarantine: if it holds ackership,
        unseat it and let the honest group re-elect (§3.6 machinery)."""
        if self.controller.current_acker == rx_id:
            evicted = self.controller.evict_acker()
            if evicted is not None:
                self.trace.log(self.sim.now, "acker-evict", self.next_seq)

    def _log_switch(self, old: Optional[str], new: Optional[str]) -> None:
        # One span per acker reign: each switch closes the previous
        # reign (no-op on the first election) and opens the next.
        self._spans.end("acker_reign", self.sim.now)
        self._spans.begin("acker_reign", self.sim.now)

    def _maybe_repair(self, seq: int) -> None:
        entry = self._tx_window.get(seq)
        if entry is None:
            return  # beyond the trail: cannot repair
        last = self._recent_repairs.get(seq)
        if last is not None and self.sim.now - last < self.RDATA_HOLDOFF:
            return
        if self.watchdog is not None and not self.watchdog.allow_repair():
            return  # degraded mode: bounded repair budget exhausted
        payload_len, payload = entry
        rdata = RData(self.tsi, seq, self.trail, payload_len, self.sim.now, payload)
        size = rdata.wire_size()
        # §3.8: repairs go out as soon as the NAK arrives, subject only
        # to the rate limiter.
        delay = self.limiter.delay_until_available(size, self.sim.now)
        if delay > 0:
            self.sim.schedule(delay, self._send_rdata, rdata)
        else:
            self.limiter.try_consume(size, self.sim.now)
            self._send_rdata(rdata)
        self._recent_repairs[seq] = self.sim.now
        if len(self._recent_repairs) > 512:
            cutoff = self.sim.now - 10 * self.RDATA_HOLDOFF
            self._recent_repairs = {
                s: t for s, t in self._recent_repairs.items() if t >= cutoff
            }

    def _send_rdata(self, rdata: RData) -> None:
        if self._closed:
            return
        self.host.send(
            Packet(self.host.name, self.group, rdata.wire_size(), rdata, C.PROTO)
        )
        self.rdata_sent += 1
        self.trace.log(self.sim.now, "rdata", rdata.seq, rdata.payload_len)

    #: log a "window" trace record every this many ACKs (the cwnd
    #: sawtooth view; seq carries W in hundredths of a packet)
    WINDOW_SAMPLE_EVERY = 25

    def _handle_ack(self, ack: Ack) -> None:
        self.acks_received += 1
        if self.guard is not None:
            verdict = self.guard.on_ack(
                ack.ack_seq, ack.bitmask, ack.report, self.controller.last_tx_seq
            )
            if verdict.newly_quarantined:
                self._maybe_evict(ack.report.rx_id)
            if verdict.drop or not verdict.allow_control:
                self.guard_acks_blocked += 1
                return
        digest = self.controller.on_ack(ack.ack_seq, ack.bitmask, ack.report)
        self.trace.log(self.sim.now, "ack", ack.ack_seq)
        if digest.reacted or self.acks_received % self.WINDOW_SAMPLE_EVERY == 0:
            self.trace.log(
                self.sim.now, "window", int(self.controller.window.w * 100)
            )
        if digest.reacted:
            self.trace.log(self.sim.now, "cc-loss", ack.ack_seq)
            # First loss reaction ends slow start; every reaction opens
            # (or restarts) a recovery phase that the next clean ACK ends.
            self._spans.end("slow_start", self.sim.now)
            self._spans.begin("loss_recovery", self.sim.now)
        elif digest.newly_acked:
            self._spans.end("loss_recovery", self.sim.now)
            self._spans.end("stall", self.sim.now)
            if self._stall_began is not None:
                self._stall_hist.observe(self.sim.now - self._stall_began)
                self._stall_began = None
        self._pump()

    # -- SPM heartbeat ------------------------------------------------------

    def _send_spm(self) -> None:
        if self._closed:
            return
        spm = Spm(self.tsi, self._spm_seq, self.trail, max(self.next_seq - 1, 0),
                  path=self.host.name)
        self._spm_seq += 1
        self.host.send(Packet(self.host.name, self.group, 64, spm, C.PROTO))
        self._spm_timer.restart(self._spm_ivl)

    def _log_stall(self) -> None:
        self.trace.log(self.sim.now, "stall", self.next_seq)
        self._spans.begin("stall", self.sim.now)
        if self._stall_began is None:
            self._stall_began = self.sim.now

    # -- liveness watchdog ---------------------------------------------------

    def _liveness_probe(self) -> None:
        """Watchdog probe: push one elicit-marked packet toward the
        group so a surviving receiver can fake-NAK its way into the
        acker seat (§3.6).  Goes through the normal pump so window,
        token and rate-limiter accounting all hold."""
        if self._closed or not self._started:
            return
        self.controller.elicit_nak = True
        if not self.controller.backend.can_send:
            self.controller.backend.kick()
        self._pump()

    def _log_liveness(self, old: str, new: str, reason: str) -> None:
        self.trace.log(self.sim.now, f"liveness-{new}", self.next_seq)

    # -- introspection -----------------------------------------------------

    @property
    def current_acker(self) -> Optional[str]:
        return self.controller.current_acker

    @property
    def acker_switches(self) -> int:
        return self.controller.election.switch_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PgmSender tsi={self.tsi} sent={self.odata_sent} "
            f"acker={self.current_acker}>"
        )
