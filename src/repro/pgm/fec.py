"""FEC-based repair for pgmcc sessions (§3.9, §4.5, refs [13][18][20]).

The paper's Fig. 7 caveat: large-group tests "cannot be run with simple
retransmission-based repairs, or the repair traffic would quickly
dominate the actual data traffic on the link from the source".  The
scalable alternative its references develop (RMDP, parity-based
recovery, digital fountains) is *forward error correction*: the source
interleaves parity packets so each receiver repairs its own
uncorrelated losses locally, and no feedback-driven repair traffic is
needed at all.

This module implements a systematic (k, n) block code over the pgmcc
packet stream:

* the :class:`FecSource` wraps an application payload stream; after
  every ``k`` data packets it emits ``r = n - k`` parity packets, all
  flowing through pgmcc as ordinary ODATA (original transmissions,
  congestion-controlled and ACK-clocked like everything else);
* a :class:`FecAssembler` on each receiver reconstructs a block as
  soon as *any* ``k`` of its ``n`` packets arrive — the defining
  property of an MDS erasure code (e.g. Reed-Solomon / Vandermonde
  codes, ref [18]).  The simulator does not move real payload bits for
  parity, so decoding is modelled by that count property, which is
  exactly what determines protocol-level behaviour.

Redundancy can be fixed or adapted to the receivers' reported loss
rate via :class:`~repro.core.feedback.AdaptiveSource`-style hooks
(§3.9's first kind of feedback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from . import constants as C


@dataclass(frozen=True)
class FecPayload:
    """Tag travelling inside ODATA payload-objects for FEC sessions.

    Attributes:
        block: block number.
        index: position within the block (0..n-1; >= k means parity).
        k: data packets per block.
        n: total packets per block.
    """

    block: int
    index: int
    k: int
    n: int

    @property
    def is_parity(self) -> bool:
        return self.index >= self.k


class FecSource:
    """A pgmcc :class:`~repro.pgm.sender.DataSource` emitting
    systematic FEC blocks.

    Args:
        k: data packets per block.
        redundancy: parity packets per block (``r``); may be changed
            between blocks (adaptive FEC, §3.9).
        payload_size: bytes per packet.
        limit_blocks: stop after this many blocks (None = unbounded).
    """

    def __init__(
        self,
        k: int = 16,
        redundancy: int = 2,
        payload_size: int = C.DEFAULT_PAYLOAD,
        limit_blocks: Optional[int] = None,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if redundancy < 0:
            raise ValueError("redundancy cannot be negative")
        self.k = k
        self.redundancy = redundancy
        self.payload_size = payload_size
        self.limit_blocks = limit_blocks
        self._block = 0
        self._index = 0
        #: redundancy to apply from the next block boundary (a block's
        #: geometry must not change once its packets started flowing)
        self._pending_redundancy: Optional[int] = None
        self.data_packets = 0
        self.parity_packets = 0

    # -- DataSource interface -------------------------------------------------

    def has_data(self) -> bool:
        if self.limit_blocks is None:
            return True
        return self._block < self.limit_blocks

    def peek_size(self) -> int:
        return self.payload_size

    def next_payload(self) -> tuple[int, "FecPayload"]:
        if self._index == 0 and self._pending_redundancy is not None:
            self.redundancy = self._pending_redundancy
            self._pending_redundancy = None
        n = self.k + self.redundancy
        tag = FecPayload(self._block, self._index, self.k, n)
        if tag.is_parity:
            self.parity_packets += 1
        else:
            self.data_packets += 1
        self._index += 1
        if self._index >= n:
            self._index = 0
            self._block += 1
        return self.payload_size, tag  # type: ignore[return-value]

    def set_redundancy(self, redundancy: int) -> None:
        """Adjust parity share; takes effect at the next block."""
        if redundancy < 0:
            raise ValueError("redundancy cannot be negative")
        if self._index == 0:
            self.redundancy = redundancy
        else:
            self._pending_redundancy = redundancy

    @property
    def overhead(self) -> float:
        """Current parity share of the stream."""
        n = self.k + self.redundancy
        return self.redundancy / n


@dataclass
class _BlockState:
    received: set[int] = field(default_factory=set)
    decoded: bool = False


class FecAssembler:
    """Receiver-side block reconstruction.

    Feed it every delivered packet's :class:`FecPayload` tag; it
    declares a block decoded once any ``k`` of its packets arrived and
    reports residual (unrecoverable) data loss for closed blocks.
    """

    def __init__(self, on_block: Optional[Callable[[int], None]] = None):
        self._blocks: dict[int, _BlockState] = {}
        self.on_block = on_block
        self.blocks_decoded = 0
        self.packets_seen = 0
        #: highest block for which a packet was seen
        self.highest_block = -1
        #: first block observed, and whether it was observed from its
        #: first packet — a mid-session joiner's first block is
        #: inherently partial and excluded from residual-loss counting
        self.first_block = -1
        self._joined_mid_block = False

    def on_payload(self, tag: FecPayload) -> bool:
        """Ingest one packet; returns True if this completed its block."""
        self.packets_seen += 1
        if self.first_block < 0:
            self.first_block = tag.block
            self._joined_mid_block = tag.index != 0 or tag.block != 0
        self.highest_block = max(self.highest_block, tag.block)
        state = self._blocks.setdefault(tag.block, _BlockState())
        if state.decoded:
            return False
        state.received.add(tag.index)
        if len(state.received) >= tag.k:
            state.decoded = True
            self.blocks_decoded += 1
            if self.on_block is not None:
                self.on_block(tag.block)
            return True
        return False

    def _count_start(self) -> int:
        if self.first_block < 0:
            return 0
        return self.first_block + 1 if self._joined_mid_block else self.first_block

    def undecoded_blocks(self, up_to_block: int) -> list[int]:
        """Fully-observed blocks at or below ``up_to_block`` still
        missing data (a mid-block joiner's first block is excluded)."""
        start = self._count_start()
        missing = []
        for block in range(start, up_to_block + 1):
            state = self._blocks.get(block)
            if state is None or not state.decoded:
                missing.append(block)
        return missing

    def residual_block_loss(self, up_to_block: Optional[int] = None) -> float:
        """Fraction of fully-observed, closed blocks that could not be
        reconstructed.  The joiner's partial first block and the
        still-open highest block are excluded."""
        if up_to_block is None:
            # the highest block may still be in flight; exclude it
            up_to_block = self.highest_block - 1
        start = self._count_start()
        total = up_to_block - start + 1
        if total <= 0:
            return 0.0
        return len(self.undecoded_blocks(up_to_block)) / total


def attach_fec_receiver(receiver, assembler: FecAssembler) -> None:
    """Wire an assembler into a :class:`~repro.pgm.receiver.PgmReceiver`.

    The receiver must run with ``reliable=False`` delivery (FEC replaces
    retransmission); its ``deliver`` callback is replaced.
    """

    def deliver(seq: int, payload_len: int, payload) -> None:
        if isinstance(payload, FecPayload):
            assembler.on_payload(payload)

    receiver.deliver = deliver
