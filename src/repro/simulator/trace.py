"""Packet tracing.

The paper's figures are time/sequence-number plots logged at the sender
side of the bottleneck.  :class:`FlowTrace` collects the same records —
(time, kind, sequence, bytes) — from which the analysis package derives
the time-seq series, binned bandwidth curves and event counts the
benches compare against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One logged protocol event."""

    time: float
    kind: str  # "data", "rdata", "ack", "nak", "acker-switch", "loss", ...
    seq: int
    nbytes: int = 0


@dataclass
class FlowTrace:
    """Event log for one flow (a PGM session or a TCP connection)."""

    name: str
    records: list[TraceRecord] = field(default_factory=list)

    def log(self, time: float, kind: str, seq: int, nbytes: int = 0) -> None:
        self.records.append(TraceRecord(time, kind, seq, nbytes))

    # -- selection helpers -------------------------------------------------

    def of_kind(self, *kinds: str) -> list[TraceRecord]:
        wanted = set(kinds)
        return [r for r in self.records if r.kind in wanted]

    def count(self, kind: str) -> int:
        return sum(1 for r in self.records if r.kind == kind)

    def times(self, kind: str) -> list[float]:
        return [r.time for r in self.records if r.kind == kind]

    def between(self, t0: float, t1: float) -> "FlowTrace":
        """Sub-trace restricted to t0 <= time < t1."""
        sub = FlowTrace(self.name)
        sub.records = [r for r in self.records if t0 <= r.time < t1]
        return sub

    # -- derived series -------------------------------------------------------

    def time_seq(self, kind: str = "data") -> list[tuple[float, int]]:
        """The paper's time/sequence plot for one event kind."""
        return [(r.time, r.seq) for r in self.records if r.kind == kind]

    def bytes_sent(self, kind: str = "data") -> int:
        return sum(r.nbytes for r in self.records if r.kind == kind)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


class TraceSet:
    """Named collection of flow traces for one experiment."""

    def __init__(self) -> None:
        self._traces: dict[str, FlowTrace] = {}

    def flow(self, name: str) -> FlowTrace:
        trace = self._traces.get(name)
        if trace is None:
            trace = FlowTrace(name)
            self._traces[name] = trace
        return trace

    def names(self) -> list[str]:
        return sorted(self._traces)

    def __getitem__(self, name: str) -> FlowTrace:
        return self._traces[name]

    def __contains__(self, name: str) -> bool:
        return name in self._traces

    def items(self) -> Iterable[tuple[str, FlowTrace]]:
        return self._traces.items()
