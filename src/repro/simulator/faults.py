"""Deterministic, seed-reproducible fault injection.

The paper's robustness claims — reordering tolerance through the ACK
bitmap (§3.3), acker loss handled as a *move* rather than a congestion
signal (§3.5–§3.6), stall recovery at ``W = T = 1`` (§3.2) — are all
statements about behaviour *under faults*.  This module provides the
scriptable chaos layer that exercises them: a :class:`FaultPlan` is a
declarative schedule of timed fault episodes, and a
:class:`FaultInjector` compiles it onto the existing
:class:`~repro.simulator.engine.Simulator` event heap, driving the
hook points built into :class:`~repro.simulator.link.Link` and
:class:`~repro.simulator.node.Node` (and, through duck typing, any
router-resident interceptor exposing an ``enabled`` flag, such as
:class:`~repro.pgm.network_element.PgmNetworkElement`).

Episode catalogue::

    LinkDown(a, b, at, duration)        ingress blackout (link_down/link_up)
    LinkImpairment(a, b, at, duration,  transient bandwidth / delay /
                   rate_bps, delay,     random-loss change
                   loss_rate)
    BurstLoss(a, b, at, duration)       loss_rate=1.0 burst episode
    Duplication(a, b, at, duration)     per-packet duplication stage
    Corruption(a, b, at, duration)      per-packet corruption stage
    Partition(side_a, side_b, at,       bisect the topology: every link
              duration)                 crossing the cut goes down both
                                        ways, then heals together
    ControlBlackhole(a, b, at,          asymmetric control-plane loss:
                     duration, kinds)   drop ACK/NAK/NCF/SPM on the link
                                        while data still flows
    NodePause(node, at, duration)       freeze a node's data plane
    NodeResume(node, at)                explicit un-pause
    NodeCrash(node, at)                 permanent kill (node may be ACKER)
    ElementDown(router, at, duration)   disable a router's interceptor

Receiver-misbehavior episodes (the Byzantine-endpoint fault model)::

    GreedyAcker(receiver, at, duration)   under-report loss, freeze lead
    Throttler(receiver, at, duration)     over-report loss, drop own ACKs
    FrozenLead(receiver, at, duration)    stale rxw_lead in every report
    NakStorm(receiver, at, duration)      flood the source with NAKs
    AckReplay(receiver, at, duration)     replay/duplicate the last ACK
    SilentJoiner(receiver, at, duration)  join but emit no feedback

These drive, through duck typing, any receiver agent exposing
``misbehave_start(kind, now, rng, **params)`` / ``misbehave_stop(kind)``
(our :class:`~repro.pgm.receiver.PgmReceiver` does, with the behaviour
implementations in :mod:`repro.pgm.misbehavior`); resolution from the
node name to the agent goes through the injector's ``receiver_lookup``
callable, keeping this module protocol-agnostic.

Determinism: every random decision (duplication, corruption, episode
loss models, misbehaving-receiver decisions) draws from named
:class:`~repro.simulator.rng.RngRegistry` streams keyed by link or
receiver name, so the same ``(seed, plan)`` pair yields byte-identical
traces run after run — the property the chaos test suite is built on.

Overlap semantics: overlapping episodes touching the same knob stack;
the most recently started active episode wins, and when it ends the
next one down (or the base value) is restored.  ``LinkDown`` episodes
are reference-counted, so nested outages compose.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Optional, Union

from .link import Link
from .loss_models import BernoulliLoss

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .topology import Network

#: Sentinel node name: resolved at fire time to the session's current
#: acker (requires an ``acker_lookup`` on the injector).
ACKER = "@acker"


def _check_at(at: float) -> None:
    if at < 0:
        raise ValueError(f"episode time must be >= 0, got {at}")


def _check_duration(duration: Optional[float]) -> None:
    if duration is not None and duration <= 0:
        raise ValueError(f"episode duration must be > 0, got {duration}")


def _check_rate(name: str, rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {rate}")


@dataclass(frozen=True)
class LinkDown:
    """Take the ``a -> b`` link down at ``at`` (both directions by
    default); bring it back after ``duration`` (``None`` = forever)."""

    a: str
    b: str
    at: float
    duration: Optional[float] = None
    both: bool = True

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)


@dataclass(frozen=True)
class LinkImpairment:
    """Transient bandwidth / propagation-delay / random-loss change."""

    a: str
    b: str
    at: float
    duration: float
    rate_bps: Optional[float] = None
    delay: Optional[float] = None
    loss_rate: Optional[float] = None
    both: bool = True

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)
        if self.rate_bps is None and self.delay is None and self.loss_rate is None:
            raise ValueError("LinkImpairment must change at least one knob")
        if self.rate_bps is not None and self.rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive, got {self.rate_bps}")
        if self.delay is not None and self.delay < 0:
            raise ValueError(f"delay cannot be negative, got {self.delay}")
        if self.loss_rate is not None:
            _check_rate("loss_rate", self.loss_rate)


@dataclass(frozen=True)
class BurstLoss:
    """A burst-loss episode: ``loss_rate`` (default: drop everything)
    applied to the link for ``duration`` seconds."""

    a: str
    b: str
    at: float
    duration: float
    loss_rate: float = 1.0
    both: bool = False

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)
        _check_rate("loss_rate", self.loss_rate)


@dataclass(frozen=True)
class Duplication:
    """Duplicate each packet with probability ``rate`` during the episode."""

    a: str
    b: str
    at: float
    duration: float
    rate: float = 0.1
    both: bool = False

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)
        _check_rate("rate", self.rate)


@dataclass(frozen=True)
class Corruption:
    """Corrupt each packet with probability ``rate``.

    ``mode="drop"`` (default) models a checksum failure at the
    receiving interface: the packet is silently discarded.
    ``mode="mangle"`` delivers the packet with its encoded bytes
    bit-flipped instead, exercising every ingress ``decode()`` path
    (payload objects without a byte codec still fall back to drop).
    """

    a: str
    b: str
    at: float
    duration: float
    rate: float = 0.1
    both: bool = False
    mode: str = "drop"

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)
        _check_rate("rate", self.rate)
        if self.mode not in ("drop", "mangle"):
            raise ValueError(f"mode must be 'drop' or 'mangle', got {self.mode!r}")


@dataclass(frozen=True)
class Partition:
    """Bisect the topology at ``at``: every link with one endpoint in
    ``side_a`` and the other in ``side_b`` goes down (both directions),
    then the whole cut heals together after ``duration`` (``None`` =
    never).  Nodes named on neither side are untouched — partial cuts
    compose by listing only the halves that matter.  Outages share the
    reference-counted :class:`LinkDown` machinery, so overlapping
    partitions (or a partition overlapping a ``LinkDown``) nest."""

    side_a: tuple[str, ...]
    side_b: tuple[str, ...]
    at: float
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "side_a", tuple(self.side_a))
        object.__setattr__(self, "side_b", tuple(self.side_b))
        _check_at(self.at)
        _check_duration(self.duration)
        if not self.side_a or not self.side_b:
            raise ValueError("both partition sides must be non-empty")
        overlap = set(self.side_a) & set(self.side_b)
        if overlap:
            raise ValueError(f"partition sides overlap: {sorted(overlap)}")


@dataclass(frozen=True)
class ControlBlackhole:
    """Asymmetric control-plane loss on the ``a -> b`` link: packets
    whose payload class name is in ``kinds`` are dropped at ingress
    while everything else (data) flows — the nastiest case for an
    ACK-clocked protocol, whose feedback dies while transmissions keep
    arriving.  Defaults to the full PGM control plane (ACK, NAK, NCF
    and SPM).  Overlapping blackholes on one link drop the union of
    their kinds."""

    a: str
    b: str
    at: float
    duration: Optional[float] = None
    kinds: tuple[str, ...] = ("Ack", "Nak", "Ncf", "Spm")
    both: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "kinds", tuple(self.kinds))
        _check_at(self.at)
        _check_duration(self.duration)
        if not self.kinds:
            raise ValueError("ControlBlackhole needs at least one kind")


@dataclass(frozen=True)
class NodePause:
    """Freeze ``node``'s data plane at ``at``; auto-resume after
    ``duration`` (``None`` = until an explicit :class:`NodeResume`)."""

    node: str
    at: float
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)


@dataclass(frozen=True)
class NodeResume:
    """Explicitly resume a paused node."""

    node: str
    at: float

    def __post_init__(self) -> None:
        _check_at(self.at)


@dataclass(frozen=True)
class NodeCrash:
    """Permanently kill ``node`` at ``at``.  ``node`` may be the
    :data:`ACKER` sentinel, resolved at fire time to the session's
    current acker."""

    node: str
    at: float

    def __post_init__(self) -> None:
        _check_at(self.at)


@dataclass(frozen=True)
class ElementDown:
    """Disable the interceptor (PGM network element) on ``router``,
    degrading it to plain forwarding; re-enable after ``duration``."""

    router: str
    at: float
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)


# -- receiver-misbehavior episodes ------------------------------------------


@dataclass(frozen=True)
class GreedyAcker:
    """``receiver`` runs the ackership-capture + optimistic-ACK
    attack: every report claims ``capture_loss`` (the loss rate feeds
    only the §3.5 election metric, so the lie wins and holds the
    acker seat) while a self-paced timer ACKs sequences up to the
    SPM-advertised lead — received or not — with all-ones bitmaps, so
    the window never sees a congestion signal and the ACK clock never
    starves; the rate is driven faster than TCP-friendly."""

    receiver: str
    at: float
    duration: Optional[float] = None
    #: seconds between candidacy-refreshing fake NAKs
    report_ivl: float = 0.25
    #: loss fraction claimed on reports to win the election
    capture_loss: float = 0.4
    #: optimistic ACKs per second
    ack_rate: float = 60.0

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)
        if self.report_ivl <= 0:
            raise ValueError(f"report_ivl must be > 0, got {self.report_ivl}")
        if not 0.0 < self.capture_loss <= 1.0:
            raise ValueError(
                f"capture_loss must be in (0, 1], got {self.capture_loss}")
        if self.ack_rate <= 0:
            raise ValueError(f"ack_rate must be > 0, got {self.ack_rate}")


@dataclass(frozen=True)
class Throttler:
    """``receiver`` over-reports its loss rate (pinned at
    ``loss_rate``) to win the election, then drops a fraction of its
    own ACKs to slow the whole group down."""

    receiver: str
    at: float
    duration: Optional[float] = None
    loss_rate: float = 0.4
    ack_drop_rate: float = 0.7
    report_ivl: float = 0.25

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)
        _check_rate("loss_rate", self.loss_rate)
        _check_rate("ack_drop_rate", self.ack_drop_rate)
        if self.report_ivl <= 0:
            raise ValueError(f"report_ivl must be > 0, got {self.report_ivl}")


@dataclass(frozen=True)
class FrozenLead:
    """``receiver`` keeps reporting the ``rxw_lead`` it had when the
    episode started (a stale/stuck report generator), inflating its
    sequence-RTT without lying about loss."""

    receiver: str
    at: float
    duration: Optional[float] = None
    report_ivl: float = 0.25

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)
        if self.report_ivl <= 0:
            raise ValueError(f"report_ivl must be > 0, got {self.report_ivl}")


@dataclass(frozen=True)
class NakStorm:
    """``receiver`` floods the source with repair-requesting NAKs for
    random already-transmitted sequences at ``rate`` per second."""

    receiver: str
    at: float
    duration: float
    rate: float = 200.0

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")


@dataclass(frozen=True)
class AckReplay:
    """``receiver`` re-sends ``copies`` verbatim copies of its most
    recent ACK every ``interval`` seconds (duplicated stale feedback
    skews dupack-based loss detection at the sender)."""

    receiver: str
    at: float
    duration: float
    copies: int = 3
    interval: float = 0.05

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)
        if self.copies < 1:
            raise ValueError(f"copies must be >= 1, got {self.copies}")
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")


@dataclass(frozen=True)
class SilentJoiner:
    """``receiver`` stays subscribed but suppresses every ACK and NAK
    it would send (a joined-but-mute group member)."""

    receiver: str
    at: float
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_duration(self.duration)


#: Every episode type a plan may carry.
FaultEpisode = Union[
    LinkDown,
    LinkImpairment,
    BurstLoss,
    Duplication,
    Corruption,
    Partition,
    ControlBlackhole,
    NodePause,
    NodeResume,
    NodeCrash,
    ElementDown,
    GreedyAcker,
    Throttler,
    FrozenLead,
    NakStorm,
    AckReplay,
    SilentJoiner,
]

_RX_EPISODES = (GreedyAcker, Throttler, FrozenLead, NakStorm, AckReplay, SilentJoiner)

_EPISODE_TYPES = (
    LinkDown,
    LinkImpairment,
    BurstLoss,
    Duplication,
    Corruption,
    Partition,
    ControlBlackhole,
    NodePause,
    NodeResume,
    NodeCrash,
    ElementDown,
) + _RX_EPISODES

_LINK_EPISODES = (LinkDown, LinkImpairment, BurstLoss, Duplication, Corruption,
                  ControlBlackhole)

#: Episode type -> (behaviour kind, parameter-field names) for the
#: receiver-misbehavior episodes.  The kind string is the duck-typed
#: contract with ``misbehave_start``/``misbehave_stop``.
_RX_EPISODE_KINDS: dict[type, tuple[str, tuple[str, ...]]] = {
    GreedyAcker: ("greedy-acker", ("report_ivl", "capture_loss", "ack_rate")),
    Throttler: ("throttler", ("loss_rate", "ack_drop_rate", "report_ivl")),
    FrozenLead: ("frozen-lead", ("report_ivl",)),
    NakStorm: ("nak-storm", ("rate",)),
    AckReplay: ("ack-replay", ("copies", "interval")),
    SilentJoiner: ("silent-joiner", ()),
}


def flap_link(
    a: str,
    b: str,
    first_at: float,
    down_for: float,
    up_for: float,
    cycles: int,
    both: bool = True,
) -> tuple[LinkDown, ...]:
    """Convenience: ``cycles`` down/up flaps of the ``a<->b`` link."""
    if cycles < 1:
        raise ValueError("cycles must be >= 1")
    if down_for <= 0 or up_for <= 0:
        raise ValueError("down_for and up_for must be positive")
    episodes = []
    t = first_at
    for _ in range(cycles):
        episodes.append(LinkDown(a, b, at=t, duration=down_for, both=both))
        t += down_for + up_for
    return tuple(episodes)


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, composable schedule of fault episodes.

    Plans are immutable values: they can be composed with ``+``,
    time-scaled with :meth:`scaled`, validated against a topology, and
    compiled any number of times (each compilation is independent).
    """

    episodes: tuple[FaultEpisode, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "episodes", tuple(self.episodes))
        for ep in self.episodes:
            if not isinstance(ep, _EPISODE_TYPES):
                raise TypeError(f"not a fault episode: {ep!r}")

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return FaultPlan(self.episodes + other.episodes)

    def __len__(self) -> int:
        return len(self.episodes)

    def scaled(self, factor: float) -> "FaultPlan":
        """Scale every episode's ``at`` (and ``duration``) by ``factor``
        — the chaos analogue of the experiments' ``scale`` knob."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        scaled = []
        for ep in self.episodes:
            changes = {"at": ep.at * factor}
            duration = getattr(ep, "duration", None)
            if duration is not None:
                changes["duration"] = duration * factor
            scaled.append(replace(ep, **changes))
        return FaultPlan(tuple(scaled))

    @property
    def horizon(self) -> float:
        """Time of the last scheduled state change."""
        horizon = 0.0
        for ep in self.episodes:
            end = ep.at + (getattr(ep, "duration", None) or 0.0)
            horizon = max(horizon, end)
        return horizon

    def validate_against(self, net: "Network") -> None:
        """Raise if the plan references links or nodes ``net`` lacks."""
        for ep in self.episodes:
            if isinstance(ep, _LINK_EPISODES):
                src = net.nodes.get(ep.a)
                if src is None or ep.b not in src.links:
                    raise ValueError(f"no link {ep.a}->{ep.b} for {ep!r}")
                if ep.both and ep.a not in net.nodes[ep.b].links:
                    raise ValueError(f"no reverse link {ep.b}->{ep.a} for {ep!r}")
            elif isinstance(ep, Partition):
                for name in ep.side_a + ep.side_b:
                    if name not in net.nodes:
                        raise ValueError(f"unknown node {name!r} in {ep!r}")
                if not _cut_links(net, ep):
                    raise ValueError(f"no links cross the cut in {ep!r}")
            elif isinstance(ep, (NodePause, NodeResume, NodeCrash)):
                if ep.node != ACKER and ep.node not in net.nodes:
                    raise ValueError(f"unknown node {ep.node!r} in {ep!r}")
            elif isinstance(ep, ElementDown):
                if ep.router not in net.nodes:
                    raise ValueError(f"unknown router {ep.router!r} in {ep!r}")
            elif isinstance(ep, _RX_EPISODES):
                if ep.receiver != ACKER and ep.receiver not in net.nodes:
                    raise ValueError(f"unknown receiver {ep.receiver!r} in {ep!r}")


def _cut_links(net: "Network", ep: Partition) -> list[Link]:
    """Every directed link crossing the ``side_a``/``side_b`` cut, in
    deterministic (sorted endpoint) order."""
    links = []
    side_a, side_b = set(ep.side_a), set(ep.side_b)
    for src, dst in sorted(
            (a, b) for a in side_a | side_b
            for b in net.nodes[a].links
            if (a in side_a and b in side_b) or (a in side_b and b in side_a)):
        links.append(net.nodes[src].links[dst])
    return links


@dataclass(frozen=True)
class FaultRecord:
    """One applied fault action (the injector's audit log)."""

    time: float
    action: str
    target: str


class _LinkOverrides:
    """Per-link stacked override state (base values + active episodes)."""

    def __init__(self, link: Link, stage_rng, loss_rng):
        self.link = link
        self.stage_rng = stage_rng
        self.loss_rng = loss_rng
        self.base_rate = link.rate_bps
        self.base_delay = link.delay
        self.base_loss = link.loss
        self.down_count = 0
        self._stacks: dict[str, list[tuple[int, object]]] = {
            "rate_bps": [],
            "delay": [],
            "loss": [],
            "dup": [],
            "corrupt": [],
            "filter": [],
        }

    def down(self) -> None:
        self.down_count += 1
        self.link.set_down()

    def up(self) -> None:
        self.down_count -= 1
        if self.down_count <= 0:
            self.down_count = 0
            self.link.set_up()

    def push(self, knob: str, token: int, value) -> None:
        self._stacks[knob].append((token, value))
        self._apply(knob)

    def pop(self, knob: str, token: int) -> None:
        stack = self._stacks[knob]
        self._stacks[knob] = [entry for entry in stack if entry[0] != token]
        self._apply(knob)

    def _top(self, knob: str):
        stack = self._stacks[knob]
        return stack[-1][1] if stack else None

    def _apply(self, knob: str) -> None:
        top = self._top(knob)
        if knob == "rate_bps":
            self.link.rate_bps = self.base_rate if top is None else top
        elif knob == "delay":
            self.link.delay = self.base_delay if top is None else top
        elif knob == "loss":
            self.link.loss = self.base_loss if top is None else top
        elif knob == "filter":
            # overlapping blackholes compose: drop the union of kinds
            kinds: set[str] = set()
            for _token, value in self._stacks["filter"]:
                kinds.update(value)
            self.link.set_control_filter(kinds)
        else:  # dup / corrupt share one configuration call
            dup = self._top("dup") or 0.0
            corrupt = self._top("corrupt") or (0.0, "drop")
            corrupt_rate, corrupt_mode = corrupt
            self.link.set_fault_stages(dup, corrupt_rate, self.stage_rng,
                                       corrupt_mode=corrupt_mode)


class FaultInjector:
    """Compiles a :class:`FaultPlan` onto a network's event heap.

    Args:
        net: the target :class:`~repro.simulator.topology.Network`.
        plan: the fault schedule.
        acker_lookup: zero-argument callable returning the current
            acker's host name (or ``None``); required for plans using
            the :data:`ACKER` sentinel to do anything.
        receiver_lookup: callable mapping a receiver/host name to the
            receiver agent carrying the ``misbehave_start``/``_stop``
            hooks (or ``None``); required for the receiver-misbehavior
            episodes to do anything.
        validate: check the plan against the topology up front.

    All state changes are applied from simulator callbacks, so a
    compiled injector is fully deterministic with respect to the
    ``(seed, plan)`` pair.  Applied actions are recorded in
    :attr:`log` for tests and experiment reports.
    """

    def __init__(
        self,
        net: "Network",
        plan: FaultPlan,
        acker_lookup: Optional[Callable[[], Optional[str]]] = None,
        receiver_lookup: Optional[Callable[[str], object]] = None,
        validate: bool = True,
    ):
        self.net = net
        self.plan = plan
        self.acker_lookup = acker_lookup
        self.receiver_lookup = receiver_lookup
        self.log: list[FaultRecord] = []
        self._overrides: dict[str, _LinkOverrides] = {}
        self._tokens = itertools.count(1)
        if validate:
            plan.validate_against(net)
        for episode in plan.episodes:
            self._compile(episode)

    # -- public introspection ---------------------------------------------

    @property
    def actions_applied(self) -> int:
        return len(self.log)

    def actions(self, action: str) -> list[FaultRecord]:
        return [r for r in self.log if r.action == action]

    # -- compilation -------------------------------------------------------

    def _at(self, time: float, fn, *args) -> None:
        self.net.sim.schedule_at(max(time, self.net.sim.now), fn, *args)

    def _record(self, action: str, target: str) -> None:
        self.log.append(FaultRecord(self.net.sim.now, action, target))

    def _links_for(self, a: str, b: str, both: bool) -> list[Link]:
        links = [self.net.nodes[a].links[b]]
        if both:
            reverse = self.net.nodes[b].links.get(a)
            if reverse is not None:
                links.append(reverse)
        return links

    def _override_state(self, link: Link) -> _LinkOverrides:
        state = self._overrides.get(link.name)
        if state is None:
            state = _LinkOverrides(
                link,
                stage_rng=self.net.rng.stream(f"fault-stage:{link.name}"),
                loss_rng=self.net.rng.stream(f"fault-loss:{link.name}"),
            )
            self._overrides[link.name] = state
        return state

    def _compile(self, ep: FaultEpisode) -> None:
        if isinstance(ep, LinkDown):
            for link in self._links_for(ep.a, ep.b, ep.both):
                state = self._override_state(link)
                self._at(ep.at, self._link_down, state)
                if ep.duration is not None:
                    self._at(ep.at + ep.duration, self._link_up, state)
        elif isinstance(ep, (LinkImpairment, BurstLoss)):
            knobs: list[tuple[str, object]] = []
            if isinstance(ep, BurstLoss):
                knobs.append(("loss", ep.loss_rate))
            else:
                if ep.rate_bps is not None:
                    knobs.append(("rate_bps", ep.rate_bps))
                if ep.delay is not None:
                    knobs.append(("delay", ep.delay))
                if ep.loss_rate is not None:
                    knobs.append(("loss", ep.loss_rate))
            for link in self._links_for(ep.a, ep.b, ep.both):
                state = self._override_state(link)
                for knob, value in knobs:
                    if knob == "loss":
                        value = BernoulliLoss(value, state.loss_rng)
                    token = next(self._tokens)
                    self._at(ep.at, self._push, state, knob, token, value)
                    self._at(ep.at + ep.duration, self._pop, state, knob, token)
        elif isinstance(ep, (Duplication, Corruption)):
            if isinstance(ep, Duplication):
                knob, value = "dup", ep.rate
            else:
                knob, value = "corrupt", (ep.rate, ep.mode)
            for link in self._links_for(ep.a, ep.b, ep.both):
                state = self._override_state(link)
                token = next(self._tokens)
                self._at(ep.at, self._push, state, knob, token, value)
                self._at(ep.at + ep.duration, self._pop, state, knob, token)
        elif isinstance(ep, Partition):
            for link in _cut_links(self.net, ep):
                state = self._override_state(link)
                self._at(ep.at, self._link_down, state)
                if ep.duration is not None:
                    self._at(ep.at + ep.duration, self._link_up, state)
        elif isinstance(ep, ControlBlackhole):
            for link in self._links_for(ep.a, ep.b, ep.both):
                state = self._override_state(link)
                token = next(self._tokens)
                self._at(ep.at, self._push, state, "filter", token,
                         frozenset(ep.kinds))
                if ep.duration is not None:
                    self._at(ep.at + ep.duration,
                             self._pop, state, "filter", token)
        elif isinstance(ep, NodePause):
            self._at(ep.at, self._node_action, ep.node, "pause")
            if ep.duration is not None:
                self._at(ep.at + ep.duration, self._node_action, ep.node, "resume")
        elif isinstance(ep, NodeResume):
            self._at(ep.at, self._node_action, ep.node, "resume")
        elif isinstance(ep, NodeCrash):
            self._at(ep.at, self._node_action, ep.node, "crash")
        elif isinstance(ep, ElementDown):
            self._at(ep.at, self._element, ep.router, False)
            if ep.duration is not None:
                self._at(ep.at + ep.duration, self._element, ep.router, True)
        elif isinstance(ep, _RX_EPISODES):
            kind, fields = _RX_EPISODE_KINDS[type(ep)]
            params = {name: getattr(ep, name) for name in fields}
            self._at(ep.at, self._rx_behavior, ep.receiver, kind, True, params)
            if ep.duration is not None:
                self._at(ep.at + ep.duration,
                         self._rx_behavior, ep.receiver, kind, False, params)

    # -- fire-time actions -------------------------------------------------

    def _link_down(self, state: _LinkOverrides) -> None:
        state.down()
        self._record("link-down", state.link.name)

    def _link_up(self, state: _LinkOverrides) -> None:
        state.up()
        self._record("link-up", state.link.name)

    def _push(self, state: _LinkOverrides, knob: str, token: int, value) -> None:
        state.push(knob, token, value)
        self._record(f"{knob}-set", state.link.name)

    def _pop(self, state: _LinkOverrides, knob: str, token: int) -> None:
        state.pop(knob, token)
        self._record(f"{knob}-restore", state.link.name)

    def _node_action(self, name: str, action: str) -> None:
        node = self._resolve_node(name)
        if node is None:
            self._record(f"{action}-skipped", name)
            return
        getattr(node, action)()
        self._record(action, node.name)

    def _resolve_node(self, name: str):
        if name == ACKER:
            if self.acker_lookup is None:
                return None
            acker = self.acker_lookup()
            if acker is None:
                return None
            return self.net.nodes.get(acker)
        return self.net.nodes.get(name)

    def _rx_behavior(self, name: str, kind: str, start: bool, params: dict) -> None:
        resolved = name
        if resolved == ACKER:
            acker = self.acker_lookup() if self.acker_lookup is not None else None
            if acker is None:
                self._record(f"{kind}-skipped", name)
                return
            resolved = acker
        agent = self.receiver_lookup(resolved) if self.receiver_lookup else None
        if agent is None or not hasattr(agent, "misbehave_start"):
            self._record(f"{kind}-skipped", resolved)
            return
        if start:
            rng = self.net.rng.stream(f"fault-rx:{resolved}")
            agent.misbehave_start(kind, self.net.sim.now, rng, **params)
            self._record(f"{kind}-start", resolved)
        else:
            agent.misbehave_stop(kind)
            self._record(f"{kind}-stop", resolved)

    def _element(self, router: str, enabled: bool) -> None:
        node = self.net.nodes.get(router)
        interceptor = getattr(node, "interceptor", None)
        if interceptor is None or not hasattr(interceptor, "enabled"):
            self._record("element-skipped", router)
            return
        interceptor.enabled = enabled
        self._record("element-up" if enabled else "element-down", router)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultInjector episodes={len(self.plan)} "
            f"applied={self.actions_applied}>"
        )
