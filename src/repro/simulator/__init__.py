"""Discrete-event network simulator (the ns-2 / dummynet substitute).

Public surface::

    from repro.simulator import (
        Simulator, Timer, Network, LinkSpec, Link, Packet,
        NON_LOSSY, LOSSY, ACCESS, dumbbell, star, two_bottleneck,
        FaultPlan, FaultInjector, LinkDown, NodeCrash, ACKER, ...,
    )
"""

from .engine import (
    CalendarSimulator,
    Event,
    Simulator,
    Timer,
    cancel_event,
    describe_event,
    make_simulator,
)
from .faults import (
    ACKER,
    AckReplay,
    BurstLoss,
    Corruption,
    Duplication,
    ElementDown,
    FaultInjector,
    FaultPlan,
    FaultRecord,
    FrozenLead,
    GreedyAcker,
    LinkDown,
    LinkImpairment,
    NakStorm,
    NodeCrash,
    NodePause,
    NodeResume,
    SilentJoiner,
    Throttler,
    flap_link,
)
from .link import Link
from .loss_models import (
    BernoulliLoss,
    DeterministicLoss,
    GilbertElliottLoss,
    NoLoss,
    PeriodicLoss,
)
from .node import EcmpRouter, Host, Node, Router
from .packet import (
    MULTICAST_PREFIX,
    POOL,
    Address,
    Packet,
    PacketPool,
    is_multicast,
    set_packet_pooling,
)
from .queues import DropTailQueue, RedQueue
from .rng import RngRegistry
from .topology import (
    ACCESS,
    LOSSY,
    NON_LOSSY,
    LinkSpec,
    Network,
    dumbbell,
    star,
    two_bottleneck,
)
from .trace import FlowTrace, TraceRecord, TraceSet

__all__ = [
    "CalendarSimulator",
    "Event",
    "Simulator",
    "Timer",
    "cancel_event",
    "describe_event",
    "make_simulator",
    "ACKER",
    "AckReplay",
    "BurstLoss",
    "Corruption",
    "Duplication",
    "ElementDown",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "FrozenLead",
    "GreedyAcker",
    "LinkDown",
    "LinkImpairment",
    "NakStorm",
    "NodeCrash",
    "NodePause",
    "NodeResume",
    "SilentJoiner",
    "Throttler",
    "flap_link",
    "Link",
    "BernoulliLoss",
    "DeterministicLoss",
    "GilbertElliottLoss",
    "NoLoss",
    "PeriodicLoss",
    "EcmpRouter",
    "Host",
    "Node",
    "Router",
    "MULTICAST_PREFIX",
    "POOL",
    "Address",
    "Packet",
    "PacketPool",
    "is_multicast",
    "set_packet_pooling",
    "DropTailQueue",
    "RedQueue",
    "RngRegistry",
    "ACCESS",
    "LOSSY",
    "NON_LOSSY",
    "LinkSpec",
    "Network",
    "dumbbell",
    "star",
    "two_bottleneck",
    "FlowTrace",
    "TraceRecord",
    "TraceSet",
]
