"""Deterministic random number management.

Every stochastic component of the simulator (loss models, NAK backoff
jitter, workload generators) draws from a stream derived from a single
scenario seed, so experiments are reproducible run to run yet streams
stay statistically independent of each other.
"""

from __future__ import annotations

import random
import zlib


class RngRegistry:
    """Derives named, independent :class:`random.Random` streams from a seed.

    The same ``(seed, name)`` pair always yields an identically seeded
    stream, regardless of the order in which streams are requested.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            derived = zlib.crc32(name.encode("utf-8")) ^ (self.seed * 0x9E3779B1)
            rng = random.Random(derived & 0xFFFFFFFFFFFFFFFF)
            self._streams[name] = rng
        return rng
