"""Discrete-event simulation engine.

This is the substrate that plays the role of ns-2 in the paper's
simulations and of the dummynet testbed in its experiments: a
heap-driven event loop with deterministic tie-breaking, plus a small
restartable :class:`Timer` helper used by the protocol agents.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be
    cancelled.  Cancellation is lazy: the heap entry stays in place and
    is discarded when popped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call repeatedly."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # Tie-break on insertion order so runs are deterministic.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} fn={getattr(self.fn, '__name__', self.fn)}{state}>"


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, hello)
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        # Heap entries are (time, seq, Event) tuples: heapq then
        # compares at C speed and never falls back to Event.__lt__,
        # with the identical (time, insertion-order) total order.
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed = 0

    # -- scheduling ----------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time:.6f}, clock already at {self.now:.6f}"
            )
        ev = Event(time, next(self._counter), fn, args)
        heapq.heappush(self._heap, (time, ev.seq, ev))
        return ev

    # -- execution -----------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in time order.

        Stops when the heap is exhausted, when the next event lies past
        ``until`` (the clock is then advanced to ``until``), when
        ``max_events`` have been processed, or when :meth:`stop` is
        called from inside a callback.
        """
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._heap and not self._stopped:
                if max_events is not None and processed >= max_events:
                    break
                time = self._heap[0][0]
                if until is not None and time > until:
                    break
                ev = heapq.heappop(self._heap)[2]
                if ev.cancelled:
                    continue
                self.now = time
                ev.fn(*ev.args)
                processed += 1
                self.events_processed += 1
        finally:
            self._running = False
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    def stop(self) -> None:
        """Stop the run loop after the current callback returns."""
        self._stopped = True

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for _, _, ev in self._heap if not ev.cancelled)

    def metrics(self) -> dict:
        """Engine state for telemetry pull-bindings (never touches the
        hot loop: the registry reads this on demand)."""
        return {
            "now": self.now,
            "events_processed": self.events_processed,
            "heap_len": len(self._heap),
        }


class Timer:
    """A restartable one-shot timer bound to a simulator.

    Protocols use this for retransmission timeouts, NAK backoffs and
    stall detection.  ``restart`` supersedes any pending expiry.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]):
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> Optional[float]:
        """Absolute time at which the timer will fire, or ``None``."""
        return self._event.time if self.armed else None

    def start(self, delay: float) -> None:
        """Arm the timer.  Raises if already armed."""
        if self.armed:
            raise RuntimeError("timer already armed; use restart()")
        self._event = self._sim.schedule(delay, self._fire)

    def restart(self, delay: float) -> None:
        """Arm the timer, cancelling any pending expiry first."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
