"""Discrete-event simulation engine.

This is the substrate that plays the role of ns-2 in the paper's
simulations and of the dummynet testbed in its experiments: an event
loop with deterministic tie-breaking, plus a small restartable
:class:`Timer` helper used by the protocol agents.

Two interchangeable schedulers implement the same ``schedule/run``
API (see docs in DESIGN.md, "Event schedulers"):

* :class:`Simulator` — the default and *reference* implementation: a
  binary heap with a cached front slot, so chains of
  schedule-one/fire-one events (the protocol hot path) never touch the
  heap at all.
* :class:`CalendarSimulator` — a calendar queue (Brown 1988): events
  hash into time buckets, one bucket access drains every event at a
  tick in one batch, and the bucket array resizes itself as load
  grows.

Use :func:`make_simulator` (or the ``PGMCC_SIM_SCHEDULER`` environment
variable, or ``SessionConfig.scheduler``) to pick one; both produce
the identical (time, insertion-order) dispatch total order, which the
equivalence suite pins down experiment-by-experiment.

Event handles
-------------

For speed, a scheduled event is a plain ``[time, seq, fn, args]``
list — the heap/bucket entry *is* the handle.  Cancel through the
simulator (``sim.cancel(handle)``) or the module-level
:func:`cancel_event`; cancellation is lazy (the entry stays queued and
is discarded when reached).  :func:`describe_event` renders a handle
for debugging without resurrecting released pooled packets: it leans
on ``Packet.__repr__``'s released-state guard rather than touching
payload fields itself.
"""

from __future__ import annotations

import heapq
import os
from bisect import insort
from typing import Any, Callable, Optional

__all__ = [
    "Event",
    "Simulator",
    "CalendarSimulator",
    "Timer",
    "SCHEDULER_ENV",
    "cancel_event",
    "describe_event",
    "make_simulator",
]

#: Environment variable selecting the process-wide default scheduler
#: ("heap" or "calendar") for :func:`make_simulator` /
#: :class:`~repro.simulator.topology.Network`.
SCHEDULER_ENV = "PGMCC_SIM_SCHEDULER"

#: Event handles are plain lists (see module docstring).  The name is
#: kept so ``from repro.simulator import Event`` and
#: ``isinstance(handle, Event)`` continue to work.
Event = list

_INF = float("inf")


def cancel_event(ev: list) -> None:
    """Cancel a scheduled event handle.  Safe to call repeatedly.

    Cancellation is lazy: the entry stays in the queue and is skipped
    when its turn comes.  Clearing ``args`` drops any references the
    event held (packets, agents) immediately.
    """
    ev[2] = None
    ev[3] = ()


def describe_event(ev: list) -> str:
    """Debug string for an event handle.

    Never reaches into stale state: cancelled events render without
    their (cleared) arguments, and live arguments are rendered via
    their own ``__repr__`` — released pooled packets guard theirs.
    """
    t, fn = ev[0], ev[2]
    if fn is None:
        return f"<event t={t:.6f} cancelled>"
    name = (getattr(fn, "__qualname__", None)
            or getattr(fn, "__name__", None) or repr(fn))
    args = ev[3]
    body = f" args={args!r}" if args else ""
    return f"<event t={t:.6f} fn={name}{body}>"


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, hello)
        sim.run(until=10.0)

    This is the reference scheduler: a binary heap of
    ``[time, seq, fn, args]`` entries with the earliest event cached
    in a front slot (``_next``) outside the heap.  The invariant is
    that the slot always holds the global minimum (or ``None`` exactly
    when nothing is pending), so the fire-one/schedule-one pattern the
    protocol agents produce runs entirely slot-to-slot with no heap
    traffic.

    Sequence numbers break ties by insertion order.  They are assigned
    lazily: an event that goes straight to the slot gets its number
    only if it is later displaced into the heap or tied by a same-time
    arrival — sound because a slot entry without a number implies the
    queue was empty when it was scheduled, so no earlier same-time
    entry can exist anywhere.
    """

    kind = "heap"

    __slots__ = ("now", "_heap", "_next", "_seq", "_running", "_stopped",
                 "events_processed")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[list] = []
        self._next: Optional[list] = None
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0

    # -- scheduling ----------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any,
                 _push=heapq.heappush) -> list:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        t = self.now + delay
        ev = [t, None, fn, args]
        nxt = self._next
        if nxt is None:
            self._next = ev
        elif t < nxt[0]:
            if nxt[1] is None:
                nxt[1] = self._seq
                self._seq += 1
            _push(self._heap, nxt)
            self._next = ev
        else:
            if nxt[1] is None and t == nxt[0]:
                # Materialise the slot's tie-break number first so the
                # earlier arrival keeps the earlier number.
                nxt[1] = self._seq
                self._seq += 1
            ev[1] = self._seq
            self._seq += 1
            _push(self._heap, ev)
        return ev

    def schedule_at(self, time: float, fn: Callable, *args: Any,
                    _push=heapq.heappush) -> list:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time:.6f}, clock already at {self.now:.6f}"
            )
        ev = [time, None, fn, args]
        nxt = self._next
        if nxt is None:
            self._next = ev
        elif time < nxt[0]:
            if nxt[1] is None:
                nxt[1] = self._seq
                self._seq += 1
            _push(self._heap, nxt)
            self._next = ev
        else:
            if nxt[1] is None and time == nxt[0]:
                nxt[1] = self._seq
                self._seq += 1
            ev[1] = self._seq
            self._seq += 1
            _push(self._heap, ev)
        return ev

    def cancel(self, ev: list) -> None:
        """Cancel a handle returned by :meth:`schedule`/:meth:`schedule_at`."""
        ev[2] = None
        ev[3] = ()

    # -- execution -----------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Process events in time order.

        Stops when the queue is exhausted, when the next event lies
        past ``until`` (the clock is then advanced to ``until``), when
        ``max_events`` have been processed, or when :meth:`stop` is
        called from inside a callback.
        """
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        try:
            if until is None and max_events is None:
                # Specialised tight loop for the unbounded case (the
                # benchmark workload and run-to-exhaustion callers).
                while True:
                    ev = self._next
                    if ev is None:
                        break
                    self._next = pop(heap) if heap else None
                    fn = ev[2]
                    if fn is None:
                        continue
                    self.now = ev[0]
                    fn(*ev[3])
                    processed += 1
                    if self._stopped:
                        break
            else:
                limit = _INF if until is None else until
                budget = _INF if max_events is None else max_events
                while processed < budget:
                    ev = self._next
                    if ev is None:
                        break
                    t = ev[0]
                    if t > limit:
                        break
                    self._next = pop(heap) if heap else None
                    fn = ev[2]
                    if fn is None:
                        continue
                    self.now = t
                    fn(*ev[3])
                    processed += 1
                    if self._stopped:
                        break
                    # Same-tick drain: everything else scheduled at t
                    # fires without re-checking the time limit.
                    while processed < budget:
                        ev = self._next
                        if ev is None or ev[0] != t:
                            break
                        self._next = pop(heap) if heap else None
                        fn = ev[2]
                        if fn is None:
                            continue
                        fn(*ev[3])
                        processed += 1
                        if self._stopped:
                            break
                    if self._stopped:
                        break
        finally:
            self._running = False
            self.events_processed += processed
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    def stop(self) -> None:
        """Stop the run loop after the current callback returns."""
        self._stopped = True

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        count = sum(1 for ev in self._heap if ev[2] is not None)
        nxt = self._next
        if nxt is not None and nxt[2] is not None:
            count += 1
        return count

    def metrics(self) -> dict:
        """Engine state for telemetry pull-bindings (never touches the
        hot loop: the registry reads this on demand)."""
        return {
            "now": self.now,
            "events_processed": self.events_processed,
            "heap_len": len(self._heap) + (1 if self._next is not None else 0),
            "scheduler": self.kind,
        }

    # -- migration (Network.use_scheduler) -----------------------------

    def _drain_entries(self) -> list[tuple[float, Callable, tuple]]:
        """Remove and return all live events as ``(time, fn, args)`` in
        dispatch order, leaving the simulator empty."""
        entries = []
        nxt = self._next
        if nxt is not None and nxt[2] is not None:
            entries.append(nxt)
        entries.extend(ev for ev in self._heap if ev[2] is not None)
        entries.sort(key=lambda ev: (ev[0], ev[1] if ev[1] is not None else -1))
        self._next = None
        self._heap.clear()
        return [(ev[0], ev[2], ev[3]) for ev in entries]


class CalendarSimulator:
    """Calendar-queue scheduler: same API and dispatch order as
    :class:`Simulator`, different engine underneath.

    Events hash into ``nbuckets`` circular time buckets of ``width``
    seconds, each kept sorted by ``(time, seq)``.  Dequeueing scans
    from the current bucket; one access drains *every* event at the
    minimal tick in a single batch (same-time events always share a
    bucket).  A full fruitless lap falls back to a direct min-scan,
    which also re-anchors the cursor — this keeps sparse/far-future
    schedules correct when they don't fit the current calendar year.
    The bucket array doubles whenever occupancy exceeds two events per
    bucket, re-deriving the width from the observed event-time span.

    Tie-break numbers are assigned eagerly, so the (time, seq) total
    order is identical to the reference heap's.
    """

    kind = "calendar"

    __slots__ = ("now", "_seq", "_nb", "_width", "_buckets", "_count",
                 "_cur", "_running", "_stopped", "events_processed")

    #: bucket-count ceiling for the adaptive resize
    MAX_BUCKETS = 32768

    def __init__(self, nbuckets: int = 64, width: float = 0.005) -> None:
        if nbuckets < 1 or nbuckets & (nbuckets - 1):
            raise ValueError("nbuckets must be a power of two")
        if width <= 0:
            raise ValueError("width must be positive")
        self.now: float = 0.0
        self._seq = 0
        self._nb = nbuckets
        self._width = width
        self._buckets: list[list[list]] = [[] for _ in range(nbuckets)]
        self._count = 0  # queued entries, cancelled included until popped
        self._cur = 0  # virtual bucket number of the scan cursor
        self._running = False
        self._stopped = False
        self.events_processed = 0

    # -- scheduling ----------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> list:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self._insert(self.now + delay, fn, args)

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> list:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time:.6f}, clock already at {self.now:.6f}"
            )
        return self._insert(time, fn, args)

    def _insert(self, t: float, fn: Callable, args: tuple) -> list:
        ev = [t, self._seq, fn, args]
        self._seq += 1
        insort(self._buckets[int(t / self._width) & (self._nb - 1)], ev)
        self._count += 1
        if self._count > 2 * self._nb and self._nb < self.MAX_BUCKETS:
            self._resize()
        return ev

    def _reinsert(self, ev: list) -> None:
        """Put an undispatched entry back, keeping its tie-break number."""
        insort(self._buckets[int(ev[0] / self._width) & (self._nb - 1)], ev)
        self._count += 1

    def _resize(self) -> None:
        entries = [ev for bucket in self._buckets for ev in bucket]
        nb = self._nb * 2
        lo = min(ev[0] for ev in entries)
        hi = max(ev[0] for ev in entries)
        span = hi - lo
        if span > 0:
            # Aim for a handful of events per bucket-window over the
            # observed span; clamp so the width never collapses.
            width = max(span * 4.0 / len(entries), 1e-9)
        else:
            width = self._width
        self._nb = nb
        self._width = width
        self._buckets = [[] for _ in range(nb)]
        mask = nb - 1
        for ev in entries:
            insort(self._buckets[int(ev[0] / width) & mask], ev)
        self._resync()

    def _resync(self) -> None:
        """Re-anchor the scan cursor.

        The cursor must never start ahead of the earliest pending
        event: ``run(until, max_events)`` advances the clock to
        ``until`` on a budget stop exactly like the reference heap,
        which can leave undispatched events *behind* the clock — a
        cursor anchored at ``now`` would then find a later lap's event
        first and break the (time, seq) order.
        """
        anchor = self.now
        for bucket in self._buckets:
            if bucket and bucket[0][0] < anchor:
                anchor = bucket[0][0]
        self._cur = int(anchor / self._width)

    def cancel(self, ev: list) -> None:
        """Cancel a handle returned by :meth:`schedule`/:meth:`schedule_at`."""
        ev[2] = None
        ev[3] = ()

    # -- dequeue -------------------------------------------------------

    def _next_batch(self, limit: float) -> Optional[list[list]]:
        """Remove and return every event at the earliest pending tick
        (``None`` if nothing is pending at or before ``limit``).

        Same-time events are guaranteed to share a bucket, where they
        sit as a contiguous sorted run — so one bucket access drains
        the whole tick.
        """
        if self._count == 0:
            return None
        nb = self._nb
        mask = nb - 1
        width = self._width
        buckets = self._buckets
        vb = self._cur
        for _ in range(nb):
            bucket = buckets[vb & mask]
            # The head is due this lap iff its *own* bucket number is
            # not in the future.  Comparing bucket numbers — the exact
            # arithmetic _insert used to place it — rather than an
            # accumulated time ceiling means float rounding can never
            # push a head just past its window and skip it for a lap.
            if bucket and int(bucket[0][0] / width) <= vb:
                self._cur = vb
                t0 = bucket[0][0]
                if t0 > limit:
                    return None
                j = 1
                n = len(bucket)
                while j < n and bucket[j][0] == t0:
                    j += 1
                batch = bucket[:j]
                del bucket[:j]
                self._count -= j
                return batch
            vb += 1
        # A whole calendar year with nothing due: direct min-scan.
        best = None
        for bucket in buckets:
            if bucket:
                head = bucket[0]
                if best is None or (head[0], head[1]) < (best[0][0], best[0][1]):
                    best = (head, bucket)
        if best is None:  # only cancelled-and-popped ghosts remain
            return None
        head, bucket = best
        t0 = head[0]
        if t0 > limit:
            return None
        j = 1
        n = len(bucket)
        while j < n and bucket[j][0] == t0:
            j += 1
        batch = bucket[:j]
        del bucket[:j]
        self._count -= j
        # Re-anchor the cursor at the event we just found.
        self._cur = int(t0 / width)
        return batch

    # -- execution -----------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Process events in time order (same semantics as
        :meth:`Simulator.run`)."""
        self._running = True
        self._stopped = False
        limit = _INF if until is None else until
        budget = _INF if max_events is None else max_events
        processed = 0
        self._resync()
        try:
            while processed < budget and not self._stopped:
                batch = self._next_batch(limit)
                if batch is None:
                    break
                t = batch[0][0]
                i = 0
                n = len(batch)
                while i < n:
                    ev = batch[i]
                    i += 1
                    fn = ev[2]
                    if fn is None:
                        # A fully-cancelled batch must not advance the
                        # clock (matches the reference heap).
                        continue
                    self.now = t
                    fn(*ev[3])
                    processed += 1
                    if self._stopped or processed >= budget:
                        break
                while i < n:  # push back the undispatched tail
                    self._reinsert(batch[i])
                    i += 1
        finally:
            self._running = False
            self.events_processed += processed
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    def stop(self) -> None:
        """Stop the run loop after the current batch event returns."""
        self._stopped = True

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for bucket in self._buckets
                   for ev in bucket if ev[2] is not None)

    def metrics(self) -> dict:
        """Engine state for telemetry pull-bindings."""
        return {
            "now": self.now,
            "events_processed": self.events_processed,
            "heap_len": self._count,
            "scheduler": self.kind,
        }

    # -- migration (Network.use_scheduler) -----------------------------

    def _drain_entries(self) -> list[tuple[float, Callable, tuple]]:
        """Remove and return all live events as ``(time, fn, args)`` in
        dispatch order, leaving the simulator empty."""
        entries = [ev for bucket in self._buckets
                   for ev in bucket if ev[2] is not None]
        entries.sort(key=lambda ev: (ev[0], ev[1]))
        for bucket in self._buckets:
            bucket.clear()
        self._count = 0
        return [(ev[0], ev[2], ev[3]) for ev in entries]


def make_simulator(kind: Optional[str] = None) -> "Simulator | CalendarSimulator":
    """Build a simulator of the requested ``kind``.

    ``None`` defers to the ``PGMCC_SIM_SCHEDULER`` environment
    variable, falling back to the reference heap.  Accepted kinds:
    ``"heap"`` and ``"calendar"``.
    """
    if kind is None:
        kind = os.environ.get(SCHEDULER_ENV) or "heap"
    if kind == "heap":
        return Simulator()
    if kind == "calendar":
        return CalendarSimulator()
    raise ValueError(f"unknown scheduler kind {kind!r} "
                     "(expected 'heap' or 'calendar')")


class Timer:
    """A restartable one-shot timer bound to a simulator.

    Protocols use this for retransmission timeouts, NAK backoffs and
    stall detection.  ``restart`` supersedes any pending expiry.
    Works identically on either scheduler.
    """

    def __init__(self, sim: "Simulator | CalendarSimulator",
                 callback: Callable[[], None]):
        self._sim = sim
        self._callback = callback
        self._event: Optional[list] = None

    @property
    def armed(self) -> bool:
        ev = self._event
        return ev is not None and ev[2] is not None

    @property
    def expiry(self) -> Optional[float]:
        """Absolute time at which the timer will fire, or ``None``."""
        ev = self._event
        return ev[0] if ev is not None and ev[2] is not None else None

    def start(self, delay: float) -> None:
        """Arm the timer.  Raises if already armed."""
        if self.armed:
            raise RuntimeError("timer already armed; use restart()")
        self._event = self._sim.schedule(delay, self._fire)

    def restart(self, delay: float) -> None:
        """Arm the timer, cancelling any pending expiry first."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        ev = self._event
        if ev is not None:
            ev[2] = None
            ev[3] = ()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
