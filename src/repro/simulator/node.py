"""Hosts and routers.

A :class:`Node` owns outgoing :class:`~repro.simulator.link.Link`
objects keyed by neighbour name.  :class:`Host` nodes terminate
traffic and run protocol agents; :class:`Router` nodes forward using
the unicast/multicast tables installed by
:class:`~repro.simulator.topology.Network`.

PGM network elements hook into routers through the
:class:`PacketInterceptor` interface, so the plain forwarding plane
stays protocol-agnostic (the paper's incremental-deployment property:
everything must also work through routers with no PGM support).
"""

from __future__ import annotations

from typing import Optional, Protocol

from .engine import Simulator
from .link import Link
from .packet import Address, Packet, is_multicast


class PacketInterceptor(Protocol):
    """Router-resident protocol logic (e.g. a PGM network element).

    ``intercept`` returns True when it consumed the packet (possibly
    re-emitting others); False lets the router forward it normally.
    """

    def intercept(self, packet: Packet, from_node: str) -> bool:  # pragma: no cover
        ...


class Agent(Protocol):
    """A protocol endpoint living on a host."""

    def handle_packet(self, packet: Packet) -> None:  # pragma: no cover
        ...


class Node:
    """Base class holding links and forwarding state."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        #: outgoing links keyed by neighbour node name
        self.links: dict[str, Link] = {}
        #: unicast forwarding: destination host -> next-hop neighbour
        self.unicast_routes: dict[Address, str] = {}
        #: multicast forwarding: group -> set of downstream neighbours
        self.multicast_routes: dict[Address, tuple[str, ...]] = {}
        self.packets_forwarded = 0
        self.packets_dropped_no_route = 0
        #: loop-guard ceiling on ``packet.hops``; rescaled to the
        #: network size when routes are built (see Router.receive)
        self.hop_limit = Packet.MAX_HOPS
        # Fault-injection state: ``faulted`` is the single hot-path
        # flag derived from alive/paused (see pause/resume/crash).
        self.alive = True
        self.paused = False
        self.faulted = False
        self.fault_drops = 0

    # -- fault hooks -----------------------------------------------------

    def pause(self) -> None:
        """Freeze the node's data plane: incoming and originated
        packets are dropped until :meth:`resume`.  Protocol timers keep
        firing (a frozen process does not stop the simulator clock) but
        their transmissions are swallowed."""
        self.paused = True
        self.faulted = True

    def resume(self) -> None:
        """Undo :meth:`pause` (a crashed node stays down)."""
        self.paused = False
        self.faulted = not self.alive

    def crash(self) -> None:
        """Permanently kill the node.  The data plane is gated exactly
        like :meth:`pause`; subclasses additionally tear down any
        protocol agents so their timers go quiet."""
        self.alive = False
        self.faulted = True

    def attach_link(self, neighbor: str, link: Link) -> None:
        """Register the outgoing link towards ``neighbor``."""
        if neighbor in self.links:
            raise ValueError(f"{self.name}: duplicate link to {neighbor}")
        self.links[neighbor] = link

    def receive(self, packet: Packet, from_node: str) -> None:
        raise NotImplementedError

    # -- transmission helpers -------------------------------------------

    def send_via(self, neighbor: str, packet: Packet) -> bool:
        """Transmit on the link to ``neighbor``; False if dropped/missing.

        Consumes one packet reference (the link takes it over; a
        missing link counts as a drop).
        """
        link = self.links.get(neighbor)
        if link is None:
            self.packets_dropped_no_route += 1
            packet.release()
            return False
        return link.send(packet)

    def unicast_next_hop(self, dst: Address) -> Optional[str]:
        return self.unicast_routes.get(dst)

    def forward_unicast(self, packet: Packet) -> bool:
        """Send towards ``packet.dst`` using the unicast table.

        Consumes one packet reference on every path.
        """
        nh = self.unicast_routes.get(packet.dst)
        if nh is None:
            self.packets_dropped_no_route += 1
            packet.release()
            return False
        return self.send_via(nh, packet)

    def forward_multicast(self, packet: Packet, from_node: Optional[str]) -> int:
        """Replicate ``packet`` to every downstream branch of its group.

        Returns the number of copies transmitted.  The arrival branch is
        excluded (split-horizon) so the tree stays loop-free.  Each
        branch shares the one packet instance under its own reference;
        the caller's reference is consumed here.
        """
        branches = self.multicast_routes.get(packet.dst, ())
        copies = 0
        for neighbor in branches:
            if neighbor == from_node:
                continue
            packet.retain()
            if self.send_via(neighbor, packet):
                copies += 1
        packet.release()
        return copies


class Host(Node):
    """An end host: terminates unicast traffic, joins multicast groups,
    and dispatches packets to protocol agents by ``packet.proto``."""

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self.groups: set[Address] = set()
        self._agents: dict[str, Agent] = {}
        self.packets_received = 0

    def join_group(self, group: Address) -> None:
        if not is_multicast(group):
            raise ValueError(f"{group} is not a multicast address")
        self.groups.add(group)

    def leave_group(self, group: Address) -> None:
        self.groups.discard(group)

    def register_agent(self, proto: str, agent: Agent) -> None:
        if proto in self._agents:
            raise ValueError(f"{self.name}: agent for {proto!r} already registered")
        self._agents[proto] = agent

    def unregister_agent(self, proto: str) -> None:
        self._agents.pop(proto, None)

    # -- data path -------------------------------------------------------

    def receive(self, packet: Packet, from_node: str) -> None:
        if self.faulted:
            self.fault_drops += 1
            packet.release()
            return
        dst = packet.dst
        # groups only ever holds multicast addresses, so the plain
        # membership test covers the is_multicast check too.
        if dst != self.name and dst not in self.groups:
            # Hosts are not transit nodes; stray packets are dropped.
            self.packets_dropped_no_route += 1
            packet.release()
            return
        self.packets_received += 1
        agent = self._agents.get(packet.proto)
        if agent is not None:
            # Agents borrow: payloads may outlive the packet, the
            # packet object itself must not.
            agent.handle_packet(packet)
        packet.release()

    def send(self, packet: Packet) -> bool:
        """Originate a packet: stamp creation time and route it out.

        Consumes the creator's reference on every path.
        """
        if self.faulted:
            self.fault_drops += 1
            packet.release()
            return False
        packet.created_at = self.sim.now
        if is_multicast(packet.dst):
            return self.forward_multicast(packet, from_node=None) > 0
        return self.forward_unicast(packet)

    def crash(self) -> None:
        """Kill the host: gate the data plane and tear down agents so
        their timers (NAK backoffs, heartbeats) go quiet."""
        super().crash()
        for agent in list(self._agents.values()):
            close = getattr(agent, "close", None)
            if close is not None:
                close()
        self._agents.clear()


class Router(Node):
    """A transit node.  Optionally hosts a protocol interceptor
    (our PGM network element) that sees packets before forwarding."""

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self.interceptor: Optional[PacketInterceptor] = None

    def set_interceptor(self, interceptor: PacketInterceptor) -> None:
        self.interceptor = interceptor

    def receive(self, packet: Packet, from_node: str) -> None:
        if self.faulted:
            self.fault_drops += 1
            packet.release()
            return
        packet.hops += 1
        if packet.hops > self.hop_limit:
            # Forwarding loop safety net; topologies are trees in all
            # experiments so this should never trigger.  Multicast
            # fan-out shares one pooled instance across branches, so
            # ``hops`` counts total router visits, not path depth —
            # the limit is scaled to the network size in build_routes
            # (a real loop revisits routers forever and still trips it).
            self.packets_dropped_no_route += 1
            packet.release()
            return
        interceptor = self.interceptor
        if interceptor is not None and interceptor.intercept(packet, from_node):
            # Interceptors borrow; one that re-forwards the same
            # packet object retains it first.
            packet.release()
            return
        self.packets_forwarded += 1
        if is_multicast(packet.dst):
            self.forward_multicast(packet, from_node)
        else:
            self.forward_unicast(packet)


class EcmpRouter(Router):
    """A router that sprays packets round-robin over parallel paths.

    Used to rebuild the paper's multipath robustness experiments (§4:
    "topologies presenting multiple paths between sender and receiver
    ... to verify the robustness of the scheme to out-of-order data or
    ACK delivery").  Per-packet round robin over unequal-delay paths is
    the worst case for reordering, which is exactly what those tests
    need.
    """

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        #: destination (or multicast group) -> parallel next hops
        self.ecmp_groups: dict[Address, list[str]] = {}
        self._rr: dict[Address, int] = {}

    def set_ecmp(self, dst: Address, next_hops: list[str]) -> None:
        if len(next_hops) < 2:
            raise ValueError("ECMP needs at least two next hops")
        self.ecmp_groups[dst] = list(next_hops)
        self._rr[dst] = 0

    def _spray(self, packet: Packet) -> bool:
        hops = self.ecmp_groups[packet.dst]
        index = self._rr[packet.dst]
        self._rr[packet.dst] = (index + 1) % len(hops)
        return self.send_via(hops[index], packet)

    def forward_unicast(self, packet: Packet) -> bool:
        if packet.dst in self.ecmp_groups:
            return self._spray(packet)
        return super().forward_unicast(packet)

    def forward_multicast(self, packet: Packet, from_node: Optional[str]) -> int:
        if packet.dst in self.ecmp_groups:
            return 1 if self._spray(packet) else 0
        return super().forward_multicast(packet, from_node)
