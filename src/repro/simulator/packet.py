"""Simulated network packets.

Packets carry a protocol *payload object* (a PGM or TCP message) plus
the addressing metadata the simulator needs to route and account for
them.  The ``size`` field — total bytes on the wire — is what links use
for serialisation delay and byte-limited queues, so protocol code must
set it to header + payload length.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Addresses are plain strings ("s0", "r3", multicast groups "mc:...").
Address = str

#: Multicast group addresses use this prefix.
MULTICAST_PREFIX = "mc:"

_packet_ids = itertools.count(1)


def is_multicast(addr: Address) -> bool:
    """True if ``addr`` names a multicast group rather than a host."""
    return addr.startswith(MULTICAST_PREFIX)


@dataclass
class Packet:
    """A packet in flight.

    Attributes:
        src: originating host address.
        dst: destination host or multicast group address.
        size: total wire size in bytes (headers included).
        payload: the protocol message object.
        proto: short protocol tag ("pgm", "tcp", ...) used by routers
            and trace filters.
        created_at: simulation time the packet was created (set by the
            sender; used by trace analysis).
        hops: incremented by each router; a TTL-style safety net
            against forwarding loops.
    """

    src: Address
    dst: Address
    size: int
    payload: Any = None
    proto: str = "raw"
    created_at: float = 0.0
    hops: int = 0
    uid: int = field(default_factory=lambda: next(_packet_ids))

    MAX_HOPS = 64

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.uid} {self.proto} {self.src}->{self.dst} "
            f"{self.size}B {self.payload!r}>"
        )


@dataclass
class DeliveryRecord:
    """Bookkeeping record emitted by links for tracing and assertions."""

    time: float
    packet: Packet
    event: str  # "enqueue", "drop-queue", "drop-loss", "deliver"
    link: Optional[str] = None
