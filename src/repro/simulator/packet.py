"""Simulated network packets and the packet pool.

Packets carry a protocol *payload object* (a PGM or TCP message) plus
the addressing metadata the simulator needs to route and account for
them.  The ``size`` field — total bytes on the wire — is what links use
for serialisation delay and byte-limited queues, so protocol code must
set it to header + payload length.

Pooling and the ownership contract
----------------------------------

``Packet`` is a slotted, reference-counted class recycled through a
process-global free list (:data:`POOL`), so the per-packet allocation
churn of the old dataclass is gone from the hot path.  ``Packet(...)``
call sites are unchanged: ``__new__`` transparently reuses a released
instance when pooling is enabled (``PGMCC_PACKET_POOL``, default on)
and ``__init__`` re-stamps every field including a fresh ``uid``, so
pooled and unpooled runs are behaviour-identical.

Ownership rules (enforced by the simulator layer, invisible to
protocol agents — see DESIGN.md "Packet pool"):

* creating a packet gives the creator one reference;
* ``Host.send`` and ``Link.send`` *consume* one reference on every
  path (drop or transmit);
* multicast fan-out retains one reference per branch, so replicated
  branches legally share the one instance;
* ``receive`` consumes the reference on final delivery or drop;
* router interceptors *borrow* — an interceptor that re-forwards the
  same packet object must ``retain()`` it first;
* link observers and traces borrow and must not hold packets past the
  callback.

``release()`` on an already-released packet is counted
(``POOL.double_release``) instead of corrupting the free list — the
canary for the fault-episode/queue double-release class of bug — and
``Packet.__repr__`` guards the released state so debug output and
event dumps never render stale pooled fields.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Any, Optional

#: Addresses are plain strings ("s0", "r3", multicast groups "mc:...").
Address = str

#: Multicast group addresses use this prefix.
MULTICAST_PREFIX = "mc:"

#: Environment variable gating packet pooling ("0"/"off"/"false" disable).
POOL_ENV = "PGMCC_PACKET_POOL"

_packet_ids = itertools.count(1)


def is_multicast(addr: Address) -> bool:
    """True if ``addr`` names a multicast group rather than a host."""
    return addr.startswith(MULTICAST_PREFIX)


class PacketPool:
    """Free list + accounting for recycled :class:`Packet` instances.

    The counters make leaks observable: ``outstanding`` is the number
    of live (not-yet-released) packets, which returns to zero once a
    drained scenario has released everything, and ``double_release``
    counts releases of already-dead packets (always zero in correct
    code; surfaced via ``repro.telemetry`` as ``pool.double_release``).
    """

    __slots__ = ("enabled", "free", "allocated", "reused", "released",
                 "double_release")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.free: list["Packet"] = []
        #: fresh instances constructed
        self.allocated = 0
        #: constructions served from the free list
        self.reused = 0
        #: packets whose refcount reached zero
        self.released = 0
        #: releases of an already-released packet (bug canary)
        self.double_release = 0

    @property
    def outstanding(self) -> int:
        """Live packets: created (fresh + reused) minus released."""
        return self.allocated + self.reused - self.released

    def stats(self) -> dict:
        """Counter snapshot for telemetry and leak assertions."""
        return {
            "enabled": self.enabled,
            "allocated": self.allocated,
            "reused": self.reused,
            "released": self.released,
            "double_release": self.double_release,
            "outstanding": self.outstanding,
            "free": len(self.free),
        }

    def reset(self) -> None:
        """Zero the counters and drop the free list (test isolation)."""
        self.free.clear()
        self.allocated = 0
        self.reused = 0
        self.released = 0
        self.double_release = 0


def _env_pooling() -> bool:
    return os.environ.get(POOL_ENV, "1").lower() not in ("0", "off", "false")


#: The process-global pool.  All ``Packet`` construction and release
#: goes through it; disable with ``set_packet_pooling(False)`` or
#: ``PGMCC_PACKET_POOL=0`` (refcount accounting stays on either way).
POOL = PacketPool(enabled=_env_pooling())


def set_packet_pooling(enabled: bool) -> None:
    """Turn free-list reuse on or off process-wide.

    Disabling also drops the current free list so no stale instance is
    ever handed out later.  Reference counting and the leak counters
    are always active — only the recycling is optional.
    """
    POOL.enabled = bool(enabled)
    if not POOL.enabled:
        POOL.free.clear()


class Packet:
    """A packet in flight.

    Attributes:
        src: originating host address.
        dst: destination host or multicast group address.
        size: total wire size in bytes (headers included).
        payload: the protocol message object.
        proto: short protocol tag ("pgm", "tcp", ...) used by routers
            and trace filters.
        created_at: simulation time the packet was created (set by the
            sender; used by trace analysis).
        hops: incremented by each router; a TTL-style safety net
            against forwarding loops.
        uid: unique id, fresh per construction (pooled reuse included).
    """

    __slots__ = ("src", "dst", "size", "payload", "proto", "created_at",
                 "hops", "uid", "_refs")

    MAX_HOPS = 64

    def __new__(cls, *args: Any, **kwargs: Any) -> "Packet":
        pool = POOL
        if pool.enabled and pool.free and cls is Packet:
            pool.reused += 1
            return pool.free.pop()
        pool.allocated += 1
        return object.__new__(cls)

    def __init__(
        self,
        src: Address,
        dst: Address,
        size: int,
        payload: Any = None,
        proto: str = "raw",
        created_at: float = 0.0,
        hops: int = 0,
        uid: Optional[int] = None,
    ):
        self.src = src
        self.dst = dst
        self.size = size
        self.payload = payload
        self.proto = proto
        self.created_at = created_at
        self.hops = hops
        self.uid = next(_packet_ids) if uid is None else uid
        self._refs = 1

    # -- lifecycle -------------------------------------------------------

    @property
    def live(self) -> bool:
        """False once every reference has been released."""
        return self._refs > 0

    def retain(self) -> "Packet":
        """Add a reference (one per extra owner, e.g. multicast branch)."""
        self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; the last release recycles the packet.

        Releasing an already-dead packet is counted in
        ``POOL.double_release`` and otherwise ignored, so a
        double-release bug can never hand the same instance out twice.
        """
        refs = self._refs
        if refs <= 0:
            POOL.double_release += 1
            return
        refs -= 1
        self._refs = refs
        if refs == 0:
            pool = POOL
            pool.released += 1
            self.payload = None  # drop the payload reference eagerly
            if pool.enabled and type(self) is Packet:
                pool.free.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._refs <= 0:
            # Guard: a released (possibly recycled-soon) packet must
            # not render stale routing/payload fields.
            return f"<Packet #{self.uid} released>"
        return (
            f"<Packet #{self.uid} {self.proto} {self.src}->{self.dst} "
            f"{self.size}B {self.payload!r}>"
        )


@dataclass
class DeliveryRecord:
    """Bookkeeping record emitted by links for tracing and assertions."""

    time: float
    packet: Packet
    event: str  # "enqueue", "drop-queue", "drop-loss", "deliver"
    link: Optional[str] = None
