"""Point-to-point links: the dummynet pipe equivalent.

A :class:`Link` is unidirectional and models exactly what the paper's
emulated bottlenecks did: a fixed capacity (serialisation delay
``size * 8 / rate``), a fixed one-way propagation delay, a FIFO queue
(slot- or byte-limited) and an optional random-loss stage.

Random loss is applied on ingress, before queueing, as dummynet's
``plr`` does — a randomly lost packet consumes no link bandwidth.
Queue drops happen when the packet arrives while the transmitter is
busy and the queue will not accept it.

Links also carry the hook points the fault-injection subsystem
(:mod:`repro.simulator.faults`) drives: an administrative up/down flag,
transient duplication/corruption stages and dedicated fault counters.
All of them sit behind single attribute checks so the no-fault hot
path is unaffected.  Fault semantics:

* a *down* link rejects new packets on ingress (``fault_drops``);
  packets already queued or in flight still complete — the outage
  models a path failure at the ingress interface, not a cable cut;
* *corruption* in ``drop`` mode drops the packet at ingress with its
  own counter (``corrupt_drops``), modelling a checksum failure at the
  receiving interface; in ``mangle`` mode the packet is delivered with
  its encoded bytes bit-flipped instead (``corrupt_mangled``) so the
  receiving protocol's ``decode()`` path has to cope — payloads with
  no byte codec fall back to drop;
* *duplication* injects a second copy of the packet into the
  transmitter (``fault_duplicates``), so the conservation identity
  becomes ``sent + fault_duplicates == delivered + all drops +
  queued + in_transit``;
* a *control filter* drops packets whose payload class name matches a
  configured set (``filter_drops``) while everything else flows — the
  asymmetric control-plane blackhole :class:`~repro.simulator.faults.
  ControlBlackhole` drives, matched by duck type so the simulator stays
  protocol-agnostic (raw-byte payloads never match).
"""

from __future__ import annotations

from typing import Callable, Optional

from .engine import Simulator
from .loss_models import LossModel, NoLoss
from .packet import Packet
from .queues import DropTailQueue

#: Signature of a link delivery target: ``fn(packet)``.
DeliverFn = Callable[[Packet], None]
#: Signature of link observers: ``fn(time, event, packet)``.
ObserverFn = Callable[[float, str, Packet], None]


class Link:
    """A unidirectional rate/delay/queue/loss pipe.

    Args:
        sim: the event engine.
        name: label used in traces ("L1", "r0->s0", ...).
        rate_bps: capacity in bits per second.
        delay: one-way propagation delay in seconds.
        queue: output queue; defaults to a 30-slot drop-tail FIFO
            (the paper's most common configuration).
        loss: random-loss model applied on ingress.
        deliver: callback invoked with each packet that survives, one
            propagation delay after its serialisation completes.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        delay: float,
        deliver: Optional[DeliverFn] = None,
        queue: Optional[DropTailQueue] = None,
        loss: Optional[LossModel] = None,
    ):
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if delay < 0:
            raise ValueError("delay cannot be negative")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.delay = delay
        self.queue = queue if queue is not None else DropTailQueue(max_slots=30)
        self.loss = loss if loss is not None else NoLoss()
        self.deliver = deliver
        self._busy = False
        self._observers: list[ObserverFn] = []
        # Counters for analysis and assertions.
        self.sent = 0
        self.delivered = 0
        self.random_drops = 0
        self.bytes_delivered = 0
        # Fault-injection state (see module docstring).
        self.up = True
        self.fault_drops = 0
        self.corrupt_drops = 0
        self.corrupt_mangled = 0
        self.fault_duplicates = 0
        self.filter_drops = 0
        self.in_transit = 0
        self._dup_rate = 0.0
        self._corrupt_rate = 0.0
        self._corrupt_mode = "drop"
        self._fault_rng = None
        self._filter_kinds: Optional[frozenset[str]] = None

    # -- wiring ----------------------------------------------------------

    def connect(self, deliver: DeliverFn) -> None:
        """Set (or replace) the delivery target."""
        self.deliver = deliver

    def add_observer(self, fn: ObserverFn) -> None:
        """Observe link events: "send", "drop-loss", "drop-queue", "deliver"."""
        self._observers.append(fn)

    def _notify(self, event: str, packet: Packet) -> None:
        # Observers borrow the packet: they must not release it or
        # hold it past the callback (pooled packets get recycled).
        for fn in self._observers:
            fn(self.sim.now, event, packet)

    # -- data path ---------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Offer a packet to the link.  Returns False if it was dropped.

        Consumes one packet reference on every path: dropped packets
        are released here, accepted ones carry the reference through
        queue and transmission to the delivery target.
        """
        self.sent += 1
        if self._observers:
            self._notify("send", packet)
        if not self.up:
            self.fault_drops += 1
            if self._observers:
                self._notify("drop-fault", packet)
            packet.release()
            return False
        if (self._filter_kinds is not None
                and type(packet.payload).__name__ in self._filter_kinds):
            self.filter_drops += 1
            if self._observers:
                self._notify("drop-filter", packet)
            packet.release()
            return False
        if self.loss.should_drop(packet):
            self.random_drops += 1
            if self._observers:
                self._notify("drop-loss", packet)
            packet.release()
            return False
        if self._fault_rng is not None:
            if self._corrupt_rate > 0.0 and self._fault_rng.random() < self._corrupt_rate:
                mangled = None
                if self._corrupt_mode == "mangle":
                    mangled = self._mangle(packet)
                if mangled is None:
                    self.corrupt_drops += 1
                    self._notify("drop-corrupt", packet)
                    packet.release()
                    return False
                self.corrupt_mangled += 1
                self._notify("mangle", packet)
                packet.release()
                packet = mangled
            if self._dup_rate > 0.0 and self._fault_rng.random() < self._dup_rate:
                self.fault_duplicates += 1
                self._notify("duplicate", packet)
                self._accept(packet.retain())
        return self._accept(packet)

    def _accept(self, packet: Packet) -> bool:
        if self._busy:
            if not self.queue.offer(packet):
                if self._observers:
                    self._notify("drop-queue", packet)
                packet.release()
                return False
            return True
        self._start_transmission(packet)
        return True

    def _start_transmission(self, packet: Packet) -> None:
        self._busy = True
        self.in_transit += 1
        tx_time = packet.size * 8.0 / self.rate_bps
        self.sim.schedule(tx_time, self._transmission_done, packet)

    def _transmission_done(self, packet: Packet) -> None:
        self.sim.schedule(self.delay, self._deliver, packet)
        nxt = self.queue.pop()
        if nxt is not None:
            self._start_transmission(nxt)
        else:
            self._busy = False

    def _deliver(self, packet: Packet) -> None:
        self.in_transit -= 1
        self.delivered += 1
        self.bytes_delivered += packet.size
        if self._observers:
            self._notify("deliver", packet)
        deliver = self.deliver
        if deliver is not None:
            deliver(packet)  # the target consumes the reference
        else:
            packet.release()

    # -- fault hooks -------------------------------------------------------

    def set_down(self) -> None:
        """Administratively disable the link (ingress rejects packets)."""
        self.up = False

    def set_up(self) -> None:
        """Re-enable a downed link."""
        self.up = True

    def set_fault_stages(self, dup_rate: float, corrupt_rate: float, rng,
                         corrupt_mode: str = "drop") -> None:
        """Configure the duplication/corruption stages (0.0 disables)."""
        self._dup_rate = dup_rate
        self._corrupt_rate = corrupt_rate
        self._corrupt_mode = corrupt_mode
        self._fault_rng = rng if (dup_rate > 0.0 or corrupt_rate > 0.0) else None

    def set_control_filter(self, kinds) -> None:
        """Drop packets whose payload class name is in ``kinds``
        (empty/None disables).  Drives :class:`ControlBlackhole`."""
        self._filter_kinds = frozenset(kinds) if kinds else None

    def _mangle(self, packet: Packet):
        """Encode ``packet``'s payload and flip a few bytes; returns a
        fresh packet carrying the raw bytes (the original object is
        left untouched — multicast forwarding shares packet instances
        across branches) or ``None`` when the payload has no codec."""
        pack = getattr(packet.payload, "pack", None)
        if pack is None:
            return None
        try:
            raw = bytearray(pack())
        except Exception:
            return None
        if not raw:
            return None
        for _ in range(self._fault_rng.randint(1, 3)):
            pos = self._fault_rng.randrange(len(raw))
            raw[pos] ^= 1 << self._fault_rng.randrange(8)
        return Packet(packet.src, packet.dst, packet.size, bytes(raw),
                      packet.proto, created_at=packet.created_at,
                      hops=packet.hops)

    def conserves_packets(self) -> bool:
        """The runtime conservation identity (fault-aware, any instant)."""
        return self.sent + self.fault_duplicates == (
            self.delivered
            + self.random_drops
            + self.corrupt_drops
            + self.fault_drops
            + self.filter_drops
            + self.queue.drops
            + len(self.queue)
            + self.in_transit
        )

    # -- introspection -----------------------------------------------------

    def metrics(self) -> dict:
        """Link counters for telemetry pull-bindings (includes the
        queue's own counters under ``queue.*``-style keys)."""
        out = {
            "sent": self.sent,
            "delivered": self.delivered,
            "bytes_delivered": self.bytes_delivered,
            "random_drops": self.random_drops,
            "queue_drops": self.queue.drops,
            "fault_drops": self.fault_drops,
            "filter_drops": self.filter_drops,
            "corrupt_drops": self.corrupt_drops,
            "corrupt_mangled": self.corrupt_mangled,
            "fault_duplicates": self.fault_duplicates,
            "in_transit": self.in_transit,
        }
        for key, value in self.queue.metrics().items():
            out[f"queue_{key}"] = value
        return out

    @property
    def queue_drops(self) -> int:
        return self.queue.drops

    @property
    def utilization_bps(self) -> float:
        """Average delivered goodput since t=0 (bits per second)."""
        if self.sim.now <= 0:
            return 0.0
        return self.bytes_delivered * 8.0 / self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Link {self.name} {self.rate_bps / 1000:.0f}kbit/s "
            f"{self.delay * 1000:.0f}ms q={len(self.queue)}>"
        )
