"""Link output queues.

The paper's bottlenecks are FIFO queues limited either in *slots*
(e.g. "30 queue slots") or in *bytes* (e.g. "30 KBytes queue"); both
appear in §4, so both limits are supported.  A drop-tail discipline is
what dummynet and the ns-2 scripts of the era used; a RED variant is
included for ablations on queue management.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Optional

from .packet import Packet


class DropTailQueue:
    """FIFO queue with a slot limit, a byte limit, or both.

    ``None`` for a limit means unconstrained in that dimension.  At
    least one limit must be given (an infinite queue hides congestion
    entirely and is almost always a configuration error).
    """

    def __init__(self, max_slots: Optional[int] = None, max_bytes: Optional[int] = None):
        if max_slots is None and max_bytes is None:
            raise ValueError("queue needs a slot limit, a byte limit, or both")
        if max_slots is not None and max_slots < 1:
            raise ValueError("max_slots must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_slots = max_slots
        self.max_bytes = max_bytes
        self._queue: deque[Packet] = deque()
        self.bytes_queued = 0
        self.drops = 0
        self.enqueues = 0
        self.peak_bytes = 0
        self.peak_slots = 0

    def __len__(self) -> int:
        return len(self._queue)

    def would_accept(self, packet: Packet) -> bool:
        """True if ``packet`` fits under both limits right now."""
        if self.max_slots is not None and len(self._queue) >= self.max_slots:
            return False
        if self.max_bytes is not None and self.bytes_queued + packet.size > self.max_bytes:
            return False
        return True

    def offer(self, packet: Packet) -> bool:
        """Enqueue ``packet`` if it fits; return whether it was accepted.

        A queued packet's reference lives in the queue until
        :meth:`pop` hands it back (or :meth:`clear` releases it);
        rejected packets stay owned by the caller.
        """
        # Inlined limit checks + single-pass byte/peak accounting: this
        # runs once per packet on every congested link.
        queue = self._queue
        slots = len(queue)
        if self.max_slots is not None and slots >= self.max_slots:
            self.drops += 1
            return False
        nbytes = self.bytes_queued + packet.size
        if self.max_bytes is not None and nbytes > self.max_bytes:
            self.drops += 1
            return False
        queue.append(packet)
        self.bytes_queued = nbytes
        self.enqueues += 1
        if nbytes > self.peak_bytes:
            self.peak_bytes = nbytes
        slots += 1
        if slots > self.peak_slots:
            self.peak_slots = slots
        return True

    def pop(self) -> Optional[Packet]:
        """Dequeue the head packet, or ``None`` if empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self.bytes_queued -= packet.size
        return packet

    def clear(self) -> None:
        """Drop everything queued, releasing each packet's reference
        exactly once (teardown/fault path).  Packets a fault already
        released are caught by the pool's double-release counter, not
        recycled twice."""
        queue = self._queue
        while queue:
            packet = queue.popleft()
            release = getattr(packet, "release", None)
            if release is not None:
                release()
        self.bytes_queued = 0

    def metrics(self) -> dict:
        """Queue counters for telemetry pull-bindings."""
        return {
            "depth": len(self._queue),
            "bytes_queued": self.bytes_queued,
            "enqueues": self.enqueues,
            "drops": self.drops,
            "peak_slots": self.peak_slots,
            "peak_bytes": self.peak_bytes,
        }


class RedQueue(DropTailQueue):
    """Random Early Detection on top of the FIFO structure.

    Drops probabilistically once the EWMA of the queue occupancy (in
    slots) exceeds ``min_th``, with probability ramping to ``max_p`` at
    ``max_th``; above ``max_th`` everything is dropped.  Only used by
    ablation benches — the paper's experiments are all drop-tail.
    """

    def __init__(
        self,
        rng: random.Random,
        max_slots: int,
        min_th: float,
        max_th: float,
        max_p: float = 0.1,
        weight: float = 0.002,
    ):
        super().__init__(max_slots=max_slots)
        if not 0 < min_th < max_th <= max_slots:
            raise ValueError("need 0 < min_th < max_th <= max_slots")
        self._rng = rng
        self.min_th = min_th
        self.max_th = max_th
        self.max_p = max_p
        self.weight = weight
        self.avg = 0.0

    def offer(self, packet: Packet) -> bool:
        self.avg = (1 - self.weight) * self.avg + self.weight * len(self._queue)
        if self.avg >= self.max_th:
            self.drops += 1
            return False
        if self.avg > self.min_th:
            p = self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th)
            if self._rng.random() < p:
                self.drops += 1
                return False
        return super().offer(packet)
