"""Random-loss models for links.

The paper's "lossy" configurations use uniform random loss (e.g. 3 % or
5 %), emulating links with high statistical multiplexing.  We provide
that Bernoulli model plus a Gilbert-Elliott bursty model (used to study
NAK-storm behaviour, §3.8) and deterministic/trace models for tests.
"""

from __future__ import annotations

import random
from typing import Iterable, Protocol

from .packet import Packet


class LossModel(Protocol):
    """Decides, per packet, whether a link drops it."""

    def should_drop(self, packet: Packet) -> bool:  # pragma: no cover
        ...


class NoLoss:
    """Never drops.  The default for "non-lossy" links, where all drops
    come from queue overflow (congestion)."""

    def should_drop(self, packet: Packet) -> bool:
        return False


class BernoulliLoss:
    """Independent uniform random loss with probability ``rate``."""

    def __init__(self, rate: float, rng: random.Random):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._rng = rng

    def should_drop(self, packet: Packet) -> bool:
        return self._rng.random() < self.rate

    def __repr__(self) -> str:  # pragma: no cover
        return f"BernoulliLoss({self.rate})"


class GilbertElliottLoss:
    """Two-state Markov (bursty) loss model.

    In the *good* state packets drop with ``good_loss``; in the *bad*
    state with ``bad_loss``.  Transition probabilities are evaluated per
    packet.
    """

    def __init__(
        self,
        rng: random.Random,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.2,
        good_loss: float = 0.0,
        bad_loss: float = 0.5,
    ):
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("good_loss", good_loss),
            ("bad_loss", bad_loss),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self._rng = rng
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self.in_bad_state = False

    def should_drop(self, packet: Packet) -> bool:
        if self.in_bad_state:
            if self._rng.random() < self.p_bad_to_good:
                self.in_bad_state = False
        else:
            if self._rng.random() < self.p_good_to_bad:
                self.in_bad_state = True
        rate = self.bad_loss if self.in_bad_state else self.good_loss
        return self._rng.random() < rate

    @property
    def steady_state_loss(self) -> float:
        """Long-run average loss rate implied by the chain."""
        pi_bad = self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
        return pi_bad * self.bad_loss + (1 - pi_bad) * self.good_loss


class DeterministicLoss:
    """Drops exactly the packets whose (1-based) arrival index is listed.

    Used by unit tests to create precisely reproducible gap patterns.
    """

    def __init__(self, drop_indices: Iterable[int]):
        self._drops = set(drop_indices)
        self._count = 0

    def should_drop(self, packet: Packet) -> bool:
        self._count += 1
        return self._count in self._drops


class PeriodicLoss:
    """Drops every ``period``-th packet (arrival index multiple).

    A handy way to impose an exact average loss rate of ``1/period``.
    """

    def __init__(self, period: int, offset: int = 0):
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self.offset = offset
        self._count = 0

    def should_drop(self, packet: Packet) -> bool:
        self._count += 1
        return (self._count + self.offset) % self.period == 0
