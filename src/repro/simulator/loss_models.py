"""Random-loss models for links.

The paper's "lossy" configurations use uniform random loss (e.g. 3 % or
5 %), emulating links with high statistical multiplexing.  We provide
that Bernoulli model plus a Gilbert-Elliott bursty model (used to study
NAK-storm behaviour, §3.8) and deterministic/trace models for tests.

Batched draws
-------------

The stochastic models (:class:`BernoulliLoss`,
:class:`GilbertElliottLoss`) accept a ``batch`` size: uniform variates
are pre-drawn in blocks and consumed from a buffer, which takes the
per-packet RNG method dispatch off the link hot path.  Because the
draws come from the same ``random.Random`` stream in the same order,
batched and unbatched decisions are bit-identical **as long as the
stream is exclusive to the model** — exactly the contract
:mod:`repro.simulator.topology` establishes with its per-link
``loss:{link}`` streams.  Models sharing an RNG with other consumers
must keep ``batch=1`` (the default, which draws directly).

Setting ``PGMCC_LOSS_BACKEND=numpy`` switches the block refill to a
numpy ``Generator`` seeded from the model's stream.  That backend is
faster for large batches but draws a *different* uniform sequence, so
it is opt-in only and never digest-compatible with the default.
"""

from __future__ import annotations

import os
import random
from typing import Callable, Iterable, Protocol

from .packet import Packet

#: Environment variable selecting the batched-draw backend
#: ("python" default; "numpy" opt-in, not sequence-compatible).
LOSS_BACKEND_ENV = "PGMCC_LOSS_BACKEND"


def _make_refill(rng: random.Random, batch: int) -> Callable[[], list]:
    """Return a zero-arg callable producing ``batch`` uniforms in [0, 1).

    The default backend list-comprehends ``rng.random()`` so the values
    are exactly what unbatched calls would have drawn.  The numpy
    backend (env-gated) derives an independent ``Generator`` from the
    stream instead.
    """
    if os.environ.get(LOSS_BACKEND_ENV, "python").lower() == "numpy":
        try:
            import numpy as _np
        except ImportError:  # pragma: no cover - numpy is in the image
            _np = None
        if _np is not None:
            gen = _np.random.default_rng(rng.getrandbits(64))
            return lambda: gen.random(batch).tolist()
    draw = rng.random
    return lambda: [draw() for _ in range(batch)]


class LossModel(Protocol):
    """Decides, per packet, whether a link drops it."""

    def should_drop(self, packet: Packet) -> bool:  # pragma: no cover
        ...


class NoLoss:
    """Never drops.  The default for "non-lossy" links, where all drops
    come from queue overflow (congestion)."""

    def should_drop(self, packet: Packet) -> bool:
        return False


class BernoulliLoss:
    """Independent uniform random loss with probability ``rate``.

    ``batch > 1`` pre-draws uniforms in blocks (see module docstring
    for the stream-exclusivity requirement).
    """

    def __init__(self, rate: float, rng: random.Random, batch: int = 1):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.rate = rate
        self.batch = int(batch)
        self._rng = rng
        self._buf: list = []
        self._pos = 0
        self._refill = _make_refill(rng, self.batch)

    def should_drop(self, packet: Packet) -> bool:
        if self.batch == 1:
            return self._rng.random() < self.rate
        pos = self._pos
        buf = self._buf
        if pos >= len(buf):
            buf = self._buf = self._refill()
            pos = 0
        self._pos = pos + 1
        return buf[pos] < self.rate

    def __repr__(self) -> str:  # pragma: no cover
        return f"BernoulliLoss({self.rate})"


class GilbertElliottLoss:
    """Two-state Markov (bursty) loss model.

    In the *good* state packets drop with ``good_loss``; in the *bad*
    state with ``bad_loss``.  Transition probabilities are evaluated per
    packet (two uniform draws each: transition, then loss).

    ``batch > 1`` pre-draws uniforms in blocks; same exclusivity
    requirement as :class:`BernoulliLoss`.
    """

    def __init__(
        self,
        rng: random.Random,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.2,
        good_loss: float = 0.0,
        bad_loss: float = 0.5,
        batch: int = 1,
    ):
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("good_loss", good_loss),
            ("bad_loss", bad_loss),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if batch < 2 and batch != 1:
            raise ValueError("batch must be >= 1")
        self._rng = rng
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self.in_bad_state = False
        self.batch = int(batch)
        self._buf: list = []
        self._pos = 0
        self._refill = _make_refill(rng, max(self.batch, 2))

    def _draw2(self) -> tuple:
        """Two uniforms from the buffer (refilled so both always fit)."""
        pos = self._pos
        buf = self._buf
        if pos + 2 > len(buf):
            # Carry any leftover draw so no variate is skipped — the
            # consumed order must match the unbatched stream exactly.
            buf = self._buf = buf[pos:] + self._refill()
            pos = 0
        self._pos = pos + 2
        return buf[pos], buf[pos + 1]

    def should_drop(self, packet: Packet) -> bool:
        if self.batch == 1:
            transition, loss = self._rng.random(), None
        else:
            transition, loss = self._draw2()
        if self.in_bad_state:
            if transition < self.p_bad_to_good:
                self.in_bad_state = False
        else:
            if transition < self.p_good_to_bad:
                self.in_bad_state = True
        rate = self.bad_loss if self.in_bad_state else self.good_loss
        if loss is None:
            loss = self._rng.random()
        return loss < rate

    @property
    def steady_state_loss(self) -> float:
        """Long-run average loss rate implied by the chain."""
        pi_bad = self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
        return pi_bad * self.bad_loss + (1 - pi_bad) * self.good_loss


class DeterministicLoss:
    """Drops exactly the packets whose (1-based) arrival index is listed.

    Used by unit tests to create precisely reproducible gap patterns.
    """

    def __init__(self, drop_indices: Iterable[int]):
        self._drops = set(drop_indices)
        self._count = 0

    def should_drop(self, packet: Packet) -> bool:
        self._count += 1
        return self._count in self._drops


class PeriodicLoss:
    """Drops every ``period``-th packet (arrival index multiple).

    A handy way to impose an exact average loss rate of ``1/period``.
    """

    def __init__(self, period: int, offset: int = 0):
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self.offset = offset
        self._count = 0

    def should_drop(self, packet: Packet) -> bool:
        self._count += 1
        return (self._count + self.offset) % self.period == 0
