"""Topology construction.

:class:`Network` is the top-level container an experiment builds: it
owns the simulator, the nodes, the links, and the derived routing
state.  :class:`LinkSpec` captures the paper's per-link knobs (rate,
propagation delay, queue size in slots or bytes, random loss), i.e.
exactly a dummynet pipe configuration.

Canned builders cover the §4 topologies: a dumbbell (Figs. 3, 4, 6), a
two-bottleneck tree (Fig. 5) and a star of independent links (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .engine import Simulator, make_simulator
from .link import Link
from .loss_models import BernoulliLoss, LossModel, NoLoss
from .node import Host, Node, Router
from .packet import Address, Packet
from .queues import DropTailQueue
from .rng import RngRegistry
from . import routing


@dataclass(frozen=True)
class LinkSpec:
    """A dummynet-style pipe configuration.

    Exactly one of ``queue_slots`` / ``queue_bytes`` is normally set;
    setting neither gives the paper's default of 30 slots.
    """

    rate_bps: float
    delay: float
    queue_slots: Optional[int] = None
    queue_bytes: Optional[int] = None
    loss_rate: float = 0.0

    def make_queue(self) -> DropTailQueue:
        if self.queue_slots is None and self.queue_bytes is None:
            return DropTailQueue(max_slots=30)
        return DropTailQueue(max_slots=self.queue_slots, max_bytes=self.queue_bytes)

    def make_loss(self, rng) -> LossModel:
        if self.loss_rate > 0.0:
            # Topology-owned streams are exclusive per link, so the
            # batched fast path is draw-for-draw identical to batch=1.
            return BernoulliLoss(self.loss_rate, rng, batch=256)
        return NoLoss()


#: The paper's two canonical bottleneck configurations (§4):
#: non-lossy: 500 kbit/s, 50 ms, 30 slots — drops only from congestion.
NON_LOSSY = LinkSpec(rate_bps=500_000, delay=0.050, queue_slots=30)
#: lossy: 2 Mbit/s, 230 ms, 30 KB queue, 3 % random loss.
LOSSY = LinkSpec(rate_bps=2_000_000, delay=0.230, queue_bytes=30_000, loss_rate=0.03)

#: Fast access links used for non-bottleneck edges.
ACCESS = LinkSpec(rate_bps=100_000_000, delay=0.0005, queue_slots=1000)


class Network:
    """A simulated network: nodes + links + routing.

    Call :meth:`build_routes` once the topology is wired; multicast
    trees are installed per (group, source) with :meth:`set_group`.
    """

    def __init__(self, sim: Optional[Simulator] = None, seed: int = 0,
                 scheduler: Optional[str] = None):
        if sim is not None and scheduler is not None:
            raise ValueError("pass either sim or scheduler, not both")
        self.sim = sim if sim is not None else make_simulator(scheduler)
        self.rng = RngRegistry(seed)
        self.nodes: dict[str, Node] = {}
        self.link_delays: dict[tuple[str, str], float] = {}
        #: injectors installed via :meth:`install_faults`
        self.fault_injectors: list = []
        self._graph = None
        # Per-network id counters so identically constructed networks
        # produce identical protocol ids (and thus identical derived
        # RNG streams) run after run.
        self._tsi_counter = 0
        self._flow_counter = 0

    def next_tsi(self) -> int:
        self._tsi_counter += 1
        return self._tsi_counter

    def next_flow_id(self) -> int:
        self._flow_counter += 1
        return self._flow_counter

    # -- construction ------------------------------------------------------

    def add_host(self, name: str) -> Host:
        return self._add(Host(self.sim, name))

    def add_router(self, name: str) -> Router:
        return self._add(Router(self.sim, name))

    def add_ecmp_router(self, name: str):
        from .node import EcmpRouter

        return self._add(EcmpRouter(self.sim, name))

    def _add(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self._graph = None
        return node

    def host(self, name: str) -> Host:
        node = self.nodes[name]
        if not isinstance(node, Host):
            raise TypeError(f"{name} is not a Host")
        return node

    def router(self, name: str) -> Router:
        node = self.nodes[name]
        if not isinstance(node, Router):
            raise TypeError(f"{name} is not a Router")
        return node

    def simplex_link(self, a: str, b: str, spec: LinkSpec) -> Link:
        """Create the unidirectional a->b link."""
        src, dst = self.nodes[a], self.nodes[b]
        name = f"{a}->{b}"
        link = Link(
            self.sim,
            name,
            rate_bps=spec.rate_bps,
            delay=spec.delay,
            queue=spec.make_queue(),
            loss=spec.make_loss(self.rng.stream(f"loss:{name}")),
        )
        link.connect(lambda packet, _dst=dst, _from=a: _dst.receive(packet, _from))
        src.attach_link(b, link)
        self.link_delays[(a, b)] = spec.delay
        self._graph = None
        return link

    def duplex_link(
        self, a: str, b: str, spec: LinkSpec, reverse_spec: Optional[LinkSpec] = None
    ) -> tuple[Link, Link]:
        """Create links both ways; ``reverse_spec`` defaults to ``spec``."""
        forward = self.simplex_link(a, b, spec)
        backward = self.simplex_link(b, a, reverse_spec if reverse_spec else spec)
        return forward, backward

    def link(self, a: str, b: str) -> Link:
        return self.nodes[a].links[b]

    # -- routing -----------------------------------------------------------

    def graph(self):
        if self._graph is None:
            self._graph = routing.build_graph(self.nodes, self.link_delays)
        return self._graph

    def build_routes(self) -> None:
        """(Re)compute unicast next hops everywhere."""
        routing.install_unicast_routes(self.graph(), self.nodes)
        # Multicast fan-out shares one pooled packet instance across
        # branches, so a packet's hop counter accumulates one visit
        # per router on the whole tree, not per path.  In a tree each
        # router is visited at most once, so 2x the node count leaves
        # headroom while a genuine forwarding loop (unbounded visits)
        # still trips the guard.
        hop_limit = max(Packet.MAX_HOPS, 2 * len(self.nodes))
        for node in self.nodes.values():
            node.hop_limit = hop_limit

    def set_group(self, group: Address, source: str, members: list[str]) -> None:
        """Install the multicast tree for ``group`` rooted at ``source``
        and subscribe the member hosts."""
        routing.install_multicast_tree(self.graph(), self.nodes, group, source, members)
        for member in members:
            self.host(member).join_group(group)

    # -- fault injection ---------------------------------------------------

    def install_faults(self, plan, acker_lookup=None, validate: bool = True,
                       receiver_lookup=None):
        """Compile a :class:`~repro.simulator.faults.FaultPlan` onto
        this network's event heap; returns the
        :class:`~repro.simulator.faults.FaultInjector`.

        ``acker_lookup`` is a zero-argument callable resolving the
        :data:`~repro.simulator.faults.ACKER` sentinel at fire time;
        ``receiver_lookup`` maps a receiver/host name to the protocol
        agent driving receiver-misbehavior episodes
        (``repro.pgm.create_session`` wires both automatically).
        """
        from .faults import FaultInjector

        injector = FaultInjector(self, plan, acker_lookup=acker_lookup,
                                 validate=validate,
                                 receiver_lookup=receiver_lookup)
        self.fault_injectors.append(injector)
        return injector

    # -- execution -----------------------------------------------------------

    def use_scheduler(self, kind: str):
        """Swap the event scheduler, migrating any pending events.

        Pending (non-cancelled) events transfer with their absolute
        times, and the clock / processed counter carry over, so the
        swap is transparent to everything that reaches the engine
        through ``net.sim`` or a node — which is why it must run
        *before* protocol agents or fault injectors are attached: those
        capture a direct ``Simulator`` reference at construction and
        would keep scheduling onto the old engine.
        """
        old = self.sim
        if old.kind == kind:
            return old
        new = make_simulator(kind)
        new.now = old.now
        new.events_processed = old.events_processed
        for t, fn, args in old._drain_entries():
            new.schedule_at(t, fn, *args)
        self.sim = new
        for node in self.nodes.values():
            node.sim = new
            for link in node.links.values():
                link.sim = new
        return new

    def run(self, until: float) -> None:
        self.sim.run(until=until)


# ---------------------------------------------------------------------------
# Canned topologies for the paper's experiments
# ---------------------------------------------------------------------------


def dumbbell(
    n_left: int,
    n_right: int,
    bottleneck: LinkSpec,
    access: LinkSpec = ACCESS,
    seed: int = 0,
    scheduler: Optional[str] = None,
) -> Network:
    """``n_left`` hosts -- R0 ==bottleneck== R1 -- ``n_right`` hosts.

    Hosts are named ``h0..`` on the left and ``r0..`` on the right.
    The bottleneck applies in both directions (ACK path shares it, as
    in the paper's testbed).
    """
    net = Network(seed=seed, scheduler=scheduler)
    net.add_router("R0")
    net.add_router("R1")
    for i in range(n_left):
        net.add_host(f"h{i}")
        net.duplex_link(f"h{i}", "R0", access)
    for i in range(n_right):
        net.add_host(f"r{i}")
        net.duplex_link("R1", f"r{i}", access)
    net.duplex_link("R0", "R1", bottleneck)
    net.build_routes()
    return net


@dataclass(frozen=True)
class SubtreePlan:
    """Layout of a :func:`dumbbell_subtrees` network.

    The plan is the *name space* of the group: member identities exist
    as strings computed on demand (``t{k}r{i}``), never as a
    million-entry list, so a 10^6-receiver plan costs the same to hold
    as a 10-receiver one.  ``members="real"`` instantiates one host
    per member (exact mode, small N); ``members="virtual"`` creates
    only the per-subtree aggregate host plus a fixed pool of promotion
    *slot* hosts, and the tail lives as analytic state in
    :mod:`repro.pgm.aggregate`.
    """

    n_receivers: int
    subtrees: int
    members: str  # "real" | "virtual"
    slots: int    # promotion slot hosts per subtree (virtual mode)
    #: members per subtree (n split as evenly as possible)
    sizes: tuple[int, ...] = field(default=())

    # -- the naming scheme --------------------------------------------------

    def router(self, k: int) -> str:
        return f"T{k}"

    def routers(self) -> list[str]:
        return [self.router(k) for k in range(self.subtrees)]

    def identity(self, k: int, i: int) -> str:
        """Report identity of member ``i`` of subtree ``k`` — equal to
        its host name in real mode, synthetic in virtual mode."""
        return f"t{k}r{i}"

    def agg_host(self, k: int) -> str:
        return f"t{k}agg"

    def slot_host(self, k: int, j: int) -> str:
        return f"t{k}s{j}"

    def identities(self, k: int):
        """Member identities of subtree ``k`` (lazy)."""
        return (self.identity(k, i) for i in range(self.sizes[k]))

    def subtree_of(self, identity: str) -> Optional[int]:
        """Parse ``t{k}r{i}`` back to its subtree index, or None if the
        string is not a member identity of this plan."""
        if not identity.startswith("t") or "r" not in identity:
            return None
        head, _, tail = identity[1:].partition("r")
        if not head.isdigit() or not tail.isdigit():
            return None
        k, i = int(head), int(tail)
        if k >= self.subtrees or i >= self.sizes[k]:
            return None
        return k

    def session_hosts(self) -> list[str]:
        """The hosts a session subscribes to the group.

        Real mode: every member host (O(N)).  Virtual mode: the
        aggregate host plus the slot pool per subtree (O(K)).
        """
        if self.members == "real":
            return [self.identity(k, i)
                    for k in range(self.subtrees)
                    for i in range(self.sizes[k])]
        hosts = []
        for k in range(self.subtrees):
            hosts.append(self.agg_host(k))
            hosts.extend(self.slot_host(k, j) for j in range(self.slots))
        return hosts


def _split_sizes(n: int, k: int) -> tuple[int, ...]:
    base, extra = divmod(n, k)
    return tuple(base + (1 if i < extra else 0) for i in range(k))


def dumbbell_subtrees(
    n_receivers: int,
    subtrees: int = 1,
    bottleneck: LinkSpec = NON_LOSSY,
    access: LinkSpec = ACCESS,
    seed: int = 0,
    scheduler: Optional[str] = None,
    members: str = "virtual",
    slots: int = 4,
) -> Network:
    """``h0 -- R0 ==bottleneck== T{k} -- subtree k's receivers``.

    ``n_receivers`` split across ``subtrees`` shared bottlenecks.  In
    ``members="real"`` mode every member gets its own host (``t{k}r{i}``,
    exact simulation, O(N) construction).  In ``members="virtual"``
    mode each subtree gets one aggregate host (``t{k}agg``) and
    ``slots`` promotion slot hosts (``t{k}s{j}``) — node count is
    O(subtrees * slots) regardless of ``n_receivers``, so a
    million-receiver topology constructs in milliseconds.  The layout
    is recorded on the returned network as ``net.subtree_plan`` for
    :func:`repro.pgm.create_session`'s ``aggregate=`` mode.
    """
    if n_receivers < 1:
        raise ValueError("n_receivers must be >= 1")
    if subtrees < 1 or subtrees > n_receivers:
        raise ValueError("subtrees must be in [1, n_receivers]")
    if members not in ("real", "virtual"):
        raise ValueError(f"members must be 'real' or 'virtual', not {members!r}")
    plan = SubtreePlan(n_receivers, subtrees, members, slots,
                       _split_sizes(n_receivers, subtrees))
    net = Network(seed=seed, scheduler=scheduler)
    net.add_host("h0")
    net.add_router("R0")
    net.duplex_link("h0", "R0", access)
    for k in range(subtrees):
        router = plan.router(k)
        net.add_router(router)
        net.duplex_link("R0", router, bottleneck)
        if members == "real":
            for i in range(plan.sizes[k]):
                name = plan.identity(k, i)
                net.add_host(name)
                net.duplex_link(router, name, access)
        else:
            agg = plan.agg_host(k)
            net.add_host(agg)
            net.duplex_link(router, agg, access)
            for j in range(slots):
                slot = plan.slot_host(k, j)
                net.add_host(slot)
                net.duplex_link(router, slot, access)
    net.build_routes()
    net.subtree_plan = plan
    return net


def star(
    n_leaves: int,
    leaf_spec: LinkSpec,
    access: LinkSpec = ACCESS,
    seed: int = 0,
    scheduler: Optional[str] = None,
) -> Network:
    """One source host ``src`` behind router ``R0``, with ``n_leaves``
    receivers each behind its own independent link (Fig. 7)."""
    net = Network(seed=seed, scheduler=scheduler)
    net.add_host("src")
    net.add_router("R0")
    net.duplex_link("src", "R0", access)
    for i in range(n_leaves):
        net.add_host(f"r{i}")
        net.duplex_link("R0", f"r{i}", leaf_spec)
    net.build_routes()
    return net


def two_bottleneck(
    l1: LinkSpec,
    l2: LinkSpec,
    access: LinkSpec = ACCESS,
    seed: int = 0,
    scheduler: Optional[str] = None,
) -> Network:
    """The Fig. 5 topology::

        src -- R0 ==L1== R1 -- pr1
                \\=L2== R2 -- pr2, tr   (TCP receiver shares L2)

    with the TCP sender ``ts`` co-located with ``src`` behind R0.
    """
    net = Network(seed=seed, scheduler=scheduler)
    for host in ("src", "ts", "pr1", "pr2", "tr"):
        net.add_host(host)
    for router in ("R0", "R1", "R2"):
        net.add_router(router)
    net.duplex_link("src", "R0", access)
    net.duplex_link("ts", "R0", access)
    net.duplex_link("R0", "R1", l1)
    net.duplex_link("R0", "R2", l2)
    net.duplex_link("R1", "pr1", access)
    net.duplex_link("R2", "pr2", access)
    net.duplex_link("R2", "tr", access)
    net.build_routes()
    return net
