"""Route computation.

Unicast routing installs static shortest-path next hops (weighted by
propagation delay, with a small per-hop bias so equal-delay paths
prefer fewer hops).  Multicast routing installs a source-rooted
shortest-path tree for each (group, source) pair — the same structure
IP multicast (DVMRP/PIM) would build over these topologies, and the
one the paper's ns-2 scenarios assume.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import networkx as nx

from .node import Node

#: Per-hop additive bias in the path metric; keeps paths minimal-hop
#: among equal-delay alternatives without affecting real comparisons.
HOP_BIAS = 1e-9


def build_graph(nodes: Mapping[str, Node], delays: Mapping[tuple[str, str], float]) -> nx.DiGraph:
    """Build a directed graph of the topology.

    ``delays`` maps directed edges (u, v) to the propagation delay of
    the u->v link; edge weight is delay + HOP_BIAS.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(nodes)
    for (u, v), delay in delays.items():
        graph.add_edge(u, v, weight=delay + HOP_BIAS)
    return graph


def install_unicast_routes(graph: nx.DiGraph, nodes: Mapping[str, Node]) -> None:
    """Install next-hop entries for every reachable destination at
    every node.  Overwrites existing unicast tables."""
    for src in nodes:
        paths = nx.single_source_dijkstra_path(graph, src, weight="weight")
        table: dict[str, str] = {}
        for dst, path in paths.items():
            if dst == src or len(path) < 2:
                continue
            table[dst] = path[1]
    # note: installed below so partially-computed tables never leak
        nodes[src].unicast_routes = table


def compute_multicast_tree(
    graph: nx.DiGraph, source: str, members: Iterable[str]
) -> dict[str, set[str]]:
    """Union of shortest paths from ``source`` to each member.

    Returns, for every on-tree node, the set of downstream neighbours
    to which group traffic must be replicated.
    """
    downstream: dict[str, set[str]] = {}
    for member in members:
        if member == source:
            continue
        path = nx.dijkstra_path(graph, source, member, weight="weight")
        for u, v in zip(path, path[1:]):
            downstream.setdefault(u, set()).add(v)
    return downstream


def install_multicast_tree(
    graph: nx.DiGraph,
    nodes: Mapping[str, Node],
    group: str,
    source: str,
    members: Iterable[str],
) -> dict[str, set[str]]:
    """Compute and install the tree; returns the downstream map."""
    tree = compute_multicast_tree(graph, source, members)
    for name, node in nodes.items():
        # sorted tuple, not a set: replication order must not depend on
        # string hashing (PYTHONHASHSEED), or equal-timestamp delivery
        # interleaving across receivers varies run to run
        node.multicast_routes[group] = tuple(sorted(tree.get(name, ())))
    return tree
