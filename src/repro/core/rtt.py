"""RTT measurement (§3.2.1).

pgmcc measures RTT *in packets*: the sender computes the difference
between the most recent sequence number it transmitted and the
``rxw_lead`` a report carries.  No receiver clock, no timestamps; the
value scales with data rate, but identically for every receiver, so
comparisons between receivers — the only thing the RTT is used for —
are unaffected.

A time-based estimator (echoed sender timestamps) is provided for the
ablation the paper describes; it matches what a classical protocol
would do with synchronised measurement support.
"""

from __future__ import annotations

from typing import Optional

from .reports import ReceiverReport


def packet_rtt(last_tx_seq: int, rxw_lead: int, floor: int = 1) -> int:
    """RTT in packets: ``last_tx_seq - rxw_lead``, floored.

    A report can briefly lead the sender's own view (e.g. a stale
    ``last_tx_seq`` after an idle period); the floor keeps the metric
    positive and comparisons meaningful.
    """
    return max(floor, last_tx_seq - rxw_lead)


class SmoothedRtt:
    """EWMA smoother for the current acker's RTT sample stream.

    New candidates are judged on a single instantaneous sample (the
    paper: "we are likely to know only the information supplied in the
    most recent report"); only the incumbent accumulates smoothing.
    """

    def __init__(self, gain: float = 0.25):
        if not 0 < gain <= 1:
            raise ValueError("gain must be in (0, 1]")
        self.gain = gain
        self._value: Optional[float] = None

    def update(self, sample: float) -> float:
        if self._value is None:
            self._value = float(sample)
        else:
            self._value += self.gain * (sample - self._value)
        return self._value

    @property
    def value(self) -> Optional[float]:
        return self._value

    def reset(self, initial: Optional[float] = None) -> None:
        self._value = float(initial) if initial is not None else None


class RttSampler:
    """Produces RTT samples from reports in either measurement mode.

    ``mode="seq"`` is the paper's scheme (RTT in packets).
    ``mode="time"`` is the ablation: sender-time minus echoed
    timestamp, in seconds.
    """

    SEQ = "seq"
    TIME = "time"

    def __init__(self, mode: str = SEQ):
        if mode not in (self.SEQ, self.TIME):
            raise ValueError(f"unknown RTT mode {mode!r}")
        self.mode = mode

    def sample(self, report: ReceiverReport, last_tx_seq: int, now: float) -> Optional[float]:
        """One RTT sample from ``report``, or None if not measurable."""
        if self.mode == self.SEQ:
            return float(packet_rtt(last_tx_seq, report.rxw_lead))
        if report.timestamp_echo is None:
            return None
        rtt = now - report.timestamp_echo
        return max(rtt, 1e-6)
