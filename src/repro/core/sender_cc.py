"""The sender-side pgmcc engine (§3.4–§3.6).

:class:`SenderController` composes the window/token controller, the
ACK tracker and the acker election into the control loop the PGM
sender drives:

* each ODATA consumes a token and is registered as outstanding;
* each ACK regenerates tokens (one window event per *newly* acked
  packet, so lost/duplicated ACKs do not skew the clock), refreshes
  the incumbent acker's RTT and loss state, and may declare losses;
* each NAK report feeds the election;
* a stall timer restarts the session at ``W = T = 1`` when the ACK
  clock dies, and — after a couple of stalls in a row — marks the next
  packet to elicit a "fake NAK" so a fresh acker can be elected
  (§3.6).

The controller is transport-agnostic: the PGM sender (or any other
protocol) owns packet formats and retransmissions and calls in here.

Paper map: §3.4 (window/token rules — delegated to the pluggable
backend, :mod:`repro.core.controller`; the default ``"pgmcc"`` backend
is :class:`~repro.core.window.WindowController` verbatim), §3.5 (acker
election via :mod:`repro.core.acker`), §3.6 (session startup, fake-NAK
elicitation after consecutive stalls, acker switch/eviction), §3
footnote on time-RTT "for determining timeouts" (the stall timer's
RTO estimate below).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..simulator.engine import Simulator, Timer
from .acker import DEFAULT_C, AckerElection
from .acktrack import AckTracker
from .controller import make_controller
from .reports import ReceiverReport
from .rtt import RttSampler, packet_rtt
from .window import DEFAULT_DUPACK_THRESHOLD, DEFAULT_SSTHRESH

#: Stall timeout bounds (seconds).  The timeout adapts to the measured
#: time-RTT (which pgmcc uses "for determining timeouts", §3).
MIN_STALL_TIMEOUT = 0.5
MAX_STALL_TIMEOUT = 8.0
#: Consecutive stalls after which the next packet elicits a fake NAK.
ELICIT_AFTER_STALLS = 2


@dataclass
class CcConfig:
    """All pgmcc tunables in one place (paper defaults)."""

    c: float = DEFAULT_C
    ssthresh: int = DEFAULT_SSTHRESH
    dupack_threshold: int = DEFAULT_DUPACK_THRESHOLD
    rtt_mode: str = RttSampler.SEQ
    #: election throughput model: "simple" (paper default) or "padhye"
    #: (the full [15] equation, §5 future work).
    model: str = "simple"
    #: adaptive slow-start threshold (§3.4 future work): track half the
    #: window at each congestion event instead of the fixed 6 packets.
    adaptive_ssthresh: bool = False
    max_tokens: Optional[float] = None
    enabled: bool = True  # dynamic disable = plain PGM sender (§3.1)
    #: registered controller backend driving the send gate (see
    #: repro.core.controller; "pgmcc" is the paper's window machine).
    controller: str = "pgmcc"
    #: backend-specific parameters as a tuple of (key, value) pairs
    #: (tuple, not dict, so CcConfig stays hashable/picklable for the
    #: runner's cache keys), e.g. (("beta", 0.8),) for "aimd".
    controller_params: tuple = ()
    #: enable the acker-liveness watchdog (repro.pgm.liveness): faster
    #: dead-acker detection than the generic stall timer, plus an
    #: explicit degraded mode under total feedback loss.
    liveness: bool = False
    #: LivenessConfig overrides as (key, value) pairs (tuple for the
    #: same hashability reason as controller_params).
    liveness_params: tuple = ()


@dataclass
class AckDigest:
    """What one ACK did to the sender state (for traces/tests)."""

    newly_acked: list[int]
    losses_declared: list[int]
    reacted: bool
    in_flight: Optional[int]


class SenderController:
    """pgmcc state machine on the sender."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[CcConfig] = None,
        on_tokens: Optional[Callable[[], None]] = None,
        on_stall: Optional[Callable[[], None]] = None,
    ):
        self.sim = sim
        self.config = config or CcConfig()
        #: the pluggable congestion-controller backend (repro.core.controller)
        self.backend = make_controller(
            self.config.controller,
            self.config,
            **dict(self.config.controller_params),
        )
        #: the backend's observable window view (a WindowController for
        #: window backends, an equivalent view for rate backends) —
        #: telemetry and the invariant checker sample/wrap this.
        self.window = self.backend.window
        self.tracker = AckTracker(self.config.dupack_threshold)
        self.election = AckerElection(
            c=self.config.c, rtt_mode=self.config.rtt_mode, model=self.config.model
        )
        #: called whenever tokens become available (wake the tx loop)
        self.on_tokens = on_tokens
        #: called on each stall restart (diagnostics)
        self.on_stall = on_stall

        self.last_tx_seq: int = -1
        #: True when the next ODATA must carry the elicit-NAK mark.
        self.elicit_nak = True  # session startup (§3.6)
        self._send_times: dict[int, float] = {}
        self._srtt: Optional[float] = None
        self._rttvar: float = 0.0
        self._stall_timer = Timer(sim, self._on_stall_timeout)
        self._consecutive_stalls = 0
        self.closed = False
        self.stalls = 0
        #: every W=T=1 restart, stall-timer or watchdog driven — the
        #: invariant checker keys its in-flight ledger resync on this.
        self.restarts = 0
        self.acks_seen = 0
        self.naks_seen = 0
        self.acker_evictions = 0
        #: optional acker-liveness watchdog (repro.pgm.liveness),
        #: attached by the transport via attach_watchdog().
        self.watchdog = None

    # -- transmit path -----------------------------------------------------

    @property
    def can_send(self) -> bool:
        if not self.config.enabled:
            return True
        return self.backend.can_send

    def send_delay(self) -> Optional[float]:
        """When may the next packet go out?  ``0.0`` = now, a positive
        float = rate-paced (ask again in that many seconds), ``None`` =
        blocked until feedback reopens the window."""
        if not self.config.enabled:
            return 0.0
        return self.backend.send_delay(self.sim.now)

    def register_data(self, seq: int) -> bool:
        """Account for an ODATA transmission; returns whether the
        packet must carry the elicit-NAK mark."""
        if seq <= self.last_tx_seq:
            raise ValueError(f"non-monotonic data sequence {seq}")
        self.last_tx_seq = seq
        elicit = self.elicit_nak
        self.elicit_nak = False
        if not self.config.enabled:
            return elicit
        self.backend.on_send(seq, self.sim.now)
        self.tracker.on_data_sent(seq)
        self._send_times[seq] = self.sim.now
        if not self._stall_timer.armed:
            self._stall_timer.start(self._stall_timeout())
        if self.watchdog is not None:
            self.watchdog.note_data_sent()
        return elicit

    @property
    def current_acker(self) -> Optional[str]:
        return self.election.current

    # -- feedback path -----------------------------------------------------

    def on_nak(self, report: ReceiverReport) -> bool:
        """Feed a NAK's receiver report to the election."""
        self.naks_seen += 1
        if not self.config.enabled:
            return False
        if self.watchdog is not None:
            self.watchdog.note_nak()
        had_acker = self.election.current is not None
        switched = self.election.on_nak_report(report, self.last_tx_seq, self.sim.now)
        if switched and not had_acker and not self.backend.can_send:
            # Initial election (session start or post-stall): packets
            # already in flight were sent without an acker id and will
            # never be directly ACKed, so kick the backend to restart
            # the ACK clock immediately (§3.6) instead of waiting for
            # the stall timer.
            self.backend.kick()
            if self.on_tokens is not None:
                self.on_tokens()
        return switched

    def on_ack(self, ack_seq: int, bitmap: int, report: ReceiverReport) -> AckDigest:
        """Digest an ACK from the (current or former) acker."""
        self.acks_seen += 1
        if not self.config.enabled:
            return AckDigest([], [], False, None)

        # ACKs keep the session alive regardless of content.
        self._consecutive_stalls = 0
        if not self.closed:
            self._stall_timer.restart(self._stall_timeout())
        if self.watchdog is not None:
            self.watchdog.note_ack()

        outcome = self.tracker.on_ack(ack_seq, bitmap)
        self._update_time_rtt(outcome.newly_acked)
        self.election.on_ack_report(report, self.last_tx_seq, self.sim.now)
        self.backend.observe_report(report, self._srtt, self.sim.now)

        in_flight = packet_rtt(self.last_tx_seq, report.rxw_lead, floor=0)
        reacted = False
        for seq in outcome.losses:
            if self.backend.on_congestion(seq, self.last_tx_seq, in_flight, self.sim.now):
                reacted = True
        had_tokens = self.backend.can_send
        for _ in outcome.newly_acked:
            self.backend.on_ack(self.sim.now, in_flight)
        if (
            self.backend.kind == "window"
            and self.tracker.outstanding_count == 0
            and not self.backend.can_send
        ):
            # Dead ACK clock: the ignore-after-halving rule consumed
            # the last in-flight ACK.  With nothing outstanding no ACK
            # can ever come, so restart the clock now instead of
            # waiting for the stall timer (same effect, no idle gap).
            # Rate backends regain credit with time, so they never
            # deadlock here and are left alone.
            self.backend.kick(clear_ignore=True)
        if self.backend.can_send and not had_tokens and self.on_tokens is not None:
            self.on_tokens()
        return AckDigest(outcome.newly_acked, outcome.losses, reacted, in_flight)

    # -- time-RTT (timeouts only) -----------------------------------------------

    def _update_time_rtt(self, newly_acked: list[int]) -> None:
        for seq in newly_acked:
            sent = self._send_times.pop(seq, None)
            if sent is None:
                continue
            sample = self.sim.now - sent
            if self._srtt is None:
                self._srtt = sample
                self._rttvar = sample / 2.0
            else:
                self._rttvar += 0.25 * (abs(sample - self._srtt) - self._rttvar)
                self._srtt += 0.125 * (sample - self._srtt)

    @property
    def srtt(self) -> Optional[float]:
        """Smoothed time-domain RTT (used only for timeouts)."""
        return self._srtt

    @property
    def rto(self) -> Optional[float]:
        """The RFC-style retransmission timeout estimate
        (``srtt + 4 * rttvar``), or ``None`` before the first sample.
        Shared by the stall timer and the liveness watchdog."""
        if self._srtt is None:
            return None
        return self._srtt + 4.0 * self._rttvar

    def _stall_timeout(self) -> float:
        rto = self.rto
        if rto is None:
            return MAX_STALL_TIMEOUT / 4.0
        backoff = 2.0 ** min(self._consecutive_stalls, 3)
        return min(MAX_STALL_TIMEOUT, max(MIN_STALL_TIMEOUT, 2.0 * rto) * backoff)

    # -- stall handling -------------------------------------------------------

    def _on_stall_timeout(self) -> None:
        if self.closed:
            return
        if self.tracker.outstanding_count == 0 and (
            self.backend.kind == "rate" or self.backend.can_send
        ):
            # Nothing in flight and sending possible (window backends:
            # tokens available; rate backends: pacing will grant credit
            # with time): idle, not stalled.
            return
        if self.watchdog is not None and self.watchdog.degraded:
            # The liveness watchdog owns recovery in degraded mode: it
            # already restarted at W=T=1 and is probing at the rate
            # floor.  Oscillating through extra stall restarts here
            # would reset its pacing, so just keep the timer armed.
            self._stall_timer.restart(self._stall_timeout())
            return
        self.stalls += 1
        self.restarts += 1
        self._consecutive_stalls += 1
        self.backend.on_timeout(self.sim.now)
        self.tracker.reset()
        self._send_times.clear()
        if self._consecutive_stalls >= ELICIT_AFTER_STALLS:
            # A couple of stalls in a row: the acker is presumed gone,
            # elicit a fake NAK to elect a fresh one (§3.6).
            self.election.clear()
            self.elicit_nak = True
        if self.on_stall is not None:
            self.on_stall()
        if self.on_tokens is not None:
            self.on_tokens()
        self._stall_timer.restart(self._stall_timeout())

    def evict_acker(self) -> Optional[str]:
        """Forcibly unseat the incumbent acker (feedback-guard
        quarantine).  Clears the election, marks the next ODATA to
        elicit fake NAKs so the honest receivers re-elect (§3.6), and
        — because the evicted acker's ACK clock is gone — grants a
        token if the window is empty so the session keeps breathing.
        Returns the evicted receiver id, or None without an incumbent.
        """
        evicted = self.election.current
        if evicted is None:
            return None
        self.election.clear()
        self.elicit_nak = True
        self.acker_evictions += 1
        if not self.backend.can_send:
            self.backend.kick()
            if self.on_tokens is not None:
                self.on_tokens()
        return evicted

    def attach_watchdog(self, watchdog) -> None:
        """Wire in the acker-liveness watchdog (repro.pgm.liveness).
        The controller only calls its ``note_data_sent`` / ``note_ack``
        / ``note_nak`` hooks and reads its ``degraded`` flag, so any
        object with that surface works."""
        self.watchdog = watchdog

    def demote_acker(self) -> Optional[str]:
        """Unseat an acker presumed *dead* (liveness watchdog): clear
        the election, mark the next ODATA to elicit fresh fake NAKs
        (§3.6) and keep the session breathing if the window is blocked.
        Same mechanics as :meth:`evict_acker` but not counted as a
        guard eviction — the receiver is suspected unreachable, not
        misbehaving.  Returns the demoted receiver id (or None)."""
        demoted = self.election.current
        self.election.clear()
        self.elicit_nak = True
        if not self.backend.can_send:
            self.backend.kick()
            if self.on_tokens is not None:
                self.on_tokens()
        return demoted

    def degraded_restart(self) -> None:
        """Watchdog-driven restart at ``W = T = 1`` on entering
        degraded mode: one controlled reset instead of the stall
        timer's backoff oscillation.  Counted in :attr:`restarts` so
        the invariant checker resyncs its in-flight ledger."""
        self.restarts += 1
        self.backend.on_timeout(self.sim.now)
        self.tracker.reset()
        self._send_times.clear()
        self.election.clear()
        self.elicit_nak = True
        if self.on_tokens is not None:
            self.on_tokens()

    def close(self) -> None:
        """Stop timers (end of session)."""
        self.closed = True
        self._stall_timer.cancel()
        if self.watchdog is not None:
            self.watchdog.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SenderController acker={self.current_acker} "
            f"W={self.window.w:.2f} T={self.window.tokens:.2f} "
            f"out={self.tracker.outstanding_count}>"
        )
