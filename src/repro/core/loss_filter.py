"""Receiver-side loss-rate measurement (§3.2.2).

Each receiver interprets its packet arrival pattern as a discrete
binary signal (1 for a lost packet, 0 otherwise) and passes it through
a first-order low-pass IIR filter::

    Y_i = W * Y_{i-1} + (1 - W) * x_i

computed in fixed-point arithmetic with 16 fractional bits, exactly as
the paper prescribes ("quickly implemented using basic integer
arithmetic operations and shifts").  The paper's constant is
``W = 65000/65536`` — a corner frequency of about 0.0013 packets⁻¹.

The filter is indexed by packet *sequence number*, never by wall-clock
time, which is what makes the whole scheme's responsiveness independent
of the data rate (§3.2.2, last paragraph).
"""

from __future__ import annotations

#: Number of fractional bits of the fixed-point representation.
FRACTION_BITS = 16
#: Fixed-point scale: 1.0 is represented as 65536.
SCALE = 1 << FRACTION_BITS
#: The paper's smoothing constant, W = 65000/65536.
DEFAULT_W = 65000


def to_fixed(fraction: float) -> int:
    """Convert a float in [0, 1] to the 16-fractional-bit representation."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    return int(round(fraction * SCALE))


def to_float(fixed: int) -> float:
    """Convert a fixed-point loss value back to a float in [0, 1]."""
    return fixed / SCALE


class LossRateFilter:
    """First-order low-pass filter over the binary loss signal.

    All state is a single integer, so a receiver's congestion-control
    footprint stays constant regardless of session length (§3's
    scalability requirement).

    Args:
        w_fixed: the smoothing constant in fixed-point form
            (``65000`` means 65000/65536 ≈ 0.99182).
    """

    def __init__(self, w_fixed: int = DEFAULT_W):
        if not 0 < w_fixed < SCALE:
            raise ValueError(f"w_fixed must be in (0, {SCALE}), got {w_fixed}")
        self.w_fixed = w_fixed
        self._y = 0  # fixed-point filter state
        self.samples = 0
        self.losses = 0

    def update(self, lost: bool) -> int:
        """Feed one packet slot; returns the new fixed-point loss value."""
        x_fixed = SCALE if lost else 0
        self._y = (self.w_fixed * self._y + (SCALE - self.w_fixed) * x_fixed) >> FRACTION_BITS
        self.samples += 1
        if lost:
            self.losses += 1
        return self._y

    def update_run(self, pattern: "list[bool] | tuple[bool, ...]") -> int:
        """Feed a run of packet slots; returns the final value."""
        for lost in pattern:
            self.update(lost)
        return self._y

    @property
    def value(self) -> int:
        """Current loss estimate, fixed-point (0..65536)."""
        return self._y

    @property
    def loss_rate(self) -> float:
        """Current loss estimate as a float in [0, 1]."""
        return self._y / SCALE

    @property
    def raw_loss_rate(self) -> float:
        """Unfiltered losses/samples ratio (for comparisons in tests)."""
        if self.samples == 0:
            return 0.0
        return self.losses / self.samples

    def corner_frequency(self) -> float:
        """Approximate -3 dB corner frequency in packets⁻¹.

        For a one-pole filter ``y = a*y + (1-a)*x`` the corner sits at
        ``(1-a) / (2*pi*a)``; with the paper's a = 65000/65536 this is
        ≈ 0.00131 packets⁻¹, matching the quoted 0.0013.
        """
        import math

        a = self.w_fixed / SCALE
        return (1.0 - a) / (2.0 * math.pi * a)

    def reset(self) -> None:
        self._y = 0
        self.samples = 0
        self.losses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LossRateFilter w={self.w_fixed}/{SCALE} y={self._y} ({self.loss_rate:.4f})>"
