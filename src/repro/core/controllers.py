"""Alternative congestion-controller backends (the arena's field).

Three controllers from the paper's related work implement the
:mod:`repro.core.controller` contract so they can drive the same PGM
session machinery pgmcc does — same election, same stall timer, same
telemetry — and be compared head-to-head in ``EXP-ARENA``:

``jain``
    Jain's timeout-based window scheme (*A timeout-based congestion
    control scheme for window flow-controlled networks*, IEEE JSAC
    1986; PAPERS.md).  Additive window increase of one packet per
    window of ACKs, and **no reaction to dupack-declared losses**: the
    only congestion signal is the timeout, which resets ``W = T = 1``.
    Under drop-tail queues this probes past the knee until the ACK
    clock dies — the overshoot/reset sawtooth pgmcc's halving avoids.

``aimd``
    The pgmcc discipline with a tunable multiplicative-decrease factor
    ``beta`` (pgmcc is the ``beta = 0.5`` point; Relentless-style
    gentler decrease at ``beta -> 1``).  On a congestion event the
    window realigns to the true in-flight count and contracts to
    ``W·beta``, ignoring the next ``W_old - W_new`` ACKs so the pipe
    drains to the new window.

``tfrc``
    An equation-based *rate* controller in the TFRC mould (Floyd,
    Handley, Padhye, Widmer, SIGCOMM 2000; surveyed for RTP in
    PAPERS.md): the average-loss-interval estimator from
    :mod:`repro.core.tfrc_loss` feeds the full Padhye throughput
    equation from :mod:`repro.core.throughput_models`, and the send
    rate is the equation's value clamped to ``[min_rate_pps,
    max_rate_pps]``.  Transmissions are paced by a token bucket that
    refills continuously at the computed rate — ``send_delay`` returns
    the time until the next credit, which is what distinguishes a rate
    backend from a window backend under the contract.  Before the
    first loss the rate doubles once per RTT (slow-start probing); the
    engine's stall timer doubles as TFRC's no-feedback timer and
    halves the rate.

All three expose the contract's ``window`` view, so session telemetry
(``cc.window_w`` / ``cc.tokens``) and the runtime
:class:`~repro.pgm.invariants.InvariantChecker` work unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .controller import (
    PARAMS_SCHEMA,
    STATE_SCHEMA,
    WindowBackend,
    register_controller,
)
from .tfrc_loss import LossIntervalEstimator
from .throughput_models import PadhyeModel
from .window import WindowController

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .reports import ReceiverReport
    from .sender_cc import CcConfig


# -- Jain: timeout-based window scheme ----------------------------------------


class _JainWindow(WindowController):
    """Additive-increase window that ignores dupack loss signals."""

    def on_loss(self, loss_seq: int, last_tx_seq: int,
                in_flight: Optional[int] = None) -> bool:
        # Timeout-based control: packet-level loss indications are not
        # a signal; only the dead ACK clock (on_restart) is.
        self.losses_ignored += 1
        return False


@register_controller("jain")
class JainController(WindowBackend):
    """Jain's timeout-based window scheme behind the contract."""

    name = "jain"
    congestion_signals = ("timeout",)

    def __init__(self, cc: "CcConfig"):
        # ssthresh=1: no exponential opening phase — the scheme is pure
        # additive increase (one packet per window) from W = 1.
        super().__init__(_JainWindow(ssthresh=1, max_tokens=cc.max_tokens))

    def params(self) -> dict:
        doc = super().params()
        doc["increase"] = "additive (1 per window)"
        doc["decrease"] = "reset to 1 on timeout"
        return doc


# -- AIMD with tunable decrease factor ----------------------------------------


class _AimdWindow(WindowController):
    """:class:`WindowController` with a parametric decrease factor."""

    def __init__(self, beta: float, ssthresh: int,
                 max_tokens: Optional[float] = None,
                 adaptive_ssthresh: bool = False):
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        super().__init__(ssthresh=ssthresh, max_tokens=max_tokens,
                         adaptive_ssthresh=adaptive_ssthresh)
        self.beta = beta

    def on_loss(self, loss_seq: int, last_tx_seq: int,
                in_flight: Optional[int] = None) -> bool:
        if self.recovery_seq is not None and loss_seq <= self.recovery_seq:
            self.losses_ignored += 1
            return False
        self.losses_reacted += 1
        if in_flight is not None and in_flight >= 1:
            self.w = min(self.w, float(in_flight))
        before = self.w
        self.w = max(1.0, self.w * self.beta)
        if self.adaptive_ssthresh:
            self.ssthresh = max(2.0, self.w)
        # Drain the difference: ignore as many ACKs as the window just
        # contracted by, so packets in flight sink to the new W.
        self.ignore_acks = int(before - self.w)
        self.recovery_seq = last_tx_seq
        return True


@register_controller("aimd")
class AimdController(WindowBackend):
    """pgmcc's machinery with a tunable decrease factor ``beta``."""

    name = "aimd"
    congestion_signals = ("dupack", "timeout")
    DEFAULT_BETA = 0.7

    def __init__(self, cc: "CcConfig", beta: float = DEFAULT_BETA):
        super().__init__(_AimdWindow(
            beta=beta,
            ssthresh=cc.ssthresh,
            max_tokens=cc.max_tokens,
            adaptive_ssthresh=cc.adaptive_ssthresh,
        ))

    def params(self) -> dict:
        doc = super().params()
        doc["beta"] = self.window.beta
        return doc


# -- TFRC-equation rate controller --------------------------------------------


class _RateWindowView:
    """The contract's ``window`` view over a rate backend.

    ``w`` is the equivalent window (``rate · RTT`` in packets, floored
    at 1) so window-denominated telemetry and invariants read
    something meaningful; ``tokens`` is the pacing bucket.  ``on_loss``
    routes to the controller so the invariant checker's wrapper sees
    every congestion reaction exactly as it does for window backends.
    """

    def __init__(self, controller: "TfrcController"):
        self._controller = controller
        self.ignore_acks = 0          # rate backends never deflate via ACKs
        self.recovery_seq: Optional[int] = None
        self.losses_reacted = 0
        self.losses_ignored = 0
        self.acks_processed = 0
        self.restarts = 0

    @property
    def w(self) -> float:
        c = self._controller
        return max(1.0, c.rate_pps * (c.srtt if c.srtt is not None
                                      else c.rtt_fallback))

    @property
    def tokens(self) -> float:
        return self._controller._tokens

    @tokens.setter
    def tokens(self, value: float) -> None:
        self._controller._tokens = value

    def on_loss(self, loss_seq: int, last_tx_seq: int,
                in_flight: Optional[int] = None) -> bool:
        return self._controller._congestion(loss_seq, last_tx_seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RateWindowView w={self.w:.2f} "
                f"tokens={self.tokens:.2f}>")


@register_controller("tfrc")
class TfrcController:
    """Equation-based rate controller (TFRC discipline) for the arena.

    Args:
        cc: the shared session tunables (unused beyond being the
            uniform factory argument — the equation has its own knobs).
        min_rate_pps / max_rate_pps: rate clamps in packets/second;
            the floor keeps the probe alive so the estimate can
            recover, the ceiling bounds pre-loss slow start.
        initial_rate_pps: starting rate.
        b / rto_rtts: Padhye-equation parameters (packets per ACK,
            RTO in RTTs).
        rtt_fallback: control RTT before the first time-RTT sample.
        bucket_cap: pacing-bucket burst allowance (packets).
    """

    name = "tfrc"
    kind = "rate"
    congestion_signals = ("dupack", "timeout")

    def __init__(self, cc: "CcConfig", min_rate_pps: float = 0.5,
                 max_rate_pps: float = 2000.0, initial_rate_pps: float = 8.0,
                 b: float = 1.0, rto_rtts: float = 4.0,
                 rtt_fallback: float = 0.3, bucket_cap: float = 2.0):
        if min_rate_pps <= 0 or max_rate_pps < min_rate_pps:
            raise ValueError("need 0 < min_rate_pps <= max_rate_pps")
        self.model = PadhyeModel(b=b, rto_rtts=rto_rtts)
        self.intervals = LossIntervalEstimator()
        self.min_rate_pps = min_rate_pps
        self.max_rate_pps = max_rate_pps
        self.initial_rate_pps = initial_rate_pps
        self.rtt_fallback = rtt_fallback
        self.bucket_cap = bucket_cap
        self.rate_pps = min(max(initial_rate_pps, min_rate_pps), max_rate_pps)
        self.srtt: Optional[float] = None
        self.timeouts = 0
        self._tokens = 1.0
        self._last_refill = 0.0
        self._last_double: Optional[float] = None
        self.window = _RateWindowView(self)

    # -- pacing ------------------------------------------------------------

    def _refill(self, now: float) -> None:
        if now > self._last_refill:
            self._tokens = min(self.bucket_cap,
                               self._tokens + (now - self._last_refill)
                               * self.rate_pps)
        self._last_refill = max(self._last_refill, now)

    #: credit tolerance so a pacing wake-up scheduled at exactly the
    #: refill horizon cannot starve on float rounding (delay * rate
    #: re-accumulating to just under one token forever).
    TOKEN_EPS = 1e-9

    @property
    def can_send(self) -> bool:
        return self._tokens >= 1.0 - self.TOKEN_EPS

    def send_delay(self, now: float) -> Optional[float]:
        self._refill(now)
        need = 1.0 - self._tokens
        if need <= self.TOKEN_EPS:
            return 0.0
        return need / self.rate_pps + self.TOKEN_EPS

    # -- contract events ---------------------------------------------------

    def on_send(self, seq: int, now: float) -> None:
        self._refill(now)
        self._tokens = max(0.0, self._tokens - 1.0)

    def on_ack(self, now: float, in_flight: Optional[int] = None) -> None:
        self.window.acks_processed += 1
        self.intervals.update(False)
        self._update_rate(now)

    def on_congestion(self, loss_seq: int, last_tx_seq: int,
                      in_flight: Optional[int], now: float) -> bool:
        self._now = now
        return self.window.on_loss(loss_seq, last_tx_seq, in_flight=in_flight)

    def _congestion(self, loss_seq: int, last_tx_seq: int) -> bool:
        view = self.window
        if view.recovery_seq is not None and loss_seq <= view.recovery_seq:
            view.losses_ignored += 1
            return False
        view.losses_reacted += 1
        view.recovery_seq = last_tx_seq
        self.intervals.update(True)
        self._update_rate(getattr(self, "_now", self._last_refill))
        return True

    def on_timeout(self, now: float) -> None:
        # TFRC's no-feedback timer: halve the allowed rate.
        self.timeouts += 1
        self.window.restarts += 1
        self.rate_pps = max(self.min_rate_pps, self.rate_pps / 2.0)
        self._tokens = min(self._tokens, 1.0)
        self.window.recovery_seq = None
        self._last_double = now

    def observe_report(self, report: "ReceiverReport",
                       srtt: Optional[float], now: float) -> None:
        if srtt is not None:
            self.srtt = srtt

    def kick(self, clear_ignore: bool = False) -> None:
        self._tokens = max(self._tokens, 1.0)

    # -- the equation ------------------------------------------------------

    def _control_rtt(self) -> float:
        return self.srtt if self.srtt is not None else self.rtt_fallback

    def _update_rate(self, now: float) -> None:
        rtt = self._control_rtt()
        p = self.intervals.loss_rate
        if p <= 0.0:
            # No loss event yet: double at most once per RTT instead of
            # evaluating the equation at p -> 0 (which would jump
            # straight to the ceiling and blow the path's queues before
            # control starts).
            if self._last_double is None or now - self._last_double >= rtt:
                self.rate_pps = min(self.max_rate_pps, self.rate_pps * 2.0)
                self._last_double = now
            return
        rate = self.model.throughput(rtt, p)
        self.rate_pps = min(self.max_rate_pps, max(self.min_rate_pps, rate))

    # -- documents ---------------------------------------------------------

    def params(self) -> dict:
        return {
            "schema": PARAMS_SCHEMA,
            "name": self.name,
            "kind": self.kind,
            "congestion_signals": list(self.congestion_signals),
            "min_rate_pps": self.min_rate_pps,
            "max_rate_pps": self.max_rate_pps,
            "initial_rate_pps": self.initial_rate_pps,
            "b": self.model.b,
            "rto_rtts": self.model.rto_rtts,
            "rtt_fallback": self.rtt_fallback,
            "bucket_cap": self.bucket_cap,
        }

    def state_summary(self) -> dict:
        return {
            "schema": STATE_SCHEMA,
            "name": self.name,
            "kind": self.kind,
            "rate_pps": self.rate_pps,
            "tokens": self._tokens,
            "loss_event_rate": self.intervals.loss_rate,
            "srtt": self.srtt,
            "timeouts": self.timeouts,
            "losses_reacted": self.window.losses_reacted,
            "losses_ignored": self.window.losses_ignored,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TfrcController rate={self.rate_pps:.1f}pps "
                f"p={self.intervals.loss_rate:.4f}>")
