"""pgmcc — the paper's contribution.

The core package is transport-facing but protocol-agnostic: the PGM
implementation in :mod:`repro.pgm` (or any other single-source
multicast transport) drives these state machines.

Public surface::

    from repro.core import (
        LossRateFilter, ReceiverReport, ReceiverController,
        WindowController, AckTracker, AckerElection,
        SenderController, CcConfig,
        TokenRateEstimator, AdaptiveSource, QualityLevel,
        Controller, register_controller, make_controller, controller_names,
    )
"""

from .acker import DEFAULT_C, AckerElection, AckerSwitch, throughput_metric
from .controller import (
    Controller,
    PgmccController,
    WindowBackend,
    controller_names,
    make_controller,
    register_controller,
)
from .acktrack import (
    BITMAP_BITS,
    AckOutcome,
    AckTracker,
    bitmap_contains,
    bitmap_covers,
    build_bitmap,
)
from .feedback import AdaptiveSource, QualityLevel, TokenRateEstimator
from .loss_filter import DEFAULT_W, FRACTION_BITS, SCALE, LossRateFilter, to_fixed, to_float
from .receiver_cc import DataOutcome, ReceiverController
from .reports import ReceiverReport
from .rtt import RttSampler, SmoothedRtt, packet_rtt
from .sender_cc import AckDigest, CcConfig, SenderController
from .tfrc_loss import LossIntervalEstimator
from .throughput_models import PadhyeModel, SimpleModel, make_model
from .window import (
    DEFAULT_DUPACK_THRESHOLD,
    DEFAULT_SSTHRESH,
    WindowController,
)

__all__ = [
    "Controller",
    "PgmccController",
    "WindowBackend",
    "controller_names",
    "make_controller",
    "register_controller",
    "DEFAULT_C",
    "AckerElection",
    "AckerSwitch",
    "throughput_metric",
    "BITMAP_BITS",
    "AckOutcome",
    "AckTracker",
    "bitmap_contains",
    "bitmap_covers",
    "build_bitmap",
    "AdaptiveSource",
    "QualityLevel",
    "TokenRateEstimator",
    "DEFAULT_W",
    "FRACTION_BITS",
    "SCALE",
    "LossRateFilter",
    "to_fixed",
    "to_float",
    "DataOutcome",
    "ReceiverController",
    "ReceiverReport",
    "RttSampler",
    "SmoothedRtt",
    "packet_rtt",
    "AckDigest",
    "CcConfig",
    "SenderController",
    "DEFAULT_DUPACK_THRESHOLD",
    "DEFAULT_SSTHRESH",
    "WindowController",
    "LossIntervalEstimator",
    "PadhyeModel",
    "SimpleModel",
    "make_model",
]
