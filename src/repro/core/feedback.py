"""Application feedback for unreliable use (§3.9).

When the reliability component is absent, pgmcc still provides the
source two kinds of feedback it can adapt to:

1. the content of receiver reports (loss rate and RTT), e.g. to size
   FEC redundancy or tune a real-time application's encoding; and
2. the token generation process itself — the application can be told
   when transmission capacity exists and generate data on the fly,
   instead of queueing ahead of the transport.

:class:`TokenRateEstimator` turns the token arrival process into a
smoothed rate estimate; :class:`AdaptiveSource` is a reference
implementation of an application that picks a quality level (or FEC
redundancy share) from that estimate, used by the live-stream example
and the unreliable-mode bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from .reports import ReceiverReport


class TokenRateEstimator:
    """EWMA estimate of the session's sustainable packet rate.

    Fed with one event per transmission opportunity (token consumed);
    produces packets/second smoothed over ``tau`` seconds.
    """

    def __init__(self, tau: float = 2.0):
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = tau
        self._rate: Optional[float] = None
        self._last_time: Optional[float] = None

    def on_token(self, now: float) -> Optional[float]:
        """Record one transmission opportunity at time ``now``."""
        if self._last_time is not None:
            interval = now - self._last_time
            if interval > 0:
                import math

                sample = 1.0 / interval
                alpha = 1.0 - math.exp(-interval / self.tau)
                if self._rate is None:
                    self._rate = sample
                else:
                    self._rate += alpha * (sample - self._rate)
        self._last_time = now
        return self._rate

    @property
    def packets_per_second(self) -> Optional[float]:
        return self._rate

    def bits_per_second(self, payload_bytes: int) -> Optional[float]:
        if self._rate is None:
            return None
        return self._rate * payload_bytes * 8.0


@dataclass
class QualityLevel:
    """One encoding level an adaptive source can emit."""

    name: str
    rate_bps: float


class AdaptiveSource:
    """Reference adaptive application driven by pgmcc feedback.

    Picks the highest :class:`QualityLevel` whose rate fits inside
    ``headroom`` times the estimated sustainable rate, with an
    ``up_margin`` hysteresis band so the level does not flap when the
    estimate hovers near a boundary.  Also exposes the most recent loss
    report so FEC-style applications can size redundancy (§3.9's first
    kind of feedback).
    """

    def __init__(
        self,
        levels: Sequence[QualityLevel],
        payload_bytes: int = 1400,
        headroom: float = 0.85,
        up_margin: float = 1.15,
        estimator: Optional[TokenRateEstimator] = None,
        on_level_change: Optional[Callable[[QualityLevel], None]] = None,
    ):
        if not levels:
            raise ValueError("need at least one quality level")
        if up_margin < 1.0:
            raise ValueError("up_margin must be >= 1 (hysteresis band)")
        self.levels = sorted(levels, key=lambda lv: lv.rate_bps)
        self.payload_bytes = payload_bytes
        self.headroom = headroom
        self.up_margin = up_margin
        self.estimator = estimator or TokenRateEstimator()
        self.on_level_change = on_level_change
        self.current = self.levels[0]
        self.last_report: Optional[ReceiverReport] = None
        self.level_changes: list[tuple[float, str]] = []

    def on_token(self, now: float) -> None:
        self.estimator.on_token(now)
        self._reconsider(now)

    def on_report(self, report: ReceiverReport) -> None:
        self.last_report = report

    def _reconsider(self, now: float) -> None:
        available = self.estimator.bits_per_second(self.payload_bytes)
        if available is None:
            return
        budget = available * self.headroom
        best = self.levels[0]
        for level in self.levels:
            if level.rate_bps <= budget:
                best = level
        if best.rate_bps > self.current.rate_bps:
            # Step up only once the budget clears the hysteresis band.
            if best.rate_bps * self.up_margin > budget:
                return
        if best is not self.current:
            self.current = best
            self.level_changes.append((now, best.name))
            if self.on_level_change is not None:
                self.on_level_change(best)

    @property
    def redundancy_share(self) -> float:
        """Suggested FEC redundancy share: about 3x the reported loss
        rate, clamped to [0.02, 0.5] (a common rule of thumb)."""
        loss = self.last_report.loss_rate if self.last_report else 0.0
        return min(0.5, max(0.02, 3.0 * loss))
