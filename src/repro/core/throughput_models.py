"""Steady-state TCP throughput models for the acker election (§3.5, §5).

The paper's election uses the simplified equation ``T ∝ 1/(RTT·√p)``
and notes (footnote 3) that above roughly 5 % loss it "largely
overestimates the throughput of the session", proposing the more
precise model of Padhye et al. [15] as future work:

    T(p) =                    1
           ─────────────────────────────────────────────
           RTT·√(2bp/3) + t_RTO·min(1, 3·√(3bp/8))·p·(1+32p²)

Both models are exposed behind one interface returning a *slowness
metric* (monotonically decreasing in modelled throughput) so the
election logic is model-agnostic.  RTT and t_RTO are in pgmcc's packet
units; only comparisons between receivers matter, so the unit cancels.
"""

from __future__ import annotations

import math
from typing import Protocol

from .loss_filter import SCALE

#: loss floor (fixed-point units) so loss-free receivers compare as
#: maximally fast instead of dividing by zero.
LOSS_FLOOR = 1


class ThroughputModel(Protocol):
    """Maps (rtt, loss) to a slowness metric; bigger = slower."""

    name: str

    def slowness(self, rtt: float, loss_fixed: int) -> float:  # pragma: no cover
        ...


class SimpleModel:
    """The paper's default: ``T ∝ 1/(RTT·√p)``.

    Slowness is returned in ``1/T`` units (``RTT·√p``) so the election
    can apply the bias constant uniformly across models; comparing
    ``RTT²·p`` with ``c²`` — the paper's cheaper form — is order-
    equivalent.
    """

    name = "simple"

    def slowness(self, rtt: float, loss_fixed: int) -> float:
        return rtt * math.sqrt(max(loss_fixed, LOSS_FLOOR))


class PadhyeModel:
    """Padhye-Firoiu-Towsley-Kurose model (SIGCOMM'98), [15] in the
    paper.

    Args:
        b: packets acknowledged per ACK (1: pgmcc has no delayed ACKs).
        rto_rtts: retransmission timeout expressed in RTTs (the usual
            rule of thumb t_RTO ≈ 4·RTT).
    """

    name = "padhye"

    def __init__(self, b: float = 1.0, rto_rtts: float = 4.0):
        if b <= 0 or rto_rtts <= 0:
            raise ValueError("b and rto_rtts must be positive")
        self.b = b
        self.rto_rtts = rto_rtts

    def throughput(self, rtt: float, p: float) -> float:
        """Modelled packets/time for loss fraction ``p`` in (0, 1]."""
        if p <= 0:
            return math.inf
        t_rto = self.rto_rtts * rtt
        denominator = rtt * math.sqrt(2 * self.b * p / 3) + t_rto * min(
            1.0, 3 * math.sqrt(3 * self.b * p / 8)
        ) * p * (1 + 32 * p * p)
        return 1.0 / denominator

    def slowness(self, rtt: float, loss_fixed: int) -> float:
        p = max(loss_fixed, LOSS_FLOOR) / SCALE
        return 1.0 / self.throughput(rtt, p)


def make_model(name: str) -> ThroughputModel:
    """Model factory used by :class:`~repro.core.acker.AckerElection`."""
    if name == "simple":
        return SimpleModel()
    if name == "padhye":
        return PadhyeModel()
    raise ValueError(f"unknown throughput model {name!r}")
