"""Receiver-side congestion-control state (§3.2, §3.3).

Each receiver keeps a constant amount of state: the low-pass loss
filter, the highest sequence number seen (``rxw_lead``) and a recent
receive set from which ACK bitmaps are built.  This module owns the
*measurement* logic only; NAK scheduling/suppression policy lives with
the PGM receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .acktrack import BITMAP_BITS, build_bitmap
from .loss_filter import DEFAULT_W, LossRateFilter
from .reports import ReceiverReport

#: Prune the receive set this far behind the lead; well beyond both the
#: bitmap width and any plausible reordering in our topologies.
_PRUNE_MARGIN = 4 * BITMAP_BITS


@dataclass
class DataOutcome:
    """Result of ingesting one data packet at the receiver."""

    #: Sequence numbers newly detected missing (gaps opened by this packet).
    new_gaps: list[int] = field(default_factory=list)
    #: True if the packet was already received (duplicate/late repair).
    duplicate: bool = False
    #: True if the packet advanced rxw_lead.
    advanced_lead: bool = False


class ReceiverController:
    """Loss measurement + receive bookkeeping for one receiver.

    Args:
        rx_id: this receiver's identity, stamped into reports.
        filter_w: fixed-point smoothing constant for the loss filter.
        estimator: "filter" for the paper's low-pass filter (§3.2.2)
            or "tfrc" for the TFRC average-loss-interval method the
            paper lists as future work (§5).
    """

    def __init__(self, rx_id: str, filter_w: int = DEFAULT_W, estimator: str = "filter"):
        self.rx_id = rx_id
        if estimator == "filter":
            self.loss_filter = LossRateFilter(filter_w)
        elif estimator == "tfrc":
            from .tfrc_loss import LossIntervalEstimator

            self.loss_filter = LossIntervalEstimator()
        else:
            raise ValueError(f"unknown loss estimator {estimator!r}")
        self.rxw_lead: int = -1
        self._received: set[int] = set()
        self._prune_floor = 0
        self.data_packets = 0
        self.duplicates = 0
        #: timestamp of the most recent sender timestamp observed, and
        #: local receive time, for the time-RTT ablation echo.
        self._last_tstamp: Optional[float] = None
        self._last_tstamp_rx_time: Optional[float] = None
        #: optional hook receiving each (seq, lost) filter sample, used
        #: by the Fig. 2 experiment to capture the raw loss signal.
        self.sample_observer: Optional[callable] = None

    # -- data path ---------------------------------------------------------

    def on_data(self, seq: int, now: float, sender_timestamp: Optional[float] = None) -> DataOutcome:
        """Ingest a data packet (ODATA or RDATA) with sequence ``seq``.

        Gap slots between the old and new lead are fed to the loss
        filter as losses; the arriving packet as a success.  Repairs
        and duplicates (``seq <= lead`` already seen) do not touch the
        filter: the loss signal measures the *original* transmission
        pattern.
        """
        outcome = DataOutcome()
        if sender_timestamp is not None:
            self._last_tstamp = sender_timestamp
            self._last_tstamp_rx_time = now
        if seq in self._received:
            self.duplicates += 1
            outcome.duplicate = True
            return outcome

        self.data_packets += 1
        self._received.add(seq)
        if self.rxw_lead < 0:
            # First packet ever seen anchors the receive window: a
            # receiver joining mid-session must not treat the whole
            # prior history as lost (PGM semantics — earlier data is
            # simply outside its window).
            self.loss_filter.update(False)
            if self.sample_observer is not None:
                self.sample_observer(seq, False)
            self.rxw_lead = seq
            outcome.advanced_lead = True
            return outcome
        if seq > self.rxw_lead:
            for missing in range(self.rxw_lead + 1, seq):
                self.loss_filter.update(True)
                if self.sample_observer is not None:
                    self.sample_observer(missing, True)
                outcome.new_gaps.append(missing)
            self.loss_filter.update(False)
            if self.sample_observer is not None:
                self.sample_observer(seq, False)
            self.rxw_lead = seq
            outcome.advanced_lead = True
            self._maybe_prune()
        # seq < lead and unseen: a repair filling an old gap; the slot
        # was already counted as lost when the gap opened.
        return outcome

    def resync(self, new_lead: int) -> int:
        """Jump the receive window forward to ``new_lead`` (rejoin at
        the live edge after a partition outlived the sender's repair
        horizon).  The skipped span is *not* fed to the loss filter —
        like the first-packet anchor above, data the session can no
        longer repair is outside the window, not congestion signal —
        so the post-heal loss report reflects current path state, not
        the outage.  Returns the number of sequences skipped over."""
        if new_lead <= self.rxw_lead:
            return 0
        old_lead = self.rxw_lead
        skipped = new_lead - old_lead - 1 if old_lead >= 0 else 0
        skipped -= sum(1 for s in self._received if old_lead < s < new_lead)
        self.rxw_lead = new_lead
        self._maybe_prune()
        return max(skipped, 0)

    def _maybe_prune(self) -> None:
        floor = self.rxw_lead - _PRUNE_MARGIN
        if floor - self._prune_floor < _PRUNE_MARGIN:
            return
        self._received = {s for s in self._received if s >= floor}
        self._prune_floor = floor

    # -- report / ACK construction ---------------------------------------------

    def report(self, include_timestamp: bool = False, now: Optional[float] = None) -> ReceiverReport:
        """Build the receiver report carried on NAKs and ACKs."""
        echo = None
        if include_timestamp and self._last_tstamp is not None and now is not None:
            # Correct the echoed timestamp by the local hold time so
            # feedback delays do not inflate the RTT (§3.2.1).
            hold = now - (self._last_tstamp_rx_time or now)
            echo = self._last_tstamp + hold
        return ReceiverReport(
            rx_id=self.rx_id,
            rxw_lead=max(self.rxw_lead, 0),
            rx_loss=self.loss_filter.value,
            timestamp_echo=echo,
        )

    def ack_bitmap(self, ack_seq: int) -> int:
        """32-bit receive bitmap for an ACK elicited by ``ack_seq``."""
        return build_bitmap(ack_seq, self._received)

    def has_received(self, seq: int) -> bool:
        return seq in self._received

    @property
    def loss_rate(self) -> float:
        return self.loss_filter.loss_rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReceiverController {self.rx_id} lead={self.rxw_lead} "
            f"loss={self.loss_rate:.4f}>"
        )
