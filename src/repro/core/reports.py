"""Receiver reports (§3.2).

Reports travel to the sender as options on NAKs and ACKs (Fig. 1) and
carry the three fields the election needs: the receiver identity, the
highest known sequence number (from which the sender derives the RTT in
packets), and the locally measured loss rate in fixed-point form.

``timestamp_echo`` is *not* part of the paper's wire format — pgmcc
deliberately avoids receiver timestamps — but is carried here to
support the time-based-RTT ablation the paper ran in NS (§3.2.1) and
reported as "does not yield any better behaviour".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .loss_filter import SCALE


@dataclass(frozen=True)
class ReceiverReport:
    """One receiver's view, as embedded in a NAK or ACK.

    Attributes:
        rx_id: identity of the reporting receiver.
        rxw_lead: highest sequence number known to the receiver.
        rx_loss: loss rate, fixed point with 16 fractional bits.
        timestamp_echo: most recent sender timestamp seen, corrected by
            the receiver's hold time (ablation only; ``None`` on the
            paper's wire format).
    """

    rx_id: str
    rxw_lead: int
    rx_loss: int
    timestamp_echo: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rxw_lead < 0:
            raise ValueError(f"rxw_lead must be >= 0, got {self.rxw_lead}")
        if not 0 <= self.rx_loss <= SCALE:
            raise ValueError(f"rx_loss must be in [0, {SCALE}], got {self.rx_loss}")

    @property
    def loss_rate(self) -> float:
        """Loss rate as a float in [0, 1]."""
        return self.rx_loss / SCALE
