"""Sender-side ACK accounting and loss detection (§3.3, §3.4).

pgmcc cannot use TCP's cumulative ACKs: repairs may arrive long after
the loss, and acker switches create multipath-like reordering.  Each
ACK therefore carries ``ack_seq`` (the data packet that elicited it)
plus a 32-bit bitmap over the most recent 32 packets, so every ACK is
effectively transmitted multiple times.

The tracker keeps the set of outstanding (sent, not yet acknowledged)
ODATA sequence numbers.  For each incoming ACK it:

1. marks every sequence the bitmap reports received (recovering lost
   and reordered ACKs) — each *newly* acknowledged data packet is one
   ACK event for the window controller, keeping the token supply equal
   to the delivered packet count;
2. counts, for each still-outstanding packet older than ``ack_seq``,
   one more "subsequent ACK that missed it"; at the dupack threshold
   (3) the packet is declared lost.

Retransmissions (RDATA) are never ACKed and never tracked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .window import DEFAULT_DUPACK_THRESHOLD

#: Width of the ACK bitmap (Fig. 1).
BITMAP_BITS = 32


def build_bitmap(ack_seq: int, received: "set[int] | dict") -> int:
    """Build the 32-bit receive bitmap for an ACK.

    Bit k set means sequence ``ack_seq - k`` was received; bit 0 is
    ``ack_seq`` itself (always set: the ACK is elicited by receiving
    it).  Used by the receiver side; lives here so sender and receiver
    agree on one layout.
    """
    bitmap = 0
    for k in range(BITMAP_BITS):
        seq = ack_seq - k
        if seq < 0:
            break
        if seq in received:
            bitmap |= 1 << k
    return bitmap


def bitmap_covers(ack_seq: int, seq: int) -> bool:
    """Whether ``seq`` falls inside the bitmap window of ``ack_seq``."""
    return 0 <= ack_seq - seq < BITMAP_BITS


def bitmap_contains(ack_seq: int, bitmap: int, seq: int) -> bool:
    """Whether the bitmap reports ``seq`` as received."""
    offset = ack_seq - seq
    if not 0 <= offset < BITMAP_BITS:
        return False
    return bool(bitmap & (1 << offset))


@dataclass
class AckOutcome:
    """Result of processing one ACK."""

    newly_acked: list[int] = field(default_factory=list)
    losses: list[int] = field(default_factory=list)
    is_new_high: bool = False


class AckTracker:
    """Outstanding-packet table with bitmap-based loss detection."""

    def __init__(self, dupack_threshold: int = DEFAULT_DUPACK_THRESHOLD):
        if dupack_threshold < 1:
            raise ValueError("dupack_threshold must be >= 1")
        self.dupack_threshold = dupack_threshold
        #: outstanding seq -> count of subsequent ACKs that missed it
        self._outstanding: dict[int, int] = {}
        self.highest_ack_seq: int = -1
        self.acks_received = 0
        self.duplicate_acks = 0

    # -- sender events -------------------------------------------------------

    def on_data_sent(self, seq: int) -> None:
        """Record an original ODATA transmission."""
        if seq in self._outstanding:
            raise ValueError(f"sequence {seq} already outstanding")
        self._outstanding[seq] = 0

    def reset(self) -> None:
        """Forget everything (stall restart)."""
        self._outstanding.clear()
        self.highest_ack_seq = -1

    # -- ACK processing --------------------------------------------------------

    def on_ack(self, ack_seq: int, bitmap: int) -> AckOutcome:
        """Digest one ACK; returns newly acked packets and declared losses."""
        self.acks_received += 1
        outcome = AckOutcome()
        outcome.is_new_high = ack_seq > self.highest_ack_seq
        if not outcome.is_new_high:
            self.duplicate_acks += 1
        self.highest_ack_seq = max(self.highest_ack_seq, ack_seq)

        # 1. Harvest everything the bitmap says was received.
        for k in range(BITMAP_BITS):
            seq = ack_seq - k
            if seq < 0:
                break
            if bitmap & (1 << k) and seq in self._outstanding:
                del self._outstanding[seq]
                outcome.newly_acked.append(seq)
        outcome.newly_acked.sort()

        # 2. Dupack accounting for still-missing older packets.
        for seq in list(self._outstanding):
            if seq >= ack_seq:
                continue
            self._outstanding[seq] += 1
            if self._outstanding[seq] >= self.dupack_threshold:
                del self._outstanding[seq]
                outcome.losses.append(seq)
        outcome.losses.sort()
        return outcome

    # -- introspection -----------------------------------------------------

    @property
    def outstanding_count(self) -> int:
        return len(self._outstanding)

    def outstanding(self) -> list[int]:
        return sorted(self._outstanding)

    def is_outstanding(self, seq: int) -> bool:
        return seq in self._outstanding

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AckTracker outstanding={len(self._outstanding)} "
            f"high={self.highest_ack_seq}>"
        )
