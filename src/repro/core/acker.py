"""Acker election and tracking (§3.5).

The sender continuously monitors the reports embedded in NAKs and
elects as the group representative (the *acker*) the receiver with the
worst expected throughput under the steady-state model of its own
controller::

    T(X) ∝ 1 / (RTT * sqrt(p))

Since only comparisons matter, the implementation compares
``RTT² · p`` values ("as this is cheaper to compute").  To bias against
spurious switches caused by measurement noise, the sender only switches
from the incumbent *i* to a candidate *j* when ``T(X_j) < c · T(X_i)``
with ``0 < c ≤ 1`` — equivalently when ``M_j · c² > M_i`` in metric
form.  The paper finds c between 0.6 and 0.8 removes unnecessary
switches without hurting selection accuracy, and uses c = 0.75.

Crucially, a switch is *not* a congestion signal: the acker is treated
as a single receiver that moved to a different path, so the window
controller's state survives switches untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .reports import ReceiverReport
from .rtt import RttSampler, SmoothedRtt, packet_rtt
from .throughput_models import LOSS_FLOOR, ThroughputModel, make_model

#: The paper's recommended switch bias.
DEFAULT_C = 0.75


def throughput_metric(rtt: float, loss_fixed: int) -> float:
    """``RTT² · p`` (inverse-square of the modelled throughput).

    Bigger metric = slower receiver.  ``loss_fixed`` is floored at one
    fixed-point unit.  This is the paper's default model; the election
    also supports the full Padhye model (§5 future work) through
    :mod:`repro.core.throughput_models`.
    """
    return rtt * rtt * max(loss_fixed, LOSS_FLOOR)


@dataclass
class AckerSwitch:
    """One recorded change of representative."""

    time: float
    old: Optional[str]
    new: str
    candidate_metric: float
    incumbent_metric: Optional[float]


@dataclass
class _IncumbentState:
    rx_id: str
    rtt: SmoothedRtt
    loss_fixed: int = 0
    last_report_time: float = 0.0


class AckerElection:
    """Tracks the incumbent acker and evaluates candidates from NAKs.

    Args:
        c: switch bias constant (``1.0`` disables the bias).
        rtt_mode: "seq" for the paper's packet-based RTT, "time" for
            the echoed-timestamp ablation.
        rtt_gain: EWMA gain for smoothing the incumbent's RTT samples.
        model: steady-state throughput model — "simple" (the paper's
            default, T ∝ 1/(RTT·√p)) or "padhye" (the full equation of
            [15], the paper's §5 future work for loss rates above 5%).
    """

    def __init__(self, c: float = DEFAULT_C, rtt_mode: str = RttSampler.SEQ,
                 rtt_gain: float = 0.25, model: "str | ThroughputModel" = "simple"):
        if not 0.0 < c <= 1.0:
            raise ValueError(f"c must be in (0, 1], got {c}")
        self.c = c
        self.sampler = RttSampler(rtt_mode)
        self.rtt_gain = rtt_gain
        self.model = make_model(model) if isinstance(model, str) else model
        self._incumbent: Optional[_IncumbentState] = None
        self.switches: list[AckerSwitch] = []
        self.candidates_rejected = 0

    # -- introspection -----------------------------------------------------

    @property
    def current(self) -> Optional[str]:
        return self._incumbent.rx_id if self._incumbent else None

    @property
    def incumbent_metric(self) -> Optional[float]:
        """The incumbent's slowness under the active model (1/T units)."""
        inc = self._incumbent
        if inc is None or inc.rtt.value is None:
            return None
        return self.model.slowness(inc.rtt.value, inc.loss_fixed)

    @property
    def switch_count(self) -> int:
        return len(self.switches)

    # -- events ------------------------------------------------------------

    def clear(self) -> None:
        """Forget the incumbent (stall restart: a fresh election will
        be seeded by the elicited NAK)."""
        self._incumbent = None

    def on_ack_report(self, report: ReceiverReport, last_tx_seq: int, now: float) -> None:
        """Refresh the incumbent's state from one of its ACKs."""
        inc = self._incumbent
        if inc is None or report.rx_id != inc.rx_id:
            return
        sample = self.sampler.sample(report, last_tx_seq, now)
        if sample is not None:
            inc.rtt.update(sample)
        inc.loss_fixed = report.rx_loss
        inc.last_report_time = now

    def on_nak_report(self, report: ReceiverReport, last_tx_seq: int, now: float) -> bool:
        """Evaluate a NAK's report; returns True if the acker switched.

        A report from the incumbent itself just refreshes its state.
        With no incumbent (session start, or after a stall cleared it)
        the reporter is elected unconditionally — this is how the
        startup "fake NAK" seeds the ACK clock (§3.6).
        """
        inc = self._incumbent
        if inc is not None and report.rx_id == inc.rx_id:
            self.on_ack_report(report, last_tx_seq, now)
            return False

        sample = self.sampler.sample(report, last_tx_seq, now)
        if sample is None:
            # Time mode with no echo in this report (e.g. a receiver
            # that has not seen a timestamp yet): fall back to the
            # sequence-based measure rather than ignoring the report —
            # an unmeasurable candidate must still be electable.
            sample = float(packet_rtt(last_tx_seq, report.rxw_lead))
        candidate_metric = self.model.slowness(sample, report.rx_loss)

        if inc is None:
            self._install(report, sample, now, candidate_metric, None)
            return True

        incumbent_metric = self.incumbent_metric
        if incumbent_metric is None:
            # Incumbent never measured (no ACK yet): treat the NAK
            # sender as the better-informed choice.
            self._install(report, sample, now, candidate_metric, None)
            return True

        # Switch when T(X_j) < c·T(X_i), i.e. slowness_j · c > slowness_i
        # (with the squared RTT²·p form this is the paper's c² rule).
        if candidate_metric * self.c > incumbent_metric:
            self._install(report, sample, now, candidate_metric, incumbent_metric)
            return True
        self.candidates_rejected += 1
        return False

    def _install(
        self,
        report: ReceiverReport,
        rtt_sample: float,
        now: float,
        candidate_metric: float,
        incumbent_metric: Optional[float],
    ) -> None:
        old = self.current
        rtt = SmoothedRtt(self.rtt_gain)
        rtt.update(rtt_sample)
        self._incumbent = _IncumbentState(
            rx_id=report.rx_id,
            rtt=rtt,
            loss_fixed=report.rx_loss,
            last_report_time=now,
        )
        self.switches.append(
            AckerSwitch(now, old, report.rx_id, candidate_metric, incumbent_metric)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AckerElection current={self.current} c={self.c} switches={self.switch_count}>"
