"""The congestion-controller contract and backend registry.

pgmcc's window/token machine is one possible discipline for pacing a
single-rate multicast source off its representative's feedback.  This
module extracts the *contract* between the sender engine
(:class:`~repro.core.sender_cc.SenderController`) and that discipline,
so alternative controllers — Jain's timeout-based window scheme, a
TFRC-equation rate controller, tunable AIMD variants — can drive the
identical session machinery and be compared head-to-head
(``EXP-ARENA``, see ``docs/CONTROLLERS.md`` for the full contract).

A *backend* is a small object consuming the sender's digested feedback
events and answering one question: *may a packet be sent now, and if
not, when?*  The surrounding engine keeps everything protocol-shaped —
the acker election, the ACK tracker, the stall timer, time-RTT — and
calls in here:

``on_send(seq, now)``
    one ODATA left the source (window backends consume a token).
``on_ack(now, in_flight)``
    one *newly acknowledged* packet (never duplicates), the clock tick.
``on_congestion(loss_seq, last_tx_seq, in_flight, now) -> bool``
    a dupack-declared loss; returns whether the backend reacted
    (backends that only react to timeouts return False).
``on_timeout(now)``
    the engine's stall/RTO timer fired with data outstanding.
``observe_report(report, srtt, now)``
    every accepted ACK's receiver report plus the current smoothed
    time-RTT (rate backends read loss/RTT state from here).
``kick(clear_ignore=False)``
    the engine restarts a dead feedback clock (initial election,
    acker eviction, drained window): make one send possible *now*.
``send_delay(now)``
    ``0.0`` = send now, a positive float = rate-paced (call again in
    that many seconds), ``None`` = blocked until feedback arrives.
``params() / state_summary()``
    the versioned, JSON-serializable configuration and state
    documents (``pgmcc.controller-params/v1`` /
    ``pgmcc.controller-state/v1``).

Every backend also exposes ``window`` — a
:class:`~repro.core.window.WindowController` or a view with the same
observable surface (``w``, ``tokens``, ``ignore_acks``,
``recovery_seq``, ``losses_reacted``, ``on_loss``) — which is what the
telemetry bindings sample and the
:class:`~repro.pgm.invariants.InvariantChecker` wraps.  Rate backends
synthesize ``w`` as the equivalent packets-in-flight (``rate · RTT``).

Backends register by name::

    @register_controller("mycc")
    class MyController: ...

    make_controller("mycc", CcConfig(), **params)

and sessions select one with ``SessionConfig(controller="mycc")``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional, Protocol, runtime_checkable

from .window import WindowController

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .reports import ReceiverReport
    from .sender_cc import CcConfig

#: schema tag on :meth:`Controller.params` documents
PARAMS_SCHEMA = "pgmcc.controller-params/v1"
#: schema tag on :meth:`Controller.state_summary` documents
STATE_SCHEMA = "pgmcc.controller-state/v1"

#: the valid ``Controller.kind`` values
KINDS = ("window", "rate")


@runtime_checkable
class Controller(Protocol):
    """The pluggable congestion-controller contract (see module doc).

    Structural protocol: any object with this surface can be driven by
    :class:`~repro.core.sender_cc.SenderController`.  The conformance
    suite (``tests/core/test_controller_contract.py``) runs every
    registered backend through the behavioral half of the contract.
    """

    name: str
    kind: str  # "window" or "rate"
    window: Any  # WindowController-compatible observable view

    @property
    def can_send(self) -> bool:  # pragma: no cover - protocol
        ...

    def send_delay(self, now: float) -> Optional[float]:  # pragma: no cover
        ...

    def on_send(self, seq: int, now: float) -> None:  # pragma: no cover
        ...

    def on_ack(self, now: float, in_flight: Optional[int] = None) -> None:  # pragma: no cover
        ...

    def on_congestion(self, loss_seq: int, last_tx_seq: int,
                      in_flight: Optional[int], now: float) -> bool:  # pragma: no cover
        ...

    def on_timeout(self, now: float) -> None:  # pragma: no cover
        ...

    def observe_report(self, report: "ReceiverReport",
                       srtt: Optional[float], now: float) -> None:  # pragma: no cover
        ...

    def kick(self, clear_ignore: bool = False) -> None:  # pragma: no cover
        ...

    def params(self) -> dict:  # pragma: no cover - protocol
        ...

    def state_summary(self) -> dict:  # pragma: no cover - protocol
        ...


class WindowBackend:
    """Shared implementation for window/token backends.

    Subclasses provide ``name``, the congestion-signal declaration and
    a :class:`WindowController` (or subclass); the event plumbing here
    is common.  ``send_delay`` is binary for a window backend: either a
    token is available now, or the ACK clock must reopen the window
    (``None`` — there is no time at which sending becomes legal without
    feedback).
    """

    name = "window-base"
    kind = "window"
    #: which signals this backend reduces its output on; the
    #: conformance suite checks each declared signal.
    congestion_signals: tuple[str, ...] = ("dupack", "timeout")

    def __init__(self, window: WindowController):
        self.window = window

    # -- contract ----------------------------------------------------------

    @property
    def can_send(self) -> bool:
        return self.window.can_send

    def send_delay(self, now: float) -> Optional[float]:
        return 0.0 if self.window.can_send else None

    def on_send(self, seq: int, now: float) -> None:
        self.window.on_transmit()

    def on_ack(self, now: float, in_flight: Optional[int] = None) -> None:
        self.window.on_ack()

    def on_congestion(self, loss_seq: int, last_tx_seq: int,
                      in_flight: Optional[int], now: float) -> bool:
        return self.window.on_loss(loss_seq, last_tx_seq, in_flight=in_flight)

    def on_timeout(self, now: float) -> None:
        self.window.on_restart()

    def observe_report(self, report: "ReceiverReport",
                       srtt: Optional[float], now: float) -> None:
        pass  # window backends are clocked purely by ACK arrivals

    def kick(self, clear_ignore: bool = False) -> None:
        self.window.tokens = max(self.window.tokens, 1.0)
        if clear_ignore:
            self.window.ignore_acks = 0

    def params(self) -> dict:
        return {
            "schema": PARAMS_SCHEMA,
            "name": self.name,
            "kind": self.kind,
            "congestion_signals": list(self.congestion_signals),
            "ssthresh": self.window.initial_ssthresh,
            "adaptive_ssthresh": self.window.adaptive_ssthresh,
            "max_tokens": self.window.max_tokens,
        }

    def state_summary(self) -> dict:
        return {
            "schema": STATE_SCHEMA,
            "name": self.name,
            "kind": self.kind,
            "w": self.window.w,
            "tokens": self.window.tokens,
            "ignore_acks": self.window.ignore_acks,
            "recovery_seq": self.window.recovery_seq,
            "acks_processed": self.window.acks_processed,
            "losses_reacted": self.window.losses_reacted,
            "losses_ignored": self.window.losses_ignored,
            "restarts": self.window.restarts,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.window!r}>"


class PgmccController(WindowBackend):
    """The paper's controller (§3.4), behind the generic contract.

    A thin adapter over :class:`WindowController` — the update rules
    (``W += 1/W``, ``T += 1 + 1/W``, realign-then-halve, ignore ``W/2``
    ACKs) live there, verbatim from the paper.
    """

    name = "pgmcc"
    congestion_signals = ("dupack", "timeout")

    def __init__(self, cc: "CcConfig"):
        super().__init__(WindowController(
            ssthresh=cc.ssthresh,
            max_tokens=cc.max_tokens,
            adaptive_ssthresh=cc.adaptive_ssthresh,
        ))


# -- registry -----------------------------------------------------------------

_REGISTRY: dict[str, Callable[..., Controller]] = {}


def register_controller(name: str):
    """Class decorator (or plain call with a factory) registering a
    controller backend under ``name``.

    The factory signature is ``factory(cc: CcConfig, **params)``.
    Re-registering a name raises — backends are process-global and a
    silent overwrite would poison digest stability.
    """

    def _register(factory: Callable[..., Controller]):
        if name in _REGISTRY:
            raise ValueError(f"controller {name!r} already registered")
        _REGISTRY[name] = factory
        return factory

    return _register


register_controller("pgmcc")(PgmccController)


def _ensure_builtins_loaded() -> None:
    # The alternative backends live in repro.core.controllers and
    # register on import; importing lazily here avoids a cycle
    # (controllers -> throughput_models/tfrc_loss -> ...).
    if "tfrc" not in _REGISTRY:
        from . import controllers  # noqa: F401  (import-time registration)


def controller_names() -> tuple[str, ...]:
    """Every registered backend name, sorted (registry order is not
    meaningful; sorted output keeps arena tables digest-stable)."""
    _ensure_builtins_loaded()
    return tuple(sorted(_REGISTRY))


def make_controller(name: str, cc: "CcConfig", **params: Any) -> Controller:
    """Instantiate the backend registered under ``name``.

    ``cc`` supplies the shared pgmcc tunables (ssthresh and friends);
    ``params`` are backend-specific (e.g. ``beta`` for ``aimd``).
    Unknown names raise ``KeyError`` listing the registry.
    """
    _ensure_builtins_loaded()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown controller {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None
    return factory(cc, **params)
