"""TFRC-style loss measurement (§3.2.2 / §5 future work).

The paper measures loss with a first-order low-pass filter and says:
"We also plan to investigate, as future work, the techniques used in
TFRC [12] for measuring losses."  This module implements that
technique — the *Average Loss Interval* method of Floyd, Handley,
Padhye and Widmer (SIGCOMM 2000):

* the packet stream is segmented into *loss intervals* — runs of
  packets between loss events;
* the loss event rate is the inverse of the weighted average of the
  most recent ``n = 8`` intervals, with weights
  ``1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2`` (newest first);
* the still-open interval since the last loss is included when that
  *raises* the average (so the estimate decays during loss-free runs
  but is not dragged down by an interval that merely hasn't ended).

Like the paper's filter, the estimator is indexed by packet sequence
rather than time, and exposes the same fixed-point ``value`` so it can
drop into :class:`~repro.core.receiver_cc.ReceiverController` as an
alternative estimator for reports.
"""

from __future__ import annotations

from collections import deque

from .loss_filter import SCALE

#: TFRC's standard history depth and weights (newest interval first).
DEFAULT_WEIGHTS = (1.0, 1.0, 1.0, 1.0, 0.8, 0.6, 0.4, 0.2)


class LossIntervalEstimator:
    """Average-loss-interval estimator with the TFRC weighting.

    Drop-in alternative to :class:`LossRateFilter`: feed one ``update``
    per packet slot, read ``value`` (fixed point) or ``loss_rate``.
    """

    def __init__(self, weights: tuple[float, ...] = DEFAULT_WEIGHTS):
        if not weights or any(w <= 0 for w in weights):
            raise ValueError("weights must be a non-empty positive sequence")
        self.weights = weights
        #: closed loss intervals, newest first (packet counts)
        self._intervals: deque[int] = deque(maxlen=len(weights))
        #: packets since the last loss event (the open interval)
        self._open_interval = 0
        self.samples = 0
        self.losses = 0

    def update(self, lost: bool) -> int:
        """Feed one packet slot; returns the new fixed-point estimate."""
        self.samples += 1
        self._open_interval += 1
        if lost:
            self.losses += 1
            self._intervals.appendleft(self._open_interval)
            self._open_interval = 0
        return self.value

    def update_run(self, pattern) -> int:
        for lost in pattern:
            self.update(lost)
        return self.value

    def _average_interval(self) -> float:
        if not self._intervals:
            return 0.0
        closed = list(self._intervals)
        weights = self.weights[: len(closed)]
        total_weight = sum(weights)
        avg_closed = sum(w * i for w, i in zip(weights, closed)) / total_weight
        # Include the open interval as interval 0 when it raises the
        # average (TFRC's history discounting of the current interval).
        with_open = [self._open_interval] + closed
        weights_open = self.weights[: len(with_open)]
        avg_open = sum(w * i for w, i in zip(weights_open, with_open)) / sum(weights_open)
        return max(avg_closed, avg_open)

    @property
    def loss_rate(self) -> float:
        """Loss event rate: 1 / average loss interval."""
        avg = self._average_interval()
        if avg <= 0:
            return 0.0
        return min(1.0, 1.0 / avg)

    @property
    def value(self) -> int:
        """Fixed-point form compatible with receiver reports."""
        return int(self.loss_rate * SCALE)

    @property
    def raw_loss_rate(self) -> float:
        if self.samples == 0:
            return 0.0
        return self.losses / self.samples

    def reset(self) -> None:
        self._intervals.clear()
        self._open_interval = 0
        self.samples = 0
        self.losses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LossIntervalEstimator intervals={list(self._intervals)} "
            f"open={self._open_interval} rate={self.loss_rate:.4f}>"
        )
