"""Telemetry overhead smoke: the events/sec probe, off vs. on.

Usage::

    python -m repro.telemetry.overhead                # report only
    python -m repro.telemetry.overhead --threshold 0.05   # CI gate

Three variants of the same event-loop workload as
``repro.runner.bench.measure_sim_events_per_sec`` (a self-rescheduling
tick chain):

Each variant instruments the workload the way the session layer
instruments the protocol: the per-event counter is a *plain attribute*
(registries observe it through a pull ``bind``, sampled only at
snapshot time), push instruments fire only on low-rate events (1 in 64
here, standing in for the repair path), and the probe rides the sim
clock.

* **baseline** — a bare :class:`Simulator`, no telemetry objects at
  all: the pre-telemetry cost of one event.
* **disabled** — the same workload against a :class:`NullRegistry`:
  the no-op histogram on the low-rate path, a no-op ``bind``, and a
  probe obtained through :func:`make_probe` (which must schedule
  nothing when disabled).
* **enabled** — a live :class:`MetricsRegistry` with a real histogram,
  binding and sampling probe on the sim clock.

The CI gate (``--threshold``) fails when the disabled variant is more
than the given fraction slower than baseline — i.e. when someone adds
per-event cost that a disabled registry does not erase.  Enabled-mode
overhead is reported but not gated (it pays for the data it records).
Each variant takes the best of ``--repeats`` runs to shrug off
scheduler noise.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..simulator.engine import Simulator
from .probes import make_probe
from .registry import MetricsRegistry, NullRegistry

#: chain length per measurement run (events)
DEFAULT_CHAIN = 30_000
DEFAULT_REPEATS = 5


def _run_chain(sim: Simulator, chain: int, tick_extra) -> float:
    """Schedule a self-rescheduling chain; return events/sec.

    Runs to a fixed horizon rather than heap exhaustion: in enabled
    mode the sampling probe perpetually reschedules itself, so an
    unbounded ``run()`` would never return.
    """

    def tick(n: int) -> None:
        tick_extra()
        if n:
            sim.schedule(0.001, tick, n - 1)

    sim.schedule(0.0, tick, chain)
    t0 = time.perf_counter()
    sim.run(until=chain * 0.001 + 0.01)
    elapsed = time.perf_counter() - t0
    return sim.events_processed / elapsed if elapsed > 0 else 0.0


class _Workload:
    """Stand-in for a protocol agent: a hot counter as a plain
    attribute, exactly how the sender/receivers keep theirs."""

    __slots__ = ("ticks",)

    def __init__(self) -> None:
        self.ticks = 0


def measure(mode: str, chain: int = DEFAULT_CHAIN) -> float:
    """One run of the probe in ``mode``: baseline | disabled | enabled."""
    sim = Simulator()
    state = _Workload()

    if mode == "baseline":

        def tick_extra() -> None:
            # the protocol's own low-rate branch (repair detection)
            # exists with or without telemetry; only the call inside
            # it is the instrumentation cost
            state.ticks += 1
            if not state.ticks % 64:
                pass

        return _run_chain(sim, chain, tick_extra)
    if mode == "disabled":
        registry = NullRegistry()
    elif mode == "enabled":
        registry = MetricsRegistry()
    else:
        raise ValueError(f"unknown mode {mode!r}")
    registry.bind("probe.ticks", lambda: state.ticks)
    hist = registry.histogram("probe.tick_value")
    probe = make_probe(sim, registry, interval=0.05)
    probe.sample("probe.count", lambda: float(state.ticks)).start()

    def tick_extra() -> None:
        state.ticks += 1
        if not state.ticks % 64:  # the low-rate push path (repairs)
            hist.observe(1.0)

    try:
        return _run_chain(sim, chain, tick_extra)
    finally:
        registry.close()


def best_of(mode: str, repeats: int = DEFAULT_REPEATS,
            chain: int = DEFAULT_CHAIN) -> float:
    return max(measure(mode, chain) for _ in range(max(1, repeats)))


def measure_all(repeats: int = DEFAULT_REPEATS,
                chain: int = DEFAULT_CHAIN) -> dict[str, float]:
    """Best-of rates for all three modes, repeats *interleaved* so
    slow drift (CPU frequency, cache warmup) hits every mode alike
    instead of biasing whichever happened to run first."""
    modes = ("baseline", "disabled", "enabled")
    measure("baseline", min(chain, 5_000))  # warmup, discarded
    rates = dict.fromkeys(modes, 0.0)
    for _ in range(max(1, repeats)):
        for mode in modes:
            rates[mode] = max(rates[mode], measure(mode, chain))
    return rates


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.overhead",
        description="events/sec probe with telemetry off vs. on")
    parser.add_argument("--threshold", type=float, default=None,
                        help="fail when disabled mode is more than this "
                             "fraction slower than baseline (e.g. 0.05)")
    parser.add_argument("--chain", type=int, default=DEFAULT_CHAIN,
                        help=f"events per run (default {DEFAULT_CHAIN})")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help=f"runs per variant, best-of (default "
                             f"{DEFAULT_REPEATS})")
    args = parser.parse_args(argv)

    rates = measure_all(args.repeats, args.chain)
    baseline, disabled, enabled = (
        rates["baseline"], rates["disabled"], rates["enabled"])

    disabled_overhead = 1.0 - disabled / baseline if baseline else 0.0
    enabled_overhead = 1.0 - enabled / baseline if baseline else 0.0
    print(f"baseline: {baseline:12.0f} events/s")
    print(f"disabled: {disabled:12.0f} events/s "
          f"({disabled_overhead:+.1%} vs baseline)")
    print(f"enabled:  {enabled:12.0f} events/s "
          f"({enabled_overhead:+.1%} vs baseline)")

    if args.threshold is not None and disabled < baseline * (1.0 - args.threshold):
        print(f"FAIL: disabled-mode overhead {disabled_overhead:.1%} exceeds "
              f"the {args.threshold:.0%} budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
